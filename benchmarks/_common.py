"""Shared helpers for the benchmark suite.

Benchmarks here serve two purposes at once:

* **wall-clock** — pytest-benchmark times one deterministic simulation per
  case (useful for tracking simulator performance regressions);
* **science** — each bench measures *round counts* across a parameter
  sweep, compares them to the paper's bound shapes, records everything in
  ``benchmark.extra_info``, and writes a plain-text report to
  ``benchmarks/output/`` (the tables EXPERIMENTS.md quotes).

Sweeps route through :mod:`repro.experiments` — a bench builds a
:class:`~repro.experiments.SweepSpec`, runs it via
:func:`run_bench_sweep`, and reads medians off the aggregated result, so
the same declarative spec a bench runs serially here can be re-run with
``repro-gossip sweep --jobs N`` on a bigger machine.  The thin wrappers
(:func:`gossip_rounds` et al.) remain for benches that exercise
non-default engine modes directly.

Absolute round counts are simulator-specific; the reproduction claims are
about shapes — scaling exponents, orderings, crossovers.
"""

from __future__ import annotations

import json
import statistics
import subprocess
import time
from datetime import date
from pathlib import Path

from repro.core.crowdedbin import CrowdedBinConfig
from repro.core.problem import uniform_instance
from repro.core.runner import run_gossip
from repro.experiments import SweepSpec, run_sweep
from repro.experiments import write_report as _write_report
from repro.graphs.dynamic import RelabelingAdversary, StaticDynamicGraph

OUTPUT_DIR = Path(__file__).resolve().parent / "output"

#: Machine-readable perf ledger at the repo root: every bench sweep (and
#: bench_engine's throughput measurements) merges one entry here, so
#: successive PRs can diff rounds/s and round-count medians instead of
#: re-reading prose reports.
BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: Seeds averaged per sweep point (median, robust to lucky runs).
DEFAULT_SEEDS = (11, 23, 37)


def write_report(name: str, text: str) -> Path:
    """Persist a sweep table so EXPERIMENTS.md can quote it."""
    return _write_report(name, text, OUTPUT_DIR)


def _provenance() -> dict:
    """Git revision + ISO date stamped onto every ledger entry, so the
    perf trajectory is comparable across PRs (which rev produced which
    number, and when)."""
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=BENCH_JSON_PATH.parent, capture_output=True, text=True,
            timeout=10,
        ).stdout.strip() or "unknown"
        if rev != "unknown":
            dirty = subprocess.run(
                ["git", "status", "--porcelain"],
                cwd=BENCH_JSON_PATH.parent, capture_output=True,
                text=True, timeout=10,
            ).stdout.strip()
            if dirty:
                # Numbers from uncommitted code must not be attributed
                # to the commit they happen to sit on.
                rev += "-dirty"
    except (OSError, subprocess.SubprocessError):
        rev = "unknown"
    return {"git_rev": rev, "date": date.today().isoformat()}


class DirtyTreeError(RuntimeError):
    """The working tree is dirty, so a ledger entry would lie.

    A perf number recorded under rev ``abc1234`` while uncommitted edits
    are loaded is attributed to code that never existed at that commit —
    exactly the kind of silent trajectory corruption the ledgers exist
    to prevent.  Benchmarks accept ``--allow-dirty`` (and the helpers an
    ``allow_dirty=True``) for local experimentation; the recorded rev
    then keeps its ``-dirty`` suffix so the entry is self-describing.
    """


def record_bench(
    name: str, payload: dict, allow_dirty: bool = False, path=None
) -> Path:
    """Merge one named entry into a repo-root perf ledger.

    Read-modify-write keyed by ``name``: re-running one bench refreshes
    its entry without clobbering the others, so the file accumulates the
    whole suite's trajectory.  Entries are stamped with the producing
    git revision and ISO date; a dirty working tree is **refused**
    (:class:`DirtyTreeError`) unless ``allow_dirty`` is set, because a
    dirty-tree number cannot be attributed to any commit.  ``path``
    selects the ledger (default ``BENCH_engine.json``; bench_scale
    writes ``BENCH_scale.json``).  A corrupt ledger degrades to a fresh
    one.
    """
    path = Path(path) if path is not None else BENCH_JSON_PATH
    stamp = _provenance()
    if stamp["git_rev"].endswith("-dirty") and not allow_dirty:
        raise DirtyTreeError(
            f"refusing to record {name!r} in {path.name}: the working "
            f"tree is dirty (rev {stamp['git_rev']}).  Commit first, or "
            "pass --allow-dirty / allow_dirty=True to record anyway "
            "(the entry keeps its -dirty rev)."
        )
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except ValueError:
            data = {}
        if not isinstance(data, dict):
            data = {}
    data[name] = dict(payload, **stamp)
    path.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n"
    )
    return path


def _point_label(point: dict) -> str:
    return ",".join(
        f"{key.rsplit('.', 1)[-1]}={value}" for key, value in point.items()
    ) or "base"


def run_bench_sweep(
    sweep: SweepSpec, require_solved: bool = True, allow_dirty: bool = False
):
    """Run a bench sweep serially and sanity-check every cell solved.

    Every sweep also records a machine-readable entry (wall time, total
    simulated rounds, rounds/s, per-cell round-count medians) in the
    repo-root ``BENCH_engine.json`` via :func:`record_bench` — which
    refuses a dirty working tree unless ``allow_dirty`` is set.
    """
    started = time.perf_counter()
    result = run_sweep(sweep)
    elapsed = time.perf_counter() - started
    if require_solved:
        for summary in result.points:
            assert summary.all_solved, (
                f"sweep {sweep.name} cell {summary.point} did not solve: "
                f"rounds={summary.rounds}, solved={summary.solved}"
            )
    total_rounds = sum(
        rounds for summary in result.points for rounds in summary.rounds
    )
    record_bench(
        f"sweep:{sweep.name}",
        {
            "kind": "sweep",
            "elapsed_s": round(elapsed, 3),
            "total_simulated_rounds": total_rounds,
            "rounds_per_s": round(total_rounds / elapsed, 1)
            if elapsed > 0 else None,
            "median_rounds": {
                _point_label(summary.point): summary.median_rounds
                for summary in result.points
            },
        },
        allow_dirty=allow_dirty,
    )
    return result


def median_rounds(run_once, seeds=DEFAULT_SEEDS) -> float:
    """Median round count of ``run_once(seed)`` over ``seeds``."""
    return statistics.median(run_once(seed) for seed in seeds)


def gossip_rounds(
    algorithm: str,
    dynamic_graph,
    n: int,
    k: int,
    seed: int,
    max_rounds: int,
    config=None,
) -> int:
    """Run one gossip execution and return its round count (must solve)."""
    instance = uniform_instance(n=n, k=k, seed=seed)
    kwargs = dict(max_rounds=max_rounds, trace_sample_every=1024)
    if algorithm == "crowdedbin":
        kwargs["config"] = config or CrowdedBinConfig.practical()
        kwargs["termination_every"] = 16
    elif config is not None:
        kwargs["config"] = config
    result = run_gossip(
        algorithm, dynamic_graph, instance, seed=seed, **kwargs
    )
    assert result.solved, (
        f"{algorithm} did not solve within {max_rounds} rounds "
        f"(n={n}, k={k}, seed={seed})"
    )
    return result.rounds


def static_graph(topo) -> StaticDynamicGraph:
    return StaticDynamicGraph(topo)


def instance_with_token_at(n: int, vertex: int, seed: int):
    """A k=1 instance whose token starts at a chosen vertex.

    Used by the double-star benchmarks, where the lower-bound argument
    needs the rumor to start inside one star (at its hub) so it must cross
    the hub-to-hub bridge.  The experiments layer spells the same instance
    as ``{"kind": "token_at", "vertex": v}``.
    """
    from repro.experiments import build_instance

    return build_instance({"kind": "token_at", "vertex": vertex}, n, seed)


def gossip_rounds_with_instance(
    algorithm: str, dynamic_graph, instance, seed: int, max_rounds: int
) -> int:
    result = run_gossip(
        algorithm, dynamic_graph, instance, seed=seed,
        max_rounds=max_rounds, trace_sample_every=1024,
    )
    assert result.solved, (
        f"{algorithm} did not solve within {max_rounds} rounds (seed={seed})"
    )
    return result.rounds


def relabeled(topo, seed: int, tau: int = 1) -> RelabelingAdversary:
    """The τ=1 adversary of choice: full rewiring, known α and Δ."""
    return RelabelingAdversary(topo, tau=tau, seed=seed)
