"""ABL-1/2 + design-choice ablations flagged in DESIGN.md.

* ABL-1 — the value of one advertising bit (b=0 vs b=1) across topology
  families; the paper's central qualitative claim.
* ABL-2 — the value of stability: SharedBit (τ=1-capable) vs CrowdedBin
  (needs τ=∞) as α varies.  Theory predicts CrowdedBin's advantage grows
  with α·n; at laptop sizes its polylog constants still lose, so the
  measured statement is the *trend* of the ratio, not a crossover.
* ABL-T — Transfer error ablation: running SharedBit with a sloppy
  Transfer (per-call error ~0.5) must still solve gossip, only slower —
  failed transfers waste otherwise-good rounds.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core.sharedbit import SharedBitConfig
from repro.graphs.topologies import cycle, double_star, expander, star

from _common import (
    gossip_rounds,
    median_rounds,
    relabeled,
    static_graph,
    write_report,
)


def _tag_bit_ablation():
    """ABL-1: BlindMatch vs SharedBit across families (τ=1, k=2)."""
    rows = []
    gaps = {}
    for topo, label in (
        (expander(16, 4, seed=1), "expander16"),
        (cycle(16), "cycle16"),
        (star(16), "star16"),
        (double_star(7), "double_star16"),
    ):
        b0 = median_rounds(
            lambda seed, topo=topo: gossip_rounds(
                "blindmatch", relabeled(topo, seed), n=topo.n, k=2,
                seed=seed, max_rounds=600_000,
            )
        )
        b1 = median_rounds(
            lambda seed, topo=topo: gossip_rounds(
                "sharedbit", relabeled(topo, seed), n=topo.n, k=2,
                seed=seed, max_rounds=600_000,
            )
        )
        gaps[label] = b0 / b1
        rows.append((label, topo.max_degree, b0, b1, f"{b0 / b1:.2f}"))
    table = render_table(
        headers=("topology", "Δ", "b=0 rounds", "b=1 rounds", "gap"),
        rows=rows,
        title="ABL-1: what one advertising bit buys (k=2, τ=1)",
    )
    return table, gaps


def _stability_ablation():
    """ABL-2: SharedBit vs CrowdedBin across α at n=16, k=2 (static)."""
    rows = []
    ratios = []
    for topo, label, alpha in (
        (path_like_cycle(), "cycle (α≈0.25)", 0.25),
        (expander(16, 4, seed=1), "expander (α≈0.5)", 0.5),
        (complete_16(), "complete (α=1)", 1.0),
    ):
        shared = median_rounds(
            lambda seed, topo=topo: gossip_rounds(
                "sharedbit", static_graph(topo), n=16, k=2, seed=seed,
                max_rounds=600_000,
            )
        )
        crowded = median_rounds(
            lambda seed, topo=topo: gossip_rounds(
                "crowdedbin", static_graph(topo), n=16, k=2, seed=seed,
                max_rounds=2_000_000,
            )
        )
        ratios.append(crowded / shared)
        rows.append((label, shared, crowded, f"{crowded / shared:.1f}"))
    table = render_table(
        headers=("topology", "SharedBit", "CrowdedBin", "ratio"),
        rows=rows,
        title="ABL-2: stability value across α (n=16, k=2, τ=∞)",
    )
    table += (
        "\nTheory: CrowdedBin/SharedBit ~ log⁶n/(α·n); the ratio should "
        "shrink as α grows."
    )
    return table, ratios


def path_like_cycle():
    return cycle(16)


def complete_16():
    from repro.graphs.topologies import complete

    return complete(16)


def _transfer_error_ablation():
    """ABL-T: sloppy Transfer still solves, tight Transfer is faster."""
    topo = star(16)
    rows = []
    outcomes = {}
    for exponent, label in ((2.0, "tight (eps=N^-2)"),
                            (0.05, "sloppy (eps≈0.87)")):
        config = SharedBitConfig(transfer_error_exponent=exponent)
        rounds = median_rounds(
            lambda seed, config=config: gossip_rounds(
                "sharedbit", relabeled(topo, seed), n=16, k=4, seed=seed,
                max_rounds=600_000, config=config,
            ),
            seeds=(11, 23, 37, 51, 67),
        )
        outcomes[label] = rounds
        rows.append((label, rounds))
    table = render_table(
        headers=("transfer setting", "median rounds"),
        rows=rows,
        title="ABL-T: Transfer error budget (SharedBit, dynamic star, k=4)",
    )
    return table, outcomes


def test_tag_bit_ablation(benchmark):
    table, gaps = _tag_bit_ablation()
    write_report("abl1_tag_bit", table)
    print("\n" + table)
    benchmark.extra_info.update(gaps)
    topo = star(16)
    benchmark.pedantic(
        lambda: gossip_rounds("sharedbit", relabeled(topo, 11), n=16, k=2,
                              seed=11, max_rounds=600_000),
        rounds=1, iterations=1,
    )
    # The bit always helps on the hub-bottleneck families.
    assert gaps["star16"] > 1.0
    assert gaps["double_star16"] > 1.0


def test_stability_ablation(benchmark):
    table, ratios = _stability_ablation()
    write_report("abl2_stability", table)
    print("\n" + table)
    benchmark.extra_info["ratios"] = ratios
    topo = expander(16, 4, seed=1)
    benchmark.pedantic(
        lambda: gossip_rounds("crowdedbin", static_graph(topo), n=16, k=2,
                              seed=11, max_rounds=2_000_000),
        rounds=1, iterations=1,
    )
    # The predicted trend: higher α ⇒ CrowdedBin closes the gap.
    assert ratios[-1] < ratios[0], f"ratio did not shrink with α: {ratios}"


def test_transfer_error_ablation(benchmark):
    table, outcomes = _transfer_error_ablation()
    write_report("ablT_transfer_error", table)
    print("\n" + table)
    benchmark.extra_info.update(outcomes)
    topo = star(16)
    benchmark.pedantic(
        lambda: gossip_rounds("sharedbit", relabeled(topo, 11), n=16, k=4,
                              seed=11, max_rounds=600_000),
        rounds=1, iterations=1,
    )
    tight = outcomes["tight (eps=N^-2)"]
    sloppy = outcomes["sloppy (eps≈0.87)"]
    # Sloppiness must not break correctness (both solved to get here) and
    # should not be *faster* than the tight setting.
    assert sloppy >= tight
