"""FIG1-R1: BlindMatch — O((1/α)·k·Δ²·log²n), b = 0, τ ≥ 1 (Theorem 4.1).

Two sweeps check the two load-bearing factors of the bound:

* Δ sweep on relabeled double stars (k = 1): rounds should grow roughly
  quadratically in Δ — the acceptance-lottery penalty unique to the
  bounded-connection model;
* k sweep on a relabeled expander: rounds should grow roughly linearly
  in k (the transfer routine moves tokens in label order, one per
  productive connection).
"""

import pytest

from repro.analysis.bounds import blindmatch_bound
from repro.analysis.fits import loglog_slope
from repro.analysis.tables import render_table
from repro.graphs.topologies import double_star, expander

from _common import (
    gossip_rounds,
    gossip_rounds_with_instance,
    instance_with_token_at,
    median_rounds,
    relabeled,
    static_graph,
    write_report,
)


def _delta_sweep():
    """Static double stars, token at one hub: the Ω(Δ²/√α) construction.

    The bridge edge fires only when one hub picks the other (≈ 1/Δ) *and*
    wins the acceptance lottery against ≈ Δ competing leaves (≈ 1/Δ), so
    crossing costs ≈ Δ² rounds — this is where the bounded-connection model
    departs from the classical telephone model.
    """
    rows = []
    deltas = []
    measured = []
    for points in (2, 4, 8, 16, 32):
        topo = double_star(points)
        delta = topo.max_degree

        def run_once(seed, topo=topo):
            instance = instance_with_token_at(topo.n, vertex=0, seed=seed)
            return gossip_rounds_with_instance(
                "blindmatch", static_graph(topo), instance, seed=seed,
                max_rounds=600_000,
            )

        rounds = median_rounds(run_once, seeds=(11, 23, 37, 51, 67))
        bound = blindmatch_bound(topo.n, 1, topo.alpha, delta)
        rows.append((topo.n, delta, rounds, f"{bound:.0f}",
                     f"{rounds / bound:.3f}"))
        deltas.append(delta)
        measured.append(rounds)
    slope = loglog_slope(deltas, measured)
    table = render_table(
        headers=("n", "Δ", "median rounds", "bound shape", "ratio"),
        rows=rows,
        title="BlindMatch Δ-sweep on static double stars (k=1, hub origin)",
    )
    return table + f"\nlog-log slope in Δ: {slope:.2f} (theory: ~2)", slope


def _k_sweep():
    topo = expander(16, 4, seed=1)
    rows = []
    ks = []
    measured = []
    for k in (1, 2, 4, 8):
        def run_once(seed, k=k):
            return gossip_rounds(
                "blindmatch", relabeled(topo, seed), n=16, k=k,
                seed=seed, max_rounds=400_000,
            )

        rounds = median_rounds(run_once)
        rows.append((16, k, rounds))
        ks.append(k)
        measured.append(rounds)
    slope = loglog_slope(ks, measured)
    table = render_table(
        headers=("n", "k", "median rounds"),
        rows=rows,
        title="BlindMatch k-sweep on a dynamic expander (τ=1)",
    )
    return table + f"\nlog-log slope in k: {slope:.2f} (theory: ~1)", slope


def test_blindmatch_delta_scaling(benchmark):
    table, slope = _delta_sweep()
    write_report("fig1_r1_blindmatch_delta", table)
    print("\n" + table)
    benchmark.extra_info["delta_slope"] = slope
    # Timing target: the smallest sweep point.
    topo = double_star(2)
    benchmark.pedantic(
        lambda: gossip_rounds_with_instance(
            "blindmatch", static_graph(topo),
            instance_with_token_at(topo.n, vertex=0, seed=11), seed=11,
            max_rounds=400_000,
        ),
        rounds=1,
        iterations=1,
    )
    # Super-linear growth in Δ: the acceptance lottery is visible.  The
    # theoretical exponent is 2; small sizes and log factors blur it, so
    # assert the direction, not the decimals.
    assert slope > 1.2, f"Δ-scaling too flat: slope={slope:.2f}"


def test_blindmatch_k_scaling(benchmark):
    table, slope = _k_sweep()
    write_report("fig1_r1_blindmatch_k", table)
    print("\n" + table)
    benchmark.extra_info["k_slope"] = slope
    topo = expander(16, 4, seed=1)
    benchmark.pedantic(
        lambda: gossip_rounds(
            "blindmatch", relabeled(topo, 11), n=16, k=2, seed=11,
            max_rounds=400_000,
        ),
        rounds=1,
        iterations=1,
    )
    assert 0.4 < slope < 1.8, f"k-scaling off: slope={slope:.2f}"
