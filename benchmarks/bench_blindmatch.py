"""FIG1-R1: BlindMatch — O((1/α)·k·Δ²·log²n), b = 0, τ ≥ 1 (Theorem 4.1).

Two declarative sweeps check the two load-bearing factors of the bound:

* Δ sweep on static double stars (k = 1): rounds should grow roughly
  quadratically in Δ — the acceptance-lottery penalty unique to the
  bounded-connection model;
* k sweep on a relabeled expander: rounds should grow roughly linearly
  in k (the transfer routine moves tokens in label order, one per
  productive connection).
"""

import pytest

from repro.analysis.bounds import blindmatch_bound
from repro.analysis.fits import loglog_slope
from repro.analysis.tables import render_table
from repro.experiments import SweepSpec, execute_run
from repro.graphs.topologies import double_star

from _common import run_bench_sweep, write_report

_DELTA_POINTS = (2, 4, 8, 16, 32)


def _delta_sweep():
    """Static double stars, token at one hub: the Ω(Δ²/√α) construction.

    The bridge edge fires only when one hub picks the other (≈ 1/Δ) *and*
    wins the acceptance lottery against ≈ Δ competing leaves (≈ 1/Δ), so
    crossing costs ≈ Δ² rounds — this is where the bounded-connection model
    departs from the classical telephone model.
    """
    spec = SweepSpec(
        name="fig1-r1-blindmatch-delta",
        base={
            "algorithm": "blindmatch",
            "graph": {"family": "double_star", "params": {"points": 2}},
            "dynamic": {"kind": "static"},
            "instance": {"kind": "token_at", "vertex": 0},
            "max_rounds": 600_000,
            "engine": {"trace_sample_every": 1024},
        },
        grid={"graph.params.points": list(_DELTA_POINTS)},
        seeds=(11, 23, 37, 51, 67),
    )
    result = run_bench_sweep(spec)
    rows, deltas, measured = [], [], []
    for points, summary in zip(_DELTA_POINTS, result.points):
        topo = double_star(points)
        delta = topo.max_degree
        rounds = summary.median_rounds
        bound = blindmatch_bound(topo.n, 1, topo.alpha, delta)
        rows.append((topo.n, delta, rounds, f"{bound:.0f}",
                     f"{rounds / bound:.3f}"))
        deltas.append(delta)
        measured.append(rounds)
    slope = loglog_slope(deltas, measured)
    table = render_table(
        headers=("n", "Δ", "median rounds", "bound shape", "ratio"),
        rows=rows,
        title="BlindMatch Δ-sweep on static double stars (k=1, hub origin)",
    )
    return table + f"\nlog-log slope in Δ: {slope:.2f} (theory: ~2)", slope


def _k_sweep():
    ks = (1, 2, 4, 8)
    spec = SweepSpec(
        name="fig1-r1-blindmatch-k",
        base={
            "algorithm": "blindmatch",
            "graph": {
                "family": "expander",
                "params": {"n": 16, "degree": 4, "seed": 1},
            },
            "dynamic": {"kind": "relabeling", "tau": 1},
            "instance": {"kind": "uniform", "k": 1},
            "max_rounds": 400_000,
            "engine": {"trace_sample_every": 1024},
        },
        grid={"instance.k": list(ks)},
    )
    result = run_bench_sweep(spec)
    rows, measured = [], []
    for k, summary in zip(ks, result.points):
        rounds = summary.median_rounds
        rows.append((16, k, rounds))
        measured.append(rounds)
    slope = loglog_slope(ks, measured)
    table = render_table(
        headers=("n", "k", "median rounds"),
        rows=rows,
        title="BlindMatch k-sweep on a dynamic expander (τ=1)",
    )
    return table + f"\nlog-log slope in k: {slope:.2f} (theory: ~1)", slope


def test_blindmatch_delta_scaling(benchmark):
    table, slope = _delta_sweep()
    write_report("fig1_r1_blindmatch_delta", table)
    print("\n" + table)
    benchmark.extra_info["delta_slope"] = slope
    # Timing target: the smallest sweep point, run through the layer.
    benchmark.pedantic(
        lambda: execute_run({
            "algorithm": "blindmatch",
            "graph": {"family": "double_star", "params": {"points": 2}},
            "dynamic": {"kind": "static"},
            "instance": {"kind": "token_at", "vertex": 0},
            "max_rounds": 400_000,
            "engine": {"trace_sample_every": 1024},
            "seed": 11,
        }),
        rounds=1,
        iterations=1,
    )
    # Super-linear growth in Δ: the acceptance lottery is visible.  The
    # theoretical exponent is 2; small sizes and log factors blur it, so
    # assert the direction, not the decimals.
    assert slope > 1.2, f"Δ-scaling too flat: slope={slope:.2f}"


def test_blindmatch_k_scaling(benchmark):
    table, slope = _k_sweep()
    write_report("fig1_r1_blindmatch_k", table)
    print("\n" + table)
    benchmark.extra_info["k_slope"] = slope
    benchmark.pedantic(
        lambda: execute_run({
            "algorithm": "blindmatch",
            "graph": {
                "family": "expander",
                "params": {"n": 16, "degree": 4, "seed": 1},
            },
            "dynamic": {"kind": "relabeling", "tau": 1},
            "instance": {"kind": "uniform", "k": 2},
            "max_rounds": 400_000,
            "engine": {"trace_sample_every": 1024},
            "seed": 11,
        }),
        rounds=1,
        iterations=1,
    )
    assert 0.4 < slope < 1.8, f"k-scaling off: slope={slope:.2f}"
