"""EXP-CLS: the bounded-acceptance model change, measured directly.

The paper's related-work section stresses that "most of the well-known
bounds in the classical model depend on [the] assumption of unbounded
connections".  This bench runs the *same* blind algorithm on the same
static double stars under both acceptance semantics:

* **bounded** (mobile telephone model): the hub accepts one of ≈ Δ
  competing proposals, so the bridge crossing pays the full Δ² price;
* **unbounded** (classical telephone model): every proposal lands, the
  acceptance lottery disappears, and only the 1/Δ selection probability
  remains — cost ≈ Δ.

The measured exponents separating the two curves are the paper's
motivation quantified.
"""

import statistics

import pytest

from repro.analysis.fits import loglog_slope
from repro.analysis.tables import render_table
from repro.core.runner import build_nodes
from repro.graphs.topologies import double_star
from repro.sim.channel import ChannelPolicy
from repro.sim.engine import Simulation
from repro.sim.termination import all_hold_tokens

from _common import DEFAULT_SEEDS, instance_with_token_at, static_graph, write_report


def blind_rounds(points: int, seed: int, acceptance: str) -> int:
    topo = double_star(points)
    instance = instance_with_token_at(topo.n, vertex=0, seed=seed)
    nodes = build_nodes("blindmatch", instance, seed=seed)
    sim = Simulation(
        static_graph(topo),
        nodes,
        b=0,
        seed=seed,
        channel_policy=ChannelPolicy.for_upper_n(instance.upper_n),
        acceptance=acceptance,
        trace_sample_every=1024,
    )
    result = sim.run(
        max_rounds=2_000_000,
        termination=all_hold_tokens(instance.token_ids),
    )
    assert result.terminated
    return result.rounds


def _sweep():
    seeds = DEFAULT_SEEDS + (51, 67)
    rows, deltas, bounded, unbounded = [], [], [], []
    for points in (2, 4, 8, 16):
        topo = double_star(points)
        b_rounds = statistics.median(
            blind_rounds(points, s, "uniform") for s in seeds
        )
        u_rounds = statistics.median(
            blind_rounds(points, s, "unbounded") for s in seeds
        )
        rows.append((topo.n, topo.max_degree, b_rounds, u_rounds,
                     f"{b_rounds / u_rounds:.1f}"))
        deltas.append(topo.max_degree)
        bounded.append(b_rounds)
        unbounded.append(u_rounds)
    bounded_slope = loglog_slope(deltas, bounded)
    unbounded_slope = loglog_slope(deltas, unbounded)
    table = render_table(
        headers=("n", "Δ", "bounded rounds", "unbounded rounds", "gap"),
        rows=rows,
        title=(
            "Blind gossip on static double stars: mobile telephone "
            "(bounded) vs classical (unbounded) acceptance"
        ),
    )
    table += (
        f"\nΔ-exponents: bounded → {bounded_slope:.2f} (theory ~2), "
        f"unbounded → {unbounded_slope:.2f} (theory ~1)"
    )
    return table, bounded_slope, unbounded_slope


def test_bounded_acceptance_is_the_expensive_part(benchmark):
    table, bounded_slope, unbounded_slope = _sweep()
    write_report("expcls_classical_model", table)
    print("\n" + table)
    benchmark.extra_info["bounded_slope"] = bounded_slope
    benchmark.extra_info["unbounded_slope"] = unbounded_slope
    benchmark.pedantic(
        lambda: blind_rounds(4, 11, "unbounded"), rounds=1, iterations=1
    )
    assert bounded_slope > unbounded_slope + 0.3, (
        f"bounded={bounded_slope:.2f}, unbounded={unbounded_slope:.2f}"
    )
