"""EXP-CND: spreading tracks vertex expansion, not conductance.

The paper's related work (quoting its own [11]): "efficient rumor
spreading with respect to conductance is not possible in the mobile
telephone model, but efficient spreading with respect to vertex expansion
is possible."  Stars are the separating family: conductance stays ≈ 1 as
n grows while α = Θ(1/n) vanishes — and the hub can serve only one leaf
per round, so PPUSH needs Θ(n) rounds.

The test: sweep star sizes, fit PPUSH time against 1/φ(G) (flat — cannot
explain the growth) and against 1/α (grows linearly — explains it).
"""

import statistics

import pytest

from repro.analysis.fits import loglog_slope
from repro.analysis.tables import render_table
from repro.graphs.metrics import conductance_estimate
from repro.graphs.topologies import star

from _common import DEFAULT_SEEDS, write_report
from bench_ppush import ppush_rounds


def _sweep():
    rows, ns, times, alphas, phis = [], [], [], [], []
    for n in (8, 16, 32, 64):
        topo = star(n)
        rounds = statistics.median(
            ppush_rounds(topo, seed) for seed in DEFAULT_SEEDS
        )
        phi = conductance_estimate(topo.graph, seed=1)
        rows.append(
            (n, f"{topo.alpha:.4f}", f"{phi:.3f}", rounds)
        )
        ns.append(n)
        times.append(rounds)
        alphas.append(topo.alpha)
        phis.append(phi)
    time_slope_n = loglog_slope(ns, times)
    inv_alpha = [1 / a for a in alphas]
    time_vs_inv_alpha = loglog_slope(inv_alpha, times)
    table = render_table(
        headers=("n", "alpha", "conductance", "PPUSH rounds"),
        rows=rows,
        title="PPUSH on stars: conductance flat, alpha vanishing",
    )
    table += (
        f"\nslope of rounds vs n: {time_slope_n:.2f}; "
        f"vs 1/α: {time_vs_inv_alpha:.2f} (≈1 ⇒ expansion explains it); "
        f"conductance spans {min(phis):.2f}–{max(phis):.2f} (flat ⇒ cannot)"
    )
    return table, time_vs_inv_alpha, phis


def test_expansion_not_conductance_governs_spreading(benchmark):
    table, time_vs_inv_alpha, phis = _sweep()
    write_report("expcnd_conductance", table)
    print("\n" + table)
    benchmark.extra_info["time_vs_inv_alpha_slope"] = time_vs_inv_alpha
    benchmark.pedantic(
        lambda: ppush_rounds(star(32), 11), rounds=1, iterations=1
    )
    # Conductance is flat across the sweep...
    assert max(phis) < 2.5 * min(phis)
    # ...while time scales ~linearly with 1/α.
    assert 0.6 < time_vs_inv_alpha < 1.4, (
        f"time vs 1/alpha slope {time_vs_inv_alpha:.2f}"
    )
