"""FIG1-R4: CrowdedBin — O((k/α)·log⁶n), b = 1, τ = ∞ (Theorem 6.10).

The bound's two live factors:

* linear in k at fixed topology (each phase services every token in its
  own bin slot, and phase length scales with the k-estimate);
* inverse in α: the same instance on a low-α cycle versus a constant-α
  expander of equal size pays the expansion price.

All runs use the ``practical()`` preset (β=2, γ=2) so sweeps finish on a
laptop; EXPERIMENTS.md records the preset beside every number.
"""

import pytest

from repro.analysis.bounds import crowdedbin_bound
from repro.analysis.fits import loglog_slope
from repro.analysis.tables import render_table
from repro.graphs.topologies import cycle, expander

from _common import gossip_rounds, median_rounds, static_graph, write_report

MAX_ROUNDS = 2_000_000


def _k_sweep():
    """k-sweep with γ=1 so crowding actually drives estimate upgrades.

    The k factor of Theorem 6.10 enters through the target instance
    (k_i ≤ 2k) and its phase length.  With a roomy γ, small-k runs all
    finish inside instance 1 and the sweep flattens; γ=1 (crowding
    threshold log N) makes the estimate — and hence the phase length —
    track k the way the analysis describes.
    """
    from repro.core.crowdedbin import CrowdedBinConfig

    config = CrowdedBinConfig(beta=3, gamma=1)
    topo = expander(32, 4, seed=1)
    rows, ks, measured = [], [], []
    for k in (2, 4, 8, 16):
        def run_once(seed, k=k):
            return gossip_rounds(
                "crowdedbin", static_graph(topo), n=32, k=k, seed=seed,
                max_rounds=MAX_ROUNDS, config=config,
            )

        rounds = median_rounds(run_once)
        bound = crowdedbin_bound(32, k, alpha=0.5)
        rows.append((32, k, rounds, f"{bound:.0f}", f"{rounds / bound:.3f}"))
        ks.append(k)
        measured.append(rounds)
    slope = loglog_slope(ks, measured)
    table = render_table(
        headers=("n", "k", "median rounds", "bound shape", "ratio"),
        rows=rows,
        title="CrowdedBin k-sweep on a static expander (beta=3, gamma=1)",
    )
    return table + f"\nlog-log slope in k: {slope:.2f} (theory: ~1)", slope


def _alpha_comparison():
    """Equal n and k; α differs by ~Θ(n) between expander and cycle."""
    rows = []
    outcomes = {}
    for topo, label, alpha in (
        (expander(16, 4, seed=1), "expander", 0.5),
        (cycle(16), "cycle", 2 / 8),
    ):
        def run_once(seed, topo=topo):
            return gossip_rounds(
                "crowdedbin", static_graph(topo), n=16, k=2, seed=seed,
                max_rounds=MAX_ROUNDS,
            )

        rounds = median_rounds(run_once)
        outcomes[label] = rounds
        rows.append((label, f"{alpha:.3f}", rounds))
    table = render_table(
        headers=("topology", "alpha", "median rounds"),
        rows=rows,
        title="CrowdedBin α-dependence at n=16, k=2 (practical preset)",
    )
    return table, outcomes


def test_crowdedbin_k_scaling(benchmark):
    table, slope = _k_sweep()
    write_report("fig1_r4_crowdedbin_k", table)
    print("\n" + table)
    benchmark.extra_info["k_slope"] = slope
    topo = expander(16, 4, seed=1)
    benchmark.pedantic(
        lambda: gossip_rounds("crowdedbin", static_graph(topo), n=16, k=2,
                              seed=11, max_rounds=MAX_ROUNDS),
        rounds=1, iterations=1,
    )
    # Phase lengths quantize round counts (a run finishing mid-phase still
    # consumed whole phases of each estimate), so the slope is coarse.
    assert slope > 0.2, f"k-scaling too flat: slope={slope:.2f}"


def test_crowdedbin_alpha_dependence(benchmark):
    table, outcomes = _alpha_comparison()
    write_report("fig1_r4_crowdedbin_alpha", table)
    print("\n" + table)
    benchmark.extra_info.update(outcomes)
    topo = cycle(16)
    benchmark.pedantic(
        lambda: gossip_rounds("crowdedbin", static_graph(topo), n=16, k=2,
                              seed=11, max_rounds=MAX_ROUNDS),
        rounds=1, iterations=1,
    )
    assert outcomes["cycle"] > outcomes["expander"], (
        "low-α cycle should be slower than the expander"
    )
