"""DEGRADED-LIVE: kill-k-of-n throughput and spread on a live cluster.

Graceful-degradation pricing for the chaos-hardened net layer: boot a
real loopback cluster of ``n`` socket-backed peers, SIGKILL-style
``kill()`` a fixed fraction of them at round 3, and let the coordinator
finish a fixed round budget over the surviving quorum.  Each cell
reports

* **rounds/s** — wall-clock round throughput *including* the retry and
  suspect-probing overhead the dead peers induce (the honest price of
  degradation, not a clean-path number);
* **spread** — the fraction of *surviving* peers holding the full token
  set when the budget expires (does gossip still make progress across
  the hole the failures tore in the graph?);
* the failure-column totals (suspects, retries, timeouts,
  degraded rounds) from :class:`~repro.net.coordinator.NetRunReport`.

Kill fractions 0 / ¼ / ½ at n = 8, 16, 32 (``--quick`` stops at 16).
The ``kill=0`` row is the control: same cluster, same budget, no chaos —
the overhead columns must stay at zero and the rounds/s gap between it
and the kill rows *is* the degradation cost.

Determinism note: the gossip schedule is seeded and reproducible; the
wall-clock numbers are not (they price real sockets, real thread
teardown, and real ECONNREFUSED round trips).

Run directly for the perf ledger / EXPERIMENTS.md table::

    python benchmarks/bench_degraded.py           # full, writes report
    python benchmarks/bench_degraded.py --quick   # n <= 16 (CI smoke)
"""

from __future__ import annotations

import argparse
import time

from _common import record_bench, write_report

from repro.core.problem import uniform_instance
from repro.graphs.dynamic import StaticDynamicGraph
from repro.graphs.topologies import expander
from repro.net import Coordinator, RetryPolicy

#: Dead loopback ports refuse instantly, so short backoffs keep the
#: bench honest about *coordination* overhead without sleeping through
#: the budget waiting on peers that will never answer.
BENCH_RETRY = RetryPolicy(
    attempts=2, base_delay=0.005, factor=2.0, max_delay=0.02, jitter=0.2
)

K_TOKENS = 3
KILL_AT = 3
MAX_ROUNDS = 16
SIZES = (8, 16, 32)


def run_cell(n: int, killed: int, seed: int = 5) -> dict:
    """One live cluster: kill ``killed`` peers at round KILL_AT."""
    graph = StaticDynamicGraph(expander(n=n, degree=4, seed=2))
    instance = uniform_instance(n=n, k=K_TOKENS, seed=11)
    coord = Coordinator(
        "sharedbit",
        graph,
        instance,
        seed=seed,
        retry=BENCH_RETRY,
        request_timeout=2.0,
        termination_every=0,
    )
    victims = list(range(0, 2 * killed, 2))  # spread kills across the ring
    original = coord.run_round

    def chaotic_round(rnd):
        if rnd == KILL_AT:
            for vertex in victims:
                coord.servers[vertex].kill()
        original(rnd)

    coord.run_round = chaotic_round
    started = time.perf_counter()
    with coord:
        report = coord.run(max_rounds=MAX_ROUNDS)
    elapsed = time.perf_counter() - started

    # A token whose every holder was killed before it spread is *lost*:
    # no surviving peer can ever learn it.  Spread is measured against
    # the tokens that remained spreadable, so it answers "did gossip
    # finish distributing what survived?" and lost_tokens separately
    # answers "how much information did the failures destroy?".
    survivors = [
        uid for uid in report.final_tokens if uid not in report.suspects
    ]
    alive = set().union(
        *(set(report.final_tokens[uid]) for uid in survivors)
    ) if survivors else set()
    lost = len(set(instance.token_ids) - alive)
    complete = sum(
        1 for uid in survivors if set(report.final_tokens[uid]) >= alive
    )
    return {
        "n": n,
        "killed": killed,
        "rounds": report.rounds,
        "elapsed_s": round(elapsed, 3),
        "rounds_per_s": round(report.rounds / elapsed, 1),
        "survivor_spread": round(complete / len(survivors), 3)
        if survivors else 0.0,
        "lost_tokens": lost,
        "suspects": len(report.suspects),
        "retries": report.retries,
        "timeouts": report.timeouts,
        "degraded_rounds": report.degraded_rounds,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="n <= 16 only (CI smoke); skips the report files",
    )
    parser.add_argument(
        "--allow-dirty", action="store_true",
        help="record BENCH_engine.json even from a dirty working tree",
    )
    args = parser.parse_args()
    sizes = tuple(n for n in SIZES if n <= 16) if args.quick else SIZES

    rows = []
    for n in sizes:
        for killed in (0, n // 4, n // 2):
            cell = run_cell(n, killed)
            rows.append(cell)
            print(
                f"n={n:3d} kill={killed:2d}: "
                f"{cell['rounds_per_s']:7.1f} rounds/s  "
                f"spread={cell['survivor_spread']:.2f}  "
                f"lost={cell['lost_tokens']}  "
                f"suspects={cell['suspects']:2d}  "
                f"retries={cell['retries']:3d}  "
                f"degraded_rounds={cell['degraded_rounds']:2d}"
            )
            # The control row must be genuinely clean, and every kill
            # must be noticed (suspected) rather than silently hung on.
            if killed == 0:
                assert cell["suspects"] == 0 and cell["retries"] == 0, cell
            else:
                assert cell["suspects"] == killed, cell
                assert cell["rounds"] == MAX_ROUNDS, cell

    if not args.quick:
        lines = [
            "DEGRADED-LIVE: kill-k-of-n on a live loopback cluster "
            f"(sharedbit, k={K_TOKENS}, expander degree 4, "
            f"kill at round {KILL_AT}, budget {MAX_ROUNDS} rounds)",
            "",
            f"{'n':>4} {'killed':>6} {'rounds/s':>9} {'spread':>7} "
            f"{'lost':>5} {'suspects':>8} {'retries':>8} "
            f"{'timeouts':>8} {'degraded':>9}",
        ]
        for cell in rows:
            lines.append(
                f"{cell['n']:>4} {cell['killed']:>6} "
                f"{cell['rounds_per_s']:>9.1f} "
                f"{cell['survivor_spread']:>7.2f} "
                f"{cell['lost_tokens']:>5} "
                f"{cell['suspects']:>8} {cell['retries']:>8} "
                f"{cell['timeouts']:>8} {cell['degraded_rounds']:>9}"
            )
        lines.append("")
        lines.append(
            "spread = fraction of surviving peers holding every token "
            "that remained spreadable; lost = tokens destroyed because "
            "all holders were killed before spreading; rounds/s "
            "includes retry and suspect-probe overhead."
        )
        write_report("degraded_live", "\n".join(lines))
        record_bench(
            "net:degraded",
            {
                "kind": "degraded-live",
                "cells": {
                    f"n={c['n']},kill={c['killed']}": {
                        key: c[key]
                        for key in (
                            "rounds_per_s", "survivor_spread",
                            "lost_tokens", "suspects", "retries",
                            "timeouts", "degraded_rounds",
                        )
                    }
                    for c in rows
                },
            },
            allow_dirty=args.allow_dirty,
        )
    print("degraded-live bench: all cells completed without hanging")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
