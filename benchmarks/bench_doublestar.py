"""LB-1: the Ω(Δ²/√α) double-star lower bound for blind strategies (§1, [22]).

The introduction's intuition made measurable.  A rumor starts at one hub
of a double star and must cross the bridge:

* with b = 0 (BlindMatch) the bridge fires with probability ≈ 1/Δ², so
  measured crossing cost grows super-linearly in Δ;
* with b = 1 (PPUSH) the informed hub *sees* which neighbors are
  uninformed and the uninformed hub receives no competing proposals from
  its own informed leaves — the lottery disappears and spreading stays
  near-linear in Δ (it still must serve Δ leaves one connection at a
  time).

This is the cleanest head-to-head for why tags matter in the
bounded-connection model.
"""

import statistics

import pytest

from repro.analysis.fits import loglog_slope
from repro.analysis.tables import render_table
from repro.graphs.topologies import double_star

from _common import (
    DEFAULT_SEEDS,
    gossip_rounds_with_instance,
    instance_with_token_at,
    static_graph,
    write_report,
)
from bench_ppush import ppush_rounds


def blind_rounds(points: int, seed: int) -> int:
    topo = double_star(points)
    instance = instance_with_token_at(topo.n, vertex=0, seed=seed)
    return gossip_rounds_with_instance(
        "blindmatch", static_graph(topo), instance, seed=seed,
        max_rounds=2_000_000,
    )


def ppush_on_doublestar(points: int, seed: int) -> int:
    return ppush_rounds(double_star(points), seed, max_rounds=200_000)


def _sweep():
    seeds = DEFAULT_SEEDS + (51, 67)
    rows = []
    deltas, blind, tagged = [], [], []
    for points in (2, 4, 8, 16):
        topo = double_star(points)
        delta = topo.max_degree
        b0 = statistics.median(blind_rounds(points, s) for s in seeds)
        b1 = statistics.median(ppush_on_doublestar(points, s) for s in seeds)
        rows.append((topo.n, delta, b0, b1, f"{b0 / b1:.1f}"))
        deltas.append(delta)
        blind.append(b0)
        tagged.append(b1)
    blind_slope = loglog_slope(deltas, blind)
    tagged_slope = loglog_slope(deltas, tagged)
    table = render_table(
        headers=("n", "Δ", "b=0 rounds", "b=1 rounds", "gap"),
        rows=rows,
        title="Double-star crossing: blind (b=0) vs tagged (b=1), rumor at hub",
    )
    table += (
        f"\nlog-log slope in Δ: b=0 → {blind_slope:.2f} (theory ~2), "
        f"b=1 → {tagged_slope:.2f} (theory ~1)"
    )
    return table, blind_slope, tagged_slope, rows


def test_doublestar_lower_bound_gap(benchmark):
    table, blind_slope, tagged_slope, rows = _sweep()
    write_report("lb1_doublestar", table)
    print("\n" + table)
    benchmark.extra_info["blind_slope"] = blind_slope
    benchmark.extra_info["tagged_slope"] = tagged_slope
    benchmark.pedantic(lambda: blind_rounds(4, 11), rounds=1, iterations=1)
    # The blind strategy's Δ-exponent must exceed the tagged one's, and
    # the absolute gap must widen with Δ.
    assert blind_slope > tagged_slope + 0.3, (
        f"blind={blind_slope:.2f}, tagged={tagged_slope:.2f}"
    )
    first_gap = rows[0][2] / rows[0][3]
    last_gap = rows[-1][2] / rows[-1][3]
    assert last_gap > first_gap, "gap should widen with Δ"
