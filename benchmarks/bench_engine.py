"""ENG-HOT: engine round-throughput and the neighbor-view skeleton cache.

``Simulation.step`` used to rebuild every node's ``NeighborView`` tuple
from scratch each round; :meth:`_refresh_adjacency` now caches per-epoch
view skeletons and the engine only replaces views whose tag actually
changed (for b = 0 protocols on a stable epoch that is *zero* churn —
the cached tuples are passed to ``propose`` verbatim).  Unsampled rounds
also skip the RoundRecord/gauge dict churn via ``Trace.observe``.

This bench pins both properties down:

* a wall-clock number (rounds/second on the blind static-star hot path,
  where the skeleton cache removes all per-round view allocation) that
  pytest-benchmark tracks across commits — on the reference container the
  overhaul measured ~2.3x over the seed engine (2.9k -> 6.8k rounds/s);
* a correctness-of-the-optimization assertion: across rounds of one epoch
  with constant tags, ``propose`` must receive the *same tuple object*.
"""

import pytest

from repro.core.problem import uniform_instance
from repro.core.runner import build_nodes
from repro.sim.channel import ChannelPolicy
from repro.sim.engine import Simulation
from repro.sim.termination import all_hold_tokens
from repro.graphs.dynamic import StaticDynamicGraph
from repro.graphs.topologies import star

from _common import gossip_rounds, static_graph, write_report

N = 64


def _blind_static_run(seed: int) -> int:
    return gossip_rounds(
        "blindmatch", static_graph(star(N)), n=N, k=2, seed=seed,
        max_rounds=400_000,
    )


class _ViewProbe:
    """Wrap a node's propose to capture the tuples the engine passes in."""

    def __init__(self, node):
        self.node = node
        self.seen = []
        self._inner = node.propose
        node.propose = self._capture

    def _capture(self, round_index, neighbors):
        self.seen.append(neighbors)
        return self._inner(round_index, neighbors)


def test_engine_round_throughput(benchmark):
    rounds = benchmark.pedantic(
        lambda: _blind_static_run(11), rounds=1, iterations=3
    )
    note = (
        f"ENG-HOT: blind static star n={N}, k=2: {rounds} rounds/run; "
        "wall time tracked by pytest-benchmark.  Per-epoch NeighborView "
        "skeletons mean b=0 rounds allocate no view objects at all "
        "(seed engine rebuilt every tuple every round)."
    )
    write_report("eng_hot_engine", note)
    benchmark.extra_info["rounds_per_run"] = rounds


def test_skeleton_cache_reuses_view_tuples():
    """Benchmark-visible assertion: stable epoch + stable tags => the
    engine hands ``propose`` the cached tuple, not a fresh rebuild."""
    instance = uniform_instance(n=8, k=2, seed=3)
    nodes = build_nodes("blindmatch", instance, seed=3)
    probe = _ViewProbe(nodes[0])
    sim = Simulation(
        StaticDynamicGraph(star(8)),
        nodes,
        b=0,
        seed=3,
        channel_policy=ChannelPolicy.for_upper_n(instance.upper_n),
    )
    sim.run(max_rounds=5, termination=all_hold_tokens(instance.token_ids))
    assert len(probe.seen) >= 2
    first = probe.seen[0]
    assert all(views is first for views in probe.seen), (
        "expected the per-epoch skeleton tuple to be reused verbatim for "
        "b=0 on a static graph"
    )
