"""ENG-HOT / ENG-ARRAY: engine round-throughput and the array fast path.

Two engine generations are tracked here:

* **ENG-HOT** (PR 1): per-epoch NeighborView skeleton cache — ``propose``
  receives the *same tuple object* across rounds of an epoch when tags
  are stable (asserted below), ~2.3x over the seed engine.
* **ENG-ARRAY** (this PR): the flat-array fast path — per-epoch CSR
  adjacency snapshots (``DynamicGraph.csr_at``), bulk
  ``advertise_all``/``propose_all`` protocol hooks, and the array
  proposal resolver.  The contract is byte-identical traces against the
  object path (:func:`check_fastpath_divergence` verifies it end to end;
  tests/test_fastpath.py is the full matrix), with throughput measured by
  :func:`run_engine_bench` and recorded in the repo-root
  ``BENCH_engine.json``.

Where the speedup lives: SharedBit's scan stage re-derives each token's
shared PRF bit per (node, token) pair on the object path; the bulk hook
derives each distinct token's bit once per round and shares it — >=3x at
n = 2000 (the acceptance bar), growing with n·k.  BlindMatch is bounded
by its n private Mersenne draws per round (byte-identity forbids
batching those), so its gain is the engine overhead only (~1.5x).

Run directly for the CI gate / perf ledger::

    python benchmarks/bench_engine.py --quick   # divergence gate only
    python benchmarks/bench_engine.py           # + throughput, BENCH_engine.json
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.asynchrony import AsyncSimulation, UniformJitter
from repro.core.problem import uniform_instance
from repro.core.runner import build_nodes
from repro.experiments.fastpath import (
    CHECK_FAULTS,
    check_async_determinism,
    check_async_sync_identity,
    check_fastpath_divergence,
    check_null_fault_identity,
)
from repro.graphs.dynamic import StaticDynamicGraph
from repro.graphs.topologies import star
from repro.registry import ALGORITHM_REGISTRY
from repro.sim.channel import ChannelPolicy
from repro.sim.engine import Simulation
from repro.sim.faults import SleepCycle
from repro.sim.termination import all_hold_tokens

from _common import gossip_rounds, record_bench, static_graph, write_report

N = 64


def _blind_static_run(seed: int) -> int:
    return gossip_rounds(
        "blindmatch", static_graph(star(N)), n=N, k=2, seed=seed,
        max_rounds=400_000,
    )


# --------------------------------------------------------------------------
# Differential gate: the array path must not diverge from the reference.
# One shared implementation (repro.experiments.fastpath) backs this gate,
# tests/test_fastpath.py and CI's bench-smoke job alike.
# --------------------------------------------------------------------------
# Throughput: object vs array rounds/s on the hot paths.

def measure_throughput(algorithm: str, n: int, k: int, rounds: int,
                       engine_mode: str, seed: int = 11,
                       fault=None) -> float:
    """rounds/s for a fixed-round run on the static-star hot path."""
    instance = uniform_instance(n=n, k=k, seed=seed)
    nodes = build_nodes(algorithm, instance, seed=seed)
    defn = ALGORITHM_REGISTRY.get(algorithm)
    sim = Simulation(
        StaticDynamicGraph(star(n)), nodes,
        b=defn.resolve_tag_length(defn.make_config()), seed=seed,
        channel_policy=ChannelPolicy.for_upper_n(instance.upper_n),
        trace_sample_every=1024, engine_mode=engine_mode,
        faults=fault(n, seed) if fault is not None else None,
    )
    started = time.perf_counter()
    sim.run(max_rounds=rounds)
    return rounds / (time.perf_counter() - started)


def _sleep_fault(n: int, seed: int) -> SleepCycle:
    """The faulty throughput configuration: a 6-of-8 duty cycle, masks
    changing every round (the masked stage-1/2 paths, not the cached
    no-fault fast path)."""
    return SleepCycle(n=n, seed=seed, period=8, duty=6)


def measure_async_throughput(algorithm: str, n: int, k: int, rounds: int,
                             seed: int = 11,
                             jitter: float = 0.5) -> float:
    """rounds/s for a fixed-window async run (jittered, event engine).

    The asynchronous twin of :func:`measure_throughput`: same protocols,
    same topology, same round budget, but every round window is one full
    sweep of per-event cohorts through the event queue — the generic
    per-node path, since jittered cohorts are partial by construction.
    """
    instance = uniform_instance(n=n, k=k, seed=seed)
    nodes = build_nodes(algorithm, instance, seed=seed)
    defn = ALGORITHM_REGISTRY.get(algorithm)
    sim = AsyncSimulation(
        StaticDynamicGraph(star(n)), nodes,
        b=defn.resolve_tag_length(defn.make_config()), seed=seed,
        channel_policy=ChannelPolicy.for_upper_n(instance.upper_n),
        trace_sample_every=1024,
        timing=UniformJitter(n=n, seed=seed, jitter=jitter),
    )
    started = time.perf_counter()
    sim.run(max_rounds=rounds)
    return rounds / (time.perf_counter() - started)


def run_engine_bench(n: int = 2000) -> dict:
    """Measure object vs array throughput and update BENCH_engine.json."""
    cases = {"sharedbit": 400, "blindmatch": 1000}
    results: dict = {"n": n, "kind": "engine-throughput",
                     "topology": "static star", "k": 2}
    for algorithm, rounds in cases.items():
        object_rps = measure_throughput(algorithm, n, 2, rounds, "object")
        array_rps = measure_throughput(algorithm, n, 2, rounds, "array")
        results[algorithm] = {
            "rounds": rounds,
            "object_rounds_per_s": round(object_rps, 1),
            "array_rounds_per_s": round(array_rps, 1),
            "speedup": round(array_rps / object_rps, 2),
        }
    # The faulty configuration: the array path must keep its advantage
    # when every round runs the masked stages (sleep duty cycle).
    faulty_rounds = 200
    object_rps = measure_throughput("sharedbit", n, 2, faulty_rounds,
                                    "object", fault=_sleep_fault)
    array_rps = measure_throughput("sharedbit", n, 2, faulty_rounds,
                                   "array", fault=_sleep_fault)
    results["sharedbit_sleep_6of8"] = {
        "rounds": faulty_rounds,
        "fault": "sleep(period=8, duty=6)",
        "object_rounds_per_s": round(object_rps, 1),
        "array_rounds_per_s": round(array_rps, 1),
        "speedup": round(array_rps / object_rps, 2),
    }
    # The async-vs-sync row: the event engine's cost over the round
    # engine on the same per-node (object) semantics.  Partial cohorts
    # forbid bulk hooks, so the honest comparison is against the object
    # path; the ratio prices what unsynchronized clocks cost per round.
    async_rounds = 200
    sync_rps = measure_throughput("sharedbit", n, 2, async_rounds, "object")
    async_rps = measure_async_throughput("sharedbit", n, 2, async_rounds)
    results["sharedbit_async_jitter"] = {
        "rounds": async_rounds,
        "timing": "jitter(0.5)",
        "sync_object_rounds_per_s": round(sync_rps, 1),
        "async_event_rounds_per_s": round(async_rps, 1),
        "async_over_sync": round(async_rps / sync_rps, 2),
    }
    record_bench("engine:fastpath", results)
    return results


# --------------------------------------------------------------------------
# pytest entry points (wall clock via pytest-benchmark, plus assertions).

def test_engine_round_throughput(benchmark):
    rounds = benchmark.pedantic(
        lambda: _blind_static_run(11), rounds=1, iterations=3
    )
    note = (
        f"ENG-HOT: blind static star n={N}, k=2: {rounds} rounds/run; "
        "wall time tracked by pytest-benchmark.  Per-epoch NeighborView "
        "skeletons mean b=0 rounds allocate no view objects at all "
        "(seed engine rebuilt every tuple every round).  ENG-ARRAY: see "
        "BENCH_engine.json for object vs array rounds/s."
    )
    write_report("eng_hot_engine", note)
    benchmark.extra_info["rounds_per_run"] = rounds


def test_fastpath_no_divergence_quick():
    """The CI gate's in-suite twin: fast path == reference, trace for
    trace, on a small matrix."""
    assert check_fastpath_divergence(n=16, rounds=25) == []


class _ViewProbe:
    """Wrap a node's propose to capture the tuples the engine passes in."""

    def __init__(self, node):
        self.node = node
        self.seen = []
        self._inner = node.propose
        node.propose = self._capture

    def _capture(self, round_index, neighbors):
        self.seen.append(neighbors)
        return self._inner(round_index, neighbors)


def test_skeleton_cache_reuses_view_tuples():
    """Benchmark-visible assertion: stable epoch + stable tags => the
    engine hands ``propose`` the cached tuple, not a fresh rebuild."""
    instance = uniform_instance(n=8, k=2, seed=3)
    nodes = build_nodes("blindmatch", instance, seed=3)
    probe = _ViewProbe(nodes[0])
    sim = Simulation(
        StaticDynamicGraph(star(8)),
        nodes,
        b=0,
        seed=3,
        channel_policy=ChannelPolicy.for_upper_n(instance.upper_n),
        engine_mode="object",
    )
    sim.run(max_rounds=5, termination=all_hold_tokens(instance.token_ids))
    assert len(probe.seen) >= 2
    first = probe.seen[0]
    assert all(views is first for views in probe.seen), (
        "expected the per-epoch skeleton tuple to be reused verbatim for "
        "b=0 on a static graph"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: small divergence matrix + reduced-round "
             "throughput probe; skips the >=3x assertion and does not "
             "touch BENCH_engine.json",
    )
    parser.add_argument("--n", type=int, default=2000,
                        help="population size for the throughput bench")
    args = parser.parse_args(argv)

    print("checking fast-path vs reference traces ...", flush=True)
    failures = check_fastpath_divergence(
        n=16 if args.quick else 24, rounds=25 if args.quick else 40
    )
    # Fault-regime gate: one faulty configuration through the full
    # (dynamics x acceptance) matrix per fault kind, plus the null-model
    # identity (NoFaults must be free).
    failures += check_fastpath_divergence(
        n=16 if args.quick else 24, rounds=25 if args.quick else 40,
        algorithms=("sharedbit",),
        faults=tuple(f for f in CHECK_FAULTS if f != "none"),
    )
    failures += check_null_fault_identity(
        n=16 if args.quick else 24, rounds=25 if args.quick else 40
    )
    # ASYNC axis gate: the event-driven engine under synchronous timing
    # must reproduce the round engine event for event on both paths, and
    # jittered timing models must be seed-deterministic.
    failures += check_async_sync_identity(
        n=16 if args.quick else 24, rounds=25 if args.quick else 40
    )
    failures += check_async_determinism(
        n=16 if args.quick else 24, rounds=25 if args.quick else 40
    )
    for failure in failures:
        print(f"DIVERGENCE: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("fast path byte-identical to reference "
          "(3 algorithms x 3 dynamics x 4 acceptance rules, plus "
          "sleep/churn/lossy fault regimes, the NoFaults identity, "
          "the ASYNC synchronous-timing identity, and async "
          "seed-determinism)")

    if args.quick:
        probe = measure_throughput("sharedbit", 256, 2, 60, "array")
        faulty_probe = measure_throughput("sharedbit", 256, 2, 60, "array",
                                          fault=_sleep_fault)
        print(f"throughput probe ok ({probe:.0f} rounds/s clean, "
              f"{faulty_probe:.0f} rounds/s under sleep(6/8), "
              "sharedbit array, n=256)")
        return 0

    results = run_engine_bench(n=args.n)
    for case in ("sharedbit", "blindmatch", "sharedbit_sleep_6of8"):
        row = results[case]
        print(
            f"{case:22s} n={args.n}: object "
            f"{row['object_rounds_per_s']:8.1f} r/s -> array "
            f"{row['array_rounds_per_s']:8.1f} r/s  "
            f"({row['speedup']:.2f}x)"
        )
    async_row = results["sharedbit_async_jitter"]
    print(
        f"{'sharedbit_async_jitter':22s} n={args.n}: sync-object "
        f"{async_row['sync_object_rounds_per_s']:8.1f} r/s -> async "
        f"{async_row['async_event_rounds_per_s']:8.1f} r/s  "
        f"({async_row['async_over_sync']:.2f}x)"
    )
    best = max(results["sharedbit"]["speedup"],
               results["blindmatch"]["speedup"])
    if args.n >= 2000 and best < 3.0:
        print(f"FAIL: best hot-path speedup {best:.2f}x < 3x",
              file=sys.stderr)
        return 1
    if args.n >= 2000 and results["sharedbit_sleep_6of8"]["speedup"] <= 1.0:
        print("FAIL: array path lost its advantage under the faulty "
              "configuration", file=sys.stderr)
        return 1
    print(f"recorded BENCH_engine.json (best speedup {best:.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
