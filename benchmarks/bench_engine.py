"""ENG-HOT / ENG-ARRAY: engine round-throughput and the array fast path.

Two engine generations are tracked here:

* **ENG-HOT** (PR 1): per-epoch NeighborView skeleton cache — ``propose``
  receives the *same tuple object* across rounds of an epoch when tags
  are stable (asserted below), ~2.3x over the seed engine.
* **ENG-ARRAY** (this PR): the flat-array fast path — per-epoch CSR
  adjacency snapshots (``DynamicGraph.csr_at``), bulk
  ``advertise_all``/``propose_all`` protocol hooks, and the array
  proposal resolver.  The contract is byte-identical traces against the
  object path (:func:`check_fastpath_divergence` verifies it end to end;
  tests/test_fastpath.py is the full matrix), with throughput measured by
  :func:`run_engine_bench` and recorded in the repo-root
  ``BENCH_engine.json``.

Where the speedup lives: SharedBit's scan stage re-derives each token's
shared PRF bit per (node, token) pair on the object path; the bulk hook
derives each distinct token's bit once per round and shares it — >=3x at
n = 2000 (the acceptance bar), growing with n·k.  BlindMatch is bounded
by its n private Mersenne draws per round (byte-identity forbids
batching those), so its gain is the engine overhead only (~1.5x).

The ASYNC rows track the event-driven engine (jitter(0.5), star):
``sharedbit_async_jitter`` prices the generic per-event path against the
object engine, and ``sharedbit_async_jitter_batched`` prices the
window-batched drain against the *array* engine — the
``async_over_sync_array`` ratio is the tracked gap (bar: >= 0.5x at
n = 2000), ``batched_over_event`` its speedup over the per-event path.
``check_async_batched_identity`` gates both rows: the batched drain must
be byte-identical to the per-event path before its throughput counts.

Run directly for the CI gate / perf ledger::

    python benchmarks/bench_engine.py --quick   # divergence gate only
    python benchmarks/bench_engine.py           # + throughput, BENCH_engine.json
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.asynchrony import AsyncSimulation, UniformJitter
from repro.core.problem import uniform_instance
from repro.core.runner import build_nodes
from repro.experiments.fastpath import (
    CHECK_FAULTS,
    check_async_batched_identity,
    check_async_determinism,
    check_async_sync_identity,
    check_fastpath_divergence,
    check_null_fault_identity,
    check_telemetry_identity,
)
from repro.graphs.dynamic import StaticDynamicGraph
from repro.graphs.topologies import star
from repro.registry import ALGORITHM_REGISTRY
from repro.sim.channel import ChannelPolicy
from repro.sim.engine import Simulation
from repro.sim.faults import SleepCycle
from repro.sim.termination import all_hold_tokens

from _common import gossip_rounds, record_bench, static_graph, write_report

N = 64


def _blind_static_run(seed: int) -> int:
    return gossip_rounds(
        "blindmatch", static_graph(star(N)), n=N, k=2, seed=seed,
        max_rounds=400_000,
    )


# --------------------------------------------------------------------------
# Differential gate: the array path must not diverge from the reference.
# One shared implementation (repro.experiments.fastpath) backs this gate,
# tests/test_fastpath.py and CI's bench-smoke job alike.
# --------------------------------------------------------------------------
# Throughput: object vs array rounds/s on the hot paths.

def measure_throughput(algorithm: str, n: int, k: int, rounds: int,
                       engine_mode: str, seed: int = 11,
                       fault=None, telemetry=None) -> float:
    """rounds/s for a fixed-round run on the static-star hot path."""
    instance = uniform_instance(n=n, k=k, seed=seed)
    nodes = build_nodes(algorithm, instance, seed=seed)
    defn = ALGORITHM_REGISTRY.get(algorithm)
    sim = Simulation(
        StaticDynamicGraph(star(n)), nodes,
        b=defn.resolve_tag_length(defn.make_config()), seed=seed,
        channel_policy=ChannelPolicy.for_upper_n(instance.upper_n),
        trace_sample_every=1024, engine_mode=engine_mode,
        faults=fault(n, seed) if fault is not None else None,
        telemetry=telemetry,
    )
    started = time.perf_counter()
    sim.run(max_rounds=rounds)
    return rounds / (time.perf_counter() - started)


def measure_telemetry_overhead(n: int, rounds: int,
                               repeats: int = 8) -> tuple[float, float]:
    """(off, on) rounds/s for telemetry disabled vs enabled.

    ``repeats`` *interleaved* off/on pairs, best of each side: the OBS
    bar compares the two paths' speed, not the scheduler's mood, and
    alternating the sides makes slow drift (thermal, noisy neighbors)
    hit both equally instead of biasing whichever ran second.
    Sharedbit on the array engine — the hottest path, where fixed
    per-round span cost is the largest relative burden.
    """
    offs, ons = [], []
    for _ in range(repeats):
        offs.append(measure_throughput("sharedbit", n, 2, rounds, "array"))
        ons.append(measure_throughput("sharedbit", n, 2, rounds, "array",
                                      telemetry=True))
    return max(offs), max(ons)


def measure_phase_profile(n: int, rounds: int, seed: int = 11) -> dict:
    """One telemetry-enabled run's phase breakdown (seconds rounded)."""
    instance = uniform_instance(n=n, k=2, seed=seed)
    nodes = build_nodes("sharedbit", instance, seed=seed)
    defn = ALGORITHM_REGISTRY.get("sharedbit")
    sim = Simulation(
        StaticDynamicGraph(star(n)), nodes,
        b=defn.resolve_tag_length(defn.make_config()), seed=seed,
        channel_policy=ChannelPolicy.for_upper_n(instance.upper_n),
        trace_sample_every=1024, engine_mode="array", telemetry=True,
    )
    sim.run(max_rounds=rounds)
    return {
        name: {"calls": entry["calls"],
               "seconds": round(entry["seconds"], 4)}
        for name, entry in sim.telemetry.profile().items()
    }


def _sleep_fault(n: int, seed: int) -> SleepCycle:
    """The faulty throughput configuration: a 6-of-8 duty cycle, masks
    changing every round (the masked stage-1/2 paths, not the cached
    no-fault fast path)."""
    return SleepCycle(n=n, seed=seed, period=8, duty=6)


def measure_async_throughput(algorithm: str, n: int, k: int, rounds: int,
                             seed: int = 11, jitter: float = 0.5,
                             async_mode: str = "auto") -> float:
    """rounds/s for a fixed-window async run (jittered, event engine).

    The asynchronous twin of :func:`measure_throughput`: same protocols,
    same topology, same round budget, every round window one full sweep
    of jittered cohorts through the event queue.  ``async_mode`` picks
    the window executor — ``"event"`` for the generic per-node path,
    ``"batched"`` for the vectorized window drain (both byte-identical;
    :func:`check_async_batched_identity` is the gate).
    """
    instance = uniform_instance(n=n, k=k, seed=seed)
    nodes = build_nodes(algorithm, instance, seed=seed)
    defn = ALGORITHM_REGISTRY.get(algorithm)
    sim = AsyncSimulation(
        StaticDynamicGraph(star(n)), nodes,
        b=defn.resolve_tag_length(defn.make_config()), seed=seed,
        channel_policy=ChannelPolicy.for_upper_n(instance.upper_n),
        trace_sample_every=1024,
        timing=UniformJitter(n=n, seed=seed, jitter=jitter),
        async_mode=async_mode,
    )
    started = time.perf_counter()
    sim.run(max_rounds=rounds)
    return rounds / (time.perf_counter() - started)


def run_engine_bench(n: int = 2000, allow_dirty: bool = False) -> dict:
    """Measure object vs array throughput and update BENCH_engine.json."""
    cases = {"sharedbit": 400, "blindmatch": 1000}
    results: dict = {"n": n, "kind": "engine-throughput",
                     "topology": "static star", "k": 2}
    for algorithm, rounds in cases.items():
        object_rps = measure_throughput(algorithm, n, 2, rounds, "object")
        array_rps = measure_throughput(algorithm, n, 2, rounds, "array")
        results[algorithm] = {
            "rounds": rounds,
            "object_rounds_per_s": round(object_rps, 1),
            "array_rounds_per_s": round(array_rps, 1),
            "speedup": round(array_rps / object_rps, 2),
        }
    # The faulty configuration: the array path must keep its advantage
    # when every round runs the masked stages (sleep duty cycle).
    faulty_rounds = 200
    object_rps = measure_throughput("sharedbit", n, 2, faulty_rounds,
                                    "object", fault=_sleep_fault)
    array_rps = measure_throughput("sharedbit", n, 2, faulty_rounds,
                                   "array", fault=_sleep_fault)
    results["sharedbit_sleep_6of8"] = {
        "rounds": faulty_rounds,
        "fault": "sleep(period=8, duty=6)",
        "object_rounds_per_s": round(object_rps, 1),
        "array_rounds_per_s": round(array_rps, 1),
        "speedup": round(array_rps / object_rps, 2),
    }
    # The async-vs-sync rows: the event engine's cost over the round
    # engine.  The per-event row prices the generic path against the
    # object engine (partial cohorts forbid bulk hooks there); the
    # batched row prices the vectorized window drain against the *array*
    # engine — the honest bar, since both vectorize — and tracks the
    # batched-over-event speedup so the gap's trajectory is recorded,
    # not just its existence.
    async_rounds = 200
    sync_rps = measure_throughput("sharedbit", n, 2, async_rounds, "object")
    event_rps = measure_async_throughput("sharedbit", n, 2, async_rounds,
                                         async_mode="event")
    results["sharedbit_async_jitter"] = {
        "rounds": async_rounds,
        "timing": "jitter(0.5)",
        "sync_object_rounds_per_s": round(sync_rps, 1),
        "async_event_rounds_per_s": round(event_rps, 1),
        "async_over_sync": round(event_rps / sync_rps, 2),
    }
    sync_array_rps = measure_throughput("sharedbit", n, 2, async_rounds,
                                        "array")
    batched_rps = measure_async_throughput("sharedbit", n, 2, async_rounds,
                                           async_mode="batched")
    results["sharedbit_async_jitter_batched"] = {
        "rounds": async_rounds,
        "timing": "jitter(0.5)",
        "sync_array_rounds_per_s": round(sync_array_rps, 1),
        "async_batched_rounds_per_s": round(batched_rps, 1),
        "async_over_sync_array": round(batched_rps / sync_array_rps, 2),
        "batched_over_event": round(batched_rps / event_rps, 2),
    }
    # The OBS row: telemetry's price on the hottest path, plus one run's
    # phase breakdown so the ledger records where the rounds went, not
    # just how fast they were.
    telemetry_rounds = 400
    off_rps, on_rps = measure_telemetry_overhead(n, telemetry_rounds)
    results["sharedbit_telemetry"] = {
        "rounds": telemetry_rounds,
        "off_rounds_per_s": round(off_rps, 1),
        "on_rounds_per_s": round(on_rps, 1),
        "overhead_pct": round(100.0 * (1.0 - on_rps / off_rps), 2),
        "phases": measure_phase_profile(n, telemetry_rounds),
    }
    record_bench("engine:fastpath", results, allow_dirty=allow_dirty)
    return results


# --------------------------------------------------------------------------
# pytest entry points (wall clock via pytest-benchmark, plus assertions).

def test_engine_round_throughput(benchmark):
    rounds = benchmark.pedantic(
        lambda: _blind_static_run(11), rounds=1, iterations=3
    )
    note = (
        f"ENG-HOT: blind static star n={N}, k=2: {rounds} rounds/run; "
        "wall time tracked by pytest-benchmark.  Per-epoch NeighborView "
        "skeletons mean b=0 rounds allocate no view objects at all "
        "(seed engine rebuilt every tuple every round).  ENG-ARRAY: see "
        "BENCH_engine.json for object vs array rounds/s."
    )
    write_report("eng_hot_engine", note)
    benchmark.extra_info["rounds_per_run"] = rounds


def test_fastpath_no_divergence_quick():
    """The CI gate's in-suite twin: fast path == reference, trace for
    trace, on a small matrix."""
    assert check_fastpath_divergence(n=16, rounds=25) == []


class _ViewProbe:
    """Wrap a node's propose to capture the tuples the engine passes in."""

    def __init__(self, node):
        self.node = node
        self.seen = []
        self._inner = node.propose
        node.propose = self._capture

    def _capture(self, round_index, neighbors):
        self.seen.append(neighbors)
        return self._inner(round_index, neighbors)


def test_skeleton_cache_reuses_view_tuples():
    """Benchmark-visible assertion: stable epoch + stable tags => the
    engine hands ``propose`` the cached tuple, not a fresh rebuild."""
    instance = uniform_instance(n=8, k=2, seed=3)
    nodes = build_nodes("blindmatch", instance, seed=3)
    probe = _ViewProbe(nodes[0])
    sim = Simulation(
        StaticDynamicGraph(star(8)),
        nodes,
        b=0,
        seed=3,
        channel_policy=ChannelPolicy.for_upper_n(instance.upper_n),
        engine_mode="object",
    )
    sim.run(max_rounds=5, termination=all_hold_tokens(instance.token_ids))
    assert len(probe.seen) >= 2
    first = probe.seen[0]
    assert all(views is first for views in probe.seen), (
        "expected the per-epoch skeleton tuple to be reused verbatim for "
        "b=0 on a static graph"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: small divergence matrix + reduced-round "
             "throughput probe; skips the >=3x assertion and does not "
             "touch BENCH_engine.json",
    )
    parser.add_argument("--n", type=int, default=2000,
                        help="population size for the throughput bench")
    parser.add_argument(
        "--allow-dirty", action="store_true",
        help="record BENCH_engine.json even from a dirty working tree "
             "(the entry keeps its -dirty rev)",
    )
    args = parser.parse_args(argv)

    print("checking fast-path vs reference traces ...", flush=True)
    failures = check_fastpath_divergence(
        n=16 if args.quick else 24, rounds=25 if args.quick else 40
    )
    # Fault-regime gate: one faulty configuration through the full
    # (dynamics x acceptance) matrix per fault kind, plus the null-model
    # identity (NoFaults must be free).
    failures += check_fastpath_divergence(
        n=16 if args.quick else 24, rounds=25 if args.quick else 40,
        algorithms=("sharedbit",),
        faults=tuple(f for f in CHECK_FAULTS if f != "none"),
    )
    failures += check_null_fault_identity(
        n=16 if args.quick else 24, rounds=25 if args.quick else 40
    )
    # ASYNC axis gate: the event-driven engine under synchronous timing
    # must reproduce the round engine event for event on both paths, and
    # jittered timing models must be seed-deterministic.
    failures += check_async_sync_identity(
        n=16 if args.quick else 24, rounds=25 if args.quick else 40
    )
    failures += check_async_determinism(
        n=16 if args.quick else 24, rounds=25 if args.quick else 40
    )
    # Window-batching gate: the vectorized window drain must reproduce
    # the generic per-event path byte for byte, through both engine
    # front halves.
    failures += check_async_batched_identity(
        n=16 if args.quick else 24, rounds=25 if args.quick else 40
    )
    # Observability gate: enabling telemetry must not perturb a single
    # byte of any trace — spans and counters observe the run, they never
    # touch its randomness.
    failures += check_telemetry_identity(
        n=16 if args.quick else 24, rounds=25 if args.quick else 40
    )
    for failure in failures:
        print(f"DIVERGENCE: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("fast path byte-identical to reference "
          "(3 algorithms x 3 dynamics x 4 acceptance rules, plus "
          "sleep/churn/lossy fault regimes, the NoFaults identity, "
          "the ASYNC synchronous-timing identity, async "
          "seed-determinism, the batched-window identity, and the "
          "telemetry on/off identity)")

    if args.quick:
        probe = measure_throughput("sharedbit", 256, 2, 60, "array")
        faulty_probe = measure_throughput("sharedbit", 256, 2, 60, "array",
                                          fault=_sleep_fault)
        event_probe = measure_async_throughput("sharedbit", 256, 2, 60,
                                               async_mode="event")
        batched_probe = measure_async_throughput("sharedbit", 256, 2, 60,
                                                 async_mode="batched")
        if batched_probe <= event_probe:
            print(f"FAIL: batched async window path "
                  f"({batched_probe:.0f} rounds/s) did not beat the "
                  f"per-event path ({event_probe:.0f} rounds/s) at n=256",
                  file=sys.stderr)
            return 1
        print(f"throughput probe ok ({probe:.0f} rounds/s clean, "
              f"{faulty_probe:.0f} rounds/s under sleep(6/8), "
              "sharedbit array, n=256; async jitter "
              f"{event_probe:.0f} rounds/s per-event -> "
              f"{batched_probe:.0f} rounds/s batched)")
        # Telemetry must be near-free even at smoke scale; the bound is
        # loose (the tight <5% bar runs at n=2000 in the full bench)
        # but catches a hot-path span leak outright.
        off_rps, on_rps = measure_telemetry_overhead(256, 60)
        overhead = 1.0 - on_rps / off_rps
        if overhead > 0.25:
            print(f"FAIL: telemetry overhead {100 * overhead:.1f}% at "
                  f"n=256 ({off_rps:.0f} -> {on_rps:.0f} rounds/s); "
                  "smoke bound is 25%", file=sys.stderr)
            return 1
        print(f"telemetry overhead probe ok ({off_rps:.0f} rounds/s off "
              f"-> {on_rps:.0f} rounds/s on, "
              f"{100 * max(0.0, overhead):.1f}% at n=256)")
        return 0

    results = run_engine_bench(n=args.n, allow_dirty=args.allow_dirty)
    for case in ("sharedbit", "blindmatch", "sharedbit_sleep_6of8"):
        row = results[case]
        print(
            f"{case:22s} n={args.n}: object "
            f"{row['object_rounds_per_s']:8.1f} r/s -> array "
            f"{row['array_rounds_per_s']:8.1f} r/s  "
            f"({row['speedup']:.2f}x)"
        )
    async_row = results["sharedbit_async_jitter"]
    print(
        f"{'sharedbit_async_jitter':22s} n={args.n}: sync-object "
        f"{async_row['sync_object_rounds_per_s']:8.1f} r/s -> async "
        f"{async_row['async_event_rounds_per_s']:8.1f} r/s  "
        f"({async_row['async_over_sync']:.2f}x)"
    )
    batched_row = results["sharedbit_async_jitter_batched"]
    print(
        f"{'  ... batched':22s} n={args.n}: sync-array  "
        f"{batched_row['sync_array_rounds_per_s']:8.1f} r/s -> async "
        f"{batched_row['async_batched_rounds_per_s']:8.1f} r/s  "
        f"({batched_row['async_over_sync_array']:.2f}x of array, "
        f"{batched_row['batched_over_event']:.2f}x over per-event)"
    )
    if args.n >= 2000 and batched_row["async_over_sync_array"] < 0.5:
        print("FAIL: batched async path fell below 0.5x of the sync "
              f"array engine ({batched_row['async_over_sync_array']:.2f}x)",
              file=sys.stderr)
        return 1
    if args.n >= 2000 and batched_row["batched_over_event"] <= 1.0:
        print("FAIL: batched window path lost to the per-event path "
              f"({batched_row['batched_over_event']:.2f}x)",
              file=sys.stderr)
        return 1
    best = max(results["sharedbit"]["speedup"],
               results["blindmatch"]["speedup"])
    if args.n >= 2000 and best < 3.0:
        print(f"FAIL: best hot-path speedup {best:.2f}x < 3x",
              file=sys.stderr)
        return 1
    if args.n >= 2000 and results["sharedbit_sleep_6of8"]["speedup"] <= 1.0:
        print("FAIL: array path lost its advantage under the faulty "
              "configuration", file=sys.stderr)
        return 1
    telemetry_row = results["sharedbit_telemetry"]
    print(
        f"{'sharedbit_telemetry':22s} n={args.n}: off "
        f"{telemetry_row['off_rounds_per_s']:8.1f} r/s -> on "
        f"{telemetry_row['on_rounds_per_s']:8.1f} r/s  "
        f"({telemetry_row['overhead_pct']:.2f}% overhead)"
    )
    if args.n >= 2000 and telemetry_row["overhead_pct"] > 5.0:
        print("FAIL: telemetry overhead "
              f"{telemetry_row['overhead_pct']:.2f}% > 5% at n={args.n}",
              file=sys.stderr)
        return 1
    print(f"recorded BENCH_engine.json (best speedup {best:.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
