"""FIG1-R5 + ABL-3: ε-gossip — O(n·√(Δ·logΔ)/((1−ε)·α)) (Theorem 7.4).

Measured shapes:

* rounds grow as ε → 1 (the 1/(1−ε) factor);
* ε-gossip at constant ε beats full gossip on a well-connected graph with
  k = n — the paper's headline polynomial speedup;
* the speedup shrinks on a low-α graph (the α in the denominator).
"""

import statistics

import pytest

from repro.analysis.bounds import epsilon_gossip_bound
from repro.analysis.tables import render_table
from repro.core.epsilon import run_epsilon_gossip
from repro.core.problem import everyone_starts_instance
from repro.core.runner import run_gossip
from repro.graphs.dynamic import StaticDynamicGraph
from repro.graphs.topologies import cycle, expander

from _common import DEFAULT_SEEDS, write_report

N = 24


def _epsilon_rounds(dg_factory, epsilon, seed) -> int:
    result = run_epsilon_gossip(
        dg_factory(), epsilon=epsilon, seed=seed, max_rounds=400_000
    )
    assert result.solved
    return result.rounds


def _full_rounds(dg_factory, seed) -> int:
    result = run_gossip(
        "sharedbit",
        dg_factory(),
        everyone_starts_instance(n=N, seed=seed),
        seed=seed,
        max_rounds=400_000,
        trace_sample_every=1024,
    )
    assert result.solved
    return result.rounds


def _median(fn):
    return statistics.median(fn(seed) for seed in DEFAULT_SEEDS)


def _epsilon_sweep():
    dg_factory = lambda: StaticDynamicGraph(expander(N, 6, seed=1))
    rows, measured = [], {}
    for epsilon in (0.25, 0.5, 0.75, 0.9):
        rounds = _median(
            lambda seed, e=epsilon: _epsilon_rounds(dg_factory, e, seed)
        )
        bound = epsilon_gossip_bound(N, alpha=0.5, delta=6, epsilon=epsilon)
        rows.append(
            (f"{epsilon:.2f}", rounds, f"{bound:.0f}",
             f"{rounds / bound:.4f}")
        )
        measured[epsilon] = rounds
    full = _median(lambda seed: _full_rounds(dg_factory, seed))
    rows.append(("1.00 (full)", full, "-", "-"))
    measured["full"] = full
    table = render_table(
        headers=("epsilon", "median rounds", "bound shape", "ratio"),
        rows=rows,
        title=f"epsilon-gossip sweep on a static expander (n=k={N})",
    )
    return table, measured


def test_epsilon_monotone_and_faster_than_full(benchmark):
    table, measured = _epsilon_sweep()
    write_report("fig1_r5_epsilon_sweep", table)
    print("\n" + table)
    benchmark.extra_info.update({str(k): v for k, v in measured.items()})
    dg_factory = lambda: StaticDynamicGraph(expander(N, 6, seed=1))
    benchmark.pedantic(
        lambda: _epsilon_rounds(dg_factory, 0.5, 11), rounds=1, iterations=1
    )
    # Monotone in ε and strictly below full gossip at ε = 1/2.
    assert measured[0.25] <= measured[0.9]
    assert measured[0.5] < measured["full"]


def test_epsilon_speedup_shrinks_with_low_alpha(benchmark):
    """The α in Theorem 7.4's denominator: cycles blunt the ε advantage."""
    rows = []
    speedups = {}
    for topo_factory, label in (
        (lambda: expander(N, 6, seed=1), "expander"),
        (lambda: cycle(N), "cycle"),
    ):
        dg_factory = lambda: StaticDynamicGraph(topo_factory())
        eps_rounds = _median(
            lambda seed: _epsilon_rounds(dg_factory, 0.5, seed)
        )
        full_rounds = _median(lambda seed: _full_rounds(dg_factory, seed))
        speedups[label] = full_rounds / eps_rounds
        rows.append((label, eps_rounds, full_rounds,
                     f"{full_rounds / eps_rounds:.2f}"))
    table = render_table(
        headers=("topology", "eps=0.5 rounds", "full rounds", "speedup"),
        rows=rows,
        title=f"epsilon-gossip speedup by connectivity (n=k={N})",
    )
    write_report("fig1_r5_epsilon_alpha", table)
    print("\n" + table)
    benchmark.extra_info.update(speedups)
    dg = StaticDynamicGraph(cycle(N))
    benchmark.pedantic(
        lambda: _epsilon_rounds(lambda: StaticDynamicGraph(cycle(N)), 0.5, 11),
        rounds=1, iterations=1,
    )
    assert speedups["expander"] >= 1.0
