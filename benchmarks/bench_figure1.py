"""FIG1-ALL: regenerate the paper's Figure 1 as a measured table.

One representative configuration per row, all at n=16 so the rows are
comparable side by side:

* rows 1–3 (τ ≥ 1): a relabeled star — fully dynamic every round, and the
  hub bottleneck is the regime where the bounds are tight;
* row 4 (τ = ∞): the same star held static for CrowdedBin;
* row 5 (ε-gossip): k = n on a static expander, ε = 1/2.

The rows come from the canonical :func:`repro.experiments.figure1_sweep`
spec — the very same sweep ``examples/sweep_figure1.py`` runs with
``--jobs N`` — so bench and example cannot drift.  The printed table
carries the paper's bound column next to the measured median rounds;
EXPERIMENTS.md quotes it verbatim.
"""

import pytest

from repro.analysis.tables import figure1_table
from repro.experiments import FIGURE1_ROW_KEYS, execute_run, figure1_sweep

from _common import DEFAULT_SEEDS, run_bench_sweep, write_report

N, K = 16, 2


def test_figure1_regenerated(benchmark):
    sweep = figure1_sweep(n=N, k=K, seeds=DEFAULT_SEEDS)
    result = run_bench_sweep(sweep)
    measured = {
        key: result.point_for(algorithm=key).median_rounds
        for key in FIGURE1_ROW_KEYS
    }
    table = figure1_table(
        measured,
        title=(
            "Figure 1 (regenerated): median rounds at n=16, k=2 "
            "(eps row: n=k=16, eps=0.5); rows 1-3 on a dynamic star "
            "(tau=1), row 4 static, row 5 static expander"
        ),
    )
    write_report("figure1", table)
    print("\n" + table)
    benchmark.extra_info.update(measured)
    # Timing target: one SharedBit row-run end-to-end through the
    # experiments layer (spec -> graph/instance rebuild -> engine).
    payload = sweep.run_payload({"algorithm": "sharedbit"}, seed=11)
    benchmark.pedantic(lambda: execute_run(payload), rounds=1, iterations=1)
    # The qualitative ordering of the table's τ≥1 rows at a hub-bottleneck
    # topology: the b=1 algorithms beat the b=0 baseline.
    assert measured["sharedbit"] < measured["blindmatch"]
    assert measured["simsharedbit"] < measured["blindmatch"] * 2
