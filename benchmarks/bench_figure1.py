"""FIG1-ALL: regenerate the paper's Figure 1 as a measured table.

One representative configuration per row, all at n=16 so the rows are
comparable side by side:

* rows 1–3 (τ ≥ 1): a relabeled star — fully dynamic every round, and the
  hub bottleneck is the regime where the bounds are tight;
* row 4 (τ = ∞): the same star held static for CrowdedBin;
* row 5 (ε-gossip): k = n on a static expander, ε = 1/2.

The printed table carries the paper's bound column next to the measured
median rounds; EXPERIMENTS.md quotes it verbatim.
"""

import statistics

import pytest

from repro.analysis.tables import figure1_table
from repro.core.epsilon import run_epsilon_gossip
from repro.graphs.dynamic import StaticDynamicGraph
from repro.graphs.topologies import expander, star

from _common import DEFAULT_SEEDS, gossip_rounds, relabeled, static_graph, write_report

N, K = 16, 2


def _row_rounds(algorithm) -> float:
    topo = star(N)
    if algorithm == "crowdedbin":
        dg_factory = lambda seed: static_graph(topo)
        max_rounds = 2_000_000
    else:
        dg_factory = lambda seed: relabeled(topo, seed)
        max_rounds = 600_000
    return statistics.median(
        gossip_rounds(algorithm, dg_factory(seed), n=N, k=K, seed=seed,
                      max_rounds=max_rounds)
        for seed in DEFAULT_SEEDS
    )


def _epsilon_row() -> float:
    def once(seed):
        result = run_epsilon_gossip(
            StaticDynamicGraph(expander(N, 4, seed=1)),
            epsilon=0.5,
            seed=seed,
            max_rounds=400_000,
        )
        assert result.solved
        return result.rounds

    return statistics.median(once(seed) for seed in DEFAULT_SEEDS)


def test_figure1_regenerated(benchmark):
    measured = {
        "blindmatch": _row_rounds("blindmatch"),
        "sharedbit": _row_rounds("sharedbit"),
        "simsharedbit": _row_rounds("simsharedbit"),
        "crowdedbin": _row_rounds("crowdedbin"),
        "epsilon": _epsilon_row(),
    }
    table = figure1_table(
        measured,
        title=(
            "Figure 1 (regenerated): median rounds at n=16, k=2 "
            "(eps row: n=k=16, eps=0.5); rows 1-3 on a dynamic star "
            "(tau=1), row 4 static, row 5 static expander"
        ),
    )
    write_report("figure1", table)
    print("\n" + table)
    benchmark.extra_info.update(measured)
    topo = star(N)
    benchmark.pedantic(
        lambda: gossip_rounds("sharedbit", relabeled(topo, 11), n=N, k=K,
                              seed=11, max_rounds=600_000),
        rounds=1, iterations=1,
    )
    # The qualitative ordering of the table's τ≥1 rows at a hub-bottleneck
    # topology: the b=1 algorithms beat the b=0 baseline.
    assert measured["sharedbit"] < measured["blindmatch"]
    assert measured["simsharedbit"] < measured["blindmatch"] * 2
