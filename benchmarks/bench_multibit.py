"""ABL-B: what do tags longer than one bit buy? (paper §1 remark)

"For most of our solutions, increasing b beyond 1 only improves
performance by at most logarithmic factors."  MultiBitSharedBit makes the
mechanism concrete: with b bits, two different token sets advertise
different tags with probability 1 − 2^{-b} instead of 1/2, so the wasted
(collision) rounds shrink from 1/2 to 2^{-b} of the total — a bounded
constant-factor gain that saturates immediately.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core.multibit import MultiBitConfig
from repro.graphs.topologies import star

from _common import gossip_rounds, median_rounds, relabeled, write_report

SEEDS = (11, 23, 37, 51, 67)


def _b_sweep():
    topo = star(16)
    rows, outcomes = [], {}
    for bits in (1, 2, 4, 8):
        def run_once(seed, bits=bits):
            return gossip_rounds(
                "multibit", relabeled(topo, seed), n=16, k=4, seed=seed,
                max_rounds=400_000, config=MultiBitConfig(bits=bits),
            )

        rounds = median_rounds(run_once, seeds=SEEDS)
        outcomes[bits] = rounds
        rows.append((bits, rounds, f"{2.0**-bits:.3f}"))
    table = render_table(
        headers=("b", "median rounds", "collision prob 2^-b"),
        rows=rows,
        title="ABL-B: tag length sweep (MultiBitSharedBit, dynamic star, k=4)",
    )
    table += (
        "\nGains saturate after b=2 — consistent with the paper's remark "
        "that b>1 buys at most small factors."
    )
    return table, outcomes


def test_extra_tag_bits_saturate(benchmark):
    table, outcomes = _b_sweep()
    write_report("ablB_multibit", table)
    print("\n" + table)
    benchmark.extra_info.update({str(b): r for b, r in outcomes.items()})
    topo = star(16)
    benchmark.pedantic(
        lambda: gossip_rounds(
            "multibit", relabeled(topo, 11), n=16, k=4, seed=11,
            max_rounds=400_000, config=MultiBitConfig(bits=2),
        ),
        rounds=1, iterations=1,
    )
    # b=8 must not beat b=1 by more than the collision-rate headroom
    # allows (a factor of ~2), and must not be dramatically worse.
    assert outcomes[8] > outcomes[1] / 3
    assert outcomes[8] < outcomes[1] * 2
