"""ABL-B: what do tags longer than one bit buy? (paper §1 remark)

"For most of our solutions, increasing b beyond 1 only improves
performance by at most logarithmic factors."  MultiBitSharedBit makes the
mechanism concrete: with b bits, two different token sets advertise
different tags with probability 1 − 2^{-b} instead of 1/2, so the wasted
(collision) rounds shrink from 1/2 to 2^{-b} of the total — a bounded
constant-factor gain that saturates immediately.

The b-axis is a config sweep: one declarative grid over ``config.bits``.
"""

import pytest

from repro.analysis.tables import render_table
from repro.experiments import SweepSpec, execute_run

from _common import run_bench_sweep, write_report

SEEDS = (11, 23, 37, 51, 67)
_BITS = (1, 2, 4, 8)


def _payload(bits: int, seed: int | None = None) -> dict:
    payload = {
        "algorithm": "multibit",
        "graph": {"family": "star", "params": {"n": 16}},
        "dynamic": {"kind": "relabeling", "tau": 1},
        "instance": {"kind": "uniform", "k": 4},
        "max_rounds": 400_000,
        "config": {"bits": bits},
        "engine": {"trace_sample_every": 1024},
    }
    if seed is not None:
        payload["seed"] = seed
    return payload


def _b_sweep():
    spec = SweepSpec(
        name="ablB-multibit-bits",
        base=_payload(1),
        grid={"config.bits": list(_BITS)},
        seeds=SEEDS,
    )
    result = run_bench_sweep(spec)
    rows, outcomes = [], {}
    for bits, summary in zip(_BITS, result.points):
        rounds = summary.median_rounds
        outcomes[bits] = rounds
        rows.append((bits, rounds, f"{2.0**-bits:.3f}"))
    table = render_table(
        headers=("b", "median rounds", "collision prob 2^-b"),
        rows=rows,
        title="ABL-B: tag length sweep (MultiBitSharedBit, dynamic star, k=4)",
    )
    table += (
        "\nGains saturate after b=2 — consistent with the paper's remark "
        "that b>1 buys at most small factors."
    )
    return table, outcomes


def test_extra_tag_bits_saturate(benchmark):
    table, outcomes = _b_sweep()
    write_report("ablB_multibit", table)
    print("\n" + table)
    benchmark.extra_info.update({str(b): r for b, r in outcomes.items()})
    benchmark.pedantic(
        lambda: execute_run(_payload(2, seed=11)), rounds=1, iterations=1
    )
    # b=8 must not beat b=1 by more than the collision-rate headroom
    # allows (a factor of ~2), and must not be dramatically worse.
    assert outcomes[8] > outcomes[1] / 3
    assert outcomes[8] < outcomes[1] * 2
