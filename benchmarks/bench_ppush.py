"""THM-6.1: PPUSH rumor spreading — O(log⁴N / α) with b ≥ 1, τ = ∞.

CrowdedBin's engine room.  Measured: spreading time across graphs ordered
by expansion; the measured/(1/α) ratio should not grow as α shrinks (the
1/α factor explains the ordering), and times on expanders should be
logarithmic-ish in n.
"""

import statistics

import pytest

from repro.analysis.bounds import ppush_bound
from repro.analysis.fits import loglog_slope
from repro.analysis.tables import render_table
from repro.core.ppush import PPushNode
from repro.core.tokens import Token
from repro.graphs.dynamic import StaticDynamicGraph
from repro.graphs.topologies import cycle, expander, path, star
from repro.rng import SeedTree
from repro.sim.channel import ChannelPolicy
from repro.sim.engine import Simulation
from repro.sim.termination import all_hold_tokens

from _common import DEFAULT_SEEDS, write_report


def ppush_rounds(topo, seed, max_rounds=100_000) -> int:
    tree = SeedTree(seed)
    rumor = Token(1)
    nodes = {
        v: PPushNode(
            uid=v + 1,
            upper_n=topo.n,
            rng=tree.stream("node", v),
            rumor=rumor if v == 0 else None,
        )
        for v in range(topo.n)
    }
    sim = Simulation(
        StaticDynamicGraph(topo), nodes, b=1, seed=seed,
        channel_policy=ChannelPolicy.for_upper_n(topo.n),
    )
    result = sim.run(max_rounds=max_rounds, termination=all_hold_tokens({1}))
    assert result.terminated
    return result.rounds


def _median(topo, max_rounds=100_000):
    return statistics.median(
        ppush_rounds(topo, seed, max_rounds) for seed in DEFAULT_SEEDS
    )


def _alpha_ordering():
    cases = (
        ("expander n=32", expander(32, 4, seed=1), 0.5),
        ("star n=32", star(32), 1 / 16),
        ("cycle n=32", cycle(32), 2 / 16),
        ("path n=32", path(32), 1 / 16),
    )
    rows = []
    outcomes = {}
    for label, topo, alpha in cases:
        rounds = _median(topo)
        bound = ppush_bound(topo.n, alpha)
        outcomes[label] = rounds
        rows.append((label, f"{alpha:.3f}", rounds, f"{bound:.0f}",
                     f"{rounds / bound:.4f}"))
    table = render_table(
        headers=("topology", "alpha", "median rounds", "bound shape",
                 "ratio"),
        rows=rows,
        title="PPUSH spreading time by expansion (b=1, τ=∞)",
    )
    return table, outcomes


def _n_scaling_on_expanders():
    ns, measured = [], []
    for n in (16, 32, 64, 128):
        topo = expander(n, 4, seed=1)
        ns.append(n)
        measured.append(_median(topo))
    slope = loglog_slope(ns, measured)
    table = render_table(
        headers=("n", "median rounds"),
        rows=list(zip(ns, measured)),
        title="PPUSH n-sweep on expanders (constant α)",
    )
    return table + f"\nlog-log slope in n: {slope:.2f} (theory: polylog ⇒ ≪ 1)", slope


def test_ppush_alpha_ordering(benchmark):
    table, outcomes = _alpha_ordering()
    write_report("thm61_ppush_alpha", table)
    print("\n" + table)
    benchmark.extra_info.update(outcomes)
    topo = expander(32, 4, seed=1)
    benchmark.pedantic(lambda: ppush_rounds(topo, 11), rounds=1, iterations=1)
    assert outcomes["expander n=32"] < outcomes["path n=32"]
    assert outcomes["expander n=32"] < outcomes["cycle n=32"]


def test_ppush_polylog_on_expanders(benchmark):
    table, slope = _n_scaling_on_expanders()
    write_report("thm61_ppush_n", table)
    print("\n" + table)
    benchmark.extra_info["n_slope"] = slope
    topo = expander(64, 4, seed=1)
    benchmark.pedantic(lambda: ppush_rounds(topo, 11), rounds=1, iterations=1)
    # Constant-α family: far below linear growth.
    assert slope < 0.7, f"expected sublinear growth, slope={slope:.2f}"
