"""BENCH_scale: the million-node trajectory (rounds/s, RSS, bytes/node).

Each cell of (algorithm x graph x n) runs in its **own subprocess**, so
``ru_maxrss`` — which is monotonic per process — measures that cell
alone: the worker notes its post-import baseline RSS, builds the graph
and node population, runs a fixed round budget on the array engine, and
reports

* ``rounds_per_s``   — simulation-only throughput (build excluded),
* ``peak_rss_mb``    — the process high-water mark,
* ``bytes_per_node`` — (peak - post-import baseline) / n, the whole
  simulation's marginal footprint per node.

The grid is 2 algorithms (sharedbit, blindmatch) x 2 graphs (static
ring-expander built straight to CSR; geometric random-waypoint mobility
with ``bridge=False``) x 3 sizes (10^4, 10^5, 10^6), plus one
acceptance cell: the n = 10^6 sharedbit static run routed through
``run_sweep(stream_to=...)`` — the sharded streaming path a real
million-node sweep would use.  Results land in the repo-root
``BENCH_scale.json`` (rev + date stamped; a dirty tree is refused
without ``--allow-dirty``).

``--quick`` is the CI gate: the spatial-grid-vs-blocked-sweep identity,
the int32-vs-int64 CSR identity, streamed-vs-in-memory sweep
aggregation identity (byte-compared ``to_json``), and an n = 10^5
sharedbit sanity run under the streamed path.  No ledger writes.

Round budgets shrink as n grows (64 / 16 / 4): the point is steady-state
per-round cost and footprint, not solving gossip at 10^6.
"""

from __future__ import annotations

import argparse
import json
import math
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from _common import record_bench

#: The scale ledger (separate from BENCH_engine.json: these rows track
#: the n-trajectory, not per-optimization speedups).
SCALE_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_scale.json"

SIZES = (10_000, 100_000, 1_000_000)
ROUNDS = {10_000: 64, 100_000: 16, 1_000_000: 4}
ALGORITHMS = ("sharedbit", "blindmatch")
GRAPHS = ("expander", "geometric")
SEED = 11
GRAPH_SEED = 1
TOKENS_K = 1
CASE_TIMEOUT_S = 3600


def _geometric_radius(n: int) -> float:
    """Unit-disk radius giving mean degree ~12 at density n (pi r^2 n)."""
    return math.sqrt(12.0 / (math.pi * n))


def _build_graph(graph: str, n: int, rounds: int):
    from repro.graphs.dynamic import (
        GeometricMobilityGraph,
        ring_expander_graph,
    )

    if graph == "expander":
        return ring_expander_graph(n, degree=6, seed=GRAPH_SEED)
    if graph == "geometric":
        # tau = the whole budget: one epoch, one grid edge build; the
        # mobility cost is charged to build, the gossip cost to run.
        return GeometricMobilityGraph(
            n=n, radius=_geometric_radius(n), step=0.05, tau=rounds,
            seed=GRAPH_SEED, bridge=False,
        )
    raise ValueError(f"unknown graph kind {graph!r}")


def _streamed_payload(n: int, rounds: int) -> dict:
    return {
        "algorithm": "sharedbit",
        "graph": {
            "family": "ring_expander",
            "params": {"n": n, "degree": 6, "seed": GRAPH_SEED},
        },
        "dynamic": {"kind": "static"},
        "instance": {"kind": "uniform", "k": TOKENS_K},
        "max_rounds": rounds,
        "engine": {
            "trace_sample_every": 1024,
            "trace_max_records": 64,
            "termination_every": rounds,
        },
    }


def _rss_kb() -> int:
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _measure_direct(case: dict) -> dict:
    """One (algorithm, graph, n) cell: direct array-engine execution.

    Runs with telemetry enabled so each cell also reports *where* its
    rounds went (the ``phases`` breakdown: CSR binds vs stages vs
    resolution).  Telemetry is trace-byte-identical and its cost is
    gated under 5% by bench_engine.py, so the trajectory numbers stay
    comparable to earlier telemetry-free revisions.
    """
    baseline_kb = _rss_kb()
    n, rounds = case["n"], case["rounds"]

    from repro.core.problem import uniform_instance
    from repro.core.runner import build_nodes
    from repro.registry import ALGORITHM_REGISTRY
    from repro.sim.channel import ChannelPolicy
    from repro.sim.engine import Simulation

    build_started = time.perf_counter()
    graph = _build_graph(case["graph"], n, rounds)
    instance = uniform_instance(n=n, k=TOKENS_K, seed=SEED)
    nodes = build_nodes(case["algorithm"], instance, seed=SEED)
    defn = ALGORITHM_REGISTRY.get(case["algorithm"])
    sim = Simulation(
        graph, nodes,
        b=defn.resolve_tag_length(defn.make_config()),
        seed=SEED,
        channel_policy=ChannelPolicy.for_upper_n(instance.upper_n),
        trace_sample_every=1024,
        trace_max_records=64,
        engine_mode="array",
        telemetry=True,
    )
    build_s = time.perf_counter() - build_started

    run_started = time.perf_counter()
    sim.run(max_rounds=rounds)
    run_s = time.perf_counter() - run_started

    peak_kb = _rss_kb()
    return {
        "n": n,
        "rounds": rounds,
        "engine_mode": "array",
        "build_s": round(build_s, 3),
        "run_s": round(run_s, 3),
        "rounds_per_s": round(rounds / run_s, 2) if run_s > 0 else None,
        "peak_rss_mb": round(peak_kb / 1024.0, 1),
        "bytes_per_node": int((peak_kb - baseline_kb) * 1024 / n),
        "total_connections": sim.trace.total_connections,
        "phases": {
            name: {"calls": entry["calls"],
                   "seconds": round(entry["seconds"], 4)}
            for name, entry in sim.telemetry.profile().items()
        },
    }


def _measure_streamed(case: dict) -> dict:
    """The acceptance cell: sharedbit static at n through the sharded
    streaming sweep path (``run_sweep(stream_to=...)``)."""
    baseline_kb = _rss_kb()
    n, rounds = case["n"], case["rounds"]

    from repro.experiments import SweepSpec, run_sweep

    spec = SweepSpec(
        name=f"scale-stream-n{n}",
        base=_streamed_payload(n, rounds),
        seeds=(SEED,),
    )
    stream_dir = Path(tempfile.mkdtemp(prefix="bench-scale-stream-"))
    started = time.perf_counter()
    result = run_sweep(spec, stream_to=stream_dir)
    elapsed = time.perf_counter() - started

    summary = result.points[0]
    peak_kb = _rss_kb()
    return {
        "n": n,
        "rounds": summary.rounds[0],
        "streamed": True,
        "shards_sealed": (stream_dir / "index.json").exists(),
        "elapsed_s": round(elapsed, 3),
        "rounds_per_s_incl_build": round(summary.rounds[0] / elapsed, 2)
        if elapsed > 0 else None,
        "peak_rss_mb": round(peak_kb / 1024.0, 1),
        "bytes_per_node": int((peak_kb - baseline_kb) * 1024 / n),
    }


def _worker(case_json: str, out_path: str) -> int:
    case = json.loads(case_json)
    measure = (
        _measure_streamed if case.get("streamed") else _measure_direct
    )
    row = measure(case)
    Path(out_path).write_text(json.dumps(row))
    return 0


def _run_case_subprocess(case: dict) -> dict:
    """Run one cell in a fresh interpreter so ru_maxrss isolates it."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as out:
        out_path = out.name
    try:
        completed = subprocess.run(
            [sys.executable, str(Path(__file__).resolve()),
             "--worker", json.dumps(case), "--worker-out", out_path],
            timeout=CASE_TIMEOUT_S,
        )
        if completed.returncode != 0:
            raise RuntimeError(
                f"scale worker failed (exit {completed.returncode}) "
                f"for case {case}"
            )
        return json.loads(Path(out_path).read_text())
    finally:
        Path(out_path).unlink(missing_ok=True)


def _case_label(case: dict) -> str:
    kind = "stream" if case.get("streamed") else case["graph"]
    return f"alg={case['algorithm']},graph={kind},n={case['n']}"


def run_quick() -> int:
    """The CI gate: identities + an n=10^5 streamed sanity run."""
    from repro.experiments import SweepSpec, run_sweep
    from repro.experiments.fastpath import (
        check_dtype_identity,
        check_grid_identity,
    )

    print("checking spatial grid vs blocked sweep ...", flush=True)
    failures = check_grid_identity()
    print("checking int32 vs int64 CSR traces ...", flush=True)
    failures += check_dtype_identity(n=16, rounds=25)

    print("checking streamed vs in-memory sweep aggregation ...",
          flush=True)
    spec = SweepSpec(
        name="scale-quick-identity",
        base=_streamed_payload(64, 12),
        grid={"instance.k": [1, 2]},
        seeds=(11, 23),
    )
    in_memory = run_sweep(spec)
    stream_dir = Path(tempfile.mkdtemp(prefix="bench-scale-quick-"))
    streamed = run_sweep(spec, stream_to=stream_dir)
    if in_memory.to_json() != streamed.to_json():
        failures.append(
            "streamed sweep aggregation diverged from the in-memory path"
        )

    for failure in failures:
        print(f"DIVERGENCE: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("scale identities ok (grid edges, int32 CSR, streamed sweeps)")

    n, rounds = 100_000, 2
    print(f"streamed sanity run: sharedbit expander n={n} ...", flush=True)
    row = _measure_streamed({"n": n, "rounds": rounds, "streamed": True,
                             "algorithm": "sharedbit"})
    if row["rounds"] < 1 or not row["shards_sealed"]:
        print(f"FAIL: streamed sanity run did not complete: {row}",
              file=sys.stderr)
        return 1
    print(
        f"streamed sanity ok: {row['rounds']} rounds in "
        f"{row['elapsed_s']:.1f}s, peak {row['peak_rss_mb']:.0f} MB "
        f"({row['bytes_per_node']} bytes/node)"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: scale identities + n=10^5 streamed sanity run; "
             "does not touch BENCH_scale.json",
    )
    parser.add_argument(
        "--max-n", type=int, default=max(SIZES),
        help="cap the trajectory at this n (development shortcut)",
    )
    parser.add_argument(
        "--allow-dirty", action="store_true",
        help="record BENCH_scale.json even from a dirty working tree",
    )
    parser.add_argument("--worker", help=argparse.SUPPRESS)
    parser.add_argument("--worker-out", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.worker:
        return _worker(args.worker, args.worker_out)
    if args.quick:
        return run_quick()

    sizes = tuple(n for n in SIZES if n <= args.max_n)
    cases = [
        {"algorithm": algorithm, "graph": graph, "n": n,
         "rounds": ROUNDS[n]}
        for n in sizes
        for graph in GRAPHS
        for algorithm in ALGORITHMS
    ]
    big = max(sizes)
    cases.append({"algorithm": "sharedbit", "n": big,
                  "rounds": ROUNDS[big], "streamed": True})

    rows: dict[str, dict] = {}
    for case in cases:
        label = _case_label(case)
        print(f"[{len(rows) + 1}/{len(cases)}] {label} ...", flush=True)
        row = _run_case_subprocess(case)
        rows[label] = row
        rate = row.get("rounds_per_s") or row.get("rounds_per_s_incl_build")
        print(
            f"    {row['rounds']} rounds, {rate} rounds/s, peak "
            f"{row['peak_rss_mb']:.0f} MB, {row['bytes_per_node']} "
            "bytes/node",
            flush=True,
        )

    path = record_bench(
        "scale:trajectory",
        {
            "kind": "scale-trajectory",
            "k": TOKENS_K,
            "seed": SEED,
            "rows": rows,
        },
        allow_dirty=args.allow_dirty,
        path=SCALE_JSON_PATH,
    )
    print(f"recorded {path.name} ({len(rows)} cells)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
