"""FIG1-R2: SharedBit — O(k·n), b = 1, τ ≥ 1 (Theorem 5.1).

Where is O(k·n) tight?  The analysis counts *one* guaranteed productive
connection per round (Lemma 5.4).  On a star every connection involves the
hub, so at most one connection forms per round and the measured cost
really scales like k·n.  On an expander Θ(n) productive connections run in
parallel and SharedBit finishes far below the bound — the bound is
worst-case over topologies, and both regimes are measured here:

* n-sweep and k-sweep on dynamic stars: log-log slopes ≈ 1 against the
  bound's k·n;
* the same sweeps on dynamic expanders: far below the bound (recorded as
  the parallelism bonus, no slope claim);
* star vs expander against BlindMatch: the advertising bit neutralizes
  the Δ² acceptance-lottery penalty (the paper's b=0 vs b=1 gap).
"""

import pytest

from repro.analysis.bounds import sharedbit_bound
from repro.analysis.fits import loglog_slope
from repro.analysis.tables import render_table
from repro.graphs.topologies import expander, star

from _common import gossip_rounds, median_rounds, relabeled, write_report


def _sweep(topo_factory, points, fixed, vary, title):
    """Generic sweep helper: vary n or k, return (table, slope)."""
    rows, xs, measured = [], [], []
    for value in points:
        n = value if vary == "n" else fixed
        k = value if vary == "k" else fixed
        topo = topo_factory(n)

        def run_once(seed, topo=topo, n=n, k=k):
            return gossip_rounds(
                "sharedbit", relabeled(topo, seed), n=n, k=k, seed=seed,
                max_rounds=200_000,
            )

        rounds = median_rounds(run_once)
        bound = sharedbit_bound(n, k)
        rows.append((n, k, rounds, f"{bound:.0f}", f"{rounds / bound:.3f}"))
        xs.append(value)
        measured.append(rounds)
    slope = loglog_slope(xs, measured)
    table = render_table(
        headers=("n", "k", "median rounds", "bound kn", "ratio"),
        rows=rows,
        title=title,
    )
    return table + f"\nlog-log slope in {vary}: {slope:.2f}", slope


def test_sharedbit_n_scaling_worst_case_star(benchmark):
    table, slope = _sweep(
        star, points=(8, 16, 32, 64), fixed=2, vary="n",
        title="SharedBit n-sweep on dynamic stars (k=2, τ=1) — bound-tight regime",
    )
    write_report("fig1_r2_sharedbit_n_star", table)
    print("\n" + table)
    benchmark.extra_info["n_slope_star"] = slope
    topo = star(16)
    benchmark.pedantic(
        lambda: gossip_rounds("sharedbit", relabeled(topo, 11), n=16, k=2,
                              seed=11, max_rounds=200_000),
        rounds=1, iterations=1,
    )
    # Theory: ~1 (hub serializes connections, so rounds track k·n).
    assert 0.6 < slope < 1.6, f"star n-scaling off: slope={slope:.2f}"


def test_sharedbit_k_scaling_worst_case_star(benchmark):
    table, slope = _sweep(
        lambda n: star(n), points=(1, 2, 4, 8), fixed=16, vary="k",
        title="SharedBit k-sweep on a dynamic star (n=16, τ=1) — bound-tight regime",
    )
    write_report("fig1_r2_sharedbit_k_star", table)
    print("\n" + table)
    benchmark.extra_info["k_slope_star"] = slope
    topo = star(16)
    benchmark.pedantic(
        lambda: gossip_rounds("sharedbit", relabeled(topo, 11), n=16, k=4,
                              seed=11, max_rounds=200_000),
        rounds=1, iterations=1,
    )
    assert 0.4 < slope < 1.6, f"star k-scaling off: slope={slope:.2f}"


def test_sharedbit_expander_beats_bound(benchmark):
    """Well-connected graphs finish far below k·n (parallel connections)."""
    table, _ = _sweep(
        lambda n: expander(n, 4, seed=1), points=(8, 16, 32, 64), fixed=2,
        vary="n",
        title="SharedBit n-sweep on dynamic expanders (k=2, τ=1) — parallel regime",
    )
    write_report("fig1_r2_sharedbit_n_expander", table)
    print("\n" + table)
    ratios = []
    for n in (16, 64):
        topo = expander(n, 4, seed=1)
        rounds = median_rounds(
            lambda seed, topo=topo, n=n: gossip_rounds(
                "sharedbit", relabeled(topo, seed), n=n, k=2, seed=seed,
                max_rounds=200_000,
            )
        )
        ratios.append(rounds / sharedbit_bound(n, 2))
    benchmark.extra_info["ratio_n16"] = ratios[0]
    benchmark.extra_info["ratio_n64"] = ratios[1]
    topo = expander(32, 4, seed=1)
    benchmark.pedantic(
        lambda: gossip_rounds("sharedbit", relabeled(topo, 11), n=32, k=2,
                              seed=11, max_rounds=200_000),
        rounds=1, iterations=1,
    )
    # The looseness grows with n: measured/bound shrinks.
    assert ratios[1] < ratios[0]


def test_sharedbit_delta_insensitive_vs_blindmatch(benchmark):
    """Star vs expander at equal n: BlindMatch pays Δ², SharedBit doesn't."""
    rows = []
    outcomes = {}
    for topo, label in ((star(32), "star (Δ=31)"),
                        (expander(32, 4, seed=1), "expander (Δ=4)")):
        for algorithm in ("sharedbit", "blindmatch"):
            def run_once(seed, topo=topo, algorithm=algorithm):
                return gossip_rounds(
                    algorithm, relabeled(topo, seed), n=32, k=1, seed=seed,
                    max_rounds=600_000,
                )

            rounds = median_rounds(run_once)
            outcomes[(label, algorithm)] = rounds
            rows.append((label, algorithm, rounds))
    table = render_table(
        headers=("topology", "algorithm", "median rounds"),
        rows=rows,
        title="Δ-(in)sensitivity at n=32, k=1, τ=1",
    )
    write_report("fig1_r2_sharedbit_delta", table)
    print("\n" + table)
    star_gap = (
        outcomes[("star (Δ=31)", "blindmatch")]
        / outcomes[("star (Δ=31)", "sharedbit")]
    )
    expander_gap = (
        outcomes[("expander (Δ=4)", "blindmatch")]
        / outcomes[("expander (Δ=4)", "sharedbit")]
    )
    benchmark.extra_info["star_gap"] = star_gap
    benchmark.extra_info["expander_gap"] = expander_gap
    topo = star(32)
    benchmark.pedantic(
        lambda: gossip_rounds("sharedbit", relabeled(topo, 11), n=32, k=1,
                              seed=11, max_rounds=200_000),
        rounds=1, iterations=1,
    )
    # The b=0 penalty must be much larger on the high-Δ graph.
    assert star_gap > 1.5 * expander_gap, (
        f"expected the Δ² penalty on stars: star_gap={star_gap:.1f}, "
        f"expander_gap={expander_gap:.1f}"
    )
