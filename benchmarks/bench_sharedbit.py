"""FIG1-R2: SharedBit — O(k·n), b = 1, τ ≥ 1 (Theorem 5.1).

Where is O(k·n) tight?  The analysis counts *one* guaranteed productive
connection per round (Lemma 5.4).  On a star every connection involves the
hub, so at most one connection forms per round and the measured cost
really scales like k·n.  On an expander Θ(n) productive connections run in
parallel and SharedBit finishes far below the bound — the bound is
worst-case over topologies, and both regimes are measured here:

* n-sweep and k-sweep on dynamic stars: log-log slopes ≈ 1 against the
  bound's k·n;
* the same sweeps on dynamic expanders: far below the bound (recorded as
  the parallelism bonus, no slope claim);
* star vs expander against BlindMatch: the advertising bit neutralizes
  the Δ² acceptance-lottery penalty (the paper's b=0 vs b=1 gap).

All sweeps are declarative :class:`~repro.experiments.SweepSpec` grids run
through :func:`repro.experiments.run_sweep`.
"""

import pytest

from repro.analysis.bounds import sharedbit_bound
from repro.analysis.fits import loglog_slope
from repro.analysis.tables import render_table
from repro.experiments import SweepSpec, execute_run

from _common import run_bench_sweep, write_report


def _star_params(n: int) -> dict:
    return {"family": "star", "params": {"n": n}}


def _expander_params(n: int) -> dict:
    return {"family": "expander", "params": {"n": n, "degree": 4, "seed": 1}}


def _sweep(graph_spec_for, points, fixed, vary, title):
    """Generic sweep: vary n or k, return (table, slope, result)."""
    if vary == "n":
        base_graph, base_k = graph_spec_for(points[0]), fixed
        grid = {"graph.params.n": list(points)}
    else:
        base_graph, base_k = graph_spec_for(fixed), points[0]
        grid = {"instance.k": list(points)}
    spec = SweepSpec(
        name=f"fig1-r2-sharedbit-{vary}-{base_graph['family']}",
        base={
            "algorithm": "sharedbit",
            "graph": base_graph,
            "dynamic": {"kind": "relabeling", "tau": 1},
            "instance": {"kind": "uniform", "k": base_k},
            "max_rounds": 200_000,
            "engine": {"trace_sample_every": 1024},
        },
        grid=grid,
    )
    result = run_bench_sweep(spec)
    rows, xs, measured = [], [], []
    for value, summary in zip(points, result.points):
        n = value if vary == "n" else fixed
        k = value if vary == "k" else fixed
        rounds = summary.median_rounds
        bound = sharedbit_bound(n, k)
        rows.append((n, k, rounds, f"{bound:.0f}", f"{rounds / bound:.3f}"))
        xs.append(value)
        measured.append(rounds)
    slope = loglog_slope(xs, measured)
    table = render_table(
        headers=("n", "k", "median rounds", "bound kn", "ratio"),
        rows=rows,
        title=title,
    )
    return table + f"\nlog-log slope in {vary}: {slope:.2f}", slope, result


def _timing_payload(graph_spec: dict, n: int, k: int) -> dict:
    return {
        "algorithm": "sharedbit",
        "graph": graph_spec,
        "dynamic": {"kind": "relabeling", "tau": 1},
        "instance": {"kind": "uniform", "k": k},
        "max_rounds": 200_000,
        "engine": {"trace_sample_every": 1024},
        "seed": 11,
    }


def test_sharedbit_n_scaling_worst_case_star(benchmark):
    table, slope, _ = _sweep(
        _star_params, points=(8, 16, 32, 64), fixed=2, vary="n",
        title="SharedBit n-sweep on dynamic stars (k=2, τ=1) — bound-tight regime",
    )
    write_report("fig1_r2_sharedbit_n_star", table)
    print("\n" + table)
    benchmark.extra_info["n_slope_star"] = slope
    benchmark.pedantic(
        lambda: execute_run(_timing_payload(_star_params(16), 16, 2)),
        rounds=1, iterations=1,
    )
    # Theory: ~1 (hub serializes connections, so rounds track k·n).
    assert 0.6 < slope < 1.6, f"star n-scaling off: slope={slope:.2f}"


def test_sharedbit_k_scaling_worst_case_star(benchmark):
    table, slope, _ = _sweep(
        _star_params, points=(1, 2, 4, 8), fixed=16, vary="k",
        title="SharedBit k-sweep on a dynamic star (n=16, τ=1) — bound-tight regime",
    )
    write_report("fig1_r2_sharedbit_k_star", table)
    print("\n" + table)
    benchmark.extra_info["k_slope_star"] = slope
    benchmark.pedantic(
        lambda: execute_run(_timing_payload(_star_params(16), 16, 4)),
        rounds=1, iterations=1,
    )
    assert 0.4 < slope < 1.6, f"star k-scaling off: slope={slope:.2f}"


def test_sharedbit_expander_beats_bound(benchmark):
    """Well-connected graphs finish far below k·n (parallel connections)."""
    table, _, result = _sweep(
        _expander_params, points=(8, 16, 32, 64), fixed=2, vary="n",
        title="SharedBit n-sweep on dynamic expanders (k=2, τ=1) — parallel regime",
    )
    write_report("fig1_r2_sharedbit_n_expander", table)
    print("\n" + table)
    ratios = [
        result.point_for(n=n).median_rounds / sharedbit_bound(n, 2)
        for n in (16, 64)
    ]
    benchmark.extra_info["ratio_n16"] = ratios[0]
    benchmark.extra_info["ratio_n64"] = ratios[1]
    benchmark.pedantic(
        lambda: execute_run(_timing_payload(_expander_params(32), 32, 2)),
        rounds=1, iterations=1,
    )
    # The looseness grows with n: measured/bound shrinks.
    assert ratios[1] < ratios[0]


def test_sharedbit_delta_insensitive_vs_blindmatch(benchmark):
    """Star vs expander at equal n: BlindMatch pays Δ², SharedBit doesn't."""
    labels = {
        "star": "star (Δ=31)",
        "expander": "expander (Δ=4)",
    }
    spec = SweepSpec(
        name="fig1-r2-delta-insensitivity",
        base={
            "algorithm": "sharedbit",
            "graph": _star_params(32),
            "dynamic": {"kind": "relabeling", "tau": 1},
            "instance": {"kind": "uniform", "k": 1},
            "max_rounds": 600_000,
            "engine": {"trace_sample_every": 1024},
        },
        grid={
            "graph": [_star_params(32), _expander_params(32)],
            "algorithm": ["sharedbit", "blindmatch"],
        },
    )
    result = run_bench_sweep(spec)
    rows = []
    outcomes = {}
    for summary in result.points:
        label = labels[summary.point["graph"]["family"]]
        algorithm = summary.point["algorithm"]
        rounds = summary.median_rounds
        outcomes[(label, algorithm)] = rounds
        rows.append((label, algorithm, rounds))
    table = render_table(
        headers=("topology", "algorithm", "median rounds"),
        rows=rows,
        title="Δ-(in)sensitivity at n=32, k=1, τ=1",
    )
    write_report("fig1_r2_sharedbit_delta", table)
    print("\n" + table)
    star_gap = (
        outcomes[("star (Δ=31)", "blindmatch")]
        / outcomes[("star (Δ=31)", "sharedbit")]
    )
    expander_gap = (
        outcomes[("expander (Δ=4)", "blindmatch")]
        / outcomes[("expander (Δ=4)", "sharedbit")]
    )
    benchmark.extra_info["star_gap"] = star_gap
    benchmark.extra_info["expander_gap"] = expander_gap
    benchmark.pedantic(
        lambda: execute_run(_timing_payload(_star_params(32), 32, 1)),
        rounds=1, iterations=1,
    )
    # The b=0 penalty must be much larger on the high-Δ graph.
    assert star_gap > 1.5 * expander_gap, (
        f"expected the Δ² penalty on stars: star_gap={star_gap:.1f}, "
        f"expander_gap={expander_gap:.1f}"
    )
