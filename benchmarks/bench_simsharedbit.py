"""FIG1-R3: SimSharedBit — O(k·n + (1/α)·Δ^{1/τ}·log⁶n) (Theorem 5.6).

What distinguishes SimSharedBit from SharedBit is the additive leader-
election term and the loss of shared coins.  Measured here:

* SimSharedBit tracks SharedBit's k·n shape on the bound-tight star
  regime (within a small constant: interleaving halves the gossip rounds
  and early rounds may use mixed strings);
* the additive overhead stays bounded as k grows (it is k-independent);
* leader election itself converges in rounds consistent with its
  (1/α)·Δ^{1/τ}·polylog shape: expanders fast, low-α graphs slower,
  τ = 1 no worse than a constant factor off static.
"""

import pytest

from repro.analysis.fits import loglog_slope
from repro.analysis.tables import render_table
from repro.graphs.dynamic import StaticDynamicGraph
from repro.graphs.topologies import cycle, expander, star
from repro.leader.bitconvergence import run_leader_election

from _common import (
    DEFAULT_SEEDS,
    gossip_rounds,
    median_rounds,
    relabeled,
    write_report,
)


def _overhead_sweep():
    """SimSharedBit vs SharedBit across k on the bound-tight star."""
    rows = []
    overheads = []
    topo = star(16)
    for k in (1, 2, 4, 8):
        shared = median_rounds(
            lambda seed, k=k: gossip_rounds(
                "sharedbit", relabeled(topo, seed), n=16, k=k, seed=seed,
                max_rounds=400_000,
            )
        )
        sim = median_rounds(
            lambda seed, k=k: gossip_rounds(
                "simsharedbit", relabeled(topo, seed), n=16, k=k, seed=seed,
                max_rounds=400_000,
            )
        )
        rows.append((16, k, shared, sim, f"{sim / shared:.2f}"))
        overheads.append(sim / shared)
    table = render_table(
        headers=("n", "k", "SharedBit", "SimSharedBit", "ratio"),
        rows=rows,
        title="SimSharedBit overhead vs SharedBit (dynamic star, τ=1)",
    )
    return table, overheads


def _leader_rounds(dynamic_graph, n, seed):
    result = run_leader_election(
        dynamic_graph,
        uids=list(range(1, n + 1)),
        seed=seed,
        max_rounds=200_000,
    )
    assert result.terminated
    return result.rounds


def _leader_sweep():
    """Leader election round counts across the α and τ axes."""
    import statistics

    rows = []
    outcomes = {}
    cases = (
        ("expander, static", lambda seed: StaticDynamicGraph(
            expander(32, 4, seed=1))),
        ("expander, τ=1", lambda seed: relabeled(expander(32, 4, seed=1),
                                                 seed)),
        ("cycle (low α), static", lambda seed: StaticDynamicGraph(cycle(32))),
        ("star (Δ=31), τ=1", lambda seed: relabeled(star(32), seed)),
    )
    for label, dg_factory in cases:
        rounds = statistics.median(
            _leader_rounds(dg_factory(seed), 32, seed)
            for seed in DEFAULT_SEEDS
        )
        outcomes[label] = rounds
        rows.append((label, rounds))
    table = render_table(
        headers=("setting", "median rounds"),
        rows=rows,
        title="BitConvergence leader election at n=32",
    )
    return table, outcomes


def test_simsharedbit_overhead_bounded(benchmark):
    table, overheads = _overhead_sweep()
    write_report("fig1_r3_simsharedbit_overhead", table)
    print("\n" + table)
    benchmark.extra_info["overheads"] = overheads
    topo = star(16)
    benchmark.pedantic(
        lambda: gossip_rounds("simsharedbit", relabeled(topo, 11), n=16,
                              k=2, seed=11, max_rounds=400_000),
        rounds=1, iterations=1,
    )
    # Interleaving costs a factor ~2; mixed-string rounds and election can
    # add more at k=1, but the overhead must not *grow* with k (the
    # additive term is k-independent).
    assert overheads[-1] <= overheads[0] * 2.5
    assert all(o < 8 for o in overheads)


def test_simsharedbit_kn_shape_preserved(benchmark):
    """The k·n term dominates for large k: slope in k stays ~SharedBit's."""
    topo = star(16)
    ks, measured = [], []
    for k in (1, 2, 4, 8):
        rounds = median_rounds(
            lambda seed, k=k: gossip_rounds(
                "simsharedbit", relabeled(topo, seed), n=16, k=k, seed=seed,
                max_rounds=400_000,
            )
        )
        ks.append(k)
        measured.append(rounds)
    slope = loglog_slope(ks, measured)
    table = render_table(
        headers=("k", "median rounds"),
        rows=list(zip(ks, measured)),
        title="SimSharedBit k-sweep (dynamic star, τ=1)",
    )
    write_report("fig1_r3_simsharedbit_k", table + f"\nslope: {slope:.2f}")
    print("\n" + table + f"\nslope: {slope:.2f}")
    benchmark.extra_info["k_slope"] = slope
    benchmark.pedantic(
        lambda: gossip_rounds("simsharedbit", relabeled(topo, 11), n=16,
                              k=4, seed=11, max_rounds=400_000),
        rounds=1, iterations=1,
    )
    assert 0.3 < slope < 1.6, f"k-scaling off: slope={slope:.2f}"


def test_leader_election_shape(benchmark):
    table, outcomes = _leader_sweep()
    write_report("fig1_r3_leader_election", table)
    print("\n" + table)
    benchmark.extra_info.update(
        {label: rounds for label, rounds in outcomes.items()}
    )
    benchmark.pedantic(
        lambda: _leader_rounds(
            StaticDynamicGraph(expander(32, 4, seed=1)), 32, 11
        ),
        rounds=1, iterations=1,
    )
    # α-dependence: the low-α cycle is slower than the expander.
    assert outcomes["cycle (low α), static"] > outcomes["expander, static"]
