"""EXP-TAU: the Δ^{1/τ} stability discount (Theorems 5.6 / leader election).

The leader-election term of SimSharedBit's bound is
O((1/α)·Δ^{1/τ}·log⁶n): a topology that holds still for τ rounds lets
information structures survive long enough that the Δ penalty decays
exponentially in τ.  Measured on a relabeled star (the high-Δ worst
case): convergence rounds fall monotonically-ish as τ grows from 1 to
static, while on a low-Δ expander τ barely matters (Δ^{1/τ} ≈ 1 already).

This is the one factor of the Figure 1 bounds not exercised by the other
benches.
"""

import statistics

import pytest

from repro.analysis.tables import render_table
from repro.graphs.dynamic import RelabelingAdversary, StaticDynamicGraph
from repro.graphs.topologies import expander, star
from repro.leader.bitconvergence import run_leader_election

from _common import DEFAULT_SEEDS, write_report

N = 32
SEEDS = DEFAULT_SEEDS + (51, 67, 83, 97)


def leader_rounds(dynamic_graph, seed) -> int:
    result = run_leader_election(
        dynamic_graph,
        uids=list(range(1, N + 1)),
        seed=seed,
        max_rounds=400_000,
    )
    assert result.terminated
    return result.rounds


def _sweep(topo_factory, label):
    rows = []
    outcomes = {}
    for tau in (1, 4, 16, None):  # None = static
        def dg(seed, tau=tau):
            topo = topo_factory()
            if tau is None:
                return StaticDynamicGraph(topo)
            return RelabelingAdversary(topo, tau=tau, seed=seed)

        rounds = statistics.median(
            leader_rounds(dg(seed), seed) for seed in SEEDS
        )
        key = "inf" if tau is None else str(tau)
        outcomes[key] = rounds
        rows.append((label, key, rounds))
    return rows, outcomes


def test_stability_discount_on_high_delta_graph(benchmark):
    star_rows, star_out = _sweep(lambda: star(N), f"star (Δ={N - 1})")
    exp_rows, exp_out = _sweep(
        lambda: expander(N, 4, seed=1), "expander (Δ=4)"
    )
    table = render_table(
        headers=("topology", "tau", "median rounds"),
        rows=star_rows + exp_rows,
        title=f"EXP-TAU: leader election vs stability factor (n={N})",
    )
    table += (
        "\nTheory: the Δ^(1/τ) factor decays with τ on high-Δ graphs and "
        "is ≈1 regardless of τ when Δ is small."
    )
    write_report("exptau_stability", table)
    print("\n" + table)
    benchmark.extra_info.update(
        {f"star_tau_{k}": v for k, v in star_out.items()}
    )
    benchmark.extra_info.update(
        {f"expander_tau_{k}": v for k, v in exp_out.items()}
    )
    benchmark.pedantic(
        lambda: leader_rounds(
            RelabelingAdversary(star(N), tau=4, seed=11), 11
        ),
        rounds=1, iterations=1,
    )
    # High-Δ graph: stability should not hurt, and typically helps.  Our
    # BitConvergence substitute leans on a blind-mixing fallback whose
    # cost is τ-independent, so the measured discount is directional
    # rather than the full Δ^(1/τ) decay of [22]'s algorithm (noted in
    # EXPERIMENTS.md); tolerate run-to-run noise.
    assert star_out["inf"] < star_out["1"] * 1.25, (
        f"static should not lose badly to tau=1 on the star: {star_out}"
    )
    # Low-Δ graph: the whole sweep stays within a small band.
    assert max(exp_out.values()) < 4 * min(exp_out.values()), (
        f"expander should be tau-insensitive: {exp_out}"
    )
