"""SUB-3: the Transfer(ε) subroutine — O(log²N · log(logN/ε)) control bits.

The §3 cost claim, measured directly: control bits per invocation across
the N axis (should grow ~log²N, i.e. ~4× per N²-fold) and the ε axis
(logarithmically in 1/ε), plus the success-rate contract.
"""

import random
import statistics

import pytest

from repro.analysis.tables import render_table
from repro.bits import ceil_log2
from repro.commcplx.transfer import TransferProtocol

from _common import write_report


def _measure_bits(upper_n: int, epsilon: float, trials: int = 40) -> float:
    rng = random.Random(99)
    proto = TransferProtocol(upper_n=upper_n, epsilon=epsilon)
    costs = []
    for _ in range(trials):
        size_a = rng.randint(0, min(20, upper_n))
        size_b = rng.randint(0, min(20, upper_n))
        a = set(rng.sample(range(1, upper_n + 1), size_a))
        b = set(rng.sample(range(1, upper_n + 1), size_b))
        outcome = proto.locate(a, b, rng)
        costs.append(outcome.control_bits)
    return statistics.median(costs)


def _n_sweep():
    rows, ratios = [], []
    for exp in (6, 8, 10, 12, 14):
        upper_n = 2**exp
        bits = _measure_bits(upper_n, epsilon=1e-3)
        log2n = ceil_log2(upper_n)
        shape = log2n**2
        rows.append((upper_n, bits, shape, f"{bits / shape:.2f}"))
        ratios.append(bits / shape)
    table = render_table(
        headers=("N", "median control bits", "log²N", "ratio"),
        rows=rows,
        title="Transfer bit cost across N (ε=1e-3)",
    )
    return table, ratios


def _epsilon_sweep():
    rows, costs = [], []
    for epsilon in (1e-1, 1e-2, 1e-4, 1e-8):
        bits = _measure_bits(2**10, epsilon=epsilon)
        rows.append((f"{epsilon:.0e}", bits))
        costs.append(bits)
    table = render_table(
        headers=("epsilon", "median control bits"),
        rows=rows,
        title="Transfer bit cost across ε (N=1024)",
    )
    return table, costs


def _success_rate(upper_n=256, epsilon=1e-3, trials=500) -> float:
    rng = random.Random(5)
    proto = TransferProtocol(upper_n=upper_n, epsilon=epsilon)
    successes = 0
    attempts = 0
    for _ in range(trials):
        a = set(rng.sample(range(1, upper_n + 1), 12))
        b = set(rng.sample(range(1, upper_n + 1), 12))
        if a == b:
            continue
        attempts += 1
        outcome = proto.locate(a, b, rng)
        sym = (a | b) - (a & b)
        if outcome.token_id == min(sym):
            successes += 1
    return successes / attempts


def test_transfer_bits_scale_as_log_squared(benchmark):
    table, ratios = _n_sweep()
    write_report("sub3_transfer_n", table)
    print("\n" + table)
    benchmark.extra_info["ratios"] = ratios
    benchmark.pedantic(
        lambda: _measure_bits(2**10, 1e-3, trials=10), rounds=1, iterations=1
    )
    # measured / log²N varies by at most a small constant across the sweep
    # (the log(logN/ε) trial factor moves slowly).
    assert max(ratios) < 4 * min(ratios), f"ratios drift: {ratios}"


def test_transfer_bits_log_in_inverse_epsilon(benchmark):
    table, costs = _epsilon_sweep()
    write_report("sub3_transfer_eps", table)
    print("\n" + table)
    benchmark.extra_info["costs"] = costs
    benchmark.pedantic(
        lambda: _measure_bits(2**10, 1e-4, trials=10), rounds=1, iterations=1
    )
    # ε shrinking by 10^7 should cost only a small constant factor more.
    assert costs[-1] < 8 * costs[0]
    assert costs == sorted(costs), "cost must rise as ε tightens"


def test_transfer_success_contract(benchmark):
    rate = _success_rate()
    benchmark.extra_info["success_rate"] = rate
    benchmark.pedantic(
        lambda: _success_rate(trials=50), rounds=1, iterations=1
    )
    print(f"\nTransfer success rate at ε=1e-3: {rate:.4f}")
    write_report(
        "sub3_transfer_success",
        f"Transfer success rate at eps=1e-3, N=256: {rate:.4f} "
        "(contract: >= 1 - eps)",
    )
    assert rate >= 0.995
