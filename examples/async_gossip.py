"""Asynchronous gossip: the same algorithm when nobody shares a clock.

The paper's engine runs lock-step rounds; the asynchrony layer
(repro.asynchrony, DESIGN.md §7) runs the same protocols event by event
on per-node clocks — uniform scan jitter, slow/fast device classes, and
Gilbert-Elliott bursty stalls — as in the asynchronous mobile telephone
model of Newport-Weaver-Zheng.  This example spreads k tokens through
one expander mesh under each timing regime and compares the token-spread
curves (minimum coverage per round) and the spread time.

Run:  python examples/async_gossip.py
"""

from repro.analysis.tables import render_table
from repro.core.problem import uniform_instance
from repro.core.runner import coverage_gauge, run_gossip
from repro.graphs.dynamic import StaticDynamicGraph
from repro.graphs.topologies import expander

SEED = 7
N, K = 32, 4

TIMINGS = [
    ("synchronous", None),
    ("jitter 0.5", {"kind": "jitter", "jitter": 0.5}),
    ("jitter 0.9", {"kind": "jitter", "jitter": 0.9}),
    ("heterogeneous", {"kind": "heterogeneous",
                       "rates": [0.5, 1.0, 1.5]}),
    ("bursty", {"kind": "bursty", "p_pause": 0.15, "p_resume": 0.5,
                "pause_scale": 3.0}),
]


def main() -> None:
    rows = []
    curves = {}
    for label, timing in TIMINGS:
        instance = uniform_instance(n=N, k=K, seed=SEED)
        result = run_gossip(
            "sharedbit",
            StaticDynamicGraph(expander(n=N, degree=5, seed=SEED)),
            instance,
            seed=SEED,
            max_rounds=50_000,
            timing=timing,
            gauges={"coverage": coverage_gauge(instance.token_ids)},
            gauge_every=4,
        )
        curves[label] = [
            (rnd, value[0])  # (round, min coverage across nodes)
            for rnd, value in result.trace.gauge_series("coverage")
        ]
        events = (
            int(result.event_counts.sum())
            if result.event_counts is not None
            else N * result.rounds
        )
        rows.append((
            label,
            result.rounds,
            "yes" if result.solved else "no",
            result.trace.total_connections,
            events,
        ))
    print(render_table(
        headers=("timing regime", "rounds", "solved", "connections",
                 "events"),
        rows=rows,
        title=f"sharedbit token spread on an expander (n={N}, k={K}), "
              "synchronous vs asynchronous clocks",
    ))
    print()
    print("token-spread curves (min tokens known by any node, per round):")
    for label, curve in curves.items():
        shown = " ".join(f"r{rnd}:{cov}" for rnd, cov in curve[:8])
        print(f"  {label:<14} {shown}")


if __name__ == "__main__":
    main()
