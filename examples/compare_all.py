"""Run every algorithm on one mesh and compare their spread curves.

A side-by-side of the paper's algorithms (plus the b≥1 MultiBit
extension) on the bound-tight topology — a fully dynamic star — with each
run's coverage growth drawn as a sparkline.  CrowdedBin runs on the
static version of the same star (its τ=∞ requirement).

Run:  python examples/compare_all.py
"""

from repro.analysis.curves import sparkline, spread_curve_from_trace
from repro.analysis.tables import render_table
from repro.core.crowdedbin import CrowdedBinConfig
from repro.core.runner import ALGORITHMS, coverage_gauge, run_gossip
from repro.core.problem import uniform_instance
from repro.graphs.dynamic import RelabelingAdversary, StaticDynamicGraph
from repro.graphs.topologies import star

N, K, SEED = 16, 3, 13


def main() -> None:
    topo = star(N)
    rows = []
    curves = {}
    for algorithm in ALGORITHMS:
        instance = uniform_instance(n=N, k=K, seed=SEED)
        if algorithm == "crowdedbin":
            dynamic_graph = StaticDynamicGraph(topo)
            kwargs = dict(
                config=CrowdedBinConfig.practical(),
                termination_every=16,
                gauge_every=64,
            )
        else:
            dynamic_graph = RelabelingAdversary(topo, tau=1, seed=SEED)
            kwargs = dict(gauge_every=2)
        result = run_gossip(
            algorithm=algorithm,
            dynamic_graph=dynamic_graph,
            instance=instance,
            seed=SEED,
            max_rounds=2_000_000,
            gauges={"coverage": coverage_gauge(instance.token_ids)},
            trace_sample_every=1,
            **kwargs,
        )
        curve = spread_curve_from_trace(result.trace, k=K)
        curves[algorithm] = curve
        summary = curve.summary()
        rows.append(
            (
                algorithm,
                result.rounds,
                summary["t50"] if summary["t50"] is not None else "-",
                summary["t90"] if summary["t90"] is not None else "-",
                "yes" if result.solved else "no",
            )
        )

    print(
        render_table(
            headers=("algorithm", "rounds", "t50", "t90", "solved"),
            rows=rows,
            title=(
                f"all algorithms on a star mesh (n={N}, k={K}; "
                "CrowdedBin static, others tau=1)"
            ),
        )
    )
    print("\ncoverage growth (each bar spans that run's own duration):")
    for algorithm, curve in curves.items():
        bar = sparkline([v for _, v in curve.points], width=40)
        print(f"  {algorithm:>12}  {bar}")
    print(
        "\nSame destination, different shapes: the b=1 algorithms climb "
        "steadily;\nCrowdedBin idles through its schedule's spelling "
        "rounds, then PPUSH\nbursts carry whole bins at once."
    )


if __name__ == "__main__":
    main()
