"""Run every algorithm on one mesh and compare their spread curves.

A side-by-side of the paper's algorithms (plus the b≥1 MultiBit
extension) on the bound-tight topology — a fully dynamic star — with each
run's coverage growth drawn as a sparkline.  CrowdedBin and PPUSH run on
the static version of the same star (their τ=∞ requirement; PPUSH also
drops to its single rumor, k=1), stated as declarative overrides in the
sweep spec rather than hand-rolled branches:
the whole comparison is one :class:`~repro.experiments.SweepSpec`, so it
can run cached and process-parallel.

Run:  python examples/compare_all.py [--jobs N]
"""

import sys

from repro.analysis.curves import sparkline, spread_curve_from_series
from repro.analysis.tables import render_table
from repro.core.runner import ALGORITHMS
from repro.experiments import SweepSpec, argv_flag, run_sweep

N, K, SEED = 16, 3, 13


def comparison_sweep() -> SweepSpec:
    return SweepSpec(
        name="compare-all-star",
        base={
            "algorithm": ALGORITHMS[0],
            "graph": {"family": "star", "params": {"n": N}},
            "dynamic": {"kind": "relabeling", "tau": 1},
            "instance": {"kind": "uniform", "k": K},
            "max_rounds": 2_000_000,
            "engine": {
                "gauges": ["coverage"],
                "gauge_every": 2,
                "trace_sample_every": 1,
            },
        },
        grid={"algorithm": list(ALGORITHMS)},
        seeds=(SEED,),
        overrides=[
            {
                "when": {"algorithm": "crowdedbin"},
                "set": {
                    "dynamic": {"kind": "static"},
                    "config": {"preset": "practical"},
                    "engine.termination_every": 16,
                    "engine.gauge_every": 64,
                },
            },
            {
                # PPUSH spreads exactly one rumor and needs tau=inf.
                "when": {"algorithm": "ppush"},
                "set": {
                    "dynamic": {"kind": "static"},
                    "instance.k": 1,
                },
            },
        ],
    )


def main(argv=None) -> None:
    argv = list(sys.argv[1:] if argv is None else argv)
    jobs = int(argv_flag(argv, "--jobs", 1))
    result = run_sweep(comparison_sweep(), jobs=jobs)

    rows = []
    curves = {}
    for summary in result.points:
        algorithm = summary.point["algorithm"]
        record = summary.runs[0]
        k = 1 if algorithm == "ppush" else K  # ppush: one rumor
        curve = spread_curve_from_series(record["gauges"]["coverage"], k)
        curves[algorithm] = curve
        s = curve.summary()
        rows.append(
            (
                algorithm,
                record["rounds"],
                s["t50"] if s["t50"] is not None else "-",
                s["t90"] if s["t90"] is not None else "-",
                "yes" if summary.all_solved else "no",
            )
        )

    print(
        render_table(
            headers=("algorithm", "rounds", "t50", "t90", "solved"),
            rows=rows,
            title=(
                f"all algorithms on a star mesh (n={N}, k={K}; "
                "CrowdedBin static, others tau=1)"
            ),
        )
    )
    print("\ncoverage growth (each bar spans that run's own duration):")
    for algorithm, curve in curves.items():
        bar = sparkline([v for _, v in curve.points], width=40)
        print(f"  {algorithm:>12}  {bar}")
    print(
        "\nSame destination, different shapes: the b=1 algorithms climb "
        "steadily;\nCrowdedBin idles through its schedule's spelling "
        "rounds, then PPUSH\nbursts carry whole bins at once."
    )


if __name__ == "__main__":
    main()
