"""Degraded networks: the same gossip algorithms under realistic faults.

The paper's model assumes every phone is awake every round and every
accepted connection succeeds.  The fault layer (repro.sim.faults, see
DESIGN.md §6) deliberately breaks those assumptions — duty-cycled
radios, crash/rejoin churn, lossy links — while keeping the clean model
byte-identical as the null case.  This example runs SharedBit on one
mesh under each regime and shows what each kind of degradation costs.

Run:  python examples/degraded_network.py
"""

from repro.analysis.tables import render_table
from repro.core.problem import uniform_instance
from repro.core.runner import run_gossip
from repro.graphs.dynamic import GeometricMobilityGraph

SEED = 7
N, K = 32, 4

FAULTS = [
    ("clean", None),
    ("sleep 6/8", {"kind": "sleep", "period": 8, "duty": 6}),
    ("sleep 4/8", {"kind": "sleep", "period": 8, "duty": 4}),
    ("churn", {"kind": "churn", "cycle": 32, "crash_prob": 0.3,
               "min_outage": 4, "max_outage": 12}),
    ("churn+reset", {"kind": "churn", "cycle": 32, "crash_prob": 0.3,
                     "min_outage": 4, "max_outage": 12,
                     "reset_tokens": True}),
    ("lossy 25%", {"kind": "lossy", "drop_prob": 0.25}),
]


def main() -> None:
    rows = []
    for label, fault in FAULTS:
        graph = GeometricMobilityGraph(n=N, radius=0.35, step=0.05,
                                       tau=4, seed=SEED)
        result = run_gossip(
            "sharedbit",
            graph,
            uniform_instance(n=N, k=K, seed=SEED),
            seed=SEED,
            max_rounds=100_000,
            fault=fault,
            trace_sample_every=256,
        )
        rows.append((
            label,
            result.rounds,
            "yes" if result.solved else "no",
            result.trace.total_connections,
            result.trace.total_dropped_connections,
        ))
    print(render_table(
        headers=("fault regime", "rounds", "solved", "connections",
                 "dropped"),
        rows=rows,
        title=f"sharedbit on a mobility mesh (n={N}, k={K}), "
              "clean vs degraded",
    ))
    print(
        "Same seed, same mesh, same algorithm: only the fault regime "
        "changes.\nThe clean row is byte-identical to the pre-fault-layer "
        "engine (the\nNoFaults null-model guarantee, enforced by the "
        "differential harness)."
    )


if __name__ == "__main__":
    main()
