"""Festival mesh: why network stability is worth more than tag bits.

A dense, stationary festival crowd (the paper's Burning Man example) is
the τ = ∞ regime.  CrowdedBin exploits stability — spelling tag bits over
consecutive rounds, estimating k via crowded bins, then running parallel
PPUSH — and Theorem 6.10 says it needs only O((k/α)·log⁶n) rounds versus
SharedBit's O(k·n).  On a well-connected graph the asymptotic win is a
factor ≈ n; at demo sizes the polylog constants still favor SharedBit,
which is exactly the crossover the benchmarks chart (see
benchmarks/bench_ablations.py).

Run:  python examples/festival_stable.py
"""

from repro.analysis.bounds import crowdedbin_bound, sharedbit_bound
from repro.analysis.tables import render_table
from repro.core.crowdedbin import CrowdedBinConfig
from repro.core.runner import run_gossip
from repro.workloads.scenarios import festival_scenario

SEED = 5


def main() -> None:
    scenario = festival_scenario(n=32, k=4, seed=SEED)
    alpha = 0.5  # random 6-regular graphs have constant expansion
    rows = []
    for algorithm in ("sharedbit", "crowdedbin"):
        kwargs = dict(max_rounds=400_000, trace_sample_every=512)
        if algorithm == "crowdedbin":
            kwargs["config"] = CrowdedBinConfig.practical()
            kwargs["termination_every"] = 16
        result = run_gossip(
            algorithm=algorithm,
            dynamic_graph=scenario.dynamic_graph,
            instance=scenario.instance,
            seed=SEED,
            **kwargs,
        )
        bound = (
            sharedbit_bound(32, 4)
            if algorithm == "sharedbit"
            else crowdedbin_bound(32, 4, alpha)
        )
        rows.append(
            (
                algorithm,
                result.rounds,
                "yes" if result.solved else "no",
                f"{bound:.0f}",
            )
        )
    print(f"scenario: {scenario.description}")
    print(
        render_table(
            headers=("algorithm", "rounds", "solved", "bound shape (c=1)"),
            rows=rows,
            title="festival mesh (n=32, k=4, stable topology)",
        )
    )
    print(
        "\nCrowdedBin pays big polylog constants for its schedule; its win "
        "over\nO(k·n) materializes as n grows — the shape, not the constant, "
        "is the claim."
    )


if __name__ == "__main__":
    main()
