"""The fluent API: one chained expression per experiment.

Runs one SharedBit execution, then widens the same setup into a small
k-scaling sweep — both through ``repro.Experiment``, the registry-backed
builder that validates every name (algorithm, graph family, dynamics
kind, instance kind) at the line that uses it.

Run:  python examples/fluent_api.py
"""

from repro import Experiment

N, SEED = 16, 7


def main() -> None:
    record = (
        Experiment("sharedbit")
        .on_graph("cycle", n=N)
        .with_dynamics("relabeling", tau=2)
        .with_instance("uniform", k=2)
        .with_engine(trace_sample_every=1024)
        .seeded(SEED)
        .rounds(60_000)
        .run()
    )
    print(
        f"single run: sharedbit on a relabeled cycle (n={N}, k=2) -> "
        f"{record['rounds']} rounds, solved={record['solved']}"
    )

    result = (
        Experiment("sharedbit")
        .on_graph("cycle", n=N)
        .with_instance("uniform", k=1)
        .with_engine(trace_sample_every=1024)
        .rounds(60_000)
        .sweep("fluent-k-scaling")
        .vary("instance.k", [1, 2, 4])
        .seeds(11, 23)
        .run()
    )
    print()
    print(result.table())


if __name__ == "__main__":
    main()
