"""Inside SimSharedBit: electing a leader to disseminate a randomness seed.

SharedBit needs Θ(N³ log N) shared random bits, far beyond what polylog-bit
connections can ship.  §5.2's fix: all nodes know a poly(N) *family* of
candidate strings; each node samples a private seed naming one; leader
election (BitConvergence, from the author's IPDPS'17 paper) floats the
minimum UID's seed to everyone; that seed's string becomes the shared
randomness.  This example runs just that machinery and shows the seed
spreading with the candidate.

Run:  python examples/leader_seed.py
"""

import random

from repro.analysis.tables import render_table
from repro.commcplx.newman import SharedStringFamily
from repro.graphs.dynamic import RelabelingAdversary
from repro.graphs.topologies import expander
from repro.leader.bitconvergence import run_leader_election

N, SEED = 24, 3


def main() -> None:
    family = SharedStringFamily(master_seed=42, capacity_n=N)
    print(f"family: {family} (a seed costs {family.seed_bits} bits)\n")

    rng = random.Random(SEED)
    uids = list(range(1, N + 1))
    rng.shuffle(uids)
    payloads = [family.sample_seed(rng) for _ in range(N)]

    topo = expander(n=N, degree=4, seed=1)
    dg = RelabelingAdversary(topo, tau=1, seed=2)  # fully dynamic!
    result = run_leader_election(
        dg, uids=uids, payloads=payloads, seed=SEED, max_rounds=50_000
    )

    winner_vertex = uids.index(1)
    rows = [
        ("converged", "yes" if result.terminated else "no"),
        ("rounds", result.rounds),
        ("winning UID", 1),
        ("winning seed", payloads[winner_vertex]),
        ("seeds agreed", len({n.candidate_payload
                              for n in result.nodes.values()})),
    ]
    print(
        render_table(
            headers=("quantity", "value"),
            rows=rows,
            title=f"leader election on a fully dynamic expander (n={N}, tau=1)",
        )
    )

    shared = family.string_for_seed(payloads[winner_vertex])
    sample = [shared.token_bit(1, bundle) for bundle in range(16)]
    print(
        "\nall nodes now expand the winning seed into the same string; "
        f"\nfirst 16 token bits of group 1: {sample}"
    )


if __name__ == "__main__":
    main()
