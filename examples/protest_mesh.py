"""Protest mesh: gossip over a moving crowd with no infrastructure.

The paper's motivating scenario: phones of protesters drift through a
square; organizers hold a few messages that must reach everyone.  The
topology changes every few rounds (the τ ≥ 1 regime), and there is no
shared-randomness service — exactly the setting SimSharedBit was built
for.  We compare it against BlindMatch (b = 0) to show what the single
advertising bit buys.

Run:  python examples/protest_mesh.py
"""

from repro.analysis.tables import render_table
from repro.core.runner import run_gossip
from repro.workloads.scenarios import protest_scenario

SEED = 11


def main() -> None:
    rows = []
    for algorithm in ("blindmatch", "simsharedbit"):
        scenario = protest_scenario(n=30, k=4, seed=SEED, tau=4)
        result = run_gossip(
            algorithm=algorithm,
            dynamic_graph=scenario.dynamic_graph,
            instance=scenario.instance,
            seed=SEED,
            max_rounds=200_000,
            trace_sample_every=256,
        )
        rows.append(
            (
                algorithm,
                "0" if algorithm == "blindmatch" else "1",
                result.rounds,
                "yes" if result.solved else "no",
                result.trace.total_connections,
            )
        )
    print(f"scenario: {protest_scenario(seed=SEED).description}")
    print(
        render_table(
            headers=("algorithm", "tag bits b", "rounds", "solved",
                     "connections"),
            rows=rows,
            title="protest mesh (n=30, k=4, mobile topology, tau=4)",
        )
    )
    print(
        "\nWith b=0 every connection is a blind guess; with b=1 nodes only "
        "chase\nneighbors whose token sets provably differ.  At this density "
        "the two are\nclose — BlindMatch's Δ² penalty bites when hubs emerge "
        "(run\nbenchmarks/bench_doublestar.py to watch it), while "
        "SimSharedBit's O(kn)\nis insensitive to Δ."
    )


if __name__ == "__main__":
    main()
