"""Quickstart: spread k rumors through a smartphone mesh with SharedBit.

Builds a 32-phone mesh (a random-regular expander), drops 4 rumors at
random phones, and runs the paper's SharedBit algorithm (1 advertising
bit, shared randomness) until every phone knows every rumor.

Run:  python examples/quickstart.py
"""

from repro import core, graphs
from repro.analysis.tables import render_table
from repro.core.runner import coverage_gauge, potential_gauge
from repro.graphs.dynamic import StaticDynamicGraph

N, K, SEED = 32, 4, 7


def main() -> None:
    topo = graphs.expander(n=N, degree=4, seed=1)
    instance = core.uniform_instance(n=N, k=K, seed=SEED)
    print(f"mesh: {topo.name} n={topo.n} Δ={topo.max_degree}")
    print(f"rumors: {sorted(instance.token_ids)} (labels = origin UIDs)\n")

    result = core.run_gossip(
        algorithm="sharedbit",
        dynamic_graph=StaticDynamicGraph(topo),
        instance=instance,
        seed=SEED,
        max_rounds=20_000,
        gauges={
            "phi": potential_gauge(instance.token_ids),
            "coverage": coverage_gauge(instance.token_ids),
        },
        gauge_every=4,
    )

    rows = []
    for round_index, phi in result.trace.gauge_series("phi"):
        coverage = dict(result.trace.gauge_series("coverage"))[round_index]
        rows.append((round_index, phi, coverage[0], f"{coverage[1]:.1f}"))
    print(
        render_table(
            headers=("round", "potential φ", "min coverage", "mean coverage"),
            rows=rows,
            title="progress (φ = missing (node, token) pairs)",
        )
    )
    print(
        f"\nsolved={result.solved} in {result.rounds} rounds "
        f"(theory: O(k·n) = O({K * N}))"
    )
    print(
        f"connections={result.trace.total_connections}, "
        f"tokens moved={result.trace.total_tokens_moved}, "
        f"control bits={result.trace.total_control_bits}"
    )


if __name__ == "__main__":
    main()
