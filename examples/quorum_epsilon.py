"""ε-gossip: stop when a majority quorum mutually knows each other.

Many distributed tasks need responses from only a quorum — the paper's
motivation for ε-gossip (§7).  Every node starts with a token (k = n);
the run may stop once some ≥ εn nodes all know each other's tokens.
Theorem 7.4: SharedBit does this in O(n·√(Δ·logΔ)/((1−ε)·α)) rounds —
polynomially faster than the O(n²) full gossip needs.

Run:  python examples/quorum_epsilon.py
"""

from repro.analysis.tables import render_table
from repro.core.epsilon import run_epsilon_gossip
from repro.core.problem import everyone_starts_instance
from repro.core.runner import run_gossip
from repro.graphs.dynamic import StaticDynamicGraph
from repro.graphs.topologies import expander

N, SEED = 24, 9


def main() -> None:
    topo = expander(n=N, degree=6, seed=1)
    dg = StaticDynamicGraph(topo)

    rows = []
    for epsilon in (0.25, 0.5, 0.75, 0.9):
        result = run_epsilon_gossip(
            dg, epsilon=epsilon, seed=SEED, max_rounds=60_000
        )
        rows.append(
            (
                f"{epsilon:.2f}",
                result.rounds,
                "yes" if result.solved else "no",
                result.core_size,
            )
        )

    full = run_gossip(
        "sharedbit",
        dg,
        everyone_starts_instance(n=N, seed=SEED),
        seed=SEED,
        max_rounds=120_000,
    )
    rows.append(("1.00 (full)", full.rounds, "yes" if full.solved else "no", N))

    print(
        render_table(
            headers=("epsilon", "rounds", "solved", "mutual-knowledge core"),
            rows=rows,
            title=f"epsilon-gossip on an expander (n=k={N})",
        )
    )
    print(
        "\nA majority quorum (ε=0.5) forms long before full gossip "
        "completes —\nthe (1−ε) denominator of Theorem 7.4 in action."
    )


if __name__ == "__main__":
    main()
