"""Reproduce the paper's Figure 1 through the declarative sweep runner.

The whole comparison — three algorithms on a relabeled star, CrowdedBin
on the static star (τ = ∞ requirement), ε-gossip on a static expander —
is ONE :func:`repro.experiments.figure1_sweep` spec: a grid over
``algorithm`` plus declarative overrides for the two special rows.  The
same spec drives ``benchmarks/bench_figure1.py``, so the example and the
bench can never drift (and share cache entries).  That makes the figure
reproducible from its spec alone, cacheable, and parallel:

    python examples/sweep_figure1.py --jobs 4
    python examples/sweep_figure1.py --jobs 4 --cache-dir /tmp/fig1-cache

(The second run with a cache directory is free: every run is keyed by a
stable spec hash.)  This replaces the hand-rolled per-algorithm loop the
example suite used to carry.
"""

import sys

from repro.analysis.tables import figure1_table
from repro.experiments import (
    FIGURE1_ROW_KEYS,
    argv_flag,
    figure1_sweep,
    run_sweep,
)

N, K = 16, 2


def main(argv=None) -> None:
    argv = list(sys.argv[1:] if argv is None else argv)
    jobs = int(argv_flag(argv, "--jobs", 1))
    cache_dir = argv_flag(argv, "--cache-dir")

    sweep = figure1_sweep(n=N, k=K)
    result = run_sweep(sweep, jobs=jobs, cache_dir=cache_dir)

    measured = {
        key: result.point_for(algorithm=key).median_rounds
        for key in FIGURE1_ROW_KEYS
    }
    print(
        figure1_table(
            measured,
            title=(
                f"Figure 1 via run_sweep (jobs={jobs}): median rounds at "
                f"n={N}, k={K} (eps row: n=k={N}, eps=0.5); rows 1-3 "
                "dynamic star (tau=1), row 4 static, row 5 static expander"
            ),
        )
    )
    print()
    print(result.table())
    if cache_dir:
        print(
            f"cache: {result.cache_hits} hits, {result.cache_misses} misses"
        )


if __name__ == "__main__":
    main()
