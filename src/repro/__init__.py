"""repro — Gossip in a Smartphone Peer-to-Peer Network (Newport, PODC 2017).

A complete, from-scratch reproduction of the paper's system: the mobile
telephone model (a discrete-round simulator of smartphone peer-to-peer
services), the communication-complexity subroutines (EQTest, Transfer,
the Newman-style shared-string family), leader election, and all the
gossip algorithms with their analyses turned into measurable experiments.

Quickstart::

    from repro import graphs, core
    from repro.graphs.dynamic import StaticDynamicGraph

    topo = graphs.expander(n=32, degree=4, seed=1)
    result = core.run_gossip(
        algorithm="sharedbit",
        dynamic_graph=StaticDynamicGraph(topo),
        instance=core.uniform_instance(n=32, k=4, seed=7),
        seed=7,
        max_rounds=20_000,
    )
    print(result.rounds, result.solved)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every experiment.
"""

from repro import (
    graphs,
    sim,
    commcplx,
    core,
    leader,
    analysis,
    workloads,
    experiments,
)
from repro.core import (
    run_gossip,
    run_epsilon_gossip,
    uniform_instance,
    everyone_starts_instance,
    skewed_instance,
    ALGORITHMS,
)
from repro.errors import (
    ReproError,
    ConfigurationError,
    TopologyError,
    ProtocolViolationError,
    ChannelBudgetError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "graphs",
    "sim",
    "commcplx",
    "core",
    "leader",
    "analysis",
    "workloads",
    "experiments",
    "run_gossip",
    "run_epsilon_gossip",
    "uniform_instance",
    "everyone_starts_instance",
    "skewed_instance",
    "ALGORITHMS",
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "ProtocolViolationError",
    "ChannelBudgetError",
    "SimulationError",
    "__version__",
]
