"""repro — Gossip in a Smartphone Peer-to-Peer Network (Newport, PODC 2017).

A complete, from-scratch reproduction of the paper's system: the mobile
telephone model (a discrete-round simulator of smartphone peer-to-peer
services), the communication-complexity subroutines (EQTest, Transfer,
the Newman-style shared-string family), leader election, and all the
gossip algorithms with their analyses turned into measurable experiments.

Quickstart (the fluent facade — see :mod:`repro.api`)::

    from repro import Experiment

    record = (
        Experiment("sharedbit")
        .on_graph("expander", n=32, degree=4, seed=1)
        .with_instance("uniform", k=4)
        .seeded(7)
        .rounds(20_000)
        .run()
    )
    print(record["rounds"], record["solved"])

Every algorithm, topology family, dynamics kind, instance kind, fault
regime, timing regime, and
scenario is a named registration in :mod:`repro.registry`; plugins extend
all of them (including the CLI) without editing repro itself.  The lower
layers remain available: :func:`repro.core.run_gossip` for direct runs,
node classes + :class:`repro.sim.engine.Simulation` for custom setups.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every experiment.
"""

from repro import (
    registry,
    graphs,
    sim,
    asynchrony,
    commcplx,
    core,
    leader,
    analysis,
    workloads,
    experiments,
    api,
)
from repro.api import Experiment
from repro.core import (
    run_gossip,
    run_epsilon_gossip,
    uniform_instance,
    everyone_starts_instance,
    skewed_instance,
    ALGORITHMS,
)
from repro.errors import (
    ReproError,
    ConfigurationError,
    TopologyError,
    ProtocolViolationError,
    ChannelBudgetError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "registry",
    "api",
    "Experiment",
    "graphs",
    "sim",
    "asynchrony",
    "commcplx",
    "core",
    "leader",
    "analysis",
    "workloads",
    "experiments",
    "run_gossip",
    "run_epsilon_gossip",
    "uniform_instance",
    "everyone_starts_instance",
    "skewed_instance",
    "ALGORITHMS",
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "ProtocolViolationError",
    "ChannelBudgetError",
    "SimulationError",
    "__version__",
]
