"""Theory-vs-measurement utilities.

* :mod:`repro.analysis.bounds` — the paper's proven round-complexity bounds
  as evaluable functions of (n, k, α, Δ, τ, ε), one per theorem;
* :mod:`repro.analysis.fits` — log–log scaling-exponent estimation, ratio
  series, and crossover detection for comparing measured sweeps to bound
  shapes;
* :mod:`repro.analysis.tables` — plain-text tables in the layout of the
  paper's Figure 1, filled with measured numbers.
"""

from repro.analysis.bounds import (
    blindmatch_bound,
    sharedbit_bound,
    simsharedbit_bound,
    crowdedbin_bound,
    epsilon_gossip_bound,
    ppush_bound,
    doublestar_lower_bound,
    BOUNDS,
)
from repro.analysis.fits import (
    loglog_slope,
    ratio_series,
    crossover_point,
    geometric_mean,
)
from repro.analysis.tables import render_table, figure1_table
from repro.analysis.curves import (
    SpreadCurve,
    spread_curve_from_trace,
    sparkline,
)

__all__ = [
    "SpreadCurve",
    "spread_curve_from_trace",
    "sparkline",
    "blindmatch_bound",
    "sharedbit_bound",
    "simsharedbit_bound",
    "crowdedbin_bound",
    "epsilon_gossip_bound",
    "ppush_bound",
    "doublestar_lower_bound",
    "BOUNDS",
    "loglog_slope",
    "ratio_series",
    "crossover_point",
    "geometric_mean",
    "render_table",
    "figure1_table",
]
