"""The paper's proven bounds as evaluable reference curves.

Each function returns the *shape* of a bound — the asymptotic expression
with all hidden constants set to 1 — so benchmarks can compare measured
round counts against predicted scaling (ratios along a sweep should stay
roughly flat; measured/bound ratios drifting with n, k, Δ or α indicate a
shape mismatch).  Absolute values are meaningless; trends are the point.

================= =============================================  =========
Function          Expression                                     Source
================= =============================================  =========
blindmatch_bound  (1/α)·k·Δ²·log²n                               Thm 4.1
sharedbit_bound   k·n                                            Thm 5.1
simsharedbit      k·n + (1/α)·Δ^{1/τ}·log⁶n                      Thm 5.6
crowdedbin_bound  (k/α)·log⁶n                                    Thm 6.10
epsilon_gossip    n·√(Δ·logΔ) / ((1−ε)·α)                        Thm 7.4
ppush_bound       (1/α)·log⁴n                                    Thm 6.1
doublestar_lower  Δ²/√α                                          §1 / [22]
================= =============================================  =========
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = [
    "blindmatch_bound",
    "sharedbit_bound",
    "simsharedbit_bound",
    "crowdedbin_bound",
    "epsilon_gossip_bound",
    "ppush_bound",
    "doublestar_lower_bound",
    "BOUNDS",
]


def _check(n: int | None = None, k: int | None = None,
           alpha: float | None = None, delta: int | None = None,
           tau: float | None = None, epsilon: float | None = None) -> None:
    if n is not None and n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")
    if k is not None and k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if alpha is not None and alpha <= 0:
        raise ConfigurationError(f"alpha must be > 0, got {alpha}")
    if delta is not None and delta < 1:
        raise ConfigurationError(f"delta must be >= 1, got {delta}")
    if tau is not None and tau < 1:
        raise ConfigurationError(f"tau must be >= 1, got {tau}")
    if epsilon is not None and not 0 < epsilon < 1:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")


def _log2(value: float) -> float:
    return math.log2(max(value, 2.0))


def blindmatch_bound(n: int, k: int, alpha: float, delta: int) -> float:
    """Theorem 4.1: O((1/α)·k·Δ²·log²n) for b = 0, τ ≥ 1."""
    _check(n=n, k=k, alpha=alpha, delta=delta)
    return (1.0 / alpha) * k * delta**2 * _log2(n) ** 2


def sharedbit_bound(n: int, k: int) -> float:
    """Theorem 5.1: O(k·n) for b = 1, τ ≥ 1, shared randomness."""
    _check(n=n, k=k)
    return float(k * n)


def simsharedbit_bound(n: int, k: int, alpha: float, delta: int,
                       tau: float) -> float:
    """Theorem 5.6: O(k·n + (1/α)·Δ^{1/τ}·log⁶n) for b = 1, τ ≥ 1."""
    _check(n=n, k=k, alpha=alpha, delta=delta, tau=tau)
    leader_term = (1.0 / alpha) * float(delta) ** (1.0 / tau) * _log2(n) ** 6
    return k * n + leader_term


def crowdedbin_bound(n: int, k: int, alpha: float) -> float:
    """Theorem 6.10: O((k/α)·log⁶n) for b = 1, τ = ∞."""
    _check(n=n, k=k, alpha=alpha)
    return (k / alpha) * _log2(n) ** 6


def epsilon_gossip_bound(n: int, alpha: float, delta: int,
                         epsilon: float) -> float:
    """Theorem 7.4: O(n·√(Δ·logΔ) / ((1−ε)·α)) for SharedBit, k = n."""
    _check(n=n, alpha=alpha, delta=delta, epsilon=epsilon)
    return n * math.sqrt(delta * _log2(delta)) / ((1.0 - epsilon) * alpha)


def ppush_bound(n: int, alpha: float) -> float:
    """Theorem 6.1 (from [11]): PPUSH spreads a rumor in O(log⁴n / α)."""
    _check(n=n, alpha=alpha)
    return _log2(n) ** 4 / alpha


def doublestar_lower_bound(delta: int, alpha: float = None) -> float:
    """The Ω(Δ²/√α) lower bound for blind strategies ([22], §1 intuition).

    On the double star α = Θ(1/Δ), so the bound is Ω(Δ^2.5) there; passing
    ``alpha=None`` returns the Δ² core term only.
    """
    _check(delta=delta)
    if alpha is None:
        return float(delta**2)
    _check(alpha=alpha)
    return delta**2 / math.sqrt(alpha)


#: Name -> callable, for table generators.
BOUNDS = {
    "blindmatch": blindmatch_bound,
    "sharedbit": sharedbit_bound,
    "simsharedbit": simsharedbit_bound,
    "crowdedbin": crowdedbin_bound,
    "epsilon_gossip": epsilon_gossip_bound,
    "ppush": ppush_bound,
    "doublestar_lower": doublestar_lower_bound,
}
