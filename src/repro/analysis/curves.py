"""Spread curves: coverage-over-time summaries of gossip executions.

Round counts compress an execution to one number; these helpers keep the
shape.  From a trace carrying the ``coverage`` gauge (see
:func:`repro.core.runner.coverage_gauge`) they extract the rounds needed
to reach any coverage quantile and render a terminal-friendly sparkline —
used by the examples and handy when eyeballing why one run beat another
(fast start vs. short tail).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.trace import Trace

__all__ = [
    "SpreadCurve",
    "spread_curve_from_series",
    "spread_curve_from_trace",
    "sparkline",
]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class SpreadCurve:
    """Mean-coverage fraction over time, with quantile lookups.

    ``points`` is a list of ``(round, fraction)`` pairs with fraction in
    [0, 1]: the mean number of tokens known, normalized by k.
    """

    points: tuple
    k: int

    def __post_init__(self):
        if not self.points:
            raise ConfigurationError("a spread curve needs at least one point")
        rounds = [r for r, _ in self.points]
        if rounds != sorted(rounds):
            raise ConfigurationError("curve points must be round-ordered")

    def rounds_to_fraction(self, fraction: float) -> int | None:
        """First recorded round with mean coverage ≥ ``fraction`` (None if
        never reached within the trace)."""
        if not 0 < fraction <= 1:
            raise ConfigurationError(
                f"fraction must be in (0, 1], got {fraction}"
            )
        for round_index, value in self.points:
            if value >= fraction:
                return round_index
        return None

    @property
    def final_fraction(self) -> float:
        return self.points[-1][1]

    def summary(self) -> dict:
        """Rounds to 50% / 90% / 100% mean coverage."""
        return {
            "t50": self.rounds_to_fraction(0.5),
            "t90": self.rounds_to_fraction(0.9),
            "t100": self.rounds_to_fraction(1.0),
        }


def spread_curve_from_series(series, k: int) -> SpreadCurve:
    """Build a :class:`SpreadCurve` from ``(round, (min, mean))`` pairs.

    The pairs are the ``coverage`` gauge's samples — live from a trace or
    deserialized from an experiments-layer run record; the curve keeps the
    mean normalized by k.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    points = tuple(
        (round_index, min(mean / k, 1.0))
        for round_index, (_, mean) in series
    )
    return SpreadCurve(points=points, k=k)


def spread_curve_from_trace(trace: Trace, k: int,
                            gauge: str = "coverage") -> SpreadCurve:
    """Build a :class:`SpreadCurve` from the ``coverage`` gauge series."""
    series = trace.gauge_series(gauge)
    if not series:
        raise ConfigurationError(
            f"trace has no {gauge!r} gauge; pass coverage_gauge() to the run"
        )
    return spread_curve_from_series(series, k)


def sparkline(values, width: int = 40) -> str:
    """Render values in [0, 1] as a fixed-width unicode sparkline."""
    values = list(values)
    if not values:
        raise ConfigurationError("sparkline needs at least one value")
    for v in values:
        if not 0 <= v <= 1.0 + 1e-9:
            raise ConfigurationError(f"sparkline values must be in [0,1]: {v}")
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    # Resample to the target width by bucketing.
    if len(values) <= width:
        sampled = values
    else:
        sampled = []
        for i in range(width):
            lo = i * len(values) // width
            hi = max((i + 1) * len(values) // width, lo + 1)
            bucket = values[lo:hi]
            sampled.append(sum(bucket) / len(bucket))
    out = []
    for v in sampled:
        level = min(int(v * len(_SPARK_LEVELS)), len(_SPARK_LEVELS) - 1)
        out.append(_SPARK_LEVELS[level])
    return "".join(out)
