"""Fitting helpers for comparing measured sweeps against bound shapes.

The reproduction criterion for a theory paper is *shape agreement*: when
the bound predicts rounds ∝ k, a sweep over k should show log–log slope
≈ 1; when two algorithms are predicted to cross as α grows, the measured
curves should cross.  These helpers turn raw (x, rounds) sweeps into those
statements.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["loglog_slope", "ratio_series", "crossover_point", "geometric_mean"]


def loglog_slope(xs, ys) -> float:
    """Least-squares slope of log(y) against log(x).

    The empirical scaling exponent: ``ys ∝ xs**slope`` along the sweep.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape or xs.size < 2:
        raise ConfigurationError("need >= 2 paired samples")
    if np.any(xs <= 0) or np.any(ys <= 0):
        raise ConfigurationError("log-log fit needs positive values")
    slope, _ = np.polyfit(np.log(xs), np.log(ys), 1)
    return float(slope)


def ratio_series(measured, predicted) -> list[float]:
    """measured[i] / predicted[i]; flat in i means the shape matches."""
    if len(measured) != len(predicted):
        raise ConfigurationError("series must have equal length")
    out = []
    for m, p in zip(measured, predicted):
        if p <= 0:
            raise ConfigurationError(f"predicted value must be > 0, got {p}")
        out.append(m / p)
    return out


def geometric_mean(values) -> float:
    """Geometric mean (natural summary for round-count ratios)."""
    values = list(values)
    if not values:
        raise ConfigurationError("need at least one value")
    if any(v <= 0 for v in values):
        raise ConfigurationError("geometric mean needs positive values")
    return float(math.exp(sum(math.log(v) for v in values) / len(values)))


def crossover_point(xs, ys_a, ys_b) -> float | None:
    """The x where series A stops beating series B (linear interpolation).

    Returns None when one series dominates throughout.  Used for the
    SharedBit-vs-CrowdedBin crossover in α predicted by Theorems 5.1/6.10.
    """
    if not (len(xs) == len(ys_a) == len(ys_b)) or len(xs) < 2:
        raise ConfigurationError("need >= 2 aligned samples")
    diffs = [a - b for a, b in zip(ys_a, ys_b)]
    for i in range(1, len(diffs)):
        if diffs[i - 1] == 0:
            return float(xs[i - 1])
        if diffs[i - 1] * diffs[i] < 0:
            # Sign change in (a - b): interpolate the zero.
            x0, x1 = float(xs[i - 1]), float(xs[i])
            d0, d1 = diffs[i - 1], diffs[i]
            return x0 + (x1 - x0) * (abs(d0) / (abs(d0) + abs(d1)))
    if diffs[-1] == 0:
        return float(xs[-1])
    return None
