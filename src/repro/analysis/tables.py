"""Plain-text tables for regenerated results.

:func:`figure1_table` renders measured results in the layout of the
paper's Figure 1 (assumptions, algorithm, round complexity) with a
measured column appended; :func:`render_table` is the generic fixed-width
formatter the benchmarks use for sweep tables.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = ["render_table", "figure1_table"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def render_table(headers, rows, title: str = "") -> str:
    """Fixed-width ASCII table with right-aligned numeric columns."""
    if not headers:
        raise ConfigurationError("need at least one header")
    formatted = [[_format_cell(cell) for cell in row] for row in rows]
    for row in formatted:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in formatted), 1)
        if formatted
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        str(h).ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


#: The rows of the paper's Figure 1, in order.
_FIGURE1_ROWS = (
    ("b=0, tau>=1", "BlindMatch", "O((1/a) k D^2 log^2 n)"),
    ("b=1, tau>=1", "SharedBit*", "O(kn)"),
    ("b=1, tau>=1", "SimSharedBit**", "O(kn + (1/a) D^(1/tau) log^6 n)"),
    ("b=1, tau=inf", "CrowdedBin", "O((k/a) log^6 n)"),
    ("b=1, tau>=1 (eps)", "SharedBit*", "O(n sqrt(D log D) / ((1-eps) a))"),
)


def figure1_table(measured: dict[str, object],
                  title: str = "Figure 1 (regenerated)") -> str:
    """Render Figure 1 with a measured-rounds column.

    ``measured`` maps algorithm keys — ``blindmatch``, ``sharedbit``,
    ``simsharedbit``, ``crowdedbin``, ``epsilon`` — to measured round
    counts (or descriptive strings); missing keys render as ``-``.
    """
    keys = ("blindmatch", "sharedbit", "simsharedbit", "crowdedbin", "epsilon")
    rows = []
    for (assumptions, algorithm, bound), key in zip(_FIGURE1_ROWS, keys):
        rows.append(
            (assumptions, algorithm, bound, measured.get(key, "-"))
        )
    return render_table(
        headers=("Assumptions", "Algorithm", "Proven bound", "Measured rounds"),
        rows=rows,
        title=title,
    )
