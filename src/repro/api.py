"""The documented entry point: a fluent builder over the registry.

:class:`Experiment` assembles a :class:`~repro.experiments.specs.RunSpec`
step by step, validating every name against :mod:`repro.registry` at call
time (so typos fail at the line that made them, with the registered set
in the message), and either runs it directly or widens it into a
:class:`~repro.experiments.specs.SweepSpec` via :meth:`Experiment.sweep`.

Quickstart::

    from repro import Experiment

    record = (
        Experiment("sharedbit")
        .on_graph("expander", n=32, degree=4, seed=1)
        .with_instance("uniform", k=4)
        .seeded(7)
        .rounds(20_000)
        .run()
    )
    print(record["rounds"], record["solved"])

    result = (
        Experiment("sharedbit")
        .on_graph("cycle", n=16)
        .sweep("k-scaling")
        .vary("instance.k", [1, 2, 4])
        .seeds(11, 23, 37)
        .run(jobs=4)
    )
    print(result.table())

Everything the builder produces is an ordinary spec object: call
:meth:`Experiment.run_spec` / :meth:`SweepBuilder.spec` to get the
JSON-able artifact and drop down to :mod:`repro.experiments` directly.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.experiments.runner import execute_run, run_sweep
from repro.experiments.specs import RunSpec, SweepSpec, _deep_copy_jsonable
from repro.registry import (
    ALGORITHM_REGISTRY,
    DYNAMICS_REGISTRY,
    FAULT_REGISTRY,
    INSTANCE_REGISTRY,
    TIMING_REGISTRY,
    TOPOLOGY_REGISTRY,
    TRANSPORT_REGISTRY,
)

__all__ = ["Experiment", "SweepBuilder"]


class Experiment:
    """Fluent builder for one gossip execution.

    Every ``with_*``/``on_graph`` call validates its name against the
    registry immediately and returns ``self`` for chaining.
    """

    def __init__(self, algorithm: str):
        ALGORITHM_REGISTRY.get(algorithm)
        self._algorithm = algorithm
        self._graph: dict | None = None
        self._dynamic: dict = {"kind": "static"}
        self._instance: dict = {"kind": "uniform", "k": 1}
        self._fault: dict = {"kind": "none"}
        self._timing: dict = {"kind": "synchronous"}
        self._config: dict | None = None
        self._engine: dict = {}
        self._telemetry: dict | None = None
        self._seed = 0
        self._max_rounds = 200_000

    def on_graph(self, family: str, **params) -> "Experiment":
        """Choose the topology family and its parameters."""
        TOPOLOGY_REGISTRY.get(family)
        self._graph = {"family": family, "params": params}
        return self

    def with_dynamics(self, kind: str, **params) -> "Experiment":
        """Choose how the topology evolves (default: static)."""
        DYNAMICS_REGISTRY.get(kind)
        self._dynamic = {"kind": kind, **params}
        return self

    def with_instance(self, kind: str, **params) -> "Experiment":
        """Choose the initial token assignment (default: uniform, k=1)."""
        INSTANCE_REGISTRY.get(kind)
        self._instance = {"kind": kind, **params}
        return self

    def with_fault(self, kind: str, **params) -> "Experiment":
        """Choose the fault regime degrading the run (default: none)."""
        FAULT_REGISTRY.get(kind)
        self._fault = {"kind": kind, **params}
        return self

    def with_timing(self, kind: str, **params) -> "Experiment":
        """Choose the timing regime scheduling per-node cycles
        (default: synchronous — the paper's lock-step rounds)."""
        TIMING_REGISTRY.get(kind)
        self._timing = {"kind": kind, **params}
        return self

    def with_config(self, preset: str | None = None, **fields) -> "Experiment":
        """Set algorithm-config preset and/or field overrides."""
        config: dict = {}
        if preset is not None:
            config["preset"] = preset
        config.update(fields)
        self._config = config or None
        return self

    def with_engine(self, **fields) -> "Experiment":
        """Set engine knobs (trace_sample_every, gauges, ...)."""
        self._engine = dict(fields)
        return self

    def with_telemetry(self, enabled: bool = True,
                       stream=None) -> "Experiment":
        """Turn on metrics + phase profiling (:mod:`repro.telemetry`).

        The run record gains a ``"profile"`` phase table; ``stream``
        (a path) additionally appends one JSON line per closed span.
        Telemetry draws zero randomness, so results are byte-identical
        with it on or off.  ``with_telemetry(False)`` reverts to the
        default no-op bundle.
        """
        if not enabled:
            self._telemetry = None
            return self
        spec: dict = {"enabled": True}
        if stream is not None:
            spec["stream"] = str(stream)
        self._telemetry = spec
        return self

    def seeded(self, seed: int) -> "Experiment":
        self._seed = seed
        return self

    def rounds(self, max_rounds: int) -> "Experiment":
        self._max_rounds = max_rounds
        return self

    def _base_payload(self) -> dict:
        if self._graph is None:
            raise ConfigurationError(
                "no graph chosen; call .on_graph(family, **params) first"
            )
        payload = {
            "algorithm": self._algorithm,
            "graph": _deep_copy_jsonable(self._graph),
            "dynamic": _deep_copy_jsonable(self._dynamic),
            "instance": _deep_copy_jsonable(self._instance),
            "max_rounds": self._max_rounds,
        }
        if self._fault.get("kind", "none") != "none":
            payload["fault"] = _deep_copy_jsonable(self._fault)
        if self._timing.get("kind", "synchronous") != "synchronous":
            payload["timing"] = _deep_copy_jsonable(self._timing)
        if self._config is not None:
            payload["config"] = _deep_copy_jsonable(self._config)
        if self._engine:
            payload["engine"] = _deep_copy_jsonable(self._engine)
        if self._telemetry is not None:
            payload["telemetry"] = _deep_copy_jsonable(self._telemetry)
        return payload

    def run_spec(self) -> RunSpec:
        """The validated, JSON-able spec this builder describes."""
        return RunSpec.from_payload(dict(self._base_payload(),
                                         seed=self._seed))

    def run(self) -> dict:
        """Execute the run and return its JSON-able record."""
        return execute_run(self.run_spec())

    def deploy(self, transport: str = "tcp", chaos=None, **opts):
        """Run this experiment as a *live* cluster of peer servers.

        The same builder settings (graph, dynamics, instance, fault,
        seed, max rounds) boot real socket-backed peers through the
        named transport (see ``TRANSPORT_REGISTRY``; ``"tcp"`` is
        :mod:`repro.net`'s loopback deployment) and return the
        transport's run report.  Timing models are simulator-only and
        are rejected — a live cluster's asynchrony is physical.

        ``chaos`` selects **physical** fault injection
        (:class:`~repro.net.chaos.ChaosModel`): ``True`` enacts the
        builder's ``with_fault()`` schedule by actually killing,
        sleeping, or interdicting peers instead of masking them; a kind
        name or spec dict enacts that schedule directly.
        """
        defn = TRANSPORT_REGISTRY.get(transport)
        if self._timing.get("kind", "synchronous") != "synchronous":
            raise ConfigurationError(
                "deploy() cannot apply a simulated timing model; live "
                "clusters are asynchronous by nature — drop with_timing()"
            )
        from repro.experiments.specs import (
            build_config,
            build_dynamic_graph,
            build_instance,
        )

        payload = self._base_payload()
        graph = build_dynamic_graph(
            payload["graph"], payload["dynamic"], self._seed
        )
        instance = build_instance(payload["instance"], graph.n, self._seed)
        if chaos is True:
            if self._fault.get("kind", "none") == "none":
                raise ConfigurationError(
                    "deploy(chaos=True) enacts the builder's fault "
                    "schedule physically, but no with_fault() was set; "
                    "pass a chaos kind/spec or add a fault first"
                )
            opts["chaos"] = dict(self._fault)
        elif chaos is not None:
            opts["chaos"] = {"kind": chaos} if isinstance(chaos, str) \
                else chaos
        elif self._fault.get("kind", "none") != "none":
            opts.setdefault("fault", dict(self._fault))
        if self._config is not None:
            opts.setdefault(
                "config", build_config(self._algorithm, self._config)
            )
        return defn.deploy(
            algorithm=self._algorithm,
            dynamic_graph=graph,
            instance=instance,
            seed=self._seed,
            max_rounds=self._max_rounds,
            **opts,
        )

    def sweep(self, name: str) -> "SweepBuilder":
        """Widen into a sweep; the current settings become its base."""
        return SweepBuilder(name, self._base_payload())


class SweepBuilder:
    """Fluent builder for a :class:`SweepSpec` (made by Experiment.sweep)."""

    def __init__(self, name: str, base: dict):
        self._name = name
        self._base = base
        self._grid: dict = {}
        self._seeds: tuple = (11, 23, 37)
        self._overrides: list = []

    def vary(self, axis: str, values) -> "SweepBuilder":
        """Add a dotted-key grid axis (e.g. ``"instance.k", [1, 2, 4]``)."""
        self._grid[axis] = list(values)
        return self

    def seeds(self, *seeds: int) -> "SweepBuilder":
        self._seeds = tuple(seeds)
        return self

    def override(self, set: dict, when: dict | None = None) -> "SweepBuilder":
        """Add a declarative per-cell patch (dotted keys, like SweepSpec)."""
        entry: dict = {"set": dict(set)}
        if when is not None:
            entry["when"] = dict(when)
        self._overrides.append(entry)
        return self

    def spec(self) -> SweepSpec:
        """The validated, JSON-able sweep spec."""
        return SweepSpec(
            name=self._name,
            base=_deep_copy_jsonable(self._base),
            grid=_deep_copy_jsonable(self._grid),
            seeds=self._seeds,
            overrides=_deep_copy_jsonable(self._overrides),
        )

    def run(self, jobs: int = 1, cache_dir=None, progress=None, plugins=()):
        """Execute the sweep (see :func:`repro.experiments.run_sweep`)."""
        return run_sweep(
            self.spec(),
            jobs=jobs,
            cache_dir=cache_dir,
            progress=progress,
            plugins=plugins,
        )
