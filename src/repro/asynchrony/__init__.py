"""The asynchrony layer: per-node clocks over a deterministic event queue.

The round engine (:mod:`repro.sim.engine`) realizes the paper's lock-step
synchronous rounds; this package realizes the *asynchronous* mobile
telephone model of the follow-up work (Newport–Weaver–Zheng): every
device runs its own scan→propose→accept→connect cycle on its own clock,
scheduled by a pluggable :class:`~repro.asynchrony.timing.TimingModel`
and executed by :class:`~repro.asynchrony.engine.AsyncSimulation` off a
deterministic event heap.  One protocol surface, two execution
semantics — and the synchronous null model is provably (and
differentially tested to be) event-for-event identical to the round
engine.
"""

from repro.asynchrony.engine import AsyncSimulation
from repro.asynchrony.events import EventQueue
from repro.asynchrony.timing import (
    TICKS_PER_ROUND,
    GilbertElliottPauses,
    HeterogeneousRates,
    Synchronous,
    TimingModel,
    UniformJitter,
    build_timing,
)

__all__ = [
    "AsyncSimulation",
    "EventQueue",
    "TICKS_PER_ROUND",
    "TimingModel",
    "Synchronous",
    "UniformJitter",
    "HeterogeneousRates",
    "GilbertElliottPauses",
    "build_timing",
]
