"""The event-driven front half: the mobile telephone model, unsynchronized.

:class:`AsyncSimulation` runs the *same* protocols, acceptance rules,
channels, traces, and termination conditions as the round engine
(:class:`~repro.sim.engine.Simulation`), but drives them from a
deterministic event queue instead of a lock-step round loop: a
:class:`~repro.asynchrony.timing.TimingModel` assigns every node a
schedule of activation instants (integer virtual ticks, one synchronous
round = :data:`~repro.asynchrony.timing.TICKS_PER_ROUND` ticks), and each
activation executes one local **scan → propose → accept → connect**
cycle:

1. **scan** — the node refreshes its advertisement
   (``advertise(cycle, ...)``, indexed by the node's *local* cycle
   counter, not a global round) and reads its neighbors' *current*
   advertisements — whatever each neighbor last wrote, however stale;
2. **propose** — it may propose to one visible neighbor;
3. **accept** — proposals from nodes activating at the *same instant*
   (a *cohort*) are resolved against each other by the model's
   one-connection matching rule
   (:func:`~repro.sim.matching.resolve_proposals` — the exact resolver
   the round engine uses); proposal targets need not be activating (a
   phone's radio accepts incoming connections between app-level scans);
4. **connect** — matched pairs run the bounded Stage 3 exchange over a
   metered channel, instantaneously.

Trace records aggregate by *round window* (ticks
``[r·TPR, (r+1)·TPR)`` belong to window ``r``), so round-indexed curves
stay comparable across timing models;
the async columns (``virtual_time``, ``clock_skew_max``, ``events``)
record what the window looked like in event terms.  Termination is
checked at window boundaries — the same instants the round engine checks.

**The null-model invariant** (the subsystem's load-bearing contract):
under :class:`~repro.asynchrony.timing.Synchronous` timing every cohort
contains all ``n`` nodes at the exact instants ``1·TPR, 2·TPR, ...``,
and the execution is event-for-event identical to the round engine —
same tags, same proposals, same random-stream consumption, same matches,
same traces — on *both* engine paths.  On the object path this falls out
of the generic per-event cohort code (the equivalence the differential
harness :func:`~repro.experiments.fastpath.check_async_sync_identity`
actually proves); on the array path a synchronous full cohort reuses the
round engine's bulk-hook stages wholesale.  Jittered timing models are
restricted to the object path: bulk hooks consume the whole population's
random streams at once, which only a full synchronized cohort may do.

The fault layer composes: masks and drop decisions are evaluated per
node at the node's *local* cycle (a duty-cycled phone skips cycles by
its own clock), crash resets fire when a node's own schedule crosses
into an outage, and visibility is judged from the scanning node's clock.
"""

from __future__ import annotations

import numpy as np

from repro.errors import (
    ConfigurationError,
    ProtocolViolationError,
    RoundLimitExceeded,
)
from repro.asynchrony.events import EventQueue
from repro.asynchrony.timing import TICKS_PER_ROUND, Synchronous, TimingModel
from repro.sim.channel import Channel
from repro.sim.context import NeighborView
from repro.sim.engine import Simulation, SimulationResult
from repro.sim.matching import resolve_proposals, resolve_proposals_unbounded
from repro.sim.termination import TerminationCondition, never

__all__ = ["AsyncSimulation"]


class AsyncSimulation(Simulation):
    """Drive node protocols from per-node clocks over an event queue.

    Accepts everything :class:`~repro.sim.engine.Simulation` does plus
    ``timing`` (a built :class:`~repro.asynchrony.timing.TimingModel`;
    ``None`` means the synchronous null model).  ``engine_mode="array"``
    requires synchronous timing — see the module docstring.
    """

    def __init__(self, dynamic_graph, protocols, b: int, seed: int,
                 timing: TimingModel | None = None, **engine_kwargs):
        timing = timing if timing is not None else Synchronous(
            dynamic_graph.n, seed
        )
        if not timing.is_null:
            mode = engine_kwargs.get("engine_mode", "auto")
            if mode == "array":
                raise ConfigurationError(
                    "engine_mode='array' requires synchronous timing: bulk "
                    "hooks consume the whole population's streams at once, "
                    "which only full synchronized cohorts may do; use "
                    "'auto' or 'object'"
                )
            if timing.n != dynamic_graph.n:
                raise ConfigurationError(
                    f"timing model is bound to n={timing.n} but the graph "
                    f"has n={dynamic_graph.n}"
                )
            # Force the scalar hooks: partial cohorts activate node
            # subsets, so per-node calls are the only correct shape.
            engine_kwargs["engine_mode"] = "object"
        super().__init__(dynamic_graph, protocols, b, seed, **engine_kwargs)
        self.timing = timing
        self._queue = EventQueue()
        self._seeded = False
        #: Per-vertex activation totals (the per-node event counts).
        self.event_counts = np.zeros(self.n, dtype=np.int64)
        # Per-vertex local cycle counter (0 = not yet activated) and the
        # node's activity at its last cycle (for per-node crash detection
        # mirroring the round engine's mask-transition fallback).
        self._local_cycle = [0] * self.n
        self._node_active = [True] * self.n
        # Current-window accumulators, flushed into one RoundRecord per
        # window so round-indexed curves stay comparable across timings.
        self._acc_events = 0
        self._acc_active = 0
        self._acc_proposals = 0
        self._acc_connections = 0
        self._acc_tokens = 0
        self._acc_bits = 0
        self._acc_dropped = 0
        self._acc_last_ticks: int | None = None

    def step(self):  # pragma: no cover - guard against misuse
        raise ConfigurationError(
            "AsyncSimulation advances by events, not rounds; use run()"
        )

    def run(
        self,
        max_rounds: int,
        termination: TerminationCondition | None = None,
        raise_on_limit: bool = False,
    ) -> SimulationResult:
        """Run until ``termination`` fires at a window boundary or the
        virtual clock passes ``max_rounds`` rounds."""
        if max_rounds < 1:
            raise ConfigurationError(
                f"max_rounds must be >= 1, got {max_rounds}"
            )
        condition = termination or never()
        if not self._seeded:
            for vertex in range(self.n):
                self._queue.push(
                    self.timing.activation_ticks(vertex, 1), vertex, 1
                )
            self._seeded = True

        terminated = False
        while not terminated:
            next_ticks = self._queue.peek_ticks()
            if next_ticks is None:
                break
            window = next_ticks // TICKS_PER_ROUND
            if window > max_rounds:
                break
            # Close out every window that precedes this cohort's (empty
            # windows — bursty pauses — still get their zero records and
            # their termination checks, like the round engine's rounds).
            while not terminated and self._round < window - 1:
                terminated = self._flush_window(condition, max_rounds)
            if terminated:
                break
            ticks, members = self._queue.pop_cohort()
            if self._bulk is not None:
                self._process_cohort_synchronous(ticks, members)
            else:
                self._process_cohort(ticks, members)
            for vertex, cycle in members:
                self._queue.push(
                    self.timing.activation_ticks(vertex, cycle + 1),
                    vertex, cycle + 1,
                )
        # Drain: flush the window holding the final cohorts, then any
        # trailing empty windows up to the round budget.
        while not terminated and self._round < max_rounds:
            terminated = self._flush_window(condition, max_rounds)
        if not terminated and raise_on_limit:
            raise RoundLimitExceeded(
                f"no termination within {max_rounds} rounds",
                trace=self.trace,
            )
        return SimulationResult(
            rounds=self._round,
            terminated=terminated,
            trace=self.trace,
            nodes=self.protocols,
            event_counts=self.event_counts.copy(),
        )

    # ------------------------------------------------------------------
    # Window bookkeeping

    def _flush_window(
        self, condition: TerminationCondition, max_rounds: int
    ) -> bool:
        """Emit window ``self._round + 1``'s record; True if terminated."""
        rnd = self._round + 1
        cycles = self._local_cycle
        self._observe_round(
            rnd,
            self._acc_proposals,
            self._acc_connections,
            self._acc_tokens,
            self._acc_bits,
            self._acc_dropped,
            self._acc_active,
            virtual_time=(
                self._acc_last_ticks / TICKS_PER_ROUND
                if self._acc_last_ticks is not None
                else float(rnd)
            ),
            clock_skew_max=max(cycles) - min(cycles),
            events=self._acc_events,
        )
        self._acc_events = 0
        self._acc_active = 0
        self._acc_proposals = 0
        self._acc_connections = 0
        self._acc_tokens = 0
        self._acc_bits = 0
        self._acc_dropped = 0
        self._acc_last_ticks = None
        self._round = rnd
        return bool(
            (rnd % self.termination_every == 0 or rnd == max_rounds)
            and condition(self.protocols, rnd)
        )

    def _accumulate(self, ticks: int, events: int, active: int,
                    proposals: int, connections: int, tokens: int,
                    bits: int, dropped: int) -> None:
        self._acc_events += events
        self._acc_active += active
        self._acc_proposals += proposals
        self._acc_connections += connections
        self._acc_tokens += tokens
        self._acc_bits += bits
        self._acc_dropped += dropped
        self._acc_last_ticks = ticks

    # ------------------------------------------------------------------
    # Cohort execution

    def _process_cohort_synchronous(self, ticks: int, members) -> None:
        """A full synchronized cohort through the round engine's bulk
        stages (array path; null timing only — enforced in __init__)."""
        rnd = ticks // TICKS_PER_ROUND
        proposal_count, matches, dropped, mask = self._round_stages(rnd)
        tokens, bits = self._stage3(rnd, matches)
        for vertex, cycle in members:
            self._local_cycle[vertex] = cycle
        self.event_counts += 1
        self._accumulate(
            ticks, len(members),
            self.n if mask is None else int(mask.sum()),
            proposal_count, len(matches), tokens, bits, dropped,
        )

    def _process_cohort(self, ticks: int, members) -> None:
        """One cohort through the generic per-event path.

        ``members`` is ``[(vertex, cycle), ...]`` in ascending vertex
        order.  For a full synchronized cohort this reproduces the round
        engine's object path decision for decision: Stage 1 for every
        member in vertex order, then Stage 2 in the same order over the
        freshly-stored tags, then one resolution over the cohort's
        proposals — the equivalence the differential harness pins.
        """
        topo_round = ticks // TICKS_PER_ROUND
        self._refresh_adjacency(self.dynamic_graph.graph_at(topo_round))
        nodes = self._nodes
        tags = self._tags
        max_tag = self.max_tag

        # Fault masks, evaluated at each member's local cycle (memoized
        # per cohort; cohorts are usually single-cycle).
        masks: dict[int, np.ndarray | None] = {}

        def mask_for(cycle: int) -> np.ndarray | None:
            if cycle not in masks:
                mask = (
                    self.faults.active_mask(cycle)
                    if self._fault_active else None
                )
                if mask is not None:
                    mask = np.asarray(mask, dtype=bool)
                    if mask.shape != (self.n,):
                        raise ConfigurationError(
                            f"fault model returned a mask of shape "
                            f"{mask.shape}; expected ({self.n},)"
                        )
                    if mask.all():
                        mask = None
                masks[cycle] = mask
            return masks[cycle]

        # Crash resets, before any stage hook runs (the round engine's
        # ordering), detected per node against its own previous cycle.
        if self._fault_active and self.faults.resets_state:
            crashed_cache: dict[int, frozenset] = {}
            for vertex, cycle in members:
                if cycle not in crashed_cache:
                    reported = self.faults.crashed_this_round(cycle)
                    crashed_cache[cycle] = (
                        None if reported is None
                        else frozenset(np.asarray(reported).tolist())
                    )
                reported = crashed_cache[cycle]
                if reported is not None:
                    crashed = vertex in reported
                else:
                    mask = mask_for(cycle)
                    crashed = (
                        mask is not None
                        and not mask[vertex]
                        and self._node_active[vertex]
                    )
                if crashed:
                    reset = getattr(nodes[vertex], "reset_tokens", None)
                    if reset is not None:
                        reset()

        # Stage 1: scan — refresh each member's advertisement; a
        # fault-inactive member still runs its hook (the round engine's
        # masked semantics) but sees no neighbors and stays invisible.
        member_views: list[tuple[int, ...]] = []  # visible neighbor vertices
        active_count = 0
        for vertex, cycle in members:
            mask = mask_for(cycle)
            active = mask is None or bool(mask[vertex])
            if active:
                active_count += 1
                visible = (
                    self._neighbor_vertices[vertex]
                    if mask is None
                    else tuple(
                        nv for nv in self._neighbor_vertices[vertex]
                        if mask[nv]
                    )
                )
            else:
                visible = ()
            member_views.append(visible)
            neighbor_uids = tuple(nodes[nv].uid for nv in visible) \
                if mask is not None else self._neighbor_uids[vertex]
            if not active:
                neighbor_uids = ()
            tag = nodes[vertex].advertise(cycle, neighbor_uids)
            if not isinstance(tag, int) or not 0 <= tag <= max_tag:
                raise ProtocolViolationError(
                    f"node uid={nodes[vertex].uid} advertised tag {tag!r}; "
                    f"legal range with b={self.b} is [0, {self.max_tag}]"
                )
            tags[vertex] = tag
            self.event_counts[vertex] += 1
            self._local_cycle[vertex] = cycle
            self._node_active[vertex] = active

        # Stage 2: propose — each member reads its visible neighbors'
        # *current* advertisements (stale for neighbors that have not
        # activated recently: the asynchrony the NWZ model studies).
        proposals: dict[int, int] = {}
        cycle_of_uid: dict[int, int] = {}
        for (vertex, cycle), visible in zip(members, member_views):
            views = tuple(
                NeighborView(uid=nodes[nv].uid, tag=tags[nv])
                for nv in visible
            )
            target = nodes[vertex].propose(cycle, views)
            if target is None:
                continue
            if all(view.uid != target for view in views):
                raise ProtocolViolationError(
                    f"node uid={nodes[vertex].uid} proposed to "
                    f"uid={target}, not a visible neighbor at virtual "
                    f"time {ticks / TICKS_PER_ROUND:.4f}"
                )
            proposals[nodes[vertex].uid] = target
            cycle_of_uid[nodes[vertex].uid] = cycle

        # Accept: the cohort's proposals resolve against each other with
        # the round engine's resolver.  The acceptance stream is keyed by
        # the instant — a synchronized cohort at tick r·TPR draws from
        # the exact stream the round engine uses for round r.  With at
        # most one proposal no target can be contested, so the stream is
        # never drawn from; skipping its derivation keeps singleton
        # cohorts (the jittered common case) off the hashing path
        # without any observable difference.
        if self.acceptance == "unbounded":
            matches = resolve_proposals_unbounded(proposals)
        elif not proposals:
            matches = []
        else:
            if len(proposals) == 1:
                rng = None
            elif ticks % TICKS_PER_ROUND == 0:
                rng = self._tree.stream(
                    "match", ticks // TICKS_PER_ROUND
                )
            else:
                rng = self._tree.stream("match", "tick", ticks)
            matches = resolve_proposals(
                proposals, rng, rule=self.acceptance
            )

        # Fault drop decisions, keyed by the initiator's local cycle.
        dropped = 0
        if self._fault_active and matches:
            surviving = []
            for pair in matches:
                if self.faults.drop_connection(
                    cycle_of_uid[pair[0]], pair[0], pair[1]
                ):
                    dropped += 1
                else:
                    surviving.append(pair)
            matches = surviving

        # Connect: instantaneous bounded exchanges; the channel and the
        # interact hook see the initiator's local cycle as their round.
        tokens_moved = 0
        control_bits = 0
        for initiator_uid, responder_uid in matches:
            cycle = cycle_of_uid[initiator_uid]
            initiator = self.protocols[self._vertex_of_uid[initiator_uid]]
            responder = self.protocols[self._vertex_of_uid[responder_uid]]
            channel = Channel(cycle, initiator_uid, responder_uid,
                              self.channel_policy)
            initiator.interact(responder, channel, cycle)
            channel.close()
            tokens_moved += channel.tokens_moved
            control_bits += channel.bits.total_bits

        self._accumulate(
            ticks, len(members), active_count, len(proposals),
            len(matches), tokens_moved, control_bits, dropped,
        )
