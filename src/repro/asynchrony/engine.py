"""The event-driven front half: the mobile telephone model, unsynchronized.

:class:`AsyncSimulation` runs the *same* protocols, acceptance rules,
channels, traces, and termination conditions as the round engine
(:class:`~repro.sim.engine.Simulation`), but drives them from a
deterministic event schedule instead of a lock-step round loop: a
:class:`~repro.asynchrony.timing.TimingModel` assigns every node a
schedule of activation instants (integer virtual ticks, one synchronous
round = :data:`~repro.asynchrony.timing.TICKS_PER_ROUND` ticks), and each
activation executes one local **scan → propose → accept → connect**
cycle:

1. **scan** — the node refreshes its advertisement
   (``advertise(cycle, ...)``, indexed by the node's *local* cycle
   counter, not a global round) and reads its neighbors' *current*
   advertisements — whatever each neighbor last wrote, however stale;
2. **propose** — it may propose to one visible neighbor;
3. **accept** — proposals from nodes activating at the *same instant*
   (a *cohort*) are resolved against each other by the model's
   one-connection matching rule
   (:func:`~repro.sim.matching.resolve_proposals` — the exact resolver
   the round engine uses); proposal targets need not be activating (a
   phone's radio accepts incoming connections between app-level scans);
4. **connect** — matched pairs run the bounded Stage 3 exchange over a
   metered channel, instantaneously.

Trace records aggregate by *round window* (ticks
``[r·TPR, (r+1)·TPR)`` belong to window ``r``), so round-indexed curves
stay comparable across timing models;
the async columns (``virtual_time``, ``clock_skew_max``, ``events``)
record what the window looked like in event terms.  Termination is
checked at window boundaries — the same instants the round engine checks.

**The null-model invariant** (the subsystem's load-bearing contract):
under :class:`~repro.asynchrony.timing.Synchronous` timing every cohort
contains all ``n`` nodes at the exact instants ``1·TPR, 2·TPR, ...``,
and the execution is event-for-event identical to the round engine —
same tags, same proposals, same random-stream consumption, same matches,
same traces — on *both* engine paths.  The differential harness
(:func:`~repro.experiments.fastpath.check_async_sync_identity`) proves
it, and :func:`~repro.experiments.fastpath.check_async_batched_identity`
extends the same byte-identity bar to the batched window path below.

**Batched window execution** (``async_mode``): popping and processing
jittered cohorts one at a time pays full per-event Python dispatch for
what is usually a singleton — the 12x gap PR 5 measured.  When the
protocol population provides *window hooks*
(:func:`~repro.sim.protocol.window_hooks`), the engine instead drains
every cohort of the current round window in one pass (vectorized over
per-vertex next-activation arrays; the heap path uses
:meth:`~repro.asynchrony.events.EventQueue.pop_window`), computes the
whole window's schedule through the timing model's batched draws, scans
every activating member in a few vectorized passes, and then sweeps the
window's cohorts in event order, touching Python only where decisions
live: proposal candidates, per-cohort resolution
(:func:`~repro.sim.matching.resolve_proposal_cohorts` — singleton
cohorts derive no rng, contested cohorts draw from the exact per-tick
``("match", r)`` / ``("match", "tick", t)`` streams), fault drops, and
interactions.  Determinism is the hard constraint: no random draw moves.
Eager-scan protocols (SharedBit — shared-PRF tags only) tag the whole
window upfront and are *retagged* exactly at the activation positions
whose state changed mid-window (transfer endpoints, crash resets);
lazy-scan protocols (BlindMatch — private-rng coins) scan cohort by
cohort so each node's private stream interleaves with its Transfer
draws exactly as per-event execution orders them.  Crash resets and
fault masks compose per local cycle exactly as the per-event path does.
``async_mode="auto"`` picks the batched path whenever window hooks
resolve; ``"event"`` forces the generic per-event fallback (always
available, required for protocols without window hooks);
``"batched"`` forces the window machinery even under null timing, which
is how the differential gate pins batched-vs-round-engine identity.

The fault layer composes: masks and drop decisions are evaluated per
node at the node's *local* cycle (a duty-cycled phone skips cycles by
its own clock), crash resets fire when a node's own schedule crosses
into an outage, and visibility is judged from the scanning node's clock.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import (
    ConfigurationError,
    ProtocolViolationError,
    RoundLimitExceeded,
)
from repro.asynchrony.events import EventQueue
from repro.asynchrony.timing import TICKS_PER_ROUND, Synchronous, TimingModel
from repro.sim.channel import Channel
from repro.sim.context import NeighborView
from repro.sim.engine import Simulation, SimulationResult
from repro.sim.matching import (
    resolve_proposal_cohorts,
    resolve_proposals,
    resolve_proposals_unbounded,
)
from repro.sim.protocol import window_hooks
from repro.sim.termination import TerminationCondition, never

__all__ = ["AsyncSimulation"]

_ASYNC_MODES = ("auto", "event", "batched")


class AsyncSimulation(Simulation):
    """Drive node protocols from per-node clocks over an event schedule.

    Accepts everything :class:`~repro.sim.engine.Simulation` does plus
    ``timing`` (a built :class:`~repro.asynchrony.timing.TimingModel`;
    ``None`` means the synchronous null model) and ``async_mode``:

    * ``"auto"`` (default) — batched window execution when the
      population provides window hooks and the timing is asynchronous;
      the per-event path otherwise (null timing keeps the full-cohort
      fast paths).
    * ``"event"`` — always the generic per-event path.
    * ``"batched"`` — force the window machinery (requires window
      hooks), including under null timing: the differential harness's
      batched-vs-round-engine identity gate.

    ``engine_mode="array"`` under asynchronous timing requires the
    batched path (bulk hooks alone consume the whole population's
    streams at once, which only full synchronized cohorts may do).
    """

    def __init__(self, dynamic_graph, protocols, b: int, seed: int,
                 timing: TimingModel | None = None,
                 async_mode: str = "auto", **engine_kwargs):
        timing = timing if timing is not None else Synchronous(
            dynamic_graph.n, seed
        )
        if async_mode not in _ASYNC_MODES:
            raise ConfigurationError(
                f"async_mode must be one of {_ASYNC_MODES}, got "
                f"{async_mode!r}"
            )
        requested_mode = engine_kwargs.get("engine_mode", "auto")
        if not timing.is_null:
            if timing.n != dynamic_graph.n:
                raise ConfigurationError(
                    f"timing model is bound to n={timing.n} but the graph "
                    f"has n={dynamic_graph.n}"
                )
            if requested_mode != "array":
                # Force the scalar hooks for the per-event fallback:
                # partial cohorts activate node subsets, so per-node
                # calls are the only correct per-event shape.  (The
                # batched path never touches the bulk hooks either way.)
                engine_kwargs["engine_mode"] = "object"
        super().__init__(dynamic_graph, protocols, b, seed, **engine_kwargs)
        if self.acceptance_streams != "global":
            raise ConfigurationError(
                "AsyncSimulation supports only acceptance_streams="
                "'global': per-tick cohort resolution keys its streams "
                "by instant, not by target (the per-target discipline "
                "exists for the synchronous live bridge, repro.net)"
            )
        self.timing = timing
        self.async_mode = async_mode
        # Fault clock conversion: a clock="virtual" model keys its
        # decisions off the global round window (ticks // TPR) instead
        # of each node's local cycle, so one fault spec describes the
        # same wall-clock outage schedule here, on the round engine, and
        # on a live repro.net cluster.  Under Synchronous timing (and
        # any timing whose cycle c fires within window c, e.g. jitter
        # < 1) window index == local cycle, so the two clocks coincide
        # and the identity gates are unaffected.
        self._fault_virtual = (
            self._fault_active and self.faults.clock == "virtual"
        )
        self._window_ops = (
            window_hooks(self._nodes) if async_mode != "event" else None
        )
        if async_mode == "batched" and self._window_ops is None:
            raise ConfigurationError(
                "async_mode='batched' requires window protocol hooks "
                "(make_window_hooks) on a homogeneous population; this "
                "population has none — use 'auto' or 'event'"
            )
        if timing.is_null:
            # Null timing: full synchronized cohorts — the round-engine
            # fast paths are already the best shape, so the window
            # machinery runs only when explicitly requested (the
            # differential gate).
            self._batched = async_mode == "batched"
        else:
            self._batched = self._window_ops is not None
            if self.engine_mode == "array" and not self._batched:
                raise ConfigurationError(
                    "engine_mode='array' under asynchronous timing "
                    "requires the batched window path (window hooks): "
                    "bulk hooks consume the whole population's streams "
                    "at once, which only full synchronized cohorts may "
                    "do; use engine_mode 'auto'/'object', or a protocol "
                    "with window hooks and async_mode 'auto'/'batched'"
                )
        if not self._batched:
            self._window_ops = None
        self._queue = EventQueue()
        self._seeded = False
        #: Per-vertex activation totals (the per-node event counts).
        self.event_counts = np.zeros(self.n, dtype=np.int64)
        # Per-vertex local cycle counter (0 = not yet activated) and the
        # node's activity at its last cycle (for per-node crash detection
        # mirroring the round engine's mask-transition fallback).
        self._local_cycle = np.zeros(self.n, dtype=np.int64)
        self._node_active = np.ones(self.n, dtype=bool)
        # Batched-path schedule state: each vertex's next pending
        # activation, advanced in bulk through activation_ticks_batch.
        self._next_ticks: np.ndarray | None = None
        self._next_cycles: np.ndarray | None = None
        # Batched-path published advertisements ("whatever each neighbor
        # last wrote"; the per-event path keeps them in self._tags).
        self._tags_np = np.zeros(self.n, dtype=np.int64)
        # Current-window accumulators, flushed into one RoundRecord per
        # window so round-indexed curves stay comparable across timings.
        self._acc_events = 0
        self._acc_active = 0
        self._acc_proposals = 0
        self._acc_connections = 0
        self._acc_tokens = 0
        self._acc_bits = 0
        self._acc_dropped = 0
        self._acc_last_ticks: int | None = None

    def step(self):  # pragma: no cover - guard against misuse
        raise ConfigurationError(
            "AsyncSimulation advances by events, not rounds; use run()"
        )

    def run(
        self,
        max_rounds: int,
        termination: TerminationCondition | None = None,
        raise_on_limit: bool = False,
    ) -> SimulationResult:
        """Run until ``termination`` fires at a window boundary or the
        virtual clock passes ``max_rounds`` rounds."""
        if max_rounds < 1:
            raise ConfigurationError(
                f"max_rounds must be >= 1, got {max_rounds}"
            )
        condition = termination or never()
        if not self._seeded:
            if self._batched:
                vertices = np.arange(self.n, dtype=np.int64)
                cycles = np.ones(self.n, dtype=np.int64)
                self._next_ticks = self.timing.activation_ticks_batch(
                    vertices, cycles
                )
                self._next_cycles = cycles
            else:
                for vertex in range(self.n):
                    self._queue.push(
                        self.timing.activation_ticks(vertex, 1), vertex, 1
                    )
            self._seeded = True

        if self._batched:
            terminated = self._run_batched(condition, max_rounds)
        else:
            terminated = self._run_per_event(condition, max_rounds)
        # Drain: flush the window holding the final cohorts, then any
        # trailing empty windows up to the round budget.
        while not terminated and self._round < max_rounds:
            terminated = self._flush_window(condition, max_rounds)
        if not terminated and raise_on_limit:
            raise RoundLimitExceeded(
                f"no termination within {max_rounds} rounds",
                trace=self.trace,
            )
        return SimulationResult(
            rounds=self._round,
            terminated=terminated,
            trace=self.trace,
            nodes=self.protocols,
            event_counts=self.event_counts.copy(),
        )

    # ------------------------------------------------------------------
    # Main loops

    def _run_per_event(
        self, condition: TerminationCondition, max_rounds: int
    ) -> bool:
        """The generic fallback: one cohort at a time, drained per
        window through :meth:`EventQueue.pop_window`."""
        terminated = False
        while not terminated:
            next_ticks = self._queue.peek_ticks()
            if next_ticks is None:
                break
            window = next_ticks // TICKS_PER_ROUND
            if window > max_rounds:
                break
            # Close out every window that precedes this cohort's (empty
            # windows — bursty pauses — still get their zero records and
            # their termination checks, like the round engine's rounds).
            while not terminated and self._round < window - 1:
                terminated = self._flush_window(condition, max_rounds)
            if terminated:
                break
            boundary = (window + 1) * TICKS_PER_ROUND
            with self._prof.span("window.drain"):
                cohorts = self._drain_window(boundary)
            with self._prof.span("window.process"):
                for ticks, members in cohorts:
                    if self._bulk is not None:
                        self._process_cohort_synchronous(ticks, members)
                    else:
                        self._process_cohort(ticks, members)
        return terminated

    def _drain_window(self, boundary: int):
        """All cohorts below ``boundary``, next activations rescheduled.

        Schedules are pure functions of (seed, vertex, cycle) — never of
        execution state — so every drained member's next activation can
        be pushed *before* any cohort is processed.  Re-draining then
        catches fast clocks that fire twice inside one window, and a
        final (tick, vertex) sort merges the passes into exactly the
        cohort sequence repeated ``pop_cohort`` + process + push would
        produce (same-tick arrivals from different passes join one
        cohort, just as they would share the heap's minimum).
        """
        drained: list[tuple[int, int, int]] = []
        timing = self.timing
        queue = self._queue
        passes = 0
        while True:
            cohorts = queue.pop_window(boundary)
            if not cohorts:
                break
            passes += 1
            batch_vertices: list[int] = []
            batch_cycles: list[int] = []
            for ticks, members in cohorts:
                for vertex, cycle in members:
                    drained.append((ticks, vertex, cycle))
                    batch_vertices.append(vertex)
                    batch_cycles.append(cycle + 1)
            with self._prof.span("window.schedule"):
                next_ticks = timing.activation_ticks_batch(
                    np.asarray(batch_vertices, dtype=np.int64),
                    np.asarray(batch_cycles, dtype=np.int64),
                ).tolist()
            for vertex, cycle, ticks in zip(
                batch_vertices, batch_cycles, next_ticks
            ):
                queue.push(ticks, vertex, cycle)
        if passes > 1:
            drained.sort()
        out: list[tuple[int, list[tuple[int, int]]]] = []
        i = 0
        total = len(drained)
        while i < total:
            ticks = drained[i][0]
            members: list[tuple[int, int]] = []
            while i < total and drained[i][0] == ticks:
                members.append((drained[i][1], drained[i][2]))
                i += 1
            out.append((ticks, members))
        return out

    def _run_batched(
        self, condition: TerminationCondition, max_rounds: int
    ) -> bool:
        """The batched front half: whole round windows at a time."""
        terminated = False
        while not terminated:
            next_ticks = int(self._next_ticks.min())
            window = next_ticks // TICKS_PER_ROUND
            if window > max_rounds:
                break
            while not terminated and self._round < window - 1:
                terminated = self._flush_window(condition, max_rounds)
            if terminated:
                break
            boundary = (window + 1) * TICKS_PER_ROUND
            with self._prof.span("window.drain"):
                ticks, vertices, cycles = self._drain_window_arrays(
                    boundary
                )
            with self._prof.span("window.process"):
                self._process_window_batched(ticks, vertices, cycles)
        return terminated

    def _drain_window_arrays(self, boundary: int):
        """Array twin of :meth:`_drain_window`: all events below
        ``boundary`` as (ticks, vertices, cycles) sorted by
        (tick, vertex), with next activations advanced in bulk."""
        next_ticks = self._next_ticks
        next_cycles = self._next_cycles
        timing = self.timing
        parts = []
        while True:
            due = np.nonzero(next_ticks < boundary)[0]
            if due.size == 0:
                break
            parts.append(
                (next_ticks[due].copy(), due, next_cycles[due].copy())
            )
            following = next_cycles[due] + 1
            with self._prof.span("window.schedule"):
                next_ticks[due] = timing.activation_ticks_batch(
                    due, following
                )
            next_cycles[due] = following
        if len(parts) == 1:
            ticks, vertices, cycles = parts[0]
        else:
            ticks = np.concatenate([p[0] for p in parts])
            vertices = np.concatenate([p[1] for p in parts])
            cycles = np.concatenate([p[2] for p in parts])
        order = np.lexsort((vertices, ticks))
        return ticks[order], vertices[order], cycles[order]

    # ------------------------------------------------------------------
    # Window bookkeeping

    def _flush_window(
        self, condition: TerminationCondition, max_rounds: int
    ) -> bool:
        """Emit window ``self._round + 1``'s record; True if terminated."""
        rnd = self._round + 1
        cycles = self._local_cycle
        with self._prof.span("window.flush"):
            self._flush_window_record(rnd, cycles)
        self._round = rnd
        return bool(
            (rnd % self.termination_every == 0 or rnd == max_rounds)
            and condition(self.protocols, rnd)
        )

    def _flush_window_record(self, rnd: int, cycles) -> None:
        self._observe_round(
            rnd,
            self._acc_proposals,
            self._acc_connections,
            self._acc_tokens,
            self._acc_bits,
            self._acc_dropped,
            self._acc_active,
            virtual_time=(
                self._acc_last_ticks / TICKS_PER_ROUND
                if self._acc_last_ticks is not None
                else float(rnd)
            ),
            clock_skew_max=int(cycles.max()) - int(cycles.min()),
            events=self._acc_events,
        )
        self._acc_events = 0
        self._acc_active = 0
        self._acc_proposals = 0
        self._acc_connections = 0
        self._acc_tokens = 0
        self._acc_bits = 0
        self._acc_dropped = 0
        self._acc_last_ticks = None

    def _accumulate(self, ticks: int, events: int, active: int,
                    proposals: int, connections: int, tokens: int,
                    bits: int, dropped: int) -> None:
        self._acc_events += events
        self._acc_active += active
        self._acc_proposals += proposals
        self._acc_connections += connections
        self._acc_tokens += tokens
        self._acc_bits += bits
        self._acc_dropped += dropped
        self._acc_last_ticks = ticks

    def _mask_for_cycle(self, cycle: int, cache: dict):
        """The fault activity mask at one local cycle, validated and
        normalized (all-active collapses to ``None``), memoized."""
        if cycle not in cache:
            mask = (
                self.faults.active_mask(cycle)
                if self._fault_active else None
            )
            if mask is not None:
                mask = np.asarray(mask, dtype=bool)
                if mask.shape != (self.n,):
                    raise ConfigurationError(
                        f"fault model returned a mask of shape "
                        f"{mask.shape}; expected ({self.n},)"
                    )
                if mask.all():
                    mask = None
            cache[cycle] = mask
        return cache[cycle]

    # ------------------------------------------------------------------
    # Batched window execution

    def _bound_window_csr(self, topo_round: int):
        csr = self.dynamic_graph.csr_at(topo_round)
        bound = self._csr_bound
        if bound is None or bound.base is not csr:
            bound = self._csr_bound = csr.bind_uids(
                self._uid_array, arena=self._arena
            )
        return bound

    def _process_window_batched(self, ticks, vertices, cycles) -> None:
        """Execute one round window's cohorts in a few vectorized passes.

        ``ticks``/``vertices``/``cycles`` are the window's events sorted
        by (tick, vertex) — the exact per-event order.  Members with
        positions ``[0, committed)`` have *published* tags in
        ``self._tags_np``; candidate evaluation reads neighbor tags
        straight from that array, so stale-vs-fresh advertisement
        semantics fall out of committing in event order.
        """
        ops = self._window_ops
        total = len(vertices)
        # Round-parity skew guard (SharedBit, DESIGN.md §7): shared-PRF
        # tag derivation is keyed by each member's *own* local cycle
        # (ops.scan partitions by the cycles passed here), never by a
        # window-level round index — so clock skew beyond one window
        # (heterogeneous rates can put cycles.max() - cycles.min() far
        # past the window span) cannot desynchronize token_bits: two
        # nodes evaluating the same cycle always derive the same bits,
        # and no node is ever handed another clock's cycle.  The
        # invariant that makes that true is that every activation
        # advances its vertex's cycle strictly past the last committed
        # one.
        assert total == 0 or bool(
            (cycles > self._local_cycle[vertices]).all()
        ), "window member activated at a non-advancing local cycle"
        topo_round = int(ticks[0]) // TICKS_PER_ROUND
        bound = self._bound_window_csr(topo_round)

        # Cohort boundaries: bounds[c]:bounds[c+1] slices cohort c.
        change = np.empty(total, dtype=bool)
        change[0] = True
        np.not_equal(ticks[1:], ticks[:-1], out=change[1:])
        cohort_bounds = np.append(np.nonzero(change)[0], total)

        # Last-write-wins probe doubles as the uniqueness test: a vertex
        # appearing twice has its earlier position overwritten.
        positions = np.arange(total, dtype=np.int64)
        pos_of = np.full(self.n, -1, dtype=np.int64)
        pos_of[vertices] = positions
        unique_members = bool((pos_of[vertices] == positions).all())
        if unique_members:
            pos_lists = None
        else:
            pos_of = None
            pos_lists: dict[int, list[int]] = {}
            for pos, vertex in enumerate(vertices.tolist()):
                pos_lists.setdefault(vertex, []).append(pos)

        # Fault activity, per distinct fault index (the member's local
        # cycle, or — for clock="virtual" models — the shared round
        # window, collapsing the whole window to one mask lookup).
        mask_cache: dict[int, np.ndarray | None] = {}
        active_flags = np.ones(total, dtype=bool)
        if self._fault_active:
            if self._fault_virtual:
                fault_cycles = np.full(total, topo_round, dtype=np.int64)
            else:
                fault_cycles = cycles
            distinct_cycles = np.unique(fault_cycles).tolist()
            for cycle in distinct_cycles:
                mask = self._mask_for_cycle(cycle, mask_cache)
                if mask is not None:
                    sel = fault_cycles == cycle
                    active_flags[sel] = mask[vertices[sel]]

        # Pending per-position patches: crash resets (known upfront) and
        # mid-window state changes (scheduled at interaction time).
        pending_heap: list[int] = []
        pending_reset: dict[int, bool] = {}

        def schedule(pos: int, reset: bool) -> None:
            if pos in pending_reset:
                pending_reset[pos] = pending_reset[pos] or reset
            else:
                pending_reset[pos] = reset
                heapq.heappush(pending_heap, pos)

        if self._fault_active and self.faults.resets_state:
            self._schedule_crash_resets(
                vertices, fault_cycles, active_flags, distinct_cycles,
                unique_members, mask_cache, schedule,
            )

        nodes = self._nodes
        max_tag = self.max_tag
        tags_np = self._tags_np
        eager = ops.eager_scan

        if eager:
            opt_tags, senders = ops.scan(vertices, cycles)
            opt_tags = np.asarray(opt_tags, dtype=np.int64)
            self._check_tag_array(opt_tags, vertices)
            senders = np.array(senders, dtype=bool)
        else:
            opt_tags = None
            senders = None

        committed = 0

        def commit_slice(start: int, end: int) -> None:
            if start >= end:
                return
            chunk = vertices[start:end]
            if unique_members:
                tags_np[chunk] = opt_tags[start:end]
            else:
                # Duplicate vertices in the span: the latest position
                # must win, so assign via last occurrences.
                rev = chunk[::-1]
                uniq, first = np.unique(rev, return_index=True)
                tags_np[uniq] = opt_tags[start:end][::-1][first]

        def commit_to(end: int) -> None:
            nonlocal committed
            while pending_heap and pending_heap[0] < end:
                pos = heapq.heappop(pending_heap)
                reset = pending_reset.pop(pos)
                commit_slice(committed, pos)
                vertex = int(vertices[pos])
                cycle = int(cycles[pos])
                if reset:
                    reset_tokens = getattr(
                        nodes[vertex], "reset_tokens", None
                    )
                    if reset_tokens is not None:
                        reset_tokens()
                    ops.state_changed(vertex)
                new_tag = ops.retag(vertex, cycle)
                if not 0 <= new_tag <= max_tag:
                    raise ProtocolViolationError(
                        f"node uid={nodes[vertex].uid} advertised tag "
                        f"{new_tag!r}; legal range with b={self.b} is "
                        f"[0, {max_tag}]"
                    )
                tags_np[vertex] = new_tag
                senders[pos] = ops.sender_from_tag(new_tag)
                committed = pos + 1
            commit_slice(committed, end)
            committed = end

        def schedule_retags(vertex: int, after: int) -> None:
            """Mark ``vertex``'s not-yet-committed activations stale."""
            if unique_members:
                pos = int(pos_of[vertex])
                if pos >= after:
                    schedule(pos, False)
            else:
                for pos in pos_lists.get(vertex, ()):
                    if pos >= after:
                        schedule(pos, False)

        window_stats = [0, 0, 0, 0, 0]  # proposals, matches, tokens, bits, dropped

        if eager:
            # Sweep only the interesting cohorts: those holding a
            # proposal candidate or a pending patch; everything between
            # commits as vectorized slices.
            candidate_positions = np.nonzero(senders)[0].tolist()
            candidate_index = 0
            while True:
                while (
                    candidate_index < len(candidate_positions)
                    and candidate_positions[candidate_index] < committed
                ):
                    candidate_index += 1
                nxt = (
                    candidate_positions[candidate_index]
                    if candidate_index < len(candidate_positions)
                    else None
                )
                if pending_heap and (nxt is None or pending_heap[0] < nxt):
                    nxt = pending_heap[0]
                if nxt is None:
                    break
                cohort = int(
                    np.searchsorted(cohort_bounds, nxt, side="right")
                ) - 1
                cohort_start = int(cohort_bounds[cohort])
                cohort_end = int(cohort_bounds[cohort + 1])
                commit_to(cohort_end)
                cohort_candidates = (
                    np.nonzero(senders[cohort_start:cohort_end])[0]
                    + cohort_start
                ).tolist()
                if cohort_candidates:
                    self._execute_cohort_batched(
                        int(ticks[cohort_start]), cohort_candidates,
                        vertices, cycles, bound, mask_cache,
                        cohort_end, schedule_retags, window_stats,
                    )
            commit_to(total)
        else:
            # Lazy scan: the protocol's scan consumes private rng, so
            # cohorts run strictly in event order — the batched win here
            # is the drain, the schedule, and the resolution machinery.
            for cohort in range(len(cohort_bounds) - 1):
                cohort_start = int(cohort_bounds[cohort])
                cohort_end = int(cohort_bounds[cohort + 1])
                while pending_heap and pending_heap[0] < cohort_end:
                    pos = heapq.heappop(pending_heap)
                    pending_reset.pop(pos)
                    vertex = int(vertices[pos])
                    reset_tokens = getattr(
                        nodes[vertex], "reset_tokens", None
                    )
                    if reset_tokens is not None:
                        reset_tokens()
                    ops.state_changed(vertex)
                member_vertices = vertices[cohort_start:cohort_end]
                cohort_tags, cohort_senders = ops.scan(
                    member_vertices, cycles[cohort_start:cohort_end]
                )
                cohort_tags = np.asarray(cohort_tags, dtype=np.int64)
                self._check_tag_array(cohort_tags, member_vertices)
                tags_np[member_vertices] = cohort_tags
                cohort_candidates = (
                    np.nonzero(cohort_senders)[0] + cohort_start
                ).tolist()
                if cohort_candidates:
                    self._execute_cohort_batched(
                        int(ticks[cohort_start]), cohort_candidates,
                        vertices, cycles, bound, mask_cache,
                        cohort_end, schedule_retags, window_stats,
                    )
            committed = total

        # Per-window state updates (the per-event path does these per
        # member in stage 1; nothing inside the window reads them except
        # crash detection, which used the pre-window values above).
        if unique_members:
            self.event_counts[vertices] += 1
            self._local_cycle[vertices] = cycles
            self._node_active[vertices] = active_flags
        else:
            np.add.at(self.event_counts, vertices, 1)
            np.maximum.at(self._local_cycle, vertices, cycles)
            rev = vertices[::-1]
            uniq, first = np.unique(rev, return_index=True)
            self._node_active[uniq] = active_flags[::-1][first]

        self._accumulate(
            int(ticks[-1]), total,
            total if not self._fault_active else int(active_flags.sum()),
            window_stats[0], window_stats[1], window_stats[2],
            window_stats[3], window_stats[4],
        )

    def _schedule_crash_resets(
        self, vertices, cycles, active_flags, distinct_cycles,
        unique_members, mask_cache, schedule,
    ) -> None:
        """Find the members whose node crash-resets at their activation.

        Mirrors the per-event path: the fault model's
        ``crashed_this_round`` report is authoritative; without one, a
        crash is an active→inactive transition of the node's own mask
        bit between consecutive local cycles.
        """
        reported_cache: dict[int, np.ndarray | None] = {}
        for cycle in distinct_cycles:
            reported = self.faults.crashed_this_round(cycle)
            reported_cache[cycle] = (
                None if reported is None
                else np.asarray(reported, dtype=np.int64)
            )
        fallback_cycles = [
            cycle for cycle in distinct_cycles
            if reported_cache[cycle] is None
            and self._mask_for_cycle(cycle, mask_cache) is not None
        ]
        for cycle in distinct_cycles:
            reported = reported_cache[cycle]
            if reported is None:
                continue
            sel = np.nonzero(cycles == cycle)[0]
            crashed = sel[np.isin(vertices[sel], reported)]
            for pos in crashed.tolist():
                schedule(pos, True)
        if not fallback_cycles:
            return
        if unique_members:
            for cycle in fallback_cycles:
                mask = mask_cache[cycle]
                sel = np.nonzero(cycles == cycle)[0]
                crashed = sel[
                    ~mask[vertices[sel]] & self._node_active[vertices[sel]]
                ]
                for pos in crashed.tolist():
                    schedule(pos, True)
        else:
            # A vertex activating twice in the window: the second
            # cycle's transition check reads the activity its first
            # cycle establishes, so walk positions in event order.
            fallback = set(fallback_cycles)
            working = self._node_active.copy()
            for pos, (vertex, cycle) in enumerate(
                zip(vertices.tolist(), cycles.tolist())
            ):
                if cycle in fallback:
                    mask = mask_cache[cycle]
                    if not mask[vertex] and working[vertex]:
                        schedule(pos, True)
                working[vertex] = active_flags[pos]

    def _check_tag_array(self, tags, vertex_list) -> None:
        bad = (tags < 0) | (tags > self.max_tag)
        if bad.any():
            offender = int(np.nonzero(bad)[0][0])
            raise ProtocolViolationError(
                f"node uid={self._nodes[vertex_list[offender]].uid} "
                f"advertised tag {int(tags[offender])!r}; legal range "
                f"with b={self.b} is [0, {self.max_tag}]"
            )

    def _execute_cohort_batched(
        self, ticks, candidate_positions, vertices, cycles,
        bound, mask_cache, cohort_end, schedule_retags, window_stats,
    ) -> None:
        """Stage 2 + accept + connect for one cohort's candidates.

        Candidates run in ascending position (= vertex) order, each
        reading its visible neighborhood's *current* published tags; the
        cohort's proposals then resolve exactly as the per-event path
        resolves them (same stream keys, singleton cohorts derive no
        rng), fault drops are judged per match at the initiator's local
        cycle, and interactions run scalar — marking endpoints dirty so
        their later activations this window are retagged.
        """
        ops = self._window_ops
        nodes = self._nodes
        tags_np = self._tags_np
        fault_round = (
            ticks // TICKS_PER_ROUND if self._fault_virtual else None
        )
        proposer_uids: list[int] = []
        target_uids: list[int] = []
        cycle_of_uid: dict[int, int] = {}
        for pos in candidate_positions:
            vertex = int(vertices[pos])
            cycle = int(cycles[pos])
            mask = self._mask_for_cycle(
                cycle if fault_round is None else fault_round, mask_cache
            )
            snapshot = bound if mask is None else bound.masked_bound(mask)
            start = snapshot.indptr[vertex]
            end = snapshot.indptr[vertex + 1]
            neighbor_uids = snapshot.uids[start:end]
            neighbor_tags = tags_np[snapshot.indices[start:end]]
            target = ops.propose_one(
                vertex, cycle, neighbor_uids, neighbor_tags
            )
            if target < 0:
                continue
            if not (neighbor_uids == target).any():
                raise ProtocolViolationError(
                    f"node uid={nodes[vertex].uid} proposed to "
                    f"uid={target}, not a visible neighbor at virtual "
                    f"time {ticks / TICKS_PER_ROUND:.4f}"
                )
            uid = nodes[vertex].uid
            proposer_uids.append(uid)
            target_uids.append(target)
            cycle_of_uid[uid] = cycle
        if not proposer_uids:
            return
        window_stats[0] += len(proposer_uids)

        def rng_for_cohort(_cohort: int):
            if ticks % TICKS_PER_ROUND == 0:
                return self._tree.stream("match", ticks // TICKS_PER_ROUND)
            return self._tree.stream("match", "tick", ticks)

        matches = resolve_proposal_cohorts(
            proposer_uids, target_uids, (0, len(proposer_uids)),
            rng_for_cohort, rule=self.acceptance,
        )[0]

        if self._fault_active and matches:
            surviving = []
            for pair in matches:
                if self.faults.drop_connection(
                    cycle_of_uid[pair[0]]
                    if fault_round is None else fault_round,
                    pair[0], pair[1],
                ):
                    window_stats[4] += 1
                else:
                    surviving.append(pair)
            matches = surviving
        window_stats[1] += len(matches)

        for initiator_uid, responder_uid in matches:
            cycle = cycle_of_uid[initiator_uid]
            initiator_vertex = self._vertex_of_uid[initiator_uid]
            responder_vertex = self._vertex_of_uid[responder_uid]
            initiator = self.protocols[initiator_vertex]
            responder = self.protocols[responder_vertex]
            channel = Channel(cycle, initiator_uid, responder_uid,
                              self.channel_policy)
            initiator.interact(responder, channel, cycle)
            channel.close()
            window_stats[2] += channel.tokens_moved
            window_stats[3] += channel.bits.total_bits
            for endpoint in (initiator_vertex, responder_vertex):
                ops.state_changed(endpoint)
                if ops.needs_retag:
                    schedule_retags(endpoint, cohort_end)

    # ------------------------------------------------------------------
    # Per-event cohort execution (the generic fallback)

    def _process_cohort_synchronous(self, ticks: int, members) -> None:
        """A full synchronized cohort through the round engine's bulk
        stages (array path; null timing only — enforced in __init__)."""
        rnd = ticks // TICKS_PER_ROUND
        proposal_count, matches, dropped, mask = self._round_stages(rnd)
        tokens, bits = self._stage3(rnd, matches)
        for vertex, cycle in members:
            self._local_cycle[vertex] = cycle
        self.event_counts += 1
        self._accumulate(
            ticks, len(members),
            self.n if mask is None else int(mask.sum()),
            proposal_count, len(matches), tokens, bits, dropped,
        )

    def _process_cohort(self, ticks: int, members) -> None:
        """One cohort through the generic per-event path.

        ``members`` is ``[(vertex, cycle), ...]`` in ascending vertex
        order.  For a full synchronized cohort this reproduces the round
        engine's object path decision for decision: Stage 1 for every
        member in vertex order, then Stage 2 in the same order over the
        freshly-stored tags, then one resolution over the cohort's
        proposals — the equivalence the differential harness pins.
        """
        topo_round = ticks // TICKS_PER_ROUND
        self._refresh_adjacency(self.dynamic_graph.graph_at(topo_round))
        nodes = self._nodes
        tags = self._tags
        max_tag = self.max_tag
        # Round-parity skew guard — the per-event twin of the batched
        # path's assertion: advertise(cycle, ...) below is keyed by the
        # member's own advancing local cycle, so skew cannot
        # desynchronize shared-randomness (token_bits) derivation.
        assert all(
            cycle > self._local_cycle[vertex] for vertex, cycle in members
        ), "cohort member activated at a non-advancing local cycle"

        # Fault masks, evaluated at each member's local cycle — or, for
        # clock="virtual" models, at the shared round window (memoized
        # per cohort; cohorts are usually single-cycle).
        masks: dict[int, np.ndarray | None] = {}

        def fault_index(cycle: int) -> int:
            return topo_round if self._fault_virtual else cycle

        def mask_for(cycle: int) -> np.ndarray | None:
            return self._mask_for_cycle(fault_index(cycle), masks)

        # Crash resets, before any stage hook runs (the round engine's
        # ordering), detected per node against its own previous cycle.
        if self._fault_active and self.faults.resets_state:
            crashed_cache: dict[int, frozenset] = {}
            for vertex, cycle in members:
                fcycle = fault_index(cycle)
                if fcycle not in crashed_cache:
                    reported = self.faults.crashed_this_round(fcycle)
                    crashed_cache[fcycle] = (
                        None if reported is None
                        else frozenset(np.asarray(reported).tolist())
                    )
                reported = crashed_cache[fcycle]
                if reported is not None:
                    crashed = vertex in reported
                else:
                    mask = mask_for(cycle)
                    crashed = (
                        mask is not None
                        and not mask[vertex]
                        and self._node_active[vertex]
                    )
                if crashed:
                    reset = getattr(nodes[vertex], "reset_tokens", None)
                    if reset is not None:
                        reset()

        # Stage 1: scan — refresh each member's advertisement; a
        # fault-inactive member still runs its hook (the round engine's
        # masked semantics) but sees no neighbors and stays invisible.
        member_views: list[tuple[int, ...]] = []  # visible neighbor vertices
        active_count = 0
        for vertex, cycle in members:
            mask = mask_for(cycle)
            active = mask is None or bool(mask[vertex])
            if active:
                active_count += 1
                visible = (
                    self._neighbor_vertices[vertex]
                    if mask is None
                    else tuple(
                        nv for nv in self._neighbor_vertices[vertex]
                        if mask[nv]
                    )
                )
            else:
                visible = ()
            member_views.append(visible)
            neighbor_uids = tuple(nodes[nv].uid for nv in visible) \
                if mask is not None else self._neighbor_uids[vertex]
            if not active:
                neighbor_uids = ()
            tag = nodes[vertex].advertise(cycle, neighbor_uids)
            if not isinstance(tag, int) or not 0 <= tag <= max_tag:
                raise ProtocolViolationError(
                    f"node uid={nodes[vertex].uid} advertised tag {tag!r}; "
                    f"legal range with b={self.b} is [0, {self.max_tag}]"
                )
            tags[vertex] = tag
            self.event_counts[vertex] += 1
            self._local_cycle[vertex] = cycle
            self._node_active[vertex] = active

        # Stage 2: propose — each member reads its visible neighbors'
        # *current* advertisements (stale for neighbors that have not
        # activated recently: the asynchrony the NWZ model studies).
        proposals: dict[int, int] = {}
        cycle_of_uid: dict[int, int] = {}
        for (vertex, cycle), visible in zip(members, member_views):
            views = tuple(
                NeighborView(uid=nodes[nv].uid, tag=tags[nv])
                for nv in visible
            )
            target = nodes[vertex].propose(cycle, views)
            if target is None:
                continue
            if all(view.uid != target for view in views):
                raise ProtocolViolationError(
                    f"node uid={nodes[vertex].uid} proposed to "
                    f"uid={target}, not a visible neighbor at virtual "
                    f"time {ticks / TICKS_PER_ROUND:.4f}"
                )
            proposals[nodes[vertex].uid] = target
            cycle_of_uid[nodes[vertex].uid] = cycle

        # Accept: the cohort's proposals resolve against each other with
        # the round engine's resolver.  The acceptance stream is keyed by
        # the instant — a synchronized cohort at tick r·TPR draws from
        # the exact stream the round engine uses for round r.  With at
        # most one proposal no target can be contested, so the stream is
        # never drawn from; skipping its derivation keeps singleton
        # cohorts (the jittered common case) off the hashing path
        # without any observable difference.
        if self.acceptance == "unbounded":
            matches = resolve_proposals_unbounded(proposals)
        elif not proposals:
            matches = []
        else:
            if len(proposals) == 1:
                rng = None
            elif ticks % TICKS_PER_ROUND == 0:
                rng = self._tree.stream(
                    "match", ticks // TICKS_PER_ROUND
                )
            else:
                rng = self._tree.stream("match", "tick", ticks)
            matches = resolve_proposals(
                proposals, rng, rule=self.acceptance
            )

        # Fault drop decisions, keyed by the initiator's local cycle
        # (or the window, for clock="virtual" models).
        dropped = 0
        if self._fault_active and matches:
            surviving = []
            for pair in matches:
                if self.faults.drop_connection(
                    fault_index(cycle_of_uid[pair[0]]), pair[0], pair[1]
                ):
                    dropped += 1
                else:
                    surviving.append(pair)
            matches = surviving

        # Connect: instantaneous bounded exchanges; the channel and the
        # interact hook see the initiator's local cycle as their round.
        tokens_moved = 0
        control_bits = 0
        for initiator_uid, responder_uid in matches:
            cycle = cycle_of_uid[initiator_uid]
            initiator = self.protocols[self._vertex_of_uid[initiator_uid]]
            responder = self.protocols[self._vertex_of_uid[responder_uid]]
            channel = Channel(cycle, initiator_uid, responder_uid,
                              self.channel_policy)
            initiator.interact(responder, channel, cycle)
            channel.close()
            tokens_moved += channel.tokens_moved
            control_bits += channel.bits.total_bits

        self._accumulate(
            ticks, len(members), active_count, len(proposals),
            len(matches), tokens_moved, control_bits, dropped,
        )
