"""The deterministic event queue driving the asynchronous engine.

A plain binary heap of ``(ticks, vertex, cycle)`` triples: virtual time
in integer ticks first, vertex as the tiebreak.  Determinism needs
nothing more — ticks are exact integers (no float ordering hazards),
vertices are unique per pending event (each node has exactly one next
activation scheduled), so the pop order is a pure function of the pushed
schedule, which is itself a pure function of the run seed.

The engine consumes events in *cohorts*: all events sharing the minimal
tick, popped together in ascending vertex order.  Simultaneity is
semantic, not incidental — a cohort scans the same world state and its
proposals are resolved against each other by the model's one-connection
matching rule, which is exactly what makes the synchronous schedule
(every node at tick ``c·TPR``) collapse to the round engine's rounds.
"""

from __future__ import annotations

import heapq

__all__ = ["EventQueue"]


class EventQueue:
    """Min-heap of ``(ticks, vertex, cycle)`` activation events."""

    def __init__(self):
        self._heap: list[tuple[int, int, int]] = []

    def push(self, ticks: int, vertex: int, cycle: int) -> None:
        heapq.heappush(self._heap, (ticks, vertex, cycle))

    def peek_ticks(self) -> int | None:
        """The minimal pending tick, or ``None`` when drained."""
        return self._heap[0][0] if self._heap else None

    def pop_cohort(self) -> tuple[int, list[tuple[int, int]]]:
        """Pop every event at the minimal tick.

        Returns ``(ticks, [(vertex, cycle), ...])`` with members in
        ascending vertex order (the heap's tiebreak) — the same vertex
        order the round engine's stages iterate in.
        """
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        ticks = self._heap[0][0]
        members: list[tuple[int, int]] = []
        while self._heap and self._heap[0][0] == ticks:
            _, vertex, cycle = heapq.heappop(self._heap)
            members.append((vertex, cycle))
        return ticks, members

    def pop_window(self, boundary: int) -> list[tuple[int, list[tuple[int, int]]]]:
        """Pop every cohort whose tick is strictly below ``boundary``.

        Returns ``[(ticks, [(vertex, cycle), ...]), ...]`` in ascending
        tick order, each cohort's members in ascending vertex order —
        exactly the sequence repeated :meth:`pop_cohort` calls would
        produce, but in one heap pass.  A round window holds thousands of
        singleton cohorts under jittered timing, so draining the window
        at once is what keeps the per-event loop's queue overhead off the
        per-cohort price.  An empty list means no pending event precedes
        the boundary (the queue itself may still hold later events).
        """
        heap = self._heap
        cohorts: list[tuple[int, list[tuple[int, int]]]] = []
        while heap and heap[0][0] < boundary:
            ticks = heap[0][0]
            members: list[tuple[int, int]] = []
            while heap and heap[0][0] == ticks:
                _, vertex, cycle = heapq.heappop(heap)
                members.append((vertex, cycle))
            cohorts.append((ticks, members))
        return cohorts

    def __len__(self) -> int:
        return len(self._heap)

    def __repr__(self) -> str:
        head = self._heap[0] if self._heap else None
        return f"EventQueue(pending={len(self._heap)}, next={head})"
