"""Per-node clocks: when each device's local gossip cycle fires.

The paper's mobile telephone model assumes lock-step synchronous rounds:
every phone scans, proposes, and connects at the same global instants.
Real smartphone P2P stacks are not like that — Newport, Weaver & Zheng's
*Asynchronous Gossip in Smartphone Peer-to-Peer Networks* reformulates
the model with unsynchronized per-device scan/connect timing, and the
random gossip processes line studies spreading under relaxed pairwise
schedules.  This module is the home of that axis: a :class:`TimingModel`
assigns every node a schedule of *activation instants* — the virtual
times at which the node runs one scan→propose→connect cycle — and the
event-driven engine (:class:`~repro.asynchrony.engine.AsyncSimulation`)
executes those cycles off a deterministic queue.

Virtual time is integer **ticks**; one synchronous round spans
:data:`TICKS_PER_ROUND` ticks, so tick arithmetic is exact (no float
heap-ordering hazards) and the synchronous schedule lands every node on
the exact instants ``1·TPR, 2·TPR, ...``.  Every activation time is a
*pure function of (seed, vertex, cycle)* — never of call order — drawn
from a dedicated ``("async", kind)`` :class:`~repro.rng.SeedTree`
subtree, so clock jitter perturbs neither the engine's acceptance stream
nor any node's private stream, and any consumer (either engine path, any
``run_sweep --jobs`` value, a replay) derives the same schedule.

The null model :class:`Synchronous` consumes **zero** randomness and is
*event-for-event identical* to the round engine — enforced by
:func:`repro.experiments.fastpath.check_async_sync_identity` on both the
object and the array engine path.

Model contract beyond purity:

* ``activation_ticks(vertex, cycle)`` is strictly increasing in
  ``cycle`` for every vertex (a device's cycles never reorder);
* the first activation is at tick >= :data:`TICKS_PER_ROUND` (round 1 is
  the first round — no activity happens before the topology exists).

Timing composes with the fault layer: a
:class:`~repro.sim.faults.SleepCycle` duty cycle masks *which cycles a
node participates in* (indexed by the node's local cycle counter) while
the timing model decides *when* those cycles fire — a phone can be both
slow-clocked and duty-cycled.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.registry import TIMING_REGISTRY, register_timing
from repro.rng import SeedTree, prf_template, serialize_index

__all__ = [
    "TICKS_PER_ROUND",
    "TimingModel",
    "Synchronous",
    "UniformJitter",
    "HeterogeneousRates",
    "GilbertElliottPauses",
    "build_timing",
]

#: Virtual-time resolution: one synchronous round in integer ticks.  A
#: power of two so sub-round offsets scale exactly and ``tick // TPR``
#: (the round-window index) is a shift.
TICKS_PER_ROUND = 1 << 20


def build_timing(spec: dict | None, n: int, seed: int) -> "TimingModel | None":
    """Build a timing model from a ``{"kind": ..., **params}`` spec dict.

    The one constructor every layer shares (``run_gossip``, the
    experiments builders, the CLI).  ``None`` or kind ``"synchronous"``
    returns ``None`` — the paper's lock-step rounds — so callers hand the
    result straight to the runner without special-casing (a null timing
    model runs on the round engine itself).
    """
    spec = spec or {}
    defn = TIMING_REGISTRY.get(spec.get("kind", "synchronous"))
    params = {key: value for key, value in spec.items() if key != "kind"}
    try:
        model = defn.build(n, seed, **params)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad params for timing model {defn.name!r}: {exc}"
        ) from exc
    return None if model.is_null else model


class TimingModel:
    """When does each node's local cycle fire, in virtual ticks.

    Subclasses draw from ``self._tree`` (an ``("async", kind)`` subtree
    of the run seed) and must keep every activation time a pure function
    of (seed, vertex, cycle), strictly increasing in cycle, and
    >= :data:`TICKS_PER_ROUND` — see the module docstring for why.
    """

    #: True only on :class:`Synchronous`: the runner keeps null-timing
    #: runs on the round engine, and :class:`AsyncSimulation` uses the
    #: full-cohort fast paths.
    is_null = False

    def __init__(self, n: int, seed: int, kind: str):
        if n < 1:
            raise ConfigurationError(f"timing models need n >= 1, got {n}")
        self.n = n
        self.seed = seed
        self.kind = kind
        self._tree = SeedTree(seed).child("async", kind)

    def activation_ticks(self, vertex: int, cycle: int) -> int:
        """Virtual time (ticks) of ``vertex``'s ``cycle``-th activation
        (``cycle`` counts from 1)."""
        raise NotImplementedError

    def activation_ticks_batch(self, vertices, cycles) -> np.ndarray:
        """Vectorized :meth:`activation_ticks` over parallel arrays.

        Returns an ``int64`` array with entry ``i`` equal to
        ``activation_ticks(vertices[i], cycles[i])`` — *exactly* equal,
        bit for bit: the batched engine path derives its whole window
        schedule through this hook, and determinism demands the same
        schedule the per-event path computes one call at a time.  The
        base implementation loops the scalar hook (correct for any
        model); models whose draws vectorize override it.
        """
        return np.fromiter(
            (
                self.activation_ticks(int(vertex), int(cycle))
                for vertex, cycle in zip(vertices, cycles)
            ),
            dtype=np.int64,
            count=len(vertices),
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n})"


class Synchronous(TimingModel):
    """The null model: the paper's lock-step rounds, zero randomness.

    Every node's cycle ``c`` fires at exactly tick ``c·TPR`` — one full
    cohort per round window, which is precisely the round engine's
    semantics.  The runner treats this like having no timing model (runs
    stay on :class:`~repro.sim.engine.Simulation`); the differential
    harness constructs :class:`AsyncSimulation` with it explicitly to
    prove the event-driven machinery reproduces the round engine
    event for event.
    """

    is_null = True

    def __init__(self, n: int = 1, seed: int = 0):
        # No SeedTree: the null model must not even derive a stream.
        self.n = n
        self.seed = seed
        self.kind = "synchronous"

    def activation_ticks(self, vertex: int, cycle: int) -> int:
        return cycle * TICKS_PER_ROUND

    def activation_ticks_batch(self, vertices, cycles) -> np.ndarray:
        return np.asarray(cycles, dtype=np.int64) * TICKS_PER_ROUND


class UniformJitter(TimingModel):
    """Unsynchronized scan offsets: cycle ``c`` fires at ``c + U·jitter``.

    The mildest asynchrony: every device keeps a nominal one-round cycle
    period but its scan fires a fresh uniform offset in
    ``[0, jitter)`` rounds late, so no two devices share instants and
    advertisements are read stale.  ``jitter < 1`` keeps each cycle
    inside its own round window (and the schedule strictly monotone).
    """

    def __init__(self, n: int, seed: int, jitter: float = 0.5):
        super().__init__(n, seed, "jitter")
        if not 0 <= jitter < 1:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {jitter}"
            )
        self.jitter = jitter
        self._span = int(jitter * TICKS_PER_ROUND)
        # The schedule PRF is evaluated in *blocks*: one keyed-BLAKE2b
        # digest for ``(vertex, cycle >> 3)`` yields 64 bytes = eight
        # 64-bit words, and cycle ``c`` reads word ``c & 7``.  Each draw
        # is still a pure function of (seed, vertex, cycle) under the
        # dedicated ("async", "jitter") subtree — the block is just an
        # 8x amortization of the hash, which is the dominant cost of
        # draining a window in the batched engine (one draw per event).
        self._key = self._tree.key("jitter")
        # Batch-path caches: a pre-keyed hash template (copying it is
        # cheaper than re-keying per draw), plus the per-vertex current
        # block and its eight words — cycles advance one per window, so
        # seven of eight windows reuse a cached block outright.
        self._template = prf_template(self._key)
        self._scalar_blocks: dict[int, tuple[int, bytes]] = {}
        self._block_of: np.ndarray | None = None
        self._words: np.ndarray | None = None
        # Index serializations are pure and reused heavily (a vertex's
        # prefix for the whole run, a block's suffix across all vertices
        # crossing into it), and building one costs as much as the hash
        # itself — memoize both halves.
        self._vertex_ser: dict[int, bytes] = {}
        self._block_ser: dict[int, bytes] = {}

    def _block_digest(self, vertex: int, block: int) -> bytes:
        # prf_bytes(key, (vertex, block), 64) — payload + 4-byte counter
        # (always zero: one digest is exactly one block of eight draws).
        vser = self._vertex_ser.get(vertex)
        if vser is None:
            vser = self._vertex_ser[vertex] = serialize_index((vertex,))
        bser = self._block_ser.get(block)
        if bser is None:
            bser = self._block_ser[block] = (
                serialize_index((block,)) + b"\x00\x00\x00\x00"
            )
        h = self._template.copy()
        h.update(vser + bser)
        return h.digest()

    def activation_ticks(self, vertex: int, cycle: int) -> int:
        if self._span == 0:
            return cycle * TICKS_PER_ROUND
        block, slot = cycle >> 3, cycle & 7
        cached = self._scalar_blocks.get(vertex)
        if cached is None or cached[0] != block:
            digest = self._block_digest(vertex, block)
            self._scalar_blocks[vertex] = (block, digest)
        else:
            digest = cached[1]
        word = int.from_bytes(digest[8 * slot: 8 * slot + 8], "big")
        draw = (word >> 11) * (2.0 ** -53)
        return cycle * TICKS_PER_ROUND + int(draw * self._span)

    def activation_ticks_batch(self, vertices, cycles) -> np.ndarray:
        """The scalar draw, vectorized everywhere the PRF is not.

        BLAKE2b is inherently one evaluation per block, but block reuse
        does the heavy lifting: the per-vertex ``(block, words)`` cache
        is an ``(n, 8)`` uint64 matrix, so a window whose members stay
        inside their current blocks is a single fancy gather with *zero*
        hashing, and only block-crossing members (one window in eight)
        pay a digest.  The 53-bit extraction / offset arithmetic runs as
        numpy array ops whose IEEE operation sequence matches the scalar
        path exactly (top 53 bits, ``* 2**-53``, ``* span``, truncate) —
        so the returned ticks are bit-identical to per-event
        :meth:`activation_ticks` calls.
        """
        base = np.asarray(cycles, dtype=np.int64) * TICKS_PER_ROUND
        if self._span == 0 or len(base) == 0:
            return base
        vertices = np.asarray(vertices, dtype=np.int64)
        cycles = np.asarray(cycles, dtype=np.int64)
        if self._block_of is None:
            self._block_of = np.full(self.n, -1, dtype=np.int64)
            self._words = np.zeros((self.n, 8), dtype=np.uint64)
        blocks = cycles >> 3
        slots = cycles & 7
        stale = np.nonzero(self._block_of[vertices] != blocks)[0]
        words = self._words[vertices, slots]
        if stale.size:
            stale_vertices = vertices[stale].tolist()
            digest = self._block_digest
            digests = b"".join(
                [
                    digest(vertex, block)
                    for vertex, block in zip(stale_vertices,
                                             blocks[stale].tolist())
                ]
            )
            fresh = np.frombuffer(digests, dtype=">u8").astype(
                np.uint64
            ).reshape(-1, 8)
            # Gather the stale rows' words from the fresh digests first:
            # a vertex appearing twice in one window with cycles in
            # *different* blocks must not read a cache row its later
            # occurrence just overwrote.
            words[stale] = fresh[np.arange(stale.size), slots[stale]]
            self._words[stale_vertices] = fresh
            self._block_of[stale_vertices] = blocks[stale]
        draws = (words >> np.uint64(11)) * (2.0 ** -53)
        return base + (draws * float(self._span)).astype(np.int64)

    def __repr__(self) -> str:
        return f"UniformJitter(n={self.n}, jitter={self.jitter})"


class HeterogeneousRates(TimingModel):
    """Slow and fast device classes: per-node cycle rates.

    Each vertex draws a device class once (uniformly over ``rates``, or
    per ``weights``); a class with rate ``r`` completes ``r`` cycles per
    synchronous round — an old phone with a throttled BLE stack scans at
    0.6x while a flagship scans at 1.5x.  Every node also draws a phase
    offset inside its first period so classes don't march in lockstep.
    """

    def __init__(self, n: int, seed: int, rates=(0.6, 1.0, 1.5),
                 weights=None):
        super().__init__(n, seed, "heterogeneous")
        rates = tuple(float(r) for r in rates)
        if not rates or any(r <= 0 for r in rates):
            raise ConfigurationError(
                f"rates must be positive and non-empty, got {rates}"
            )
        if weights is not None:
            weights = tuple(float(w) for w in weights)
            if len(weights) != len(rates) or any(w < 0 for w in weights) \
                    or sum(weights) <= 0:
                raise ConfigurationError(
                    f"weights must be {len(rates)} non-negative values "
                    f"with a positive sum, got {weights}"
                )
        self.rates = rates
        self.weights = weights
        # One-time class + phase draws, pure functions of (seed, vertex).
        total = sum(weights) if weights is not None else len(rates)
        cumulative = []
        acc = 0.0
        for i in range(len(rates)):
            acc += (weights[i] if weights is not None else 1.0) / total
            cumulative.append(acc)
        self._rate_of = np.empty(n, dtype=np.float64)
        self._phase_of = np.empty(n, dtype=np.int64)
        for vertex in range(n):
            rng = self._tree.stream("device", vertex)
            draw = rng.random()
            index = next(
                i for i, edge in enumerate(cumulative) if draw < edge or
                i == len(cumulative) - 1
            )
            rate = rates[index]
            period = int(TICKS_PER_ROUND / rate)
            self._rate_of[vertex] = rate
            self._phase_of[vertex] = int(rng.random() * min(
                period, TICKS_PER_ROUND
            ))

    def rate_of(self, vertex: int) -> float:
        """The device class rate assigned to ``vertex`` (cycles/round)."""
        return float(self._rate_of[vertex])

    def activation_ticks(self, vertex: int, cycle: int) -> int:
        # First cycle lands in [TPR, 2·TPR); later cycles follow at the
        # device's own period.  Strictly monotone since rate > 0.
        return (
            TICKS_PER_ROUND
            + int(self._phase_of[vertex])
            + int((cycle - 1) * TICKS_PER_ROUND / self._rate_of[vertex])
        )

    def activation_ticks_batch(self, vertices, cycles) -> np.ndarray:
        # Same arithmetic as the scalar hook on array operands: the
        # int64 products are exact, the float64 division and truncation
        # match ``int(pyint * TPR / np.float64)`` operation for
        # operation, so the batch is bit-identical.
        vertices = np.asarray(vertices, dtype=np.int64)
        cycles = np.asarray(cycles, dtype=np.int64)
        periods = (
            (cycles - 1) * TICKS_PER_ROUND / self._rate_of[vertices]
        ).astype(np.int64)
        return TICKS_PER_ROUND + self._phase_of[vertices] + periods

    def __repr__(self) -> str:
        return f"HeterogeneousRates(n={self.n}, rates={self.rates})"


class GilbertElliottPauses(TimingModel):
    """Bursty pauses: a two-state (good/bad) gap process per device.

    The Gilbert–Elliott shape familiar from bursty channel models,
    applied to cycle gaps instead of bit errors: in the *good* state a
    device cycles at its nominal one-round period (plus a little
    jitter); with probability ``p_pause`` it falls into the *bad* state,
    where the next gap stretches to ``pause_scale`` rounds (a backgrounded
    app, a radio dropped by the OS scheduler), escaping with probability
    ``p_resume`` per cycle.  Gaps accumulate, so activation times are
    computed incrementally — but every transition and gap draw comes from
    a per-(vertex, cycle) stream, so the schedule is a pure function of
    the seed regardless of access order (the per-vertex prefix cache is
    just memoization).

    Composes with :class:`~repro.sim.faults.SleepCycle`: the fault layer
    masks which cycles participate, this model decides when cycles fire.
    """

    def __init__(self, n: int, seed: int, p_pause: float = 0.1,
                 p_resume: float = 0.6, pause_scale: float = 3.0,
                 jitter: float = 0.2):
        super().__init__(n, seed, "bursty")
        for name, value in (("p_pause", p_pause), ("p_resume", p_resume)):
            if not 0 <= value <= 1:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {value}"
                )
        if pause_scale < 1:
            raise ConfigurationError(
                f"pause_scale must be >= 1, got {pause_scale}"
            )
        if not 0 <= jitter < 1:
            raise ConfigurationError(
                f"jitter must be in [0, 1), got {jitter}"
            )
        self.p_pause = p_pause
        self.p_resume = p_resume
        self.pause_scale = pause_scale
        self.jitter = jitter
        # Per-vertex prefix cache: _times[v][c - 1] is cycle c's tick.
        self._times: dict[int, list[int]] = {}
        self._states: dict[int, bool] = {}  # True = bad (paused)

    def _gap(self, vertex: int, cycle: int, bad: bool) -> tuple[int, bool]:
        """Gap before ``vertex``'s ``cycle``-th activation, plus the
        state the transition out of this cycle leaves the device in."""
        rng = self._tree.stream("ge", vertex, cycle)
        if bad:
            gap = int(TICKS_PER_ROUND * self.pause_scale
                      * (0.5 + rng.random()))
            next_bad = rng.random() >= self.p_resume
        else:
            gap = TICKS_PER_ROUND + int(
                rng.random() * self.jitter * TICKS_PER_ROUND
            )
            next_bad = rng.random() < self.p_pause
        return max(gap, 1), next_bad

    def activation_ticks(self, vertex: int, cycle: int) -> int:
        times = self._times.setdefault(vertex, [])
        bad = self._states.setdefault(vertex, False)
        while len(times) < cycle:
            last = times[-1] if times else 0
            gap, bad = self._gap(vertex, len(times) + 1, bad)
            times.append(max(last + gap, TICKS_PER_ROUND + len(times)))
            self._states[vertex] = bad
        return times[cycle - 1]

    def __repr__(self) -> str:
        return (
            f"GilbertElliottPauses(n={self.n}, p_pause={self.p_pause}, "
            f"p_resume={self.p_resume}, pause_scale={self.pause_scale})"
        )


@register_timing(
    name="synchronous",
    description="the paper's lock-step rounds: every node cycles at the "
                "same global instants (zero randomness consumed)",
)
def _build_synchronous(n, seed):
    return Synchronous(n=n, seed=seed)


@register_timing(
    name="jitter",
    description="uniform scan offsets: each cycle fires up to jitter "
                "rounds late on a fresh per-cycle draw",
)
def _build_uniform_jitter(n, seed, *, jitter=0.5):
    return UniformJitter(n=n, seed=seed, jitter=jitter)


@register_timing(
    name="heterogeneous",
    description="slow/fast device classes: per-node cycle rates drawn "
                "once, with per-node phase offsets",
)
def _build_heterogeneous_rates(n, seed, *, rates=(0.6, 1.0, 1.5),
                               weights=None):
    return HeterogeneousRates(n=n, seed=seed, rates=rates, weights=weights)


@register_timing(
    name="bursty",
    description="Gilbert-Elliott bursty pauses: nominal cycling with "
                "occasional multi-round stalls (backgrounded apps)",
)
def _build_gilbert_elliott(n, seed, *, p_pause=0.1, p_resume=0.6,
                           pause_scale=3.0, jitter=0.2):
    return GilbertElliottPauses(n=n, seed=seed, p_pause=p_pause,
                                p_resume=p_resume, pause_scale=pause_scale,
                                jitter=jitter)
