"""Bit-accounting helpers.

The mobile telephone model caps what a connected pair may exchange in one
round: O(1) tokens plus O(polylog N) control bits.  The subroutines in
:mod:`repro.commcplx` and the channel in :mod:`repro.sim.channel` need a
common vocabulary for "how many bits does this message cost"; this module
provides it, together with a small running counter used for budget metering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "bit_length",
    "int_cost_bits",
    "ceil_log2",
    "polylog_budget",
    "BitCounter",
]


def ceil_log2(value: int) -> int:
    """Return ``⌈log2(value)⌉`` for ``value >= 1`` (0 for value == 1)."""
    if value < 1:
        raise ValueError(f"value must be >= 1, got {value}")
    return (value - 1).bit_length()


def bit_length(value: int) -> int:
    """Number of bits needed to write ``value`` (at least 1, sign ignored)."""
    return max(abs(value).bit_length(), 1)


def int_cost_bits(value: int, universe: int | None = None) -> int:
    """Cost in bits of sending an integer.

    If ``universe`` is given, the integer is known by both parties to lie in
    ``[0, universe)`` and costs ``⌈log2 universe⌉`` bits (the fixed-width
    encoding the paper's protocols assume); otherwise the integer's own bit
    length is charged.
    """
    if universe is not None:
        if universe < 1:
            raise ValueError(f"universe must be >= 1, got {universe}")
        return max(ceil_log2(universe), 1)
    return bit_length(value)


def polylog_budget(upper_n: int, exponent: int = 3, scale: int = 64) -> int:
    """A concrete O(polylog N) control-bit budget.

    ``scale * ⌈log2 N⌉ ** exponent`` bits.  The default exponent of 3 covers
    the Transfer subroutine's O(log²N · log(logN/ε)) cost with room for the
    per-connection bookkeeping the algorithms send (tags, bin indices);
    tests assert each algorithm fits inside it.
    """
    if upper_n < 2:
        raise ValueError(f"upper_n must be >= 2, got {upper_n}")
    return scale * max(ceil_log2(upper_n), 1) ** exponent


@dataclass
class BitCounter:
    """A running total of bits sent, used for channel metering.

    The counter never enforces a limit itself; enforcement lives in
    :class:`repro.sim.channel.Channel` so the policy (raise vs. record) is
    decided in one place.
    """

    total_bits: int = 0
    messages: int = 0
    _by_label: dict = field(default_factory=dict)

    def charge(self, nbits: int, label: str = "") -> None:
        if nbits < 0:
            raise ValueError(f"nbits must be >= 0, got {nbits}")
        self.total_bits += nbits
        self.messages += 1
        if label:
            self._by_label[label] = self._by_label.get(label, 0) + nbits

    def by_label(self) -> dict:
        """Bits charged per label (a fresh copy)."""
        return dict(self._by_label)

    def merge(self, other: "BitCounter") -> None:
        self.total_bits += other.total_bits
        self.messages += other.messages
        for label, bits in other._by_label.items():
            self._by_label[label] = self._by_label.get(label, 0) + bits


def ceil_log(value: float, base: float = 2.0) -> int:
    """Return ``⌈log_base(value)⌉`` as an int, for readability in schedules."""
    if value <= 0:
        raise ValueError(f"value must be > 0, got {value}")
    if value <= 1:
        return 0
    return int(math.ceil(math.log(value, base) - 1e-12))
