"""Command-line experiment runner.

Examples::

    repro-gossip run --algorithm sharedbit --n 32 --k 4 --graph expander
    repro-gossip scenario --name festival
    repro-gossip compare --n 24 --k 3
    python -m repro.cli run --algorithm blindmatch --n 16 --k 2 --graph star
"""

from __future__ import annotations

import argparse
import sys

from repro.core.problem import uniform_instance
from repro.core.runner import ALGORITHMS, run_gossip
from repro.graphs.dynamic import (
    RelabelingAdversary,
    StaticDynamicGraph,
    TAU_INFINITY,
)
from repro.graphs.topologies import TOPOLOGY_FAMILIES
from repro.analysis.tables import render_table
from repro.workloads.scenarios import SCENARIOS

__all__ = ["main"]

_GRAPH_CHOICES = ("expander", "star", "path", "cycle", "complete", "grid")


def _build_topology(name: str, n: int, seed: int):
    if name == "expander":
        degree = min(6, n - 1)
        if (n * degree) % 2:
            degree -= 1
        return TOPOLOGY_FAMILIES["expander"](n=n, degree=max(degree, 2), seed=seed)
    if name == "grid":
        cols = max(2, int(n**0.5))
        rows = max(2, n // cols)
        return TOPOLOGY_FAMILIES["grid"](rows=rows, cols=cols)
    return TOPOLOGY_FAMILIES[name](n)


def _build_graph(args):
    topo = _build_topology(args.graph, args.n, args.seed)
    if args.tau == 0:  # 0 encodes tau = infinity on the command line
        return StaticDynamicGraph(topo), topo.n
    return RelabelingAdversary(topo, tau=args.tau, seed=args.seed), topo.n


def _cmd_run(args) -> int:
    graph, n = _build_graph(args)
    instance = uniform_instance(n=n, k=args.k, seed=args.seed)
    result = run_gossip(
        algorithm=args.algorithm,
        dynamic_graph=graph,
        instance=instance,
        seed=args.seed,
        max_rounds=args.max_rounds,
    )
    status = "solved" if result.solved else "NOT solved (round limit)"
    print(
        f"{args.algorithm} on {args.graph} (n={n}, k={args.k}, "
        f"tau={'inf' if args.tau == 0 else args.tau}): "
        f"{result.rounds} rounds, {status}"
    )
    print(
        f"connections={result.trace.total_connections} "
        f"tokens_moved={result.trace.total_tokens_moved} "
        f"control_bits={result.trace.total_control_bits}"
    )
    return 0 if result.solved else 1


def _cmd_scenario(args) -> int:
    scenario = SCENARIOS[args.name](seed=args.seed)
    result = run_gossip(
        algorithm=args.algorithm or scenario.recommended_algorithm,
        dynamic_graph=scenario.dynamic_graph,
        instance=scenario.instance,
        seed=args.seed,
        max_rounds=args.max_rounds,
    )
    status = "solved" if result.solved else "NOT solved (round limit)"
    print(f"scenario {scenario.name}: {scenario.description}")
    print(
        f"{result.algorithm}: {result.rounds} rounds, {status} "
        f"(n={scenario.instance.n}, k={scenario.instance.k})"
    )
    return 0 if result.solved else 1


def _cmd_compare(args) -> int:
    rows = []
    for algorithm in ALGORITHMS:
        tau = 0 if algorithm == "crowdedbin" else args.tau
        topo = _build_topology(args.graph, args.n, args.seed)
        if tau == 0:
            graph = StaticDynamicGraph(topo)
        else:
            graph = RelabelingAdversary(topo, tau=tau, seed=args.seed)
        instance = uniform_instance(n=topo.n, k=args.k, seed=args.seed)
        result = run_gossip(
            algorithm=algorithm,
            dynamic_graph=graph,
            instance=instance,
            seed=args.seed,
            max_rounds=args.max_rounds,
        )
        rows.append(
            (
                algorithm,
                "inf" if tau == 0 else tau,
                result.rounds,
                "yes" if result.solved else "no",
            )
        )
    print(
        render_table(
            headers=("algorithm", "tau", "rounds", "solved"),
            rows=rows,
            title=f"gossip comparison: {args.graph}, n={args.n}, k={args.k}",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gossip",
        description="Gossip in the mobile telephone model (Newport, PODC 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one algorithm on one graph")
    run_p.add_argument("--algorithm", choices=ALGORITHMS, required=True)
    run_p.add_argument("--graph", choices=_GRAPH_CHOICES, default="expander")
    run_p.add_argument("--n", type=int, default=32)
    run_p.add_argument("--k", type=int, default=4)
    run_p.add_argument("--tau", type=int, default=0,
                       help="stability factor; 0 means infinity")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--max-rounds", type=int, default=200_000)
    run_p.set_defaults(func=_cmd_run)

    sc_p = sub.add_parser("scenario", help="run a motivating workload")
    sc_p.add_argument("--name", choices=sorted(SCENARIOS), required=True)
    sc_p.add_argument("--algorithm", choices=ALGORITHMS, default=None)
    sc_p.add_argument("--seed", type=int, default=0)
    sc_p.add_argument("--max-rounds", type=int, default=200_000)
    sc_p.set_defaults(func=_cmd_scenario)

    cmp_p = sub.add_parser("compare", help="run all algorithms side by side")
    cmp_p.add_argument("--graph", choices=_GRAPH_CHOICES, default="expander")
    cmp_p.add_argument("--n", type=int, default=24)
    cmp_p.add_argument("--k", type=int, default=3)
    cmp_p.add_argument("--tau", type=int, default=1)
    cmp_p.add_argument("--seed", type=int, default=0)
    cmp_p.add_argument("--max-rounds", type=int, default=400_000)
    cmp_p.set_defaults(func=_cmd_compare)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
