"""Command-line experiment runner.

Examples::

    repro-gossip run --algorithm sharedbit --n 32 --k 4 --graph expander
    repro-gossip scenario --name festival
    repro-gossip compare --n 24 --k 3
    repro-gossip sweep --spec examples/specs/tiny.json --jobs 4
    repro-gossip list
    repro-gossip --plugin my_plugin.py run --algorithm my_gossip --n 16
    python -m repro.cli run --algorithm blindmatch --n 16 --k 2 --graph star

Every choice list (algorithms, graph families, scenarios) is derived from
:mod:`repro.registry`, so ``--plugin`` files that register out-of-tree
definitions extend the CLI without any edit here.  ``--plugin`` is a
top-level flag and must precede the subcommand.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.tables import render_table
from repro.core.runner import ALGORITHMS, run_gossip
from repro.errors import ConfigurationError
from repro.experiments import (
    SweepSpec,
    build_dynamic_graph,
    build_instance,
    run_sweep,
)
from repro.registry import (
    ALGORITHM_REGISTRY,
    DYNAMICS_REGISTRY,
    FAULT_REGISTRY,
    INSTANCE_REGISTRY,
    SCENARIO_REGISTRY,
    TIMING_REGISTRY,
    TOPOLOGY_REGISTRY,
    TRANSPORT_REGISTRY,
    load_plugin,
)

__all__ = ["main"]


def _sized_graph_choices() -> tuple:
    """Families usable via a bare ``--n`` (those declaring ``from_size``)."""
    return tuple(
        defn.name
        for defn in TOPOLOGY_REGISTRY.values()
        if defn.from_size is not None
    )


def _graph_spec(name: str, n: int, seed: int) -> dict:
    """The experiments-layer graph spec matching this CLI's conventions."""
    defn = TOPOLOGY_REGISTRY.get(name)
    if defn.from_size is None:
        raise ConfigurationError(
            f"topology family {name!r} declares no --n sizing rule; "
            f"choose from {sorted(_sized_graph_choices())}"
        )
    return {"family": name, "params": defn.from_size(n, seed)}


def _build_graph(args):
    spec = _graph_spec(args.graph, args.n, args.seed)
    if args.tau == 0:  # 0 encodes tau = infinity on the command line
        dynamic = {"kind": "static"}
    else:
        dynamic = {"kind": "relabeling", "tau": args.tau}
    graph = build_dynamic_graph(spec, dynamic, args.seed)
    return graph, graph.n


def _cmd_run(args) -> int:
    graph, n = _build_graph(args)
    instance = build_instance({"kind": "uniform", "k": args.k}, n, args.seed)
    result = run_gossip(
        algorithm=args.algorithm,
        dynamic_graph=graph,
        instance=instance,
        seed=args.seed,
        max_rounds=args.max_rounds,
        fault=None if args.fault == "none" else args.fault,
        timing=None if args.timing == "synchronous" else args.timing,
        telemetry=args.profile or None,
    )
    status = "solved" if result.solved else "NOT solved (round limit)"
    fault_label = "" if args.fault == "none" else f", fault={args.fault}"
    timing_label = (
        "" if args.timing == "synchronous" else f", timing={args.timing}"
    )
    print(
        f"{args.algorithm} on {args.graph} (n={n}, k={args.k}, "
        f"tau={'inf' if args.tau == 0 else args.tau}{fault_label}"
        f"{timing_label}): {result.rounds} rounds, {status}"
    )
    print(
        f"connections={result.trace.total_connections} "
        f"tokens_moved={result.trace.total_tokens_moved} "
        f"control_bits={result.trace.total_control_bits}"
        + (
            f" dropped_connections="
            f"{result.trace.total_dropped_connections}"
            if args.fault != "none" else ""
        )
        + (
            f" events={int(result.event_counts.sum())}"
            if result.event_counts is not None else ""
        )
    )
    if args.profile:
        from repro.telemetry import render_phase_table

        print(render_phase_table(result.profile))
    return 0 if result.solved else 1


def _cmd_scenario(args) -> int:
    scenario = SCENARIO_REGISTRY.get(args.name).factory(seed=args.seed)
    result = run_gossip(
        algorithm=args.algorithm or scenario.recommended_algorithm,
        dynamic_graph=scenario.dynamic_graph,
        instance=scenario.instance,
        seed=args.seed,
        max_rounds=args.max_rounds,
        fault=scenario.fault,
        timing=scenario.timing,
    )
    status = "solved" if result.solved else "NOT solved (round limit)"
    print(f"scenario {scenario.name}: {scenario.description}")
    if scenario.fault is not None:
        print(
            f"fault regime: {scenario.fault!r} "
            f"(dropped_connections="
            f"{result.trace.total_dropped_connections})"
        )
    if scenario.timing is not None and result.event_counts is not None:
        print(
            f"timing regime: {scenario.timing!r} "
            f"(events={int(result.event_counts.sum())})"
        )
    print(
        f"{result.algorithm}: {result.rounds} rounds, {status} "
        f"(n={scenario.instance.n}, k={scenario.instance.k})"
    )
    return 0 if result.solved else 1


def _cmd_compare(args) -> int:
    if args.tau == 0:
        dynamic = {"kind": "static"}
    else:
        dynamic = {"kind": "relabeling", "tau": args.tau}
    # PPUSH is single-rumor only; it joins the comparison when k = 1.
    algorithms = [a for a in ALGORITHMS if a != "ppush" or args.k == 1]
    sweep = SweepSpec(
        name=f"compare-{args.graph}-n{args.n}-k{args.k}",
        base={
            "algorithm": algorithms[0],
            "graph": _graph_spec(args.graph, args.n, args.seed),
            "dynamic": dynamic,
            "instance": {"kind": "uniform", "k": args.k},
            "max_rounds": args.max_rounds,
        },
        grid={"algorithm": algorithms},
        seeds=(args.seed,),
    )
    result = run_sweep(sweep, jobs=args.jobs, plugins=args.plugin)
    rows = []
    for summary in result.points:
        # A τ = ∞ substitution is recorded in the run notes; surface it
        # so side-by-side numbers aren't silently apples/oranges.
        substituted = bool(summary.notes)
        tau = "inf" if args.tau == 0 or substituted else args.tau
        median = summary.median_rounds
        rows.append(
            (
                summary.point["algorithm"],
                tau,
                int(median) if median == int(median) else median,
                "yes" if summary.all_solved else "no",
                "; ".join(summary.notes) or "-",
            )
        )
    print(
        render_table(
            headers=("algorithm", "tau", "rounds", "solved", "notes"),
            rows=rows,
            title=f"gossip comparison: {args.graph}, n={args.n}, k={args.k}",
        )
    )
    return 0


def _cmd_sweep(args) -> int:
    spec_text = Path(args.spec).read_text()
    sweep = SweepSpec.from_json(spec_text)
    progress = print if args.verbose else None
    result = run_sweep(
        sweep,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        progress=progress,
        plugins=args.plugin,
    )
    print(result.table())
    if args.cache_dir:
        print(
            f"cache: {result.cache_hits} hits, "
            f"{result.cache_misses} misses ({args.cache_dir})"
        )
    if args.out:
        Path(args.out).write_text(result.to_json(indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0 if all(summary.all_solved for summary in result.points) else 1


def _cmd_list(args) -> int:
    """Print every registered definition with its one-line description."""

    def section(title: str, rows) -> None:
        print(f"{title}:")
        for row in rows:
            print(f"  {row}")
        print()

    section(
        "algorithms",
        (
            f"{defn.name:<14} b={defn.tag_length_label:<3} "
            f"{defn.model_label:<8} "
            f"{'[experiments-layer only] ' if not defn.runnable else ''}"
            f"{defn.description}"
            for defn in ALGORITHM_REGISTRY.values()
        ),
    )
    section(
        "topology families",
        (
            f"{defn.name:<14} "
            f"{'[--graph choice] ' if defn.from_size is not None else ''}"
            f"{defn.description}"
            for defn in TOPOLOGY_REGISTRY.values()
        ),
    )
    section(
        "dynamics kinds",
        (
            f"{defn.name:<18} {defn.description}"
            for defn in DYNAMICS_REGISTRY.values()
        ),
    )
    section(
        "instance kinds",
        (
            f"{defn.name:<10} {defn.description}"
            for defn in INSTANCE_REGISTRY.values()
        ),
    )
    section(
        "fault models",
        (
            f"{defn.name:<8} {defn.description}"
            for defn in FAULT_REGISTRY.values()
        ),
    )
    section(
        "timing models",
        (
            f"{defn.name:<14} {defn.description}"
            for defn in TIMING_REGISTRY.values()
        ),
    )
    section(
        "scenarios",
        (
            f"{defn.name:<18} {defn.description}"
            for defn in SCENARIO_REGISTRY.values()
        ),
    )
    section(
        "transports",
        (
            f"{defn.name:<8} {defn.description}"
            for defn in TRANSPORT_REGISTRY.values()
        ),
    )
    return 0


def _cmd_serve(args) -> int:
    """Deploy a live cluster through a registered transport."""
    defn = TRANSPORT_REGISTRY.get(args.transport)
    opts = {}
    if args.heartbeat_every:
        opts["heartbeat_every"] = args.heartbeat_every
        if args.heartbeat_max_age is not None:
            opts["heartbeat_max_age"] = args.heartbeat_max_age
    if getattr(args, "chaos", None) is not None:
        # --chaos with no value enacts the scenario's (or --fault's)
        # schedule physically; --chaos KIND names the schedule directly.
        opts["chaos"] = True if args.chaos == "auto" else args.chaos
    if getattr(args, "fault", None) not in (None, "none"):
        opts["fault"] = args.fault
    if args.scenario:
        scenario = SCENARIO_REGISTRY.get(args.scenario).factory(
            seed=args.seed
        )
        report = defn.deploy(
            scenario,
            algorithm=args.algorithm,
            seed=args.seed,
            max_rounds=args.max_rounds,
            **opts,
        )
        label = f"scenario {scenario.name}"
    else:
        if args.algorithm is None:
            raise ConfigurationError(
                "serve needs --algorithm when no --scenario is given"
            )
        graph, n = _build_graph(args)
        instance = build_instance(
            {"kind": "uniform", "k": args.k}, n, args.seed
        )
        report = defn.deploy(
            algorithm=args.algorithm,
            dynamic_graph=graph,
            instance=instance,
            seed=args.seed,
            max_rounds=args.max_rounds,
            **opts,
        )
        label = f"{args.graph} (n={n}, k={args.k})"
    status = "solved" if report.solved else "NOT solved (round limit)"
    print(
        f"live {report.algorithm} on {label} via {args.transport}: "
        f"{report.rounds} rounds, {status}"
    )
    rps = report.rounds_per_second
    stats = report.trace.latency_stats()
    print(
        f"wall={report.wall_seconds:.3f}s"
        + (f" rounds/s={rps:.1f}" if rps else "")
        + (
            f" connections={stats['connections']}"
            f" latency_mean={stats['mean_s'] * 1e3:.2f}ms"
            f" latency_p50={stats['p50_s'] * 1e3:.2f}ms"
            f" latency_p99={stats['p99_s'] * 1e3:.2f}ms"
            f" latency_max={stats['max_s'] * 1e3:.2f}ms"
            if stats else ""
        )
    )
    if report.degraded or report.retries or report.chaos_kills:
        print(
            f"robustness: retries={report.retries} "
            f"timeouts={report.timeouts} "
            f"suspects={len(report.suspects)} "
            f"(events={report.suspect_events}, rejoins={report.rejoins}) "
            f"degraded_rounds={report.degraded_rounds} "
            f"chaos_kills={report.chaos_kills} "
            f"chaos_revives={report.chaos_revives}"
        )
    return 0 if report.solved else 1


def _cmd_top(args) -> int:
    """Poll a live server's ``metrics`` op; render a refreshing status.

    Any endpoint of a running cluster works: every server answers for
    itself (peers, inbox, robustness counters, connect-latency
    quantiles) and relays the coordinator's last pushed cluster view
    (round, suspects).  ``--iterations 0`` polls until interrupted.
    """
    import time

    from repro.net.errors import TransportError
    from repro.net.framing import request as net_request

    host, _, port_text = args.address.rpartition(":")
    if not host or not port_text.isdigit():
        raise ConfigurationError(
            f"top needs HOST:PORT, got {args.address!r}"
        )
    port = int(port_text)

    def ms(seconds) -> str:
        return "-" if seconds is None else f"{seconds * 1e3:.2f}ms"

    iteration = 0
    while True:
        iteration += 1
        try:
            snap = net_request(host, port, {"op": "metrics"},
                               timeout=args.timeout)
        except TransportError as exc:
            print(f"poll {iteration}: {args.address} unreachable ({exc})")
            if args.iterations and iteration >= args.iterations:
                return 1
            time.sleep(args.interval)
            continue
        if "error" in snap:
            print(f"poll {iteration}: {args.address}: {snap['error']}")
            return 1
        cluster = snap.get("cluster", {})
        stats = snap.get("stats", {})
        latency = snap.get("latency", {})
        if iteration > 1 and sys.stdout.isatty():
            print("\x1b[2J\x1b[H", end="")
        rows = [
            ("cluster round", cluster.get("round", "-")),
            (
                "cluster active",
                f"{cluster.get('active', '-')}/{cluster.get('n', '-')}",
            ),
            ("cluster suspects", cluster.get("suspects", "-")),
            ("peer uid", snap["uid"]),
            ("peer round", snap["round"]),
            ("peer table", snap["peers"]),
            ("inbox depth", snap["inbox"]),
            ("retries", stats.get("retries", 0)),
            ("timeouts", stats.get("timeouts", 0)),
            ("failed deliveries", stats.get("failed_deliveries", 0)),
            ("connects", latency.get("count", 0)),
            ("connect p50", ms(latency.get("p50"))),
            ("connect p99", ms(latency.get("p99"))),
        ]
        print(
            render_table(
                headers=("metric", "value"),
                rows=rows,
                title=f"repro-gossip top {args.address} "
                      f"(poll {iteration})",
            )
        )
        if args.iterations and iteration >= args.iterations:
            return 0
        time.sleep(args.interval)


def _cmd_replay(args) -> int:
    """Record a simulation, replay it live, assert equivalence."""
    from repro.net.bridge import record_run, replay

    spec = _graph_spec(args.graph, args.n, args.seed)
    dynamic = (
        {"kind": "static"}
        if args.tau == 0
        else {"kind": "relabeling", "tau": args.tau}
    )

    def factory():
        return build_dynamic_graph(spec, dynamic, args.seed)

    instance = build_instance(
        {"kind": "uniform", "k": args.k}, factory().n, args.seed
    )
    fault = None if args.fault in (None, "none") else args.fault
    if args.chaos and fault is None:
        raise ConfigurationError(
            "replay --chaos needs --fault KIND: chaos replay physically "
            "enacts the recorded fault schedule"
        )
    record = record_run(
        args.algorithm, factory, instance, args.seed,
        max_rounds=args.max_rounds, fault=fault,
    )
    print(
        f"recorded {args.algorithm} on {args.graph} (n={instance.n}, "
        f"k={instance.k}, seed={args.seed}"
        + (f", fault={fault}" if fault else "")
        + f"): {record.rounds} rounds, "
        f"{'solved' if record.solved else 'NOT solved'}"
    )
    report = replay(record, chaos=args.chaos)
    if report.equivalent:
        rps = report.live.rounds_per_second
        mode = (
            "through physically enacted chaos "
            f"({report.live.chaos_kills} kills, "
            f"{report.live.chaos_revives} revives)"
            if args.chaos
            else "equal the simulation"
        )
        print(
            "replay EQUIVALENT: live match stream and final token sets "
            + mode
            + (f" ({rps:.1f} live rounds/s)" if rps else "")
        )
        return 0
    print(f"replay DIVERGED ({len(report.divergences)} divergences):")
    for divergence in report.divergences[:20]:
        print(f"  {divergence}")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gossip",
        description="Gossip in the mobile telephone model (Newport, PODC 2017)",
    )
    parser.add_argument(
        "--plugin",
        action="append",
        default=[],
        metavar="MODULE_OR_FILE",
        help="plugin module name or .py file registering out-of-tree "
             "definitions (repeatable; must precede the subcommand)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    graph_choices = sorted(_sized_graph_choices())
    algorithm_choices = list(ALGORITHMS)
    scenario_choices = sorted(SCENARIO_REGISTRY.names())

    run_p = sub.add_parser("run", help="run one algorithm on one graph")
    run_p.add_argument("--algorithm", choices=algorithm_choices,
                       required=True)
    run_p.add_argument("--graph", choices=graph_choices, default="expander")
    run_p.add_argument("--n", type=int, default=32)
    run_p.add_argument("--k", type=int, default=4)
    run_p.add_argument("--tau", type=int, default=0,
                       help="stability factor; 0 means infinity")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--max-rounds", type=int, default=200_000)
    run_p.add_argument(
        "--fault", choices=sorted(FAULT_REGISTRY.names()), default="none",
        help="fault regime degrading the run (default parameters; "
             "use sweep specs for tuned fault params)",
    )
    run_p.add_argument(
        "--timing", choices=sorted(TIMING_REGISTRY.names()),
        default="synchronous",
        help="timing regime scheduling per-node cycles (default "
             "parameters; use sweep specs for tuned timing params)",
    )
    run_p.add_argument(
        "--profile", action="store_true",
        help="enable telemetry and print the per-phase wall-clock "
             "profile after the run (results stay byte-identical)",
    )
    run_p.set_defaults(func=_cmd_run)

    sc_p = sub.add_parser("scenario", help="run a motivating workload")
    sc_p.add_argument("--name", choices=scenario_choices, required=True)
    sc_p.add_argument("--algorithm", choices=algorithm_choices, default=None)
    sc_p.add_argument("--seed", type=int, default=0)
    sc_p.add_argument("--max-rounds", type=int, default=200_000)
    sc_p.set_defaults(func=_cmd_scenario)

    cmp_p = sub.add_parser("compare", help="run all algorithms side by side")
    cmp_p.add_argument("--graph", choices=graph_choices, default="expander")
    cmp_p.add_argument("--n", type=int, default=24)
    cmp_p.add_argument("--k", type=int, default=3)
    cmp_p.add_argument("--tau", type=int, default=1)
    cmp_p.add_argument("--seed", type=int, default=0)
    cmp_p.add_argument("--max-rounds", type=int, default=400_000)
    cmp_p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the comparison runs")
    cmp_p.set_defaults(func=_cmd_compare)

    sw_p = sub.add_parser(
        "sweep", help="run a declarative sweep from a JSON spec file"
    )
    sw_p.add_argument("--spec", required=True,
                      help="path to a SweepSpec JSON file")
    sw_p.add_argument("--jobs", type=int, default=1,
                      help="worker processes (1 = in-process serial)")
    sw_p.add_argument("--cache-dir", default=None,
                      help="on-disk result cache keyed by run-spec hash")
    sw_p.add_argument("--out", default=None,
                      help="write the aggregated results as JSON here")
    sw_p.add_argument("--verbose", action="store_true",
                      help="print one line per completed run")
    sw_p.set_defaults(func=_cmd_sweep)

    ls_p = sub.add_parser(
        "list",
        help="print registered algorithms, graphs, dynamics, instances, "
             "fault models, timing models, scenarios, and transports",
    )
    ls_p.set_defaults(func=_cmd_list)

    transport_choices = sorted(TRANSPORT_REGISTRY.names())

    srv_p = sub.add_parser(
        "serve",
        help="deploy a live peer-server cluster and run it to completion",
    )
    srv_p.add_argument("--transport", choices=transport_choices,
                       default="tcp")
    srv_p.add_argument("--scenario", choices=scenario_choices, default=None,
                       help="boot the cluster from a registered scenario")
    srv_p.add_argument("--algorithm", choices=algorithm_choices,
                       default=None,
                       help="protocol to serve (scenario's recommendation "
                            "when omitted)")
    srv_p.add_argument("--graph", choices=graph_choices, default="expander")
    srv_p.add_argument("--n", type=int, default=8)
    srv_p.add_argument("--k", type=int, default=2)
    srv_p.add_argument("--tau", type=int, default=0,
                       help="stability factor; 0 means infinity")
    srv_p.add_argument("--seed", type=int, default=0)
    srv_p.add_argument("--max-rounds", type=int, default=512)
    srv_p.add_argument("--heartbeat-every", type=int, default=0,
                       help="rounds between cluster-wide heartbeats "
                            "(0 = off)")
    srv_p.add_argument("--heartbeat-max-age", type=float, default=None,
                       help="seconds before an unheard-from peer is pruned")
    srv_p.add_argument(
        "--fault", choices=sorted(FAULT_REGISTRY.names()), default=None,
        help="fault regime masked logically during the live run",
    )
    srv_p.add_argument(
        "--chaos", nargs="?", const="auto", default=None,
        choices=sorted(FAULT_REGISTRY.names()) + ["auto"],
        help="enact a fault schedule PHYSICALLY (killed endpoints, "
             "sleeping radios, dropped handshakes); with no value, "
             "enacts the scenario's or --fault's schedule",
    )
    srv_p.set_defaults(func=_cmd_serve)

    top_p = sub.add_parser(
        "top",
        help="poll a running peer server's metrics op and render a "
             "refreshing cluster status table",
    )
    top_p.add_argument("address", metavar="HOST:PORT",
                       help="any live peer endpoint of the cluster")
    top_p.add_argument("--interval", type=float, default=1.0,
                       help="seconds between polls")
    top_p.add_argument("--iterations", type=int, default=0,
                       help="stop after this many polls (0 = forever)")
    top_p.add_argument("--timeout", type=float, default=2.0,
                       help="per-poll request timeout in seconds")
    top_p.set_defaults(func=_cmd_top)

    rp_p = sub.add_parser(
        "replay",
        help="record a simulated run, replay it on a live cluster, and "
             "assert match-stream and token-set equivalence",
    )
    rp_p.add_argument("--algorithm", choices=algorithm_choices,
                      required=True)
    rp_p.add_argument("--graph", choices=graph_choices, default="expander")
    rp_p.add_argument("--n", type=int, default=8)
    rp_p.add_argument("--k", type=int, default=2)
    rp_p.add_argument("--tau", type=int, default=0,
                      help="stability factor; 0 means infinity")
    rp_p.add_argument("--seed", type=int, default=0)
    rp_p.add_argument("--max-rounds", type=int, default=512)
    rp_p.add_argument(
        "--fault", choices=sorted(FAULT_REGISTRY.names()), default="none",
        help="record the simulation under this fault regime and replay "
             "it under the same schedule",
    )
    rp_p.add_argument(
        "--chaos", action="store_true",
        help="enact the recorded fault schedule physically during the "
             "live replay (requires --fault)",
    )
    rp_p.set_defaults(func=_cmd_replay)

    return parser


def _preload_plugins(argv) -> None:
    """Load ``--plugin`` values before the parser is built.

    Choice lists are computed at parser-build time, so a plugin's
    registrations must land first for its names to be accepted.
    """
    index = 0
    while index < len(argv):
        arg = argv[index]
        if arg == "--plugin" and index + 1 < len(argv):
            load_plugin(argv[index + 1])
            index += 2
            continue
        if arg.startswith("--plugin="):
            load_plugin(arg.split("=", 1)[1])
        index += 1


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    _preload_plugins(argv)
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
