"""Command-line experiment runner.

Examples::

    repro-gossip run --algorithm sharedbit --n 32 --k 4 --graph expander
    repro-gossip scenario --name festival
    repro-gossip compare --n 24 --k 3
    repro-gossip sweep --spec examples/specs/tiny.json --jobs 4
    python -m repro.cli run --algorithm blindmatch --n 16 --k 2 --graph star
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.problem import uniform_instance
from repro.core.runner import ALGORITHMS, run_gossip
from repro.experiments import SweepSpec, run_sweep
from repro.graphs.dynamic import (
    RelabelingAdversary,
    StaticDynamicGraph,
    TAU_INFINITY,
)
from repro.graphs.topologies import TOPOLOGY_FAMILIES
from repro.analysis.tables import render_table
from repro.workloads.scenarios import SCENARIOS

__all__ = ["main"]

_GRAPH_CHOICES = ("expander", "star", "path", "cycle", "complete", "grid")


def _graph_spec(name: str, n: int, seed: int) -> dict:
    """The experiments-layer graph spec matching this CLI's conventions."""
    if name == "expander":
        degree = min(6, n - 1)
        if (n * degree) % 2:
            degree -= 1
        return {
            "family": "expander",
            "params": {"n": n, "degree": max(degree, 2), "seed": seed},
        }
    if name == "grid":
        cols = max(2, int(n**0.5))
        rows = max(2, n // cols)
        return {"family": "grid", "params": {"rows": rows, "cols": cols}}
    return {"family": name, "params": {"n": n}}


def _build_topology(name: str, n: int, seed: int):
    spec = _graph_spec(name, n, seed)
    return TOPOLOGY_FAMILIES[spec["family"]](**spec["params"])


def _build_graph(args):
    topo = _build_topology(args.graph, args.n, args.seed)
    if args.tau == 0:  # 0 encodes tau = infinity on the command line
        return StaticDynamicGraph(topo), topo.n
    return RelabelingAdversary(topo, tau=args.tau, seed=args.seed), topo.n


def _cmd_run(args) -> int:
    graph, n = _build_graph(args)
    instance = uniform_instance(n=n, k=args.k, seed=args.seed)
    result = run_gossip(
        algorithm=args.algorithm,
        dynamic_graph=graph,
        instance=instance,
        seed=args.seed,
        max_rounds=args.max_rounds,
    )
    status = "solved" if result.solved else "NOT solved (round limit)"
    print(
        f"{args.algorithm} on {args.graph} (n={n}, k={args.k}, "
        f"tau={'inf' if args.tau == 0 else args.tau}): "
        f"{result.rounds} rounds, {status}"
    )
    print(
        f"connections={result.trace.total_connections} "
        f"tokens_moved={result.trace.total_tokens_moved} "
        f"control_bits={result.trace.total_control_bits}"
    )
    return 0 if result.solved else 1


def _cmd_scenario(args) -> int:
    scenario = SCENARIOS[args.name](seed=args.seed)
    result = run_gossip(
        algorithm=args.algorithm or scenario.recommended_algorithm,
        dynamic_graph=scenario.dynamic_graph,
        instance=scenario.instance,
        seed=args.seed,
        max_rounds=args.max_rounds,
    )
    status = "solved" if result.solved else "NOT solved (round limit)"
    print(f"scenario {scenario.name}: {scenario.description}")
    print(
        f"{result.algorithm}: {result.rounds} rounds, {status} "
        f"(n={scenario.instance.n}, k={scenario.instance.k})"
    )
    return 0 if result.solved else 1


def _cmd_compare(args) -> int:
    if args.tau == 0:
        dynamic = {"kind": "static"}
    else:
        dynamic = {"kind": "relabeling", "tau": args.tau}
    sweep = SweepSpec(
        name=f"compare-{args.graph}-n{args.n}-k{args.k}",
        base={
            "algorithm": ALGORITHMS[0],
            "graph": _graph_spec(args.graph, args.n, args.seed),
            "dynamic": dynamic,
            "instance": {"kind": "uniform", "k": args.k},
            "max_rounds": args.max_rounds,
        },
        grid={"algorithm": list(ALGORITHMS)},
        seeds=(args.seed,),
    )
    result = run_sweep(sweep, jobs=args.jobs)
    rows = []
    for summary in result.points:
        # CrowdedBin's τ = ∞ substitution is recorded in the run notes;
        # surface it so side-by-side numbers aren't silently apples/oranges.
        substituted = bool(summary.notes)
        tau = "inf" if args.tau == 0 or substituted else args.tau
        median = summary.median_rounds
        rows.append(
            (
                summary.point["algorithm"],
                tau,
                int(median) if median == int(median) else median,
                "yes" if summary.all_solved else "no",
                "; ".join(summary.notes) or "-",
            )
        )
    print(
        render_table(
            headers=("algorithm", "tau", "rounds", "solved", "notes"),
            rows=rows,
            title=f"gossip comparison: {args.graph}, n={args.n}, k={args.k}",
        )
    )
    return 0


def _cmd_sweep(args) -> int:
    spec_text = Path(args.spec).read_text()
    sweep = SweepSpec.from_json(spec_text)
    progress = print if args.verbose else None
    result = run_sweep(
        sweep,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        progress=progress,
    )
    print(result.table())
    if args.cache_dir:
        print(
            f"cache: {result.cache_hits} hits, "
            f"{result.cache_misses} misses ({args.cache_dir})"
        )
    if args.out:
        Path(args.out).write_text(result.to_json(indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0 if all(summary.all_solved for summary in result.points) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gossip",
        description="Gossip in the mobile telephone model (Newport, PODC 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one algorithm on one graph")
    run_p.add_argument("--algorithm", choices=ALGORITHMS, required=True)
    run_p.add_argument("--graph", choices=_GRAPH_CHOICES, default="expander")
    run_p.add_argument("--n", type=int, default=32)
    run_p.add_argument("--k", type=int, default=4)
    run_p.add_argument("--tau", type=int, default=0,
                       help="stability factor; 0 means infinity")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--max-rounds", type=int, default=200_000)
    run_p.set_defaults(func=_cmd_run)

    sc_p = sub.add_parser("scenario", help="run a motivating workload")
    sc_p.add_argument("--name", choices=sorted(SCENARIOS), required=True)
    sc_p.add_argument("--algorithm", choices=ALGORITHMS, default=None)
    sc_p.add_argument("--seed", type=int, default=0)
    sc_p.add_argument("--max-rounds", type=int, default=200_000)
    sc_p.set_defaults(func=_cmd_scenario)

    cmp_p = sub.add_parser("compare", help="run all algorithms side by side")
    cmp_p.add_argument("--graph", choices=_GRAPH_CHOICES, default="expander")
    cmp_p.add_argument("--n", type=int, default=24)
    cmp_p.add_argument("--k", type=int, default=3)
    cmp_p.add_argument("--tau", type=int, default=1)
    cmp_p.add_argument("--seed", type=int, default=0)
    cmp_p.add_argument("--max-rounds", type=int, default=400_000)
    cmp_p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the comparison runs")
    cmp_p.set_defaults(func=_cmd_compare)

    sw_p = sub.add_parser(
        "sweep", help="run a declarative sweep from a JSON spec file"
    )
    sw_p.add_argument("--spec", required=True,
                      help="path to a SweepSpec JSON file")
    sw_p.add_argument("--jobs", type=int, default=1,
                      help="worker processes (1 = in-process serial)")
    sw_p.add_argument("--cache-dir", default=None,
                      help="on-disk result cache keyed by run-spec hash")
    sw_p.add_argument("--out", default=None,
                      help="write the aggregated results as JSON here")
    sw_p.add_argument("--verbose", action="store_true",
                      help="print one line per completed run")
    sw_p.set_defaults(func=_cmd_sweep)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
