"""Two-party communication-complexity subroutines (paper §3 and §5.2).

Connected nodes may exchange only O(polylog N) control bits per round, far
too few to ship a token set.  This subpackage supplies the machinery the
paper builds on top of that constraint:

* :mod:`repro.commcplx.eqtest` — randomized set-equality testing
  (``EQTest(c)``): one-sided error, O(log N) bits per trial;
* :mod:`repro.commcplx.transfer` — the ``Transfer(ε)`` subroutine: binary
  search over ``[N]`` driven by EQTest to locate and move the smallest
  token in the symmetric difference of two token sets;
* :mod:`repro.commcplx.newman` — the seed-indexed family of candidate
  shared strings realizing the paper's generalization of Newman's theorem
  (the multiset R′ of §5.2).
"""

from repro.commcplx.fields import next_prime, is_prime, eval_set_polynomial
from repro.commcplx.eqtest import EqualityTester, EqTestStats
from repro.commcplx.transfer import (
    TransferOutcome,
    TransferProtocol,
    trials_for_error,
)
from repro.commcplx.newman import SharedStringFamily

__all__ = [
    "next_prime",
    "is_prime",
    "eval_set_polynomial",
    "EqualityTester",
    "EqTestStats",
    "TransferOutcome",
    "TransferProtocol",
    "trials_for_error",
    "SharedStringFamily",
]
