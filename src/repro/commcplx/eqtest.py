"""EQTest: randomized set-equality testing with private randomness.

The paper (§3) assumes "one of the many known existing solutions" to the
two-party EQ problem with this contract:

* if the sets are equal, the test reports *equal* with probability 1;
* if they differ, it erroneously reports equal with probability ≤ 1/2 per
  trial, and trials are independent, so ``c`` trials push the error to
  ``2^-c``;
* each trial uses O(log N) bits and only private randomness.

We realize it with polynomial identity fingerprinting over ``F_p``,
``p > 2N`` (see :mod:`repro.commcplx.fields`): per trial the initiating
party draws a uniform evaluation point, sends the point and its own
polynomial's value (2·⌈log₂ p⌉ bits), and the responder answers with one
bit.  Per-trial soundness error is ≤ N/p ≤ 1/2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.bits import ceil_log2
from repro.commcplx.fields import eval_set_polynomial, next_prime
from repro.errors import ConfigurationError
from repro.sim.channel import Channel

__all__ = ["EqualityTester", "EqTestStats"]


@dataclass
class EqTestStats:
    """Communication accounting for a batch of EQTest invocations."""

    calls: int = 0
    trials: int = 0
    bits: int = 0

    def merge(self, other: "EqTestStats") -> None:
        self.calls += other.calls
        self.trials += other.trials
        self.bits += other.bits


@dataclass
class EqualityTester:
    """Equality testing for subsets of ``[upper_n]``.

    One instance is bound to a universe bound ``upper_n``; the field prime
    ``p`` is the smallest prime exceeding ``2·upper_n`` so each trial's
    soundness error ``upper_n / p`` is below 1/2.
    """

    upper_n: int
    stats: EqTestStats = field(default_factory=EqTestStats)

    def __post_init__(self):
        if self.upper_n < 2:
            raise ConfigurationError(f"upper_n must be >= 2, got {self.upper_n}")
        self._prime = next_prime(2 * self.upper_n)
        self._bits_per_trial = 2 * ceil_log2(self._prime) + 1

    @property
    def prime(self) -> int:
        return self._prime

    @property
    def bits_per_trial(self) -> int:
        return self._bits_per_trial

    def test(
        self,
        set_a,
        set_b,
        trials: int,
        rng: random.Random,
        channel: Channel | None = None,
    ) -> bool:
        """Report whether the two sets appear equal after ``trials`` trials.

        Returns True ("equal") only if every trial's fingerprints matched.
        False is always correct (a mismatching evaluation is a proof of
        inequality); True may be wrong with probability ≤ (N/p)^trials.
        """
        if trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {trials}")
        self.stats.calls += 1
        elements_a = list(set_a)
        elements_b = list(set_b)
        prime = self._prime
        if set(elements_a) == set(elements_b):
            # Equal sets can never early-exit: every trial runs and
            # necessarily matches, so the outcome carries no randomness —
            # charge the identical trials and bits but skip the draws and
            # polynomial evaluations.  Determinism is preserved because
            # set equality is itself a pure function of protocol state:
            # every replay takes the same branch, so the initiator's
            # private stream advances identically on every run.  In
            # Transfer's binary search most prefix comparisons are
            # between equal (often empty) restrictions, so this is the
            # protocol's hot path.
            executed = trials
            matched = True
        else:
            executed = 0
            matched = True
            for _ in range(trials):
                executed += 1
                point = rng.randrange(prime)
                value_a = eval_set_polynomial(elements_a, point, prime)
                value_b = eval_set_polynomial(elements_b, point, prime)
                if value_a != value_b:
                    matched = False
                    break
        self.stats.trials += executed
        self.stats.bits += executed * self._bits_per_trial
        if channel is not None:
            channel.charge_bits(executed * self._bits_per_trial,
                                label="eqtest")
        return matched
