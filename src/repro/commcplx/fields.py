"""Prime-field arithmetic for polynomial fingerprinting.

The equality tester encodes a set ``S ⊆ [N]`` as the polynomial
``P_S(x) = Σ_{i∈S} x^i`` over a prime field ``F_p`` with ``p > 2N``.  Two
distinct sets give distinct polynomials of degree ≤ N, which agree on at
most N of the p evaluation points — so a uniformly random point exposes a
difference with probability ≥ 1 − N/p ≥ 1/2.

Primality testing is deterministic Miller–Rabin with a base set proven
sufficient for all 64-bit integers, which is far beyond any N this
simulator meets.
"""

from __future__ import annotations

__all__ = ["is_prime", "next_prime", "eval_set_polynomial"]

# Witness set deterministically correct for all n < 3.3 * 10^24
# (Sorenson & Webster 2015).
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(value: int) -> bool:
    """Deterministic primality test for any value this library needs."""
    if value < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if value == p:
            return True
        if value % p == 0:
            return False
    d = value - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, value)
        if x in (1, value - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % value
            if x == value - 1:
                break
        else:
            return False
    return True


def next_prime(value: int) -> int:
    """The smallest prime strictly greater than ``value``."""
    candidate = max(value + 1, 2)
    if candidate > 2 and candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 1 if candidate == 2 else 2
    return candidate


def eval_set_polynomial(elements, point: int, prime: int) -> int:
    """Evaluate ``P_S(x) = Σ_{i∈S} x^i mod prime`` at ``x = point``.

    Elements must be non-negative integers (token labels from ``[N]``).
    """
    if prime < 2:
        raise ValueError(f"prime must be >= 2, got {prime}")
    total = 0
    x = point % prime
    for element in elements:
        if element < 0:
            raise ValueError(f"set elements must be >= 0, got {element}")
        total = (total + pow(x, element, prime)) % prime
    return total
