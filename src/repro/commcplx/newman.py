"""The shared-string family R′ (the paper's generalization of Newman's theorem).

SharedBit needs Θ(N³ log N) shared random bits — far too many to
disseminate over connections limited to polylog(N) bits.  §5.2 of the
paper proves (probabilistic method, never constructive) that a multiset
R′ of only poly(N) candidate strings exists such that a string sampled
uniformly from R′ is "random enough" for SharedBit w.h.p.  A string in R′
can then be named with a polylog(N)-bit *seed*, small enough for a leader
to disseminate.

:class:`SharedStringFamily` realizes the object the probabilistic-method
argument samples: ``family_size`` candidate strings, each derived from the
family's master key and its index.  Picking the family at random is
exactly what the existence proof does — a random selection is *good* (not
bad for any graph/assignment combination) with probability > 1 − 2^-poly(N);
our PRF-derived strings play the role of those uniform draws (DESIGN.md §4).

Seeds are indices in ``[0, family_size)`` and cost ``⌈log₂ family_size⌉``
bits on the wire — polylog(N) as required for the leader's payload.
"""

from __future__ import annotations

import random

from repro.bits import ceil_log2
from repro.errors import ConfigurationError
from repro.rng import SeedTree, SharedRandomness

__all__ = ["SharedStringFamily"]


class SharedStringFamily:
    """A poly(N)-sized, seed-indexed multiset of candidate shared strings.

    All nodes construct the family from the same ``(master_seed,
    family_size, capacity_n)`` — the family itself is part of the algorithm
    description, exactly as R′ is in the paper.  What stays *private* is
    which index each node samples; the leader's index is the one that ends
    up shared.
    """

    def __init__(self, master_seed: int, capacity_n: int,
                 family_size: int | None = None):
        if capacity_n < 2:
            raise ConfigurationError(f"capacity_n must be >= 2, got {capacity_n}")
        # The paper's R′ has N^Θ(1) strings; N³ keeps seed indices at
        # 3·log₂N bits, comfortably inside the payload budget.
        self.family_size = capacity_n**3 if family_size is None else family_size
        if self.family_size < 1:
            raise ConfigurationError(
                f"family_size must be >= 1, got {self.family_size}"
            )
        self.master_seed = master_seed
        self.capacity_n = capacity_n
        self._tree = SeedTree(master_seed).child("newman-family")

    @property
    def seed_bits(self) -> int:
        """Bits needed to transmit a seed index."""
        return max(ceil_log2(self.family_size), 1)

    def string_for_seed(self, seed_index: int) -> SharedRandomness:
        """The candidate shared string named by ``seed_index``."""
        if not 0 <= seed_index < self.family_size:
            raise ConfigurationError(
                f"seed_index {seed_index} outside [0, {self.family_size})"
            )
        key = self._tree.key("string", seed_index)
        return SharedRandomness(key, self.capacity_n)

    def sample_seed(self, rng: random.Random) -> int:
        """Draw a uniform seed index (each node does this privately)."""
        return rng.randrange(self.family_size)

    def __repr__(self) -> str:
        return (
            f"SharedStringFamily(size={self.family_size}, "
            f"N={self.capacity_n}, seed_bits={self.seed_bits})"
        )
