"""Transfer(ε): find and move the smallest token in the symmetric difference.

Once two nodes connect, even knowing their token sets differ, they must
still *identify* a token one is missing — with only O(polylog N) bits of
conversation.  §3 of the paper does this with a binary search over the
label space ``[N]``: repeatedly EQTest the two sets restricted to a prefix
interval; if the prefixes differ the earliest difference lies inside,
otherwise beyond.

Guarantee: if ``T_u ≠ T_v`` then, with probability ≥ 1 − ε, the smallest
label in ``(T_u ∪ T_v) \\ (T_u ∩ T_v)`` is identified and the token moves
from its owner to the other node.  Cost: ≤ ⌈log₂ N⌉ EQTest calls of
``⌈log₂(⌈log₂ N⌉/ε)⌉`` trials each — O(log²N · log(logN/ε)) bits.

Note on the paper's pseudocode: it narrows with ``b ← ⌊b/2⌋``, shorthand
that only reads correctly as "the midpoint of the live interval [a, b]".
We implement the midpoint search explicitly; the stated guarantee and bit
budget are unchanged.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.bits import ceil_log2
from repro.commcplx.eqtest import EqualityTester
from repro.errors import ConfigurationError
from repro.sim.channel import Channel

__all__ = ["TransferOutcome", "TransferProtocol", "trials_for_error"]


def trials_for_error(upper_n: int, epsilon: float) -> int:
    """EQTest trials per call so that Transfer(ε) fails with prob < ε.

    The search makes ≤ ⌈log₂ N⌉ EQTest calls; each must fail with
    probability ≤ ε / ⌈log₂ N⌉, and a trial errs with probability ≤ 1/2,
    so ``⌈log₂(⌈log₂ N⌉ / ε)⌉`` trials suffice (the paper's ε′).
    """
    if not 0 < epsilon < 1:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
    log_n = max(ceil_log2(upper_n), 1)
    return max(1, math.ceil(math.log2(log_n / epsilon)))


@dataclass(frozen=True)
class TransferOutcome:
    """What one Transfer invocation did.

    ``token_id`` — the label the binary search landed on (None when the
    parties' sets were genuinely equal *and* the search confirmed it).
    ``moved_to_a`` / ``moved_to_b`` — direction of the transfer, if any.
    ``consistent`` — False when the search landed on a label owned by both
    or neither party, which can only happen when some EQTest call erred
    (or the sets were equal); callers treat it as "no useful transfer".
    """

    token_id: int | None
    moved_to_a: bool
    moved_to_b: bool
    consistent: bool
    eq_calls: int
    control_bits: int

    @property
    def moved(self) -> bool:
        return self.moved_to_a or self.moved_to_b


class TransferProtocol:
    """Reusable Transfer(ε) runner bound to a universe bound ``upper_n``.

    Token labels live in ``[1, upper_n]`` (the paper labels each token with
    its origin's UID from [N]).  The protocol works on *label sets*; the
    caller moves the actual token payload based on the outcome — see
    :meth:`repro.core.problem.GossipNode.run_transfer`.
    """

    def __init__(self, upper_n: int, epsilon: float):
        if upper_n < 2:
            raise ConfigurationError(f"upper_n must be >= 2, got {upper_n}")
        self.upper_n = upper_n
        self.epsilon = epsilon
        self.trials_per_call = trials_for_error(upper_n, epsilon)
        self.tester = EqualityTester(upper_n)

    def locate(
        self,
        labels_a,
        labels_b,
        rng: random.Random,
        channel: Channel | None = None,
    ) -> TransferOutcome:
        """Run the binary search and report the chosen label and direction."""
        set_a = frozenset(labels_a)
        set_b = frozenset(labels_b)
        self._validate(set_a, "a")
        self._validate(set_b, "b")

        bits_before = self.tester.stats.bits
        calls_before = self.tester.stats.calls
        lo, hi = 1, self.upper_n
        while lo != hi:
            mid = (lo + hi) // 2
            prefix_a = [x for x in set_a if lo <= x <= mid]
            prefix_b = [x for x in set_b if lo <= x <= mid]
            equal = self.tester.test(
                prefix_a, prefix_b, self.trials_per_call, rng, channel
            )
            if equal:
                lo = mid + 1
            else:
                hi = mid
        chosen = lo

        in_a = chosen in set_a
        in_b = chosen in set_b
        consistent = in_a != in_b
        # Each side reveals whether it owns the chosen label (1 bit each),
        # then the owner ships the token.
        ownership_bits = 2
        if channel is not None:
            channel.charge_bits(ownership_bits, label="transfer-ownership")
            if consistent:
                channel.charge_token()
        eq_calls = self.tester.stats.calls - calls_before
        control_bits = self.tester.stats.bits - bits_before + ownership_bits
        return TransferOutcome(
            token_id=chosen if consistent else None,
            moved_to_a=consistent and in_b,
            moved_to_b=consistent and in_a,
            consistent=consistent,
            eq_calls=eq_calls,
            control_bits=control_bits,
        )

    def worst_case_control_bits(self) -> int:
        """Upper bound on control bits per invocation (for budget sizing)."""
        calls = max(ceil_log2(self.upper_n), 1)
        return calls * self.trials_per_call * self.tester.bits_per_trial + 2

    def _validate(self, labels: frozenset, side: str) -> None:
        for label in labels:
            if not 1 <= label <= self.upper_n:
                raise ConfigurationError(
                    f"token label {label} on side {side!r} outside [1, {self.upper_n}]"
                )
