"""The paper's contribution: gossip algorithms for the mobile telephone model.

===============  ===========  ==========================================
Algorithm        Assumptions  Proven round complexity (w.h.p.)
===============  ===========  ==========================================
BlindMatch       b=0, τ≥1     O((1/α) · k · Δ² · log²n)      (Thm 4.1)
SharedBit        b=1, τ≥1     O(k·n)  [shared randomness]    (Thm 5.1)
SimSharedBit     b=1, τ≥1     O(k·n + (1/α)·Δ^{1/τ}·log⁶n)   (Thm 5.6)
CrowdedBin       b=1, τ=∞     O((k/α) · log⁶n)               (Thm 6.10)
SharedBit (ε)    b=1, τ≥1     O(n·√(Δ·logΔ) / ((1−ε)·α))     (Thm 7.4)
===============  ===========  ==========================================

Entry points: :func:`repro.core.runner.run_gossip` for one-call experiment
runs, or instantiate the per-algorithm node classes directly with
:class:`repro.sim.engine.Simulation`.
"""

from repro.core.tokens import Token
from repro.core.problem import (
    GossipInstance,
    GossipNode,
    uniform_instance,
    everyone_starts_instance,
    skewed_instance,
)
from repro.core.potential import (
    potential,
    token_set_census,
    find_coalition,
    epsilon_gossip_solved,
    mutual_knowledge_core,
)
# Import order fixes registry registration order (= the display and grid
# order of the ALGORITHMS view): the paper's Figure 1 algorithms first,
# then MultiBit (our b >= 1 generalization), then the ε-gossip harness.
from repro.core.blindmatch import BlindMatchConfig, BlindMatchNode
from repro.core.sharedbit import SharedBitConfig, SharedBitNode
from repro.core.simsharedbit import SimSharedBitConfig, SimSharedBitNode
from repro.core.ppush import PPushNode
from repro.core.schedule import CrowdedBinSchedule, SchedulePosition
from repro.core.crowdedbin import CrowdedBinConfig, CrowdedBinNode
from repro.core.multibit import MultiBitConfig, MultiBitSharedBitNode
from repro.core.epsilon import run_epsilon_gossip, EpsilonGossipResult
from repro.core.runner import run_gossip, GossipRunResult, ALGORITHMS

__all__ = [
    "Token",
    "GossipInstance",
    "GossipNode",
    "uniform_instance",
    "everyone_starts_instance",
    "skewed_instance",
    "potential",
    "token_set_census",
    "find_coalition",
    "epsilon_gossip_solved",
    "mutual_knowledge_core",
    "BlindMatchConfig",
    "BlindMatchNode",
    "SharedBitConfig",
    "SharedBitNode",
    "SimSharedBitConfig",
    "SimSharedBitNode",
    "MultiBitConfig",
    "MultiBitSharedBitNode",
    "PPushNode",
    "CrowdedBinSchedule",
    "SchedulePosition",
    "CrowdedBinConfig",
    "CrowdedBinNode",
    "run_epsilon_gossip",
    "EpsilonGossipResult",
    "run_gossip",
    "GossipRunResult",
    "ALGORITHMS",
]
