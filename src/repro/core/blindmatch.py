"""BlindMatch: gossip with no advertising bits (b = 0), any stability (§4).

The natural strategy when nodes can signal nothing: every round each node
flips a fair coin to be a *sender* or a *receiver*; a sender proposes to a
uniformly random neighbor; connected pairs run Transfer(ε) to move the
smallest token in their symmetric difference.

Theorem 4.1: solves gossip in O((1/α)·k·Δ²·log²n) rounds w.h.p.  The Δ²
factor is real — see the double-star lower bound benchmark — because in a
star a specific proposal lands with probability ≈ 1/Δ and survives the
acceptance lottery with probability ≈ 1/Δ.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.commcplx.transfer import TransferProtocol
from repro.core.problem import GossipNode
from repro.errors import ConfigurationError
from repro.registry import register_algorithm
from repro.sim.channel import Channel
from repro.sim.context import NeighborView

__all__ = ["BlindMatchConfig", "BlindMatchNode"]


@dataclass(frozen=True)
class BlindMatchConfig:
    """Tunables for BlindMatch.

    ``transfer_error_exponent`` — the ``c_t`` in Transfer's per-call error
    ε = N^{-c_t} (§5.1 fixes c_t ≥ 1 "sufficiently large"; 2 keeps the
    union bound comfortable at simulation sizes).
    """

    transfer_error_exponent: float = 2.0

    def __post_init__(self):
        if self.transfer_error_exponent <= 0:
            raise ConfigurationError(
                "transfer_error_exponent must be positive, got "
                f"{self.transfer_error_exponent}"
            )

    def transfer_epsilon(self, upper_n: int) -> float:
        return float(upper_n) ** (-self.transfer_error_exponent)

    @classmethod
    def paper(cls) -> "BlindMatchConfig":
        return cls(transfer_error_exponent=2.0)

    @classmethod
    def practical(cls) -> "BlindMatchConfig":
        return cls(transfer_error_exponent=1.0)


class BlindMatchNode(GossipNode):
    """One node running BlindMatch.  Requires b = 0 (advertises nothing)."""

    def __init__(self, uid: int, upper_n: int, initial_tokens,
                 rng: random.Random, config: BlindMatchConfig | None = None):
        super().__init__(uid, upper_n, initial_tokens, rng)
        self.config = config or BlindMatchConfig()
        self._transfer = TransferProtocol(
            upper_n, self.config.transfer_epsilon(upper_n)
        )
        self._sender_this_round = False

    def advertise(self, round_index: int, neighbor_uids: tuple[int, ...]) -> int:
        # b = 0: nothing to say.  The fair coin is flipped here because the
        # model's round begins with the scan; the decision is needed before
        # proposals.
        self._sender_this_round = self.rng.random() < 0.5
        return 0

    def propose(
        self, round_index: int, neighbors: tuple[NeighborView, ...]
    ) -> int | None:
        if not self._sender_this_round or not neighbors:
            return None
        return self.rng.choice(neighbors).uid

    def interact(self, responder: "BlindMatchNode", channel: Channel,
                 round_index: int) -> None:
        self.run_transfer(responder, self._transfer, channel)

    # -- bulk hooks (array fast path) ------------------------------------
    # Byte-identical to looping the scalar hooks over vertices 0..n-1:
    # every node's coin comes off its own rng in vertex order, and
    # rng.choice over the CSR row consumes exactly what rng.choice over
    # the NeighborView tuple would (same length, same one _randbelow).

    @classmethod
    def advertise_all(cls, nodes, round_index, csr) -> np.ndarray:
        for node in nodes:
            node._sender_this_round = node.rng.random() < 0.5
        return csr.round_buffer("blindmatch:tags", len(nodes), np.int64,
                                fill=0)

    @classmethod
    def propose_all(cls, nodes, round_index, csr, tags) -> np.ndarray:
        rows = csr.uid_rows()
        targets = [-1] * len(nodes)
        for vertex, node in enumerate(nodes):
            if node._sender_this_round:
                row = rows[vertex]
                if row:
                    targets[vertex] = node.rng.choice(row)
        out = csr.round_buffer("blindmatch:targets", len(nodes), np.int64)
        out[:] = targets
        return out

    # -- window hooks (batched async path) -------------------------------
    # The sender coin comes off each node's *private* rng — the same
    # stream Transfer's EQTest draws from — so scans must stay in event
    # order relative to interactions (``eager_scan = False``: the engine
    # calls ``scan`` cohort by cohort).  The batched win for b = 0 is in
    # the engine's drain/commit/resolve machinery, not in hashing.

    @classmethod
    def make_window_hooks(cls, nodes) -> "_BlindMatchWindowOps":
        return _BlindMatchWindowOps(nodes)


class _BlindMatchWindowOps:
    """Stateful window ops for BlindMatch (see ``window_hooks``).

    Tags are always 0 (b = 0) and never depend on token state
    (``needs_retag = False``); the coin and the uniform target draw
    consume each member's private rng exactly as the scalar hooks do —
    ``rng.choice`` over the visible-UID array is the same single
    ``_randbelow(len)`` as over the ``NeighborView`` tuple.  Like the
    bulk hooks, the batch skips ``_sender_this_round`` bookkeeping;
    nothing outside the scalar hooks reads it.
    """

    eager_scan = False
    needs_retag = False

    def __init__(self, nodes):
        self._nodes = nodes

    def state_changed(self, vertex: int) -> None:
        pass

    def scan(self, vertices, cycles) -> tuple[np.ndarray, np.ndarray]:
        count = len(vertices)
        tags = np.zeros(count, dtype=np.int64)
        senders = np.empty(count, dtype=bool)
        nodes = self._nodes
        for i, vertex in enumerate(np.asarray(vertices).tolist()):
            senders[i] = nodes[vertex].rng.random() < 0.5
        return tags, senders

    def retag(self, vertex: int, cycle: int) -> int:
        return 0

    def propose_one(self, vertex, cycle, neighbor_uids, neighbor_tags) -> int:
        if len(neighbor_uids) == 0:
            return -1
        return int(self._nodes[vertex].rng.choice(neighbor_uids))


@register_algorithm(
    name="blindmatch",
    description="no advertising bits, any tau; O((1/a)*k*D^2*log^2 n) (Thm 4.1)",
    config_class=BlindMatchConfig,
    tag_length=0,
)
def _build_blindmatch_nodes(ctx):
    return {
        vertex: BlindMatchNode(config=ctx.config, **ctx.common(vertex))
        for vertex in ctx.vertices()
    }
