"""CrowdedBin: gossip over stable topologies with one advertising bit (§6).

The idea: with τ = ∞ a node can spell multi-bit information to all its
neighbors over consecutive rounds using its single advertising bit.
CrowdedBin spends that power on two things:

1. **Estimating k.**  Nodes run log N logically-parallel instances, one
   per estimate ``k_i = 2^i``.  Every token owner throws its token (tagged
   with a random ℓ-bit label) into a uniform bin per instance.  If an
   instance's estimate is too small, some bin collects ≥ γ·log N tags — a
   *crowded bin* — which nodes treat as proof the estimate must grow.
   Nodes also upgrade when they *hear activity* (a 1-bit) in an instance
   above their current estimate.

2. **Spreading tokens.**  Within its instance, a node walks bins; in bin
   ``j`` it spells the block-th smallest tag it knows for that bin over the
   ℓ spelling rounds of each block, then runs PPUSH for that tag's token
   in the block's last log N rounds.  After estimates stabilize at the
   target instance (no crowding), every token owns a (bin, block) slot and
   the per-block PPUSH executions concatenate into clean parallel rumor
   spreading.

Theorem 6.10: O((k/α)·log⁶ n) rounds w.h.p. — a factor ≈ n faster than
SharedBit on well-connected stable graphs.

Faithfulness notes: pending tags fold in at bin end (§6.1 "put it aside"),
upgrades finish the committed phase before switching, estimates never
decrease, and the activity upgrade jumps straight to the instance where
activity was heard.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.bits import ceil_log2
from repro.core.problem import GossipNode
from repro.core.schedule import CrowdedBinSchedule, SchedulePosition
from repro.core.tokens import Token
from repro.errors import ConfigurationError
from repro.registry import register_algorithm
from repro.sim.channel import Channel
from repro.sim.context import NeighborView

__all__ = ["CrowdedBinConfig", "CrowdedBinNode", "configuration_report"]


@dataclass(frozen=True)
class CrowdedBinConfig:
    """Tunables β (tag-space exponent) and γ (blocks per bin).

    Lemma 6.5: for failure probability ≤ N^{-c}, take β ≥ c + 3 and
    γ ≥ 3c + 9.  Those are the ``paper()`` values (c = 1).  The
    ``practical()`` preset keeps phases short enough for laptop sweeps;
    EXPERIMENTS.md states which preset produced each number.  β below 3
    is risky at small N: tag collisions (a *bad configuration* per
    Definition 6.3) can permanently wedge one token's dissemination, just
    as the paper's analysis anticipates by requiring unique tags.
    """

    beta: int = 4
    gamma: int = 12

    def __post_init__(self):
        if self.beta < 1 or self.gamma < 1:
            raise ConfigurationError(
                f"beta and gamma must be >= 1, got beta={self.beta}, "
                f"gamma={self.gamma}"
            )

    @classmethod
    def paper(cls) -> "CrowdedBinConfig":
        return cls(beta=4, gamma=12)

    @classmethod
    def practical(cls) -> "CrowdedBinConfig":
        return cls(beta=3, gamma=2)

    def schedule(self, upper_n: int) -> CrowdedBinSchedule:
        return CrowdedBinSchedule(upper_n, beta=self.beta, gamma=self.gamma)


class _SpellBuffer:
    """Collects one neighbor's advertising bits across a block's spelling part."""

    __slots__ = ("bits", "next_offset", "valid")

    def __init__(self):
        self.bits: list[int] = []
        self.next_offset = 0
        self.valid = False

    def start(self, bit: int) -> None:
        self.bits = [bit]
        self.next_offset = 1
        self.valid = True

    def feed(self, offset: int, bit: int) -> None:
        if not self.valid or offset != self.next_offset:
            self.valid = False
            return
        self.bits.append(bit)
        self.next_offset += 1

    def value(self, ell: int) -> int | None:
        if not self.valid or len(self.bits) != ell:
            return None
        out = 0
        for bit in self.bits:
            out = (out << 1) | bit
        return out


class CrowdedBinNode(GossipNode):
    """One node running CrowdedBin.  Requires b = 1 and τ = ∞."""

    def __init__(
        self,
        uid: int,
        upper_n: int,
        initial_tokens,
        rng: random.Random,
        config: CrowdedBinConfig | None = None,
        schedule: CrowdedBinSchedule | None = None,
    ):
        super().__init__(uid, upper_n, initial_tokens, rng)
        self.config = config or CrowdedBinConfig()
        self.schedule = schedule or self.config.schedule(upper_n)

        #: Current estimate, as an instance index (k_est = 2^est).
        self.est = 1
        #: The (instance, phase) this node committed to, if any.
        self._committed: tuple[int, int] | None = None

        #: T_u(i, j): tags known for bin j of instance i.
        self._bin_tags: dict[tuple[int, int], set[int]] = {}
        #: Tags heard mid-bin, folded in at bin end (§6.1 "put it aside").
        self._pending_tags: dict[tuple[int, int], set[int]] = {}
        #: tag -> token for tokens this node owns (Q_u with its tag labels).
        self._owned_by_tag: dict[int, Token] = {}

        # Keyed by (instance, neighbor uid): rounds of all log N instances
        # interleave, so each instance needs its own reception state.
        self._spell_buffers: dict[tuple[int, int], _SpellBuffer] = {}
        self._block_tag: int | None = None
        self._block_bits: list[int] = []
        self._bit_this_round = 0
        self._pos: SchedulePosition | None = None

        self._assign_initial_bins()

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------

    def _assign_initial_bins(self) -> None:
        """Tag each owned token and throw it into a bin per instance."""
        for token_id in sorted(self._tokens):
            token = self._tokens[token_id]
            tag = self.rng.randint(1, self.schedule.max_tag)
            while tag in self._owned_by_tag:
                tag = self.rng.randint(1, self.schedule.max_tag)
            self._owned_by_tag[tag] = token
            for instance in range(1, self.schedule.num_instances + 1):
                bin_choice = self.rng.randrange(self.schedule.bins(instance))
                self._bin_tags.setdefault((instance, bin_choice), set()).add(tag)

    # ------------------------------------------------------------------
    # Introspection used by tests, gauges, and the configuration report
    # ------------------------------------------------------------------

    @property
    def estimate(self) -> int:
        """The current estimate of k (the value, not the instance index)."""
        return self.schedule.estimate_of(self.est)

    def tags_in_bin(self, instance: int, bin_index: int) -> frozenset:
        return frozenset(self._bin_tags.get((instance, bin_index), ()))

    def owned_tags(self) -> frozenset:
        return frozenset(self._owned_by_tag)

    # ------------------------------------------------------------------
    # Round hooks
    # ------------------------------------------------------------------

    def advertise(self, round_index: int, neighbor_uids: tuple[int, ...]) -> int:
        pos = self.schedule.locate(round_index)
        self._pos = pos

        if pos.instance == self.est and pos.is_phase_start:
            self._committed = (self.est, pos.phase)

        participating = self._committed == (pos.instance, pos.phase)
        if not participating:
            self._bit_this_round = 0
            return 0

        if pos.is_spelling:
            if pos.offset == 0:
                self._begin_block(pos)
            bit = self._block_bits[pos.offset] if self._block_bits else 0
        else:
            bit = 1 if self._informed_for_block() else 0
        self._bit_this_round = bit
        return bit

    def propose(
        self, round_index: int, neighbors: tuple[NeighborView, ...]
    ) -> int | None:
        pos = self._pos
        assert pos is not None, "advertise must run before propose"

        # Upgrade trigger 1 fires on any 1-bit heard in a higher instance's
        # round, whether it is a spelled tag bit or a PPUSH informed bit.
        self._detect_activity(pos, neighbors)

        if pos.is_spelling:
            self._ingest_spelling(pos, neighbors)
            target = None
        else:
            target = self._ppush_target(pos, neighbors)

        if self.schedule.is_bin_end(pos):
            self._fold_pending(pos.instance, pos.bin_index)
        return target

    def interact(self, responder: "CrowdedBinNode", channel: Channel,
                 round_index: int) -> None:
        """PPUSH push: ship the current block's token (with its tag)."""
        pos = self._pos
        assert pos is not None and pos.is_ppush
        tag = self._block_tag
        if tag is None or tag not in self._owned_by_tag:
            return  # Defensive: we only propose when informed.
        token = self._owned_by_tag[tag]
        channel.charge_bits(
            self.schedule.ell + ceil_log2(self.upper_n + 1), label="ppush"
        )
        channel.charge_token()
        responder.receive_push(pos, tag, token)

    def receive_push(self, pos: SchedulePosition, tag: int, token: Token) -> None:
        """Accept a pushed token: store it, learn its tag and bin slot."""
        self.store_token(token)
        self._owned_by_tag[tag] = token
        self._pending_tags.setdefault(
            (pos.instance, pos.bin_index), set()
        ).add(tag)

    # ------------------------------------------------------------------
    # Spelling side
    # ------------------------------------------------------------------

    def _begin_block(self, pos: SchedulePosition) -> None:
        """Pick the tag this node spells for block ``pos.block`` of its bin."""
        tags = sorted(self._bin_tags.get((pos.instance, pos.bin_index), ()))
        if pos.block < len(tags):
            self._block_tag = tags[pos.block]
            self._block_bits = self.schedule.tag_bits(self._block_tag)
        else:
            self._block_tag = None
            self._block_bits = [0] * self.schedule.ell

    def _informed_for_block(self) -> bool:
        return (
            self._block_tag is not None
            and self._block_tag in self._owned_by_tag
        )

    def _ingest_spelling(
        self, pos: SchedulePosition, neighbors: tuple[NeighborView, ...]
    ) -> None:
        """Accumulate neighbor bits; decode tags at the block's last bit.

        Bits are collected for whatever instance owns this round — not just
        the node's own — because the scan shows neighbor tags for free and
        upgraded neighbors spell useful tags in higher instances.
        """
        for view in neighbors:
            buffer_key = (pos.instance, view.uid)
            buffer = self._spell_buffers.get(buffer_key)
            if pos.offset == 0:
                if buffer is None:
                    buffer = _SpellBuffer()
                    self._spell_buffers[buffer_key] = buffer
                buffer.start(view.tag)
            elif buffer is not None:
                buffer.feed(pos.offset, view.tag)

        if self.schedule.is_spelling_end(pos):
            key = (pos.instance, pos.bin_index)
            known = self._bin_tags.get(key, set())
            for (instance, _), buffer in self._spell_buffers.items():
                if instance != pos.instance:
                    continue
                value = buffer.value(self.schedule.ell)
                if value:  # all-zero blocks mean "no tag" (tags start at 1)
                    if value not in known:
                        self._pending_tags.setdefault(key, set()).add(value)

    def _fold_pending(self, instance: int, bin_index: int) -> None:
        """Apply deferred tag additions; check for crowding (upgrade trigger 2)."""
        key = (instance, bin_index)
        pending = self._pending_tags.pop(key, None)
        if pending:
            self._bin_tags.setdefault(key, set()).update(pending)
        if (
            instance == self.est
            and len(self._bin_tags.get(key, ()))
            >= self.schedule.crowded_threshold
            and self.est < self.schedule.num_instances
        ):
            self.est += 1

    # ------------------------------------------------------------------
    # PPUSH side and activity detection
    # ------------------------------------------------------------------

    def _ppush_target(
        self, pos: SchedulePosition, neighbors: tuple[NeighborView, ...]
    ) -> int | None:
        if self._committed != (pos.instance, pos.phase):
            return None
        if self._bit_this_round != 1:
            return None
        quiet = [view.uid for view in neighbors if view.tag == 0]
        if not quiet:
            return None
        return self.rng.choice(sorted(quiet))

    def _detect_activity(
        self, pos: SchedulePosition, neighbors: tuple[NeighborView, ...]
    ) -> None:
        """Upgrade trigger 1: a 1-bit heard in an instance above our estimate."""
        if pos.instance <= self.est:
            return
        if any(view.tag == 1 for view in neighbors):
            self.est = min(pos.instance, self.schedule.num_instances)


def configuration_report(nodes, schedule: CrowdedBinSchedule, k: int) -> dict:
    """Harness-side check of Definition 6.3 (good configurations).

    Reports whether all tags are unique, which instance is the *target*
    (smallest non-crowded), and whether the target estimate is ≤ 2k.
    ``nodes`` is any iterable/mapping of :class:`CrowdedBinNode`.
    """
    from typing import Mapping

    if isinstance(nodes, Mapping):
        members = list(nodes.values())
    else:
        members = list(nodes)
    tag_to_tokens: dict[int, set[int]] = {}
    token_to_tags: dict[int, set[int]] = {}
    bins: dict[tuple[int, int], set[int]] = {}
    for node in members:
        owned = node.owned_tags()
        for tag in owned:
            token_id = node._owned_by_tag[tag].token_id
            tag_to_tokens.setdefault(tag, set()).add(token_id)
            token_to_tags.setdefault(token_id, set()).add(tag)
        for key, tags in node._bin_tags.items():
            for tag in tags & owned:
                bins.setdefault(key, set()).add(tag)
    unique = all(len(v) == 1 for v in tag_to_tokens.values()) and all(
        len(v) == 1 for v in token_to_tags.values()
    )
    target = None
    for instance in range(1, schedule.num_instances + 1):
        crowded = any(
            len(tags) >= schedule.crowded_threshold
            for (inst, _), tags in bins.items()
            if inst == instance
        )
        if not crowded:
            target = instance
            break
    good = (
        unique
        and target is not None
        and schedule.estimate_of(target) <= max(2 * k, 2)
    )
    return {
        "unique_tags": unique,
        "target_instance": target,
        "target_estimate": None if target is None else schedule.estimate_of(target),
        "good": good,
    }


@register_algorithm(
    name="crowdedbin",
    description="stable-topology gossip, O((k/a)*log^6 n) (Thm 6.10)",
    config_class=CrowdedBinConfig,
    tag_length=1,
    requires_stable_topology=True,
)
def _build_crowdedbin_nodes(ctx):
    schedule = ctx.config.schedule(ctx.instance.upper_n)
    return {
        vertex: CrowdedBinNode(
            config=ctx.config, schedule=schedule, **ctx.common(vertex)
        )
        for vertex in ctx.vertices()
    }
