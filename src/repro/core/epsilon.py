"""ε-gossip: every node must learn an ε-fraction of the n tokens (§7).

The setting: k = n (every node starts with its own token, labeled by its
UID) and the requirement relaxes to — there exists a set S of ≥ εn nodes
such that every pair in S mutually knows each other's tokens.

No new algorithm is needed: §7 re-analyzes SharedBit and shows it solves
ε-gossip in O(n·√(Δ·logΔ) / ((1−ε)·α)) rounds — polynomially faster than
the O(n²) it needs for full gossip when α is large and ε constant.  This
module supplies the harness: the k = n instance, the analysis-aligned
termination check (Lemma 7.3 case 1, plus the mutual-knowledge core), and
a one-call runner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.potential import epsilon_gossip_solved, mutual_knowledge_core, potential
from repro.core.problem import GossipInstance, everyone_starts_instance
from repro.core.sharedbit import SharedBitConfig, SharedBitNode
from repro.errors import ConfigurationError
from repro.registry import register_algorithm
from repro.rng import SeedTree, SharedRandomness
from repro.sim.channel import ChannelPolicy
from repro.sim.engine import Simulation
from repro.sim.trace import Trace

__all__ = ["EpsilonView", "EpsilonGossipResult", "run_epsilon_gossip",
           "epsilon_termination"]


@dataclass(frozen=True)
class EpsilonView:
    """A node as the ε-gossip checkers see it: its tokens and its own token."""

    known_tokens: frozenset
    own_token_id: int


def _views(nodes) -> list[EpsilonView]:
    return [
        EpsilonView(known_tokens=node.known_tokens, own_token_id=node.uid)
        for node in (nodes.values() if hasattr(nodes, "values") else nodes)
    ]


def epsilon_termination(epsilon: float):
    """Termination condition: ε-gossip certifiably solved (Lemma 7.3)."""

    def check(nodes, round_index: int) -> bool:
        return epsilon_gossip_solved(_views(nodes), epsilon)

    return check


@dataclass
class EpsilonGossipResult:
    """Outcome of an ε-gossip run."""

    epsilon: float
    rounds: int
    solved: bool
    core_size: int
    residual_potential: int
    trace: Trace
    instance: GossipInstance


def run_epsilon_gossip(
    dynamic_graph,
    epsilon: float,
    seed: int,
    max_rounds: int,
    config: SharedBitConfig | None = None,
    upper_n: int | None = None,
    termination_every: int = 4,
    trace_sample_every: int = 1,
) -> EpsilonGossipResult:
    """Run SharedBit on a k = n instance until ε-gossip is solved.

    The ε check is evaluated every ``termination_every`` rounds (it costs
    O(n²) in the worst case, so checking every round would distort wall
    times without changing measured round counts by more than that stride).
    """
    if not 0 < epsilon < 1:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
    n = dynamic_graph.n
    instance = everyone_starts_instance(n=n, seed=seed, upper_n=upper_n)
    tree = SeedTree(seed)
    shared = SharedRandomness(tree.key("shared-string"), instance.upper_n)
    cfg = config or SharedBitConfig()
    nodes = {
        vertex: SharedBitNode(
            uid=instance.uid_of(vertex),
            upper_n=instance.upper_n,
            initial_tokens=instance.tokens_for(vertex),
            rng=tree.stream("node", instance.uid_of(vertex)),
            shared=shared,
            config=cfg,
        )
        for vertex in range(n)
    }
    sim = Simulation(
        dynamic_graph=dynamic_graph,
        protocols=nodes,
        b=1,
        seed=seed,
        channel_policy=ChannelPolicy.for_upper_n(instance.upper_n),
        termination_every=termination_every,
        trace_sample_every=trace_sample_every,
    )
    result = sim.run(
        max_rounds=max_rounds, termination=epsilon_termination(epsilon)
    )
    views = _views(nodes)
    return EpsilonGossipResult(
        epsilon=epsilon,
        rounds=result.rounds,
        solved=result.terminated,
        core_size=len(mutual_knowledge_core(views)),
        residual_potential=potential(views, instance.token_ids),
        trace=result.trace,
        instance=instance,
    )


@register_algorithm(
    name="epsilon",
    description="eps-gossip harness: SharedBit until an eps-fraction core "
                "mutually knows (Thm 7.4)",
    config_class=SharedBitConfig,
    tag_length=1,
    config_extra_keys=("epsilon",),
    experiment_only=True,
)
def _execute_epsilon_run(spec, dynamic_graph, config):
    """Experiments-layer executor: the whole run, recorded JSON-ably."""
    engine = spec.engine
    if engine.get("gauges"):
        raise ConfigurationError(
            "named gauges are not supported for epsilon runs"
        )
    result = run_epsilon_gossip(
        dynamic_graph,
        epsilon=(spec.config or {}).get("epsilon", 0.5),
        seed=spec.seed,
        max_rounds=spec.max_rounds,
        config=config,
        upper_n=spec.instance.get("upper_n"),
        termination_every=engine.get("termination_every", 4),
        trace_sample_every=engine.get("trace_sample_every", 1024),
    )
    return {
        "rounds": result.rounds,
        "solved": result.solved,
        "core_size": result.core_size,
        "connections": result.trace.total_connections,
        "tokens_moved": result.trace.total_tokens_moved,
        "control_bits": result.trace.total_control_bits,
    }
