"""MultiBitSharedBit: SharedBit generalized to tag length b ≥ 1.

The paper remarks (§1) that "for most of our solutions, increasing b
beyond 1 only improves performance by at most logarithmic factors".  This
module makes that claim measurable: the shared string assigns each token
``b`` fresh bits per round, a node advertises the per-position parity over
its token set, and — the only place the extra bits can help — two nodes
with *different* token sets now advertise different tags with probability
``1 − 2^{−b}`` instead of 1/2 (Lemma 5.2 is the b = 1 case).

Connection discipline generalizes the 1-proposes-to-0 rule: a node
proposes to a uniformly chosen neighbor with a *strictly smaller* tag (any
tag difference certifies a token-set difference, and ordering the pair by
tag value keeps the proposer/receiver roles asymmetric).  Everything else
is SharedBit verbatim, including Transfer(ε) on connections.

Expected outcome, confirmed by ``benchmarks/bench_multibit.py``: going
from b=1 to b=2 removes up to half of the wasted rounds (collision
probability 1/2 → 1/4); beyond that the returns vanish — a constant, not
even logarithmic, improvement, consistent with the paper's remark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.commcplx.transfer import TransferProtocol
from repro.core.problem import GossipNode
from repro.errors import ConfigurationError
from repro.registry import register_algorithm
from repro.rng import SharedRandomness
from repro.sim.channel import Channel
from repro.sim.context import NeighborView

__all__ = ["MultiBitConfig", "MultiBitSharedBitNode"]


@dataclass(frozen=True)
class MultiBitConfig:
    """Tag length and Transfer error for the b ≥ 1 generalization."""

    bits: int = 2
    transfer_error_exponent: float = 2.0

    def __post_init__(self):
        if self.bits < 1:
            raise ConfigurationError(f"bits must be >= 1, got {self.bits}")
        if self.transfer_error_exponent <= 0:
            raise ConfigurationError(
                "transfer_error_exponent must be positive, got "
                f"{self.transfer_error_exponent}"
            )

    def transfer_epsilon(self, upper_n: int) -> float:
        return float(upper_n) ** (-self.transfer_error_exponent)


class MultiBitSharedBitNode(GossipNode):
    """One node running SharedBit with a b-bit advertising tag."""

    def __init__(
        self,
        uid: int,
        upper_n: int,
        initial_tokens,
        rng: random.Random,
        shared: SharedRandomness,
        config: MultiBitConfig | None = None,
    ):
        super().__init__(uid, upper_n, initial_tokens, rng)
        self.config = config or MultiBitConfig()
        self.shared = shared
        self._transfer = TransferProtocol(
            upper_n, self.config.transfer_epsilon(upper_n)
        )
        self._tag_this_round = 0

    @property
    def tag_bits(self) -> int:
        return self.config.bits

    def advertisement_tag(self, round_index: int) -> int:
        """Per-position parity of b shared bits per known token.

        The b = 1 case reduces exactly to SharedBit's advertisement bit
        (same hash family, same Lemma 5.2 guarantee); for general b, two
        distinct sets collide with probability 2^{-b}.
        """
        if not self._tokens:
            return 0
        tag = 0
        for token_id in self._tokens:
            tag ^= self.shared.bundle_bits(
                round_index, token_id, self.config.bits
            )
        return tag

    def advertise(self, round_index: int, neighbor_uids: tuple[int, ...]) -> int:
        self._tag_this_round = self.advertisement_tag(round_index)
        return self._tag_this_round

    def propose(
        self, round_index: int, neighbors: tuple[NeighborView, ...]
    ) -> int | None:
        # Propose to a neighbor with a strictly smaller tag: any tag
        # difference certifies a token-set difference, and the ordering
        # keeps proposer/receiver roles disjoint per edge.
        smaller = sorted(
            view.uid for view in neighbors if view.tag < self._tag_this_round
        )
        if not smaller:
            return None
        index = self.shared.selection_index(round_index, self.uid,
                                            len(smaller))
        return smaller[index]

    def interact(self, responder: "MultiBitSharedBitNode", channel: Channel,
                 round_index: int) -> None:
        self.run_transfer(responder, self._transfer, channel)


@register_algorithm(
    name="multibit",
    description="SharedBit generalized to tag length b >= 1 (the b-ablation)",
    config_class=MultiBitConfig,
    tag_length=lambda config: config.bits,
)
def _build_multibit_nodes(ctx):
    shared = SharedRandomness(
        ctx.tree.key("shared-string"), ctx.instance.upper_n
    )
    return {
        vertex: MultiBitSharedBitNode(
            shared=shared, config=ctx.config, **ctx.common(vertex)
        )
        for vertex in ctx.vertices()
    }
