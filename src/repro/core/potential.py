"""Analysis-side diagnostics: the potential φ, set census, and coalitions.

These mirror the quantities the paper's proofs track:

* :func:`potential` — ``φ(r) = Σ_u (k − |T_u(r)|)`` (§5.1): the amount of
  spreading still to do.  Non-increasing; 0 exactly when gossip is solved.
* :func:`token_set_census` — the multiset ``F(r)`` of §7: each distinct
  token set present in the network with its frequency.
* :func:`find_coalition` — the greedy coalition construction of
  Lemma 7.3: either certifies ε-gossip solved or returns a coalition whose
  total size lies in ``[(ε/2)n, εn]``.
* :func:`epsilon_gossip_solved` / :func:`mutual_knowledge_core` — harness
  termination checks for ε-gossip.

All of these are observers: nodes never call them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ConfigurationError
from repro.sim.protocol import TokenHolder

__all__ = [
    "potential",
    "token_set_census",
    "find_coalition",
    "CoalitionResult",
    "mutual_knowledge_core",
    "epsilon_gossip_solved",
]


def potential(nodes, token_ids) -> int:
    """φ = Σ over nodes of (k − |known ∩ token_ids|).

    ``nodes`` is any iterable of :class:`TokenHolder` (or the engine's
    vertex→node mapping).
    """
    holders = _as_holders(nodes)
    wanted = frozenset(token_ids)
    k = len(wanted)
    return sum(k - len(node.known_tokens & wanted) for node in holders)


def token_set_census(nodes) -> dict[frozenset, int]:
    """F(r): {token set → number of nodes currently holding exactly it}."""
    census: dict[frozenset, int] = {}
    for node in _as_holders(nodes):
        key = frozenset(node.known_tokens)
        census[key] = census.get(key, 0) + 1
    return census


@dataclass(frozen=True)
class CoalitionResult:
    """Outcome of Lemma 7.3's case analysis for one round."""

    solved: bool
    coalition: tuple[frozenset, ...]  # token sets whose owners form it
    size: int                          # total nodes across those sets


def find_coalition(nodes, epsilon: float) -> CoalitionResult:
    """Apply Lemma 7.3: solved certificate or a mid-sized coalition.

    Case 1 — some token set is owned by more than εn nodes: since every
    node's own token is in its set, those owners mutually know each other's
    tokens, so ε-gossip is solved.
    Case 2/3 — a greedy pack of the most frequent sets lands the coalition
    size in [(ε/2)n, εn].
    """
    _check_epsilon(epsilon)
    holders = _as_holders(nodes)
    n = len(holders)
    census = token_set_census(holders)
    target_low = (epsilon / 2.0) * n
    target_high = epsilon * n

    frequencies = sorted(census.items(), key=lambda kv: (-kv[1], sorted(kv[0])))
    q_max = frequencies[0][1]
    if q_max > target_high:
        return CoalitionResult(
            solved=True, coalition=(frequencies[0][0],), size=q_max
        )
    chosen: list[frozenset] = []
    total = 0
    for token_set, count in frequencies:
        chosen.append(token_set)
        total += count
        if total >= target_low:
            break
    # Greedy invariant from the lemma: every addend is <= (ε/2)n when we
    # cross the threshold, so the final total is also <= εn.
    return CoalitionResult(solved=False, coalition=tuple(chosen), size=total)


def mutual_knowledge_core(nodes) -> list:
    """A pruning-stable set S with ∀u∈S: tokens(S) ⊆ T_u.

    Greedy: while some member misses some member's token, discard the
    member whose own token is known by the fewest current members (the
    least-integrated node), then re-check.  The result certifies mutual
    knowledge — every member knows every member's token — and in practice
    recovers the large cores SharedBit builds (finding the true maximum
    such set is NP-hard, so this is a sound under-approximation).

    Nodes are token holders with an ``own_token_id`` attribute (see
    :class:`~repro.core.epsilon.EpsilonView`).
    """
    members = list(_as_holders(nodes))
    for node in members:
        if not hasattr(node, "own_token_id"):
            raise ConfigurationError(
                "mutual_knowledge_core requires nodes with own_token_id"
            )
    current = members
    while current:
        required = frozenset(node.own_token_id for node in current)
        if all(required <= frozenset(node.known_tokens) for node in current):
            return current
        knownness = {
            node.own_token_id: sum(
                1 for other in current
                if node.own_token_id in other.known_tokens
            )
            for node in current
        }
        victim = min(
            current,
            key=lambda node: (
                knownness[node.own_token_id],
                len(node.known_tokens),
            ),
        )
        current = [node for node in current if node is not victim]
    return []


def epsilon_gossip_solved(nodes, epsilon: float) -> bool:
    """True if ε-gossip is certifiably solved right now.

    Checks, cheapest first: (a) Lemma 7.3's case-1 certificate (a token-set
    class of more than εn nodes); (b) the iterative mutual-knowledge core
    reaching εn.  Both are sound; (b) catches configurations (a) misses.
    """
    _check_epsilon(epsilon)
    holders = _as_holders(nodes)
    n = len(holders)
    needed = epsilon * n
    census = token_set_census(holders)
    if max(census.values()) >= needed:
        return True
    if all(hasattr(node, "own_token_id") for node in holders):
        if len(mutual_knowledge_core(holders)) >= needed:
            return True
    return False


def _as_holders(nodes) -> list:
    if isinstance(nodes, Mapping):
        holders = list(nodes.values())
    else:
        holders = list(nodes)
    if not holders:
        raise ConfigurationError("need at least one node")
    for node in holders:
        if not isinstance(node, TokenHolder):
            raise ConfigurationError(
                f"{node!r} does not expose known_tokens"
            )
    return holders


def _check_epsilon(epsilon: float) -> None:
    if not 0 < epsilon < 1:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
