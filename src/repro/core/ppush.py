"""PPUSH: rumor spreading with one advertising bit (from [11], used in §6).

The strategy: informed nodes advertise 1, uninformed advertise 0; each
informed node with at least one uninformed neighbor proposes to one chosen
uniformly at random; connections move the rumor.

Theorem 6.1 (adapted from [11]): with b ≥ 1, τ = ∞ and expansion α, PPUSH
spreads the rumor to all nodes in O(log⁴N / α) rounds w.h.p.  CrowdedBin
runs logically-parallel PPUSH instances in the tails of its blocks; this
standalone version backs the Theorem 6.1 benchmark and the quickstart
example.
"""

from __future__ import annotations

import random

import numpy as np

from repro.bits import ceil_log2
from repro.core.tokens import Token
from repro.errors import ConfigurationError
from repro.registry import register_algorithm
from repro.sim.channel import Channel
from repro.sim.context import NeighborView
from repro.sim.protocol import NodeProtocol

__all__ = ["PPushNode"]


class PPushNode(NodeProtocol):
    """One node running PPUSH for a single rumor."""

    def __init__(self, uid: int, upper_n: int, rng: random.Random,
                 rumor: Token | None = None):
        super().__init__(uid)
        self.upper_n = upper_n
        self.rng = rng
        self.rumor = rumor
        self.informed_at_round: int | None = 0 if rumor is not None else None

    @property
    def informed(self) -> bool:
        return self.rumor is not None

    @property
    def known_tokens(self) -> frozenset:
        """TokenHolder interface so gossip termination conditions apply."""
        return frozenset((self.rumor.token_id,)) if self.rumor else frozenset()

    def has_token(self, token_id: int) -> bool:
        return self.rumor is not None and self.rumor.token_id == token_id

    def token(self, token_id: int) -> Token:
        if not self.has_token(token_id):
            raise KeyError(f"node {self.uid} does not hold token {token_id}")
        return self.rumor

    def advertise(self, round_index: int, neighbor_uids: tuple[int, ...]) -> int:
        return 1 if self.informed else 0

    def propose(
        self, round_index: int, neighbors: tuple[NeighborView, ...]
    ) -> int | None:
        if not self.informed:
            return None
        uninformed = [view.uid for view in neighbors if view.tag == 0]
        if not uninformed:
            return None
        return self.rng.choice(sorted(uninformed))

    def interact(self, responder: "PPushNode", channel: Channel,
                 round_index: int) -> None:
        # The rumor id rides along so the receiver can label it.
        channel.charge_bits(ceil_log2(self.upper_n + 1), label="rumor-id")
        channel.charge_token()
        if not responder.informed:
            responder.rumor = self.rumor
            responder.informed_at_round = round_index

    # -- bulk hooks (array fast path) ------------------------------------
    # Byte-identical to the scalar hooks looped over vertices 0..n-1: a
    # node draws from its rng only when informed *and* it has at least one
    # uninformed neighbor (exactly when the scalar propose reaches
    # rng.choice), and the candidate array is the same sorted-UID list.

    @classmethod
    def advertise_all(cls, nodes, round_index, csr) -> np.ndarray:
        return np.fromiter(
            (1 if node.rumor is not None else 0 for node in nodes),
            dtype=np.int64,
            count=len(nodes),
        )

    @classmethod
    def propose_all(cls, nodes, round_index, csr, tags) -> np.ndarray:
        targets = csr.round_buffer("ppush:targets", len(nodes), np.int64,
                                   fill=-1)
        for vertex, uninformed in csr.candidate_rows(tags):
            targets[vertex] = nodes[vertex].rng.choice(uninformed)
        return targets


@register_algorithm(
    name="ppush",
    description="single-rumor push, informed nodes advertise 1; "
                "O(log^4 N / a) with tau = infinity (Thm 6.1)",
    tag_length=1,
    requires_stable_topology=True,
)
def _build_ppush_nodes(ctx):
    """One PPushNode per vertex; the instance's single token is the rumor."""
    instance = ctx.instance
    if len(instance.token_ids) != 1:
        raise ConfigurationError(
            "ppush spreads exactly one rumor; got an instance with "
            f"k={len(instance.token_ids)} tokens (use k=1 or token_at)"
        )
    return {
        vertex: PPushNode(
            uid=instance.uid_of(vertex),
            upper_n=instance.upper_n,
            rng=ctx.tree.stream("node", instance.uid_of(vertex)),
            rumor=(
                tokens[0]
                if (tokens := instance.tokens_for(vertex))
                else None
            ),
        )
        for vertex in ctx.vertices()
    }
