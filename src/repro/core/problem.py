"""The gossip problem: instances and the common gossip-node base class.

An instance fixes what the paper's §2 fixes: the network size ``n``, the
known upper bound ``N ≥ n``, each node's UID from ``[N]``, and the initial
token assignment (``k`` tokens, each starting at exactly one node, a node
possibly starting with several).  ``k`` is *not* given to the nodes — only
the harness reads it.

:class:`GossipNode` is the shared base for every gossip protocol: token
storage keyed by label, the :class:`~repro.sim.protocol.TokenHolder`
interface for termination/gauges, and the glue that applies a
Transfer(ε) outcome by actually moving the token payload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.commcplx.transfer import TransferOutcome, TransferProtocol
from repro.errors import ConfigurationError
from repro.core.tokens import Token
from repro.registry import register_instance
from repro.sim.channel import Channel
from repro.sim.protocol import NodeProtocol

__all__ = [
    "GossipInstance",
    "GossipNode",
    "uniform_instance",
    "everyone_starts_instance",
    "skewed_instance",
]


@dataclass(frozen=True)
class GossipInstance:
    """A concrete gossip problem: who is who, and who starts with what."""

    n: int
    upper_n: int
    uids: tuple[int, ...]                 # uids[vertex] ∈ [1, upper_n]
    initial_tokens: dict = field(default_factory=dict)  # vertex -> tuple[Token]

    def __post_init__(self):
        if self.n < 2:
            raise ConfigurationError(f"need n >= 2, got {self.n}")
        if self.upper_n < self.n:
            raise ConfigurationError(
                f"upper bound N={self.upper_n} must be >= n={self.n}"
            )
        if len(self.uids) != self.n or len(set(self.uids)) != self.n:
            raise ConfigurationError("uids must be n distinct values")
        for uid in self.uids:
            if not 1 <= uid <= self.upper_n:
                raise ConfigurationError(
                    f"uid {uid} outside [1, {self.upper_n}]"
                )
        seen: set[int] = set()
        for vertex, tokens in self.initial_tokens.items():
            if not 0 <= vertex < self.n:
                raise ConfigurationError(f"vertex {vertex} out of range")
            for token in tokens:
                if token.token_id in seen:
                    raise ConfigurationError(
                        f"token {token.token_id} starts at more than one node"
                    )
                seen.add(token.token_id)

    @property
    def k(self) -> int:
        """Number of tokens in the system (harness-side knowledge only)."""
        return sum(len(tokens) for tokens in self.initial_tokens.values())

    @property
    def token_ids(self) -> frozenset:
        return frozenset(
            token.token_id
            for tokens in self.initial_tokens.values()
            for token in tokens
        )

    def tokens_for(self, vertex: int) -> tuple[Token, ...]:
        return tuple(self.initial_tokens.get(vertex, ()))

    def uid_of(self, vertex: int) -> int:
        return self.uids[vertex]


def _draw_uids(n: int, upper_n: int, rng: random.Random) -> tuple[int, ...]:
    return tuple(rng.sample(range(1, upper_n + 1), n))


def uniform_instance(
    n: int, k: int, seed: int, upper_n: int | None = None
) -> GossipInstance:
    """``k`` tokens at ``k`` distinct uniformly-chosen nodes.

    Each token is labeled with its origin's UID, matching the paper's
    labeling convention.
    """
    upper_n = upper_n or n
    if not 1 <= k <= n:
        raise ConfigurationError(f"need 1 <= k <= n, got k={k}, n={n}")
    rng = random.Random(seed)
    uids = _draw_uids(n, upper_n, rng)
    origins = rng.sample(range(n), k)
    initial = {
        vertex: (Token(token_id=uids[vertex], payload=f"rumor-from-{uids[vertex]}"),)
        for vertex in origins
    }
    return GossipInstance(n=n, upper_n=upper_n, uids=uids, initial_tokens=initial)


def everyone_starts_instance(
    n: int, seed: int, upper_n: int | None = None
) -> GossipInstance:
    """k = n: every node starts with its own token (the ε-gossip setting)."""
    return uniform_instance(n=n, k=n, seed=seed, upper_n=upper_n)


def skewed_instance(
    n: int, k: int, seed: int, upper_n: int | None = None, holders: int = 1
) -> GossipInstance:
    """All ``k`` tokens concentrated at ``holders`` nodes.

    Exercises the paper's allowance that "a given node can start the
    execution with multiple tokens".  Extra token labels are drawn from
    UIDs of non-holder nodes (each token still has a unique [N] label).
    """
    upper_n = upper_n or n
    if not 1 <= holders <= min(k, n):
        raise ConfigurationError(
            f"need 1 <= holders <= min(k, n), got holders={holders}"
        )
    if not 1 <= k <= n:
        raise ConfigurationError(f"need 1 <= k <= n, got k={k}, n={n}")
    rng = random.Random(seed)
    uids = _draw_uids(n, upper_n, rng)
    holder_vertices = rng.sample(range(n), holders)
    label_vertices = rng.sample(range(n), k)
    initial: dict[int, tuple[Token, ...]] = {}
    for index, label_vertex in enumerate(label_vertices):
        holder = holder_vertices[index % holders]
        token = Token(
            token_id=uids[label_vertex],
            payload=f"rumor-{uids[label_vertex]}",
            origin_uid=uids[holder],
        )
        initial.setdefault(holder, ())
        initial[holder] = initial[holder] + (token,)
    return GossipInstance(n=n, upper_n=upper_n, uids=uids, initial_tokens=initial)


class GossipNode(NodeProtocol):
    """Base class for gossip protocols: token storage plus Transfer glue."""

    def __init__(self, uid: int, upper_n: int, initial_tokens,
                 rng: random.Random):
        super().__init__(uid)
        if upper_n < 2:
            raise ConfigurationError(f"upper_n must be >= 2, got {upper_n}")
        self.upper_n = upper_n
        self.rng = rng
        self._initial_tokens = tuple(initial_tokens)
        self._tokens: dict[int, Token] = {}
        for token in self._initial_tokens:
            self.store_token(token)

    @property
    def known_tokens(self) -> frozenset:
        """Labels of all tokens this node owns (TokenHolder interface)."""
        return frozenset(self._tokens)

    def token(self, token_id: int) -> Token:
        return self._tokens[token_id]

    def has_token(self, token_id: int) -> bool:
        return token_id in self._tokens

    def reset_tokens(self) -> None:
        """Crash-reset hook for the fault layer: drop every learned token
        and return to the initial assignment (a phone that lost its app
        state; see :class:`repro.sim.faults.CrashChurn`)."""
        self._tokens = {}
        for token in self._initial_tokens:
            self.store_token(token)

    def store_token(self, token: Token) -> None:
        if not 1 <= token.token_id <= self.upper_n:
            raise ConfigurationError(
                f"token label {token.token_id} outside [1, {self.upper_n}]"
            )
        self._tokens[token.token_id] = token

    def run_transfer(
        self,
        peer: "GossipNode",
        protocol: TransferProtocol,
        channel: Channel,
    ) -> TransferOutcome:
        """Execute Transfer(ε) with ``peer`` and move the identified token.

        The initiating node's private randomness drives the EQTest trials
        (the subroutine needs no shared coins).
        """
        outcome = protocol.locate(
            self.known_tokens, peer.known_tokens, self.rng, channel
        )
        if outcome.moved_to_a:
            self.store_token(peer.token(outcome.token_id))
        elif outcome.moved_to_b:
            peer.store_token(self.token(outcome.token_id))
        return outcome


@register_instance(
    name="uniform",
    description="k tokens at uniformly chosen distinct starting nodes",
)
def _build_uniform_instance(n, seed, *, k=1, upper_n=None):
    return uniform_instance(n=n, k=k, seed=seed, upper_n=upper_n)


@register_instance(
    name="everyone",
    description="k = n: every node starts holding its own token",
)
def _build_everyone_instance(n, seed, *, upper_n=None):
    return everyone_starts_instance(n=n, seed=seed, upper_n=upper_n)


@register_instance(
    name="skewed",
    description="k tokens concentrated on a few holder nodes",
)
def _build_skewed_instance(n, seed, *, k=1, holders=1, upper_n=None):
    return skewed_instance(
        n=n, k=k, seed=seed, upper_n=upper_n, holders=holders
    )


@register_instance(
    name="token_at",
    description="one token at a chosen vertex (the double-star lower-bound "
                "setup)",
)
def _build_token_at_instance(n, seed, *, vertex, upper_n=None):
    # A k = 1 instance whose token starts at a chosen vertex: the rumor
    # must cross the double-star bridge.
    upper = upper_n or n
    rng = random.Random(seed)
    uids = _draw_uids(n, upper, rng)
    return GossipInstance(
        n=n,
        upper_n=upper,
        uids=uids,
        initial_tokens={vertex: (Token(uids[vertex]),)},
    )
