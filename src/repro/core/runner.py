"""One-call experiment harness: build nodes, run, measure.

:func:`run_gossip` wires together an instance, a dynamic graph, one of the
registered algorithms, and the standard termination condition (all nodes
know all k tokens), returning the measured round count plus the trace.
This is what the examples, benchmarks and integration tests call; direct
use of the node classes with :class:`repro.sim.engine.Simulation` remains
available for custom setups.

Dispatch is entirely registry-driven: the algorithm name resolves to an
:class:`repro.registry.AlgorithmDef` whose declaration carries the node
builder, the default config class, the tag length ``b``, and model
requirements like ``requires_stable_topology`` — so an algorithm
registered by a plugin runs here with zero edits to this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.asynchrony.engine import AsyncSimulation
from repro.asynchrony.timing import build_timing
from repro.core.potential import potential
from repro.core.problem import GossipInstance
from repro.errors import ConfigurationError
from repro.graphs.dynamic import DynamicGraph, TAU_INFINITY
from repro.registry import (
    ALGORITHM_REGISTRY,
    NodeBuildContext,
    RegistryNames,
)
from repro.rng import SeedTree
from repro.sim.channel import ChannelPolicy
from repro.sim.engine import OBJECT_PATH_MAX_N, Simulation
from repro.sim.faults import build_fault
from repro.sim.protocol import NodeProtocol
from repro.sim.termination import all_hold_tokens
from repro.sim.trace import Trace

__all__ = ["ALGORITHMS", "GossipRunResult", "build_nodes", "run_gossip",
           "coverage_gauge", "potential_gauge"]

#: Algorithms runnable through :func:`run_gossip` — a live view over the
#: registry (experiments-layer-only entries like ε-gossip are filtered
#: out; plugin registrations appear automatically).
ALGORITHMS = RegistryNames(ALGORITHM_REGISTRY, lambda defn: defn.runnable)


def _runnable_def(algorithm: str):
    """Resolve ``algorithm`` to a definition run_gossip can execute."""
    defn = ALGORITHM_REGISTRY.get(algorithm)
    if not defn.runnable:
        raise ConfigurationError(
            f"algorithm {algorithm!r} runs only through the experiments "
            "layer (repro.experiments.execute_run); choose from "
            f"{tuple(ALGORITHMS)}"
        )
    return defn


@dataclass
class GossipRunResult:
    """Outcome of one gossip execution.

    ``event_counts`` (per-vertex activation totals) is ``None`` for
    synchronous runs; asynchronous runs fill it from the event engine.
    """

    algorithm: str
    rounds: int
    solved: bool
    trace: Trace
    instance: GossipInstance
    nodes: Mapping[int, NodeProtocol]
    event_counts: object = None
    #: The run's :class:`repro.telemetry.Telemetry` bundle (the null
    #: bundle when telemetry was off).
    telemetry: object = None

    @property
    def profile(self) -> dict | None:
        """The phase profile (``{span: {"calls", "seconds"}}``) when
        telemetry was enabled; ``None`` otherwise."""
        if self.telemetry is None or not self.telemetry.enabled:
            return None
        return self.telemetry.profile()

    @property
    def residual_potential(self) -> int:
        return potential(self.nodes, self.instance.token_ids)

    @property
    def estimated_wall_rounds(self) -> float:
        """Effective run length in wall-clock rounds (async runs report
        the trace's skew-stretched estimate; synchronous runs spend one
        wall round per round)."""
        estimate = self.trace.estimated_wall_rounds()
        return float(self.rounds) if estimate is None else estimate

    def coverage(self) -> list[int]:
        """Per-node count of known tokens (harness-side)."""
        wanted = self.instance.token_ids
        return [len(node.known_tokens & wanted) for node in self.nodes.values()]


def build_nodes(
    algorithm: str,
    instance: GossipInstance,
    seed: int,
    config=None,
) -> dict[int, NodeProtocol]:
    """Construct one protocol object per vertex for the named algorithm."""
    defn = _runnable_def(algorithm)
    if config is None:
        config = defn.make_config()
    ctx = NodeBuildContext(
        instance=instance, tree=SeedTree(seed), config=config
    )
    return defn.build_nodes(ctx)


def coverage_gauge(token_ids):
    """Gauge: (min, mean) coverage of the k tokens across nodes."""
    wanted = frozenset(token_ids)

    def gauge(nodes, round_index: int):
        counts = [len(node.known_tokens & wanted) for node in nodes.values()]
        return (min(counts), sum(counts) / len(counts))

    return gauge


def potential_gauge(token_ids):
    """Gauge: the paper's potential φ(r)."""

    def gauge(nodes, round_index: int):
        return potential(nodes, token_ids)

    return gauge


def _resolve_fault(fault, n: int, seed: int):
    """Materialize ``run_gossip``'s ``fault`` argument.

    Accepts a built :class:`~repro.sim.faults.FaultModel`, a registered
    fault name (built with default parameters), a spec dict
    (``{"kind": ..., **params}``), or ``None`` (the clean model).
    """
    if fault is None:
        return None
    if isinstance(fault, str):
        fault = {"kind": fault}
    if isinstance(fault, dict):
        return build_fault(fault, n, seed)
    return None if fault.is_null else fault


def _resolve_timing(timing, n: int, seed: int):
    """Materialize ``run_gossip``'s ``timing`` argument.

    Accepts a built :class:`~repro.asynchrony.timing.TimingModel`, a
    registered timing name (built with default parameters), a spec dict
    (``{"kind": ..., **params}``), or ``None``.  Null timing
    (``"synchronous"``) normalizes to ``None`` — the run stays on the
    round engine, which *is* the synchronous model (the differential
    harness proves the event-driven engine agrees with it).
    """
    if timing is None:
        return None
    if isinstance(timing, str):
        timing = {"kind": timing}
    if isinstance(timing, dict):
        return build_timing(timing, n, seed)
    return None if timing.is_null else timing


def run_gossip(
    algorithm: str,
    dynamic_graph: DynamicGraph,
    instance: GossipInstance,
    seed: int,
    max_rounds: int,
    config=None,
    channel_policy: ChannelPolicy | None = None,
    fault=None,
    timing=None,
    gauges: dict | None = None,
    gauge_every: int = 64,
    trace_sample_every: int = 1,
    trace_max_records: int | None = None,
    termination_every: int = 1,
    engine_mode: str = "auto",
    object_path_max_n: int | None = OBJECT_PATH_MAX_N,
    telemetry=None,
) -> GossipRunResult:
    """Run ``algorithm`` on ``instance`` over ``dynamic_graph`` to completion.

    Raises :class:`ConfigurationError` when the algorithm's declared model
    requirements are violated (``requires_stable_topology`` on a changing
    topology — CrowdedBin's τ = ∞ assumption).

    ``fault`` selects the fault regime degrading the run: a built
    :class:`~repro.sim.faults.FaultModel`, a registered fault name
    (``"sleep"``, ``"churn"``, ``"lossy"`` — built with default
    parameters), or a ``{"kind": ..., **params}`` dict.  ``None`` (the
    default) is the paper's clean model and is byte-identical to runs
    from before the fault layer existed.

    ``timing`` selects the timing regime: a built
    :class:`~repro.asynchrony.timing.TimingModel`, a registered timing
    name (``"jitter"``, ``"heterogeneous"``, ``"bursty"``), or a
    ``{"kind": ..., **params}`` dict.  ``None`` or ``"synchronous"``
    (the default) is the paper's lock-step round structure and runs on
    the round engine; anything else runs the same protocols on the
    event-driven engine (:class:`~repro.asynchrony.engine.AsyncSimulation`)
    with per-node clocks.

    ``engine_mode`` selects the engine front half: ``"auto"`` (the
    default) takes the array fast path when the algorithm's nodes provide
    bulk hooks, ``"object"`` forces the per-node reference path, and
    ``"array"`` requires the fast path.  Both paths produce byte-identical
    traces; the knob exists for differential tests and benchmarks.

    ``trace_max_records`` bounds kept trace records for very long runs
    (see :class:`repro.sim.trace.Trace`); ``object_path_max_n`` is the
    memory-budget guard threshold the engine applies when a run resolves
    to the per-node object path (``None`` disables it).

    ``telemetry`` enables observability (see :mod:`repro.telemetry`):
    ``True``/``"on"``, a ``{"enabled": ..., "stream": path}`` spec dict,
    or a :class:`~repro.telemetry.Telemetry` instance.  ``None`` (the
    default) costs one attribute check per instrumented site and leaves
    every trace byte-identical — telemetry draws zero randomness.  The
    result's :attr:`GossipRunResult.profile` carries the phase table.
    """
    defn = _runnable_def(algorithm)
    if dynamic_graph.n != instance.n:
        raise ConfigurationError(
            f"graph has n={dynamic_graph.n} but instance has n={instance.n}"
        )
    if defn.requires_stable_topology and dynamic_graph.tau != TAU_INFINITY:
        raise ConfigurationError(
            f"{algorithm} assumes a stable topology (tau = infinity); got "
            f"tau={dynamic_graph.tau}"
        )
    # Resolve the default config exactly once; build_nodes receives it
    # already materialized.
    if config is None:
        config = defn.make_config()
    nodes = build_nodes(algorithm, instance, seed, config)
    timing_model = _resolve_timing(timing, dynamic_graph.n, seed)
    engine_kwargs = dict(
        dynamic_graph=dynamic_graph,
        protocols=nodes,
        b=defn.resolve_tag_length(config),
        seed=seed,
        channel_policy=channel_policy
        or ChannelPolicy.for_upper_n(instance.upper_n),
        faults=_resolve_fault(fault, dynamic_graph.n, seed),
        gauges=gauges,
        gauge_every=gauge_every,
        trace_sample_every=trace_sample_every,
        trace_max_records=trace_max_records,
        termination_every=termination_every,
        engine_mode=engine_mode,
        object_path_max_n=object_path_max_n,
        telemetry=telemetry,
    )
    if timing_model is None:
        sim = Simulation(**engine_kwargs)
    else:
        sim = AsyncSimulation(timing=timing_model, **engine_kwargs)
    with sim.telemetry.profiler.span("run.total"):
        result = sim.run(
            max_rounds=max_rounds,
            termination=all_hold_tokens(instance.token_ids),
        )
    return GossipRunResult(
        algorithm=algorithm,
        rounds=result.rounds,
        solved=result.terminated,
        trace=result.trace,
        instance=instance,
        nodes=nodes,
        event_counts=result.event_counts,
        telemetry=sim.telemetry,
    )
