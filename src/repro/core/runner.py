"""One-call experiment harness: build nodes, run, measure.

:func:`run_gossip` wires together an instance, a dynamic graph, one of the
paper's algorithms, and the standard termination condition (all nodes know
all k tokens), returning the measured round count plus the trace.  This is
what the examples, benchmarks and integration tests call; direct use of
the node classes with :class:`repro.sim.engine.Simulation` remains
available for custom setups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.commcplx.newman import SharedStringFamily
from repro.core.blindmatch import BlindMatchConfig, BlindMatchNode
from repro.core.crowdedbin import CrowdedBinConfig, CrowdedBinNode
from repro.core.multibit import MultiBitConfig, MultiBitSharedBitNode
from repro.core.potential import potential
from repro.core.problem import GossipInstance
from repro.core.sharedbit import SharedBitConfig, SharedBitNode
from repro.core.simsharedbit import SimSharedBitConfig, SimSharedBitNode
from repro.errors import ConfigurationError
from repro.graphs.dynamic import DynamicGraph, TAU_INFINITY
from repro.rng import SeedTree, SharedRandomness
from repro.sim.channel import ChannelPolicy
from repro.sim.engine import Simulation
from repro.sim.protocol import NodeProtocol
from repro.sim.termination import all_hold_tokens
from repro.sim.trace import Trace

__all__ = ["ALGORITHMS", "GossipRunResult", "build_nodes", "run_gossip",
           "coverage_gauge", "potential_gauge"]

#: Algorithms runnable through :func:`run_gossip`.  "multibit" is the b≥1
#: generalization of SharedBit (see repro.core.multibit); the other four
#: are the paper's Figure 1 algorithms.
ALGORITHMS = ("blindmatch", "sharedbit", "simsharedbit", "crowdedbin",
              "multibit")

_DEFAULT_CONFIGS = {
    "blindmatch": BlindMatchConfig,
    "sharedbit": SharedBitConfig,
    "simsharedbit": SimSharedBitConfig,
    "crowdedbin": CrowdedBinConfig,
    "multibit": MultiBitConfig,
}


def _tag_length(algorithm: str, config) -> int:
    if algorithm == "blindmatch":
        return 0
    if algorithm == "multibit":
        return config.bits
    return 1


@dataclass
class GossipRunResult:
    """Outcome of one gossip execution."""

    algorithm: str
    rounds: int
    solved: bool
    trace: Trace
    instance: GossipInstance
    nodes: Mapping[int, NodeProtocol]

    @property
    def residual_potential(self) -> int:
        return potential(self.nodes, self.instance.token_ids)

    def coverage(self) -> list[int]:
        """Per-node count of known tokens (harness-side)."""
        wanted = self.instance.token_ids
        return [len(node.known_tokens & wanted) for node in self.nodes.values()]


def build_nodes(
    algorithm: str,
    instance: GossipInstance,
    seed: int,
    config=None,
) -> dict[int, NodeProtocol]:
    """Construct one protocol object per vertex for the named algorithm."""
    if algorithm not in ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}"
        )
    if config is None:
        config = _DEFAULT_CONFIGS[algorithm]()
    tree = SeedTree(seed)

    def common(vertex: int) -> dict:
        return {
            "uid": instance.uid_of(vertex),
            "upper_n": instance.upper_n,
            "initial_tokens": instance.tokens_for(vertex),
            "rng": tree.stream("node", instance.uid_of(vertex)),
        }

    if algorithm == "blindmatch":
        return {
            vertex: BlindMatchNode(config=config, **common(vertex))
            for vertex in range(instance.n)
        }
    if algorithm == "sharedbit":
        shared = SharedRandomness(tree.key("shared-string"), instance.upper_n)
        return {
            vertex: SharedBitNode(shared=shared, config=config, **common(vertex))
            for vertex in range(instance.n)
        }
    if algorithm == "simsharedbit":
        family = SharedStringFamily(
            master_seed=tree.stream("family-master").randrange(2**31),
            capacity_n=instance.upper_n,
            family_size=config.family_size,
        )
        return {
            vertex: SimSharedBitNode(family=family, config=config, **common(vertex))
            for vertex in range(instance.n)
        }
    if algorithm == "multibit":
        shared = SharedRandomness(tree.key("shared-string"), instance.upper_n)
        return {
            vertex: MultiBitSharedBitNode(
                shared=shared, config=config, **common(vertex)
            )
            for vertex in range(instance.n)
        }
    # crowdedbin
    schedule = config.schedule(instance.upper_n)
    return {
        vertex: CrowdedBinNode(config=config, schedule=schedule, **common(vertex))
        for vertex in range(instance.n)
    }


def coverage_gauge(token_ids):
    """Gauge: (min, mean) coverage of the k tokens across nodes."""
    wanted = frozenset(token_ids)

    def gauge(nodes, round_index: int):
        counts = [len(node.known_tokens & wanted) for node in nodes.values()]
        return (min(counts), sum(counts) / len(counts))

    return gauge


def potential_gauge(token_ids):
    """Gauge: the paper's potential φ(r)."""

    def gauge(nodes, round_index: int):
        return potential(nodes, token_ids)

    return gauge


def run_gossip(
    algorithm: str,
    dynamic_graph: DynamicGraph,
    instance: GossipInstance,
    seed: int,
    max_rounds: int,
    config=None,
    channel_policy: ChannelPolicy | None = None,
    gauges: dict | None = None,
    gauge_every: int = 64,
    trace_sample_every: int = 1,
    termination_every: int = 1,
) -> GossipRunResult:
    """Run ``algorithm`` on ``instance`` over ``dynamic_graph`` to completion.

    Raises :class:`ConfigurationError` when the algorithm's model
    assumptions are violated (CrowdedBin on a changing topology).
    """
    if dynamic_graph.n != instance.n:
        raise ConfigurationError(
            f"graph has n={dynamic_graph.n} but instance has n={instance.n}"
        )
    if algorithm == "crowdedbin" and dynamic_graph.tau != TAU_INFINITY:
        raise ConfigurationError(
            "CrowdedBin assumes a stable topology (tau = infinity); got "
            f"tau={dynamic_graph.tau}"
        )
    if config is None:
        config = _DEFAULT_CONFIGS[algorithm]()
    nodes = build_nodes(algorithm, instance, seed, config)
    sim = Simulation(
        dynamic_graph=dynamic_graph,
        protocols=nodes,
        b=_tag_length(algorithm, config),
        seed=seed,
        channel_policy=channel_policy
        or ChannelPolicy.for_upper_n(instance.upper_n),
        gauges=gauges,
        gauge_every=gauge_every,
        trace_sample_every=trace_sample_every,
        termination_every=termination_every,
    )
    result = sim.run(
        max_rounds=max_rounds,
        termination=all_hold_tokens(instance.token_ids),
    )
    return GossipRunResult(
        algorithm=algorithm,
        rounds=result.rounds,
        solved=result.terminated,
        trace=result.trace,
        instance=instance,
        nodes=nodes,
    )
