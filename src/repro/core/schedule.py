"""CrowdedBin's round arithmetic: instances, phases, bins, blocks.

§6.1 of the paper layers four schedules:

* **multiplexing** — real rounds are grouped into *simulation groups* of
  ``log N`` rounds; round ``j`` of group ``i`` simulates instance-round
  ``i`` of instance ``j``.  So instance ``j`` (with its estimate
  ``k_j = 2^j``) runs on every ``log N``-th real round.
* **phases** — instance ``i``'s rounds are grouped into phases of ``k_i``
  *bins*;
* **bins** — each bin has ``γ·log N`` *blocks*;
* **blocks** — each block has ``ℓ + log N`` instance-rounds: the first
  ``ℓ = β·log N`` spell out one tag bit-by-bit via the advertising bit, the
  last ``log N`` run PPUSH for the token carrying that tag.

Everything here is pure integer arithmetic shared by every node (the
schedule is common knowledge — it depends only on N, β, γ), so the node
logic in :mod:`repro.core.crowdedbin` can stay about *behavior*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits import ceil_log2
from repro.errors import ConfigurationError

__all__ = ["CrowdedBinSchedule", "SchedulePosition"]


@dataclass(frozen=True)
class SchedulePosition:
    """Where one real round falls inside one instance's schedule."""

    instance: int         # j ∈ [1, log N]
    instance_round: int   # t ≥ 1 (1-indexed within the instance)
    phase: int            # 0-indexed phase of this instance
    bin_index: int        # 0-indexed bin within the phase (< k_instance)
    block: int            # 0-indexed block within the bin (< blocks_per_bin)
    offset: int           # 0-indexed round within the block (< block_len)
    is_spelling: bool     # offset < ℓ: a tag-spelling round
    is_phase_start: bool  # first round of a phase

    @property
    def is_ppush(self) -> bool:
        return not self.is_spelling

    @property
    def spelling_bit_index(self) -> int:
        """Which bit of the ℓ-bit tag this round spells (MSB first)."""
        if not self.is_spelling:
            raise ConfigurationError("not a spelling round")
        return self.offset

    def __repr__(self) -> str:
        kind = "spell" if self.is_spelling else "ppush"
        return (
            f"SchedulePosition(inst={self.instance}, t={self.instance_round}, "
            f"phase={self.phase}, bin={self.bin_index}, block={self.block}, "
            f"offset={self.offset}, {kind})"
        )


class CrowdedBinSchedule:
    """The common-knowledge schedule for a given (N, β, γ)."""

    def __init__(self, upper_n: int, beta: int, gamma: int):
        if upper_n < 4:
            raise ConfigurationError(
                f"CrowdedBin needs N >= 4 (got {upper_n}) so log N >= 2"
            )
        if beta < 1:
            raise ConfigurationError(f"beta must be >= 1, got {beta}")
        if gamma < 1:
            raise ConfigurationError(f"gamma must be >= 1, got {gamma}")
        self.upper_n = upper_n
        self.beta = beta
        self.gamma = gamma
        self.log_n = max(ceil_log2(upper_n), 2)
        #: Number of parallel instances; instance i targets k_i = 2^i.
        self.num_instances = self.log_n
        #: ℓ: advertising rounds needed to spell one tag.
        self.ell = beta * self.log_n
        #: Blocks per bin; also the crowding threshold γ·log N.
        self.blocks_per_bin = gamma * self.log_n
        #: Rounds per block: ℓ spelling + log N PPUSH.
        self.block_len = self.ell + self.log_n
        #: Largest assignable tag (tags live in [1, 2^ℓ - 1]).
        self.max_tag = (1 << self.ell) - 1
        #: Crowding threshold: a bin with ≥ this many tags is crowded.
        self.crowded_threshold = self.gamma * self.log_n

    def bins(self, instance: int) -> int:
        """k_i = 2^i, the bin count (and estimate) of instance ``instance``."""
        self._check_instance(instance)
        return 1 << instance

    def estimate_of(self, instance: int) -> int:
        return self.bins(instance)

    def phase_len(self, instance: int) -> int:
        """Instance-rounds per phase: k_i bins × blocks/bin × block length."""
        return self.bins(instance) * self.blocks_per_bin * self.block_len

    def phase_len_real(self, instance: int) -> int:
        """Real rounds spanned by one phase (multiplexing factor log N)."""
        return self.phase_len(instance) * self.log_n

    def instance_of_round(self, real_round: int) -> tuple[int, int]:
        """Map a real round to (instance j, instance-round t), both 1-indexed."""
        if real_round < 1:
            raise ConfigurationError(f"rounds are 1-indexed, got {real_round}")
        j = (real_round - 1) % self.log_n + 1
        t = (real_round - 1) // self.log_n + 1
        return j, t

    def locate(self, real_round: int) -> SchedulePosition:
        """Full position of a real round inside its instance's schedule."""
        instance, t = self.instance_of_round(real_round)
        plen = self.phase_len(instance)
        phase, pos_in_phase = divmod(t - 1, plen)
        bin_len = self.blocks_per_bin * self.block_len
        bin_index, pos_in_bin = divmod(pos_in_phase, bin_len)
        block, offset = divmod(pos_in_bin, self.block_len)
        return SchedulePosition(
            instance=instance,
            instance_round=t,
            phase=phase,
            bin_index=bin_index,
            block=block,
            offset=offset,
            is_spelling=offset < self.ell,
            is_phase_start=pos_in_phase == 0,
        )

    def is_spelling_end(self, pos: SchedulePosition) -> bool:
        """Last spelling round of a block (time to decode neighbor tags)."""
        return pos.offset == self.ell - 1

    def is_bin_end(self, pos: SchedulePosition) -> bool:
        """Last round of a bin (time to fold pending tags in)."""
        return (
            pos.block == self.blocks_per_bin - 1
            and pos.offset == self.block_len - 1
        )

    def tag_bits(self, tag: int) -> list[int]:
        """The ℓ-bit spelling of a tag, MSB first."""
        if not 0 <= tag <= self.max_tag:
            raise ConfigurationError(
                f"tag {tag} outside [0, {self.max_tag}]"
            )
        return [(tag >> (self.ell - 1 - i)) & 1 for i in range(self.ell)]

    def target_instance_bound(self, k: int) -> int:
        """Smallest instance i with k_i ≥ k (harness-side diagnostic)."""
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        instance = 1
        while self.bins(instance) < k and instance < self.num_instances:
            instance += 1
        return instance

    def _check_instance(self, instance: int) -> None:
        if not 1 <= instance <= self.num_instances:
            raise ConfigurationError(
                f"instance {instance} outside [1, {self.num_instances}]"
            )

    def __repr__(self) -> str:
        return (
            f"CrowdedBinSchedule(N={self.upper_n}, beta={self.beta}, "
            f"gamma={self.gamma}, logN={self.log_n}, ell={self.ell}, "
            f"block_len={self.block_len}, blocks_per_bin={self.blocks_per_bin})"
        )
