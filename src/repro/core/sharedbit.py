"""SharedBit: gossip with one advertising bit and shared randomness (§5.1).

The single bit is spent well: each round ``r``, the shared string assigns
every token label ``t`` a fresh random bit ``t.bit``; a node advertises the
parity of the bits of the tokens it knows (0 for the empty set).  Nodes
with identical token sets therefore advertise the same bit, and nodes with
*different* sets advertise different bits with probability exactly 1/2
(Lemma 5.2) — so a 1-advertiser proposing to a 0-advertiser always lands on
a neighbor whose set differs from its own, and the Transfer subroutine can
make the connection productive.

Theorem 5.1: O(k·n) rounds w.h.p., for any τ ≥ 1.

The proposal *target* among 0-advertising neighbors is also drawn from the
shared string (the node's own UID bundle), exactly as in the paper — a
detail that matters for §5.2, where all of SharedBit's shared coins must
come from the one disseminated string.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.commcplx.transfer import TransferProtocol
from repro.core.problem import GossipNode
from repro.errors import ConfigurationError
from repro.registry import register_algorithm
from repro.rng import SharedRandomness
from repro.sim.channel import Channel
from repro.sim.context import NeighborView

__all__ = ["SharedBitConfig", "SharedBitNode"]


@dataclass(frozen=True)
class SharedBitConfig:
    """Tunables for SharedBit.

    ``transfer_error_exponent`` — Transfer's ε = N^{-c_t} (§5.1).
    ``group_offset`` — added to the engine round to index the shared
    string's group; SimSharedBit uses this to keep gossip rounds and leader
    rounds on a common global clock.
    """

    transfer_error_exponent: float = 2.0
    group_offset: int = 0

    def __post_init__(self):
        if self.transfer_error_exponent <= 0:
            raise ConfigurationError(
                "transfer_error_exponent must be positive, got "
                f"{self.transfer_error_exponent}"
            )

    def transfer_epsilon(self, upper_n: int) -> float:
        return float(upper_n) ** (-self.transfer_error_exponent)

    @classmethod
    def paper(cls) -> "SharedBitConfig":
        return cls(transfer_error_exponent=2.0)

    @classmethod
    def practical(cls) -> "SharedBitConfig":
        return cls(transfer_error_exponent=1.0)


class SharedBitNode(GossipNode):
    """One node running SharedBit.  Requires b = 1 and a shared string."""

    def __init__(
        self,
        uid: int,
        upper_n: int,
        initial_tokens,
        rng: random.Random,
        shared: SharedRandomness,
        config: SharedBitConfig | None = None,
    ):
        super().__init__(uid, upper_n, initial_tokens, rng)
        self.config = config or SharedBitConfig()
        self.shared = shared
        self._transfer = TransferProtocol(
            upper_n, self.config.transfer_epsilon(upper_n)
        )
        self._bit_this_round = 0

    def advertisement_bit(self, round_index: int) -> int:
        """b_u(r): parity of the shared bits of the tokens this node knows."""
        if not self._tokens:
            return 0
        group = round_index + self.config.group_offset
        parity = 0
        for token_id in self._tokens:
            parity ^= self.shared.token_bit(group, token_id)
        return parity

    def advertise(self, round_index: int, neighbor_uids: tuple[int, ...]) -> int:
        self._bit_this_round = self.advertisement_bit(round_index)
        return self._bit_this_round

    def propose(
        self, round_index: int, neighbors: tuple[NeighborView, ...]
    ) -> int | None:
        if self._bit_this_round != 1:
            return None  # 0-advertisers wait to receive proposals.
        zeros = sorted(view.uid for view in neighbors if view.tag == 0)
        if not zeros:
            return None
        group = round_index + self.config.group_offset
        index = self.shared.selection_index(group, self.uid, len(zeros))
        return zeros[index]

    def interact(self, responder: "SharedBitNode", channel: Channel,
                 round_index: int) -> None:
        self.run_transfer(responder, self._transfer, channel)


@register_algorithm(
    name="sharedbit",
    description="one bit + shared randomness; O(k*n), any tau (Thm 5.1)",
    config_class=SharedBitConfig,
    tag_length=1,
)
def _build_sharedbit_nodes(ctx):
    shared = SharedRandomness(
        ctx.tree.key("shared-string"), ctx.instance.upper_n
    )
    return {
        vertex: SharedBitNode(
            shared=shared, config=ctx.config, **ctx.common(vertex)
        )
        for vertex in ctx.vertices()
    }
