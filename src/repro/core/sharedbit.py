"""SharedBit: gossip with one advertising bit and shared randomness (§5.1).

The single bit is spent well: each round ``r``, the shared string assigns
every token label ``t`` a fresh random bit ``t.bit``; a node advertises the
parity of the bits of the tokens it knows (0 for the empty set).  Nodes
with identical token sets therefore advertise the same bit, and nodes with
*different* sets advertise different bits with probability exactly 1/2
(Lemma 5.2) — so a 1-advertiser proposing to a 0-advertiser always lands on
a neighbor whose set differs from its own, and the Transfer subroutine can
make the connection productive.

Theorem 5.1: O(k·n) rounds w.h.p., for any τ ≥ 1.

The proposal *target* among 0-advertising neighbors is also drawn from the
shared string (the node's own UID bundle), exactly as in the paper — a
detail that matters for §5.2, where all of SharedBit's shared coins must
come from the one disseminated string.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.commcplx.transfer import TransferProtocol
from repro.core.problem import GossipNode
from repro.errors import ConfigurationError
from repro.registry import register_algorithm
from repro.rng import SharedRandomness
from repro.sim.channel import Channel
from repro.sim.context import NeighborView

__all__ = ["SharedBitConfig", "SharedBitNode"]


@dataclass(frozen=True)
class SharedBitConfig:
    """Tunables for SharedBit.

    ``transfer_error_exponent`` — Transfer's ε = N^{-c_t} (§5.1).
    ``group_offset`` — added to the engine round to index the shared
    string's group; SimSharedBit uses this to keep gossip rounds and leader
    rounds on a common global clock.
    """

    transfer_error_exponent: float = 2.0
    group_offset: int = 0

    def __post_init__(self):
        if self.transfer_error_exponent <= 0:
            raise ConfigurationError(
                "transfer_error_exponent must be positive, got "
                f"{self.transfer_error_exponent}"
            )

    def transfer_epsilon(self, upper_n: int) -> float:
        return float(upper_n) ** (-self.transfer_error_exponent)

    @classmethod
    def paper(cls) -> "SharedBitConfig":
        return cls(transfer_error_exponent=2.0)

    @classmethod
    def practical(cls) -> "SharedBitConfig":
        return cls(transfer_error_exponent=1.0)


class SharedBitNode(GossipNode):
    """One node running SharedBit.  Requires b = 1 and a shared string."""

    def __init__(
        self,
        uid: int,
        upper_n: int,
        initial_tokens,
        rng: random.Random,
        shared: SharedRandomness,
        config: SharedBitConfig | None = None,
    ):
        super().__init__(uid, upper_n, initial_tokens, rng)
        self.config = config or SharedBitConfig()
        self.shared = shared
        self._transfer = TransferProtocol(
            upper_n, self.config.transfer_epsilon(upper_n)
        )
        self._bit_this_round = 0

    def advertisement_bit(self, round_index: int) -> int:
        """b_u(r): parity of the shared bits of the tokens this node knows."""
        if not self._tokens:
            return 0
        group = round_index + self.config.group_offset
        parity = 0
        for token_id in self._tokens:
            parity ^= self.shared.token_bit(group, token_id)
        return parity

    def advertise(self, round_index: int, neighbor_uids: tuple[int, ...]) -> int:
        self._bit_this_round = self.advertisement_bit(round_index)
        return self._bit_this_round

    def propose(
        self, round_index: int, neighbors: tuple[NeighborView, ...]
    ) -> int | None:
        if self._bit_this_round != 1:
            return None  # 0-advertisers wait to receive proposals.
        zeros = sorted(view.uid for view in neighbors if view.tag == 0)
        if not zeros:
            return None
        group = round_index + self.config.group_offset
        index = self.shared.selection_index(group, self.uid, len(zeros))
        return zeros[index]

    def interact(self, responder: "SharedBitNode", channel: Channel,
                 round_index: int) -> None:
        self.run_transfer(responder, self._transfer, channel)

    # -- bulk hooks (array fast path) ------------------------------------
    # The parity bits are *shared* randomness: b_t(r) depends only on
    # (round group, token label), never on which node evaluates it.  The
    # scalar path re-derives each token's PRF bit per node per round —
    # Θ(Σ_u |tokens_u|) BLAKE2b calls, the dominant cost once sets grow —
    # while the bulk hook derives each distinct token's bit once
    # (SharedRandomness.token_bits) and shares the dict across all n
    # nodes.  Identical bits, identical parities, identical proposals.

    @classmethod
    def bulk_ready(cls, nodes) -> bool:
        # The batch derivation assumes what the standard builder
        # guarantees: one shared string and one config for everybody.
        first = nodes[0]
        return all(
            node.shared == first.shared
            and node.config.group_offset == first.config.group_offset
            for node in nodes
        )

    @classmethod
    def advertise_all(cls, nodes, round_index, csr) -> np.ndarray:
        first = nodes[0]
        group = round_index + first.config.group_offset
        known: set[int] = set()
        for node in nodes:
            known.update(node._tokens)
        bit_of = first.shared.token_bits(group, sorted(known))
        tags = csr.round_buffer("sharedbit:tags", len(nodes), np.int64)
        get = bit_of.__getitem__
        for vertex, node in enumerate(nodes):
            tokens = node._tokens
            bit = sum(map(get, tokens)) & 1 if tokens else 0
            tags[vertex] = bit
            node._bit_this_round = bit
        return tags

    @classmethod
    def propose_all(cls, nodes, round_index, csr, tags) -> np.ndarray:
        first = nodes[0]
        group = round_index + first.config.group_offset
        shared = first.shared
        targets = csr.round_buffer("sharedbit:targets", len(nodes),
                                   np.int64, fill=-1)
        for vertex, zeros in csr.candidate_rows(tags):
            index = shared.selection_index(group, nodes[vertex].uid,
                                           len(zeros))
            targets[vertex] = zeros[index]
        return targets

    # -- window hooks (batched async path) -------------------------------
    # All of SharedBit's per-round randomness is *shared* (PRF reads keyed
    # by round group), so a whole asynchronous window's tags can be
    # computed eagerly — the handful of nodes whose token sets change
    # mid-window (transfer endpoints, crash resets) are retagged exactly
    # at their activation position by the engine.

    @classmethod
    def make_window_hooks(cls, nodes) -> "_SharedBitWindowOps":
        return _SharedBitWindowOps(nodes)


class _SharedBitWindowOps:
    """Stateful window ops for SharedBit (see ``window_hooks``).

    Tags are parities of shared token bits, so the batch keeps a dense
    ``(n, cap)`` matrix of token labels (sentinel-padded rows, rebuilt
    only for nodes whose state changed) and evaluates each window group's
    bits once into a label-indexed lookup table: a member's tag is then
    one gather + row-parity, identical to ``advertisement_bit`` because
    the PRF is stateless and absent labels contribute 0.  Unlike the
    scalar ``advertise``, the batch does not maintain
    ``_bit_this_round`` — nothing outside the scalar hooks reads it, and
    a batched run never calls them.
    """

    eager_scan = True
    needs_retag = True

    def __init__(self, nodes):
        first = nodes[0]
        self._nodes = nodes
        self._shared = first.shared
        self._offset = first.config.group_offset
        # Token labels live in [1, upper_n]; one slot past that is the
        # row-padding sentinel, mapping to a permanent 0 in every lookup.
        self._sentinel = first.upper_n + 1
        n = len(nodes)
        cap = max(max((len(node._tokens) for node in nodes), default=1), 1)
        self._matrix = np.full((n, cap), self._sentinel, dtype=np.int64)
        self._row_tokens: list[tuple[int, ...]] = [()] * n
        self._counts: dict[int, int] = {}
        self._dirty: set[int] = set(range(n))
        self._sync()

    def _sync(self) -> None:
        for vertex in self._dirty:
            node = self._nodes[vertex]
            tokens = tuple(node._tokens)
            counts = self._counts
            for label in self._row_tokens[vertex]:
                left = counts[label] - 1
                if left:
                    counts[label] = left
                else:
                    del counts[label]
            for label in tokens:
                counts[label] = counts.get(label, 0) + 1
            if len(tokens) > self._matrix.shape[1]:
                grown = np.full(
                    (self._matrix.shape[0], 2 * len(tokens)),
                    self._sentinel, dtype=np.int64,
                )
                grown[:, : self._matrix.shape[1]] = self._matrix
                self._matrix = grown
            row = self._matrix[vertex]
            row[: len(tokens)] = tokens
            row[len(tokens):] = self._sentinel
            self._row_tokens[vertex] = tokens
        self._dirty.clear()

    def state_changed(self, vertex: int) -> None:
        self._dirty.add(vertex)

    def scan(self, vertices, cycles) -> tuple[np.ndarray, np.ndarray]:
        if self._dirty:
            self._sync()
        vertices = np.asarray(vertices, dtype=np.int64)
        cycles = np.asarray(cycles, dtype=np.int64)
        known = sorted(self._counts)
        lookup = np.zeros(self._sentinel + 1, dtype=np.int64)
        first = int(cycles[0]) if len(cycles) else 0
        if len(cycles) and bool((cycles == first).all()):
            # Single-cycle window — the common case for any timing model
            # whose cycles stay inside their own round window (jitter):
            # one bit table, one gather, no per-cycle partitioning.
            bit_of = self._shared.token_bits(first + self._offset, known)
            lookup[known] = [bit_of[label] for label in known]
            tags = lookup[self._matrix[vertices]].sum(axis=1) & 1
            return tags, tags == 1
        tags = np.empty(len(vertices), dtype=np.int64)
        for cycle in np.unique(cycles).tolist():
            bit_of = self._shared.token_bits(cycle + self._offset, known)
            lookup[known] = [bit_of[label] for label in known]
            sel = cycles == cycle
            rows = self._matrix[vertices[sel]]
            tags[sel] = lookup[rows].sum(axis=1) & 1
        return tags, tags == 1

    def retag(self, vertex: int, cycle: int) -> int:
        return self._nodes[vertex].advertisement_bit(cycle)

    def sender_from_tag(self, tag: int) -> bool:
        # Retagged members re-enter (or leave) the candidate pool by the
        # same rule ``scan`` applies: 1-advertisers propose.
        return tag == 1

    def propose_one(self, vertex, cycle, neighbor_uids, neighbor_tags) -> int:
        zeros = neighbor_uids[neighbor_tags == 0]
        if zeros.size == 0:
            return -1
        zeros = np.sort(zeros)
        index = self._shared.selection_index(
            cycle + self._offset, self._nodes[vertex].uid, zeros.size
        )
        return int(zeros[index])


@register_algorithm(
    name="sharedbit",
    description="one bit + shared randomness; O(k*n), any tau (Thm 5.1)",
    config_class=SharedBitConfig,
    tag_length=1,
)
def _build_sharedbit_nodes(ctx):
    shared = SharedRandomness(
        ctx.tree.key("shared-string"), ctx.instance.upper_n
    )
    return {
        vertex: SharedBitNode(
            shared=shared, config=ctx.config, **ctx.common(vertex)
        )
        for vertex in ctx.vertices()
    }
