"""SimSharedBit: SharedBit without the shared-randomness assumption (§5.2).

The construction: all nodes know a poly(N)-sized family R′ of candidate
shared strings (:class:`~repro.commcplx.newman.SharedStringFamily` — the
object Newman's-theorem-style argument proves good).  At start, each node
privately samples a seed naming one string.  Rounds interleave:

* **even rounds** — BitConvergence leader election, with each node's seed
  riding as the candidate payload;
* **odd rounds** — SharedBit gossip, each node using the string named by
  *its current candidate leader's* seed.

Before convergence, neighboring nodes may gossip with different strings —
those rounds are potentially wasted, which is exactly the slack the
analysis budgets for.  After convergence (the eventual leader is the
minimum UID and its seed never changes again), every node expands the same
seed into the same string and the execution is verbatim SharedBit.

Theorem 5.6: O(k·n + (1/α)·Δ^{1/τ}·log⁶n) rounds w.h.p.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.commcplx.newman import SharedStringFamily
from repro.commcplx.transfer import TransferProtocol
from repro.core.problem import GossipNode
from repro.core.sharedbit import SharedBitConfig
from repro.errors import ConfigurationError
from repro.leader.bitconvergence import BitConvergence, LeaderConfig
from repro.registry import register_algorithm
from repro.rng import SharedRandomness
from repro.sim.channel import Channel
from repro.sim.context import NeighborView

__all__ = ["SimSharedBitConfig", "SimSharedBitNode"]


@dataclass(frozen=True)
class SimSharedBitConfig:
    """Tunables: the SharedBit core, the election, and the family shape."""

    sharedbit: SharedBitConfig = field(default_factory=SharedBitConfig)
    leader: LeaderConfig = field(default_factory=LeaderConfig)
    family_size: int | None = None  # default: N³ (poly(N), see newman.py)

    @classmethod
    def paper(cls) -> "SimSharedBitConfig":
        return cls(sharedbit=SharedBitConfig.paper(), leader=LeaderConfig.paper())

    @classmethod
    def practical(cls) -> "SimSharedBitConfig":
        return cls(
            sharedbit=SharedBitConfig.practical(),
            leader=LeaderConfig.practical(),
        )


class SimSharedBitNode(GossipNode):
    """One node running SimSharedBit.  Requires b = 1; no shared coins."""

    def __init__(
        self,
        uid: int,
        upper_n: int,
        initial_tokens,
        rng: random.Random,
        family: SharedStringFamily,
        config: SimSharedBitConfig | None = None,
    ):
        super().__init__(uid, upper_n, initial_tokens, rng)
        self.config = config or SimSharedBitConfig()
        self.family = family
        if family.seed_bits > self.config.leader.payload_bits:
            raise ConfigurationError(
                f"family seeds need {family.seed_bits} bits but the leader "
                f"payload budget is {self.config.leader.payload_bits}"
            )
        self.seed_index = family.sample_seed(rng)
        self.election = BitConvergence(
            uid=uid,
            payload=self.seed_index,
            upper_n=upper_n,
            rng=rng,
            config=self.config.leader,
        )
        self._transfer = TransferProtocol(
            upper_n, self.config.sharedbit.transfer_epsilon(upper_n)
        )
        self._string_cache: dict[int, SharedRandomness] = {}
        self._bit_this_round = 0

    @property
    def candidate_leader(self) -> int:
        return self.election.candidate_uid

    def current_shared(self) -> SharedRandomness:
        """The string named by the current candidate's seed payload."""
        seed = self.election.candidate_payload
        if seed not in self._string_cache:
            self._string_cache[seed] = self.family.string_for_seed(seed)
        return self._string_cache[seed]

    @staticmethod
    def is_election_round(round_index: int) -> bool:
        return round_index % 2 == 0

    def advertise(self, round_index: int, neighbor_uids: tuple[int, ...]) -> int:
        if self.is_election_round(round_index):
            return self.election.advertise()
        if not self._tokens:
            self._bit_this_round = 0
            return 0
        shared = self.current_shared()
        parity = 0
        for token_id in self._tokens:
            parity ^= shared.token_bit(round_index, token_id)
        self._bit_this_round = parity
        return parity

    def propose(
        self, round_index: int, neighbors: tuple[NeighborView, ...]
    ) -> int | None:
        if self.is_election_round(round_index):
            return self.election.propose(neighbors)
        if self._bit_this_round != 1:
            return None
        zeros = sorted(view.uid for view in neighbors if view.tag == 0)
        if not zeros:
            return None
        index = self.current_shared().selection_index(
            round_index, self.uid, len(zeros)
        )
        return zeros[index]

    def interact(self, responder: "SimSharedBitNode", channel: Channel,
                 round_index: int) -> None:
        if self.is_election_round(round_index):
            self.election.interact(responder.election, channel)
        else:
            self.run_transfer(responder, self._transfer, channel)


@register_algorithm(
    name="simsharedbit",
    description="SharedBit w/o shared randomness, via leader election "
                "(Thm 5.6)",
    config_class=SimSharedBitConfig,
    tag_length=1,
)
def _build_simsharedbit_nodes(ctx):
    family = SharedStringFamily(
        master_seed=ctx.tree.stream("family-master").randrange(2**31),
        capacity_n=ctx.instance.upper_n,
        family_size=ctx.config.family_size,
    )
    return {
        vertex: SimSharedBitNode(
            family=family, config=ctx.config, **ctx.common(vertex)
        )
        for vertex in ctx.vertices()
    }
