"""Gossip tokens.

The paper treats tokens as "comparable black boxes": they carry a label
from ``[N]`` — each origin labels its token with its own UID — and an
opaque payload that can only move through a connection (a node cannot
spell a token out via advertising bits).  The label gives the fixed total
order the Transfer subroutine's binary search relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["Token"]


@dataclass(frozen=True)
class Token:
    """One gossip message.

    ``token_id`` — the label in ``[1, N]`` (the origin's UID).
    ``payload`` — opaque content; algorithms never inspect it, which the
    test suite verifies by running every algorithm with sentinel payloads
    and checking they arrive intact.
    """

    token_id: int
    payload: str = ""
    origin_uid: int = field(default=-1)

    def __post_init__(self):
        if self.token_id < 1:
            raise ConfigurationError(
                f"token_id must be >= 1 (labels live in [1, N]), got {self.token_id}"
            )
        if self.origin_uid == -1:
            object.__setattr__(self, "origin_uid", self.token_id)

    def __repr__(self) -> str:
        return f"Token(id={self.token_id})"
