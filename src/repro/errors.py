"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so
callers can catch library failures with a single except clause while still
distinguishing configuration mistakes from model violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A parameter or combination of parameters is invalid.

    Raised eagerly, at construction time, so misconfigured experiments fail
    before any simulation work is done.
    """


class MemoryBudgetError(ConfigurationError, ValueError):
    """A configuration would materialize more memory than its path can bear.

    Raised eagerly, at construction time, when the object engine path is
    asked to build per-vertex view skeletons and per-node Python state
    at a scale where they would silently consume gigabytes (the array
    path exists for exactly that regime).  Inherits ``ValueError`` so
    callers validating parameters generically can catch it without
    importing the repro hierarchy.
    """


class TopologyError(ReproError):
    """A topology violates a model requirement.

    The mobile telephone model requires every per-round topology graph to be
    connected and the dynamic graph to respect its stability factor; this is
    raised when either requirement is violated.
    """


class StabilityError(TopologyError):
    """A dynamic graph changed faster than its stability factor permits."""


class ProtocolViolationError(ReproError):
    """A node protocol broke a rule of the mobile telephone model.

    Examples: advertising a tag wider than ``b`` bits, proposing to a
    non-neighbor, or attempting a second connection in one round.
    """


class ChannelBudgetError(ProtocolViolationError):
    """A connection exceeded its per-round communication budget.

    The model allows a connected pair to exchange at most O(1) tokens and
    O(polylog N) control bits per round; the :class:`repro.sim.channel.Channel`
    meters both and raises this error on overflow.
    """


class ChannelClosedError(ProtocolViolationError):
    """A node used a channel outside the round in which it was open."""


class SimulationError(ReproError):
    """The simulation could not make progress (e.g. round limit exceeded)."""


class RoundLimitExceeded(SimulationError):
    """An execution hit its round limit before its termination condition.

    Carries the partially-completed trace when available so callers can
    inspect how far the execution got.
    """

    def __init__(self, message: str, trace=None):
        super().__init__(message)
        self.trace = trace
