"""Experiment orchestration: declarative sweeps, run in parallel, cached.

This package is the substrate every sweep in the repo — benchmarks, the
``repro-gossip sweep`` CLI, and the examples — runs on:

* :mod:`repro.experiments.specs` — :class:`RunSpec` / :class:`SweepSpec`,
  a JSON-serializable description of what to run (algorithm, graph family,
  dynamic-graph recipe, instance recipe, seeds, parameter grid), with
  stable content hashes;
* :mod:`repro.experiments.runner` — :func:`execute_run` (one spec, one
  record) and :func:`run_sweep` (the whole grid, optionally over a
  ``ProcessPoolExecutor`` and an on-disk result cache);
* :mod:`repro.experiments.results` — aggregation (median / percentiles),
  tables, report files, and the cache itself.

Quickstart::

    from repro.experiments import SweepSpec, run_sweep

    sweep = SweepSpec(
        name="sharedbit-n",
        base={
            "algorithm": "sharedbit",
            "graph": {"family": "star", "params": {"n": 8}},
            "dynamic": {"kind": "relabeling", "tau": 1},
            "instance": {"kind": "uniform", "k": 2},
            "max_rounds": 200_000,
        },
        grid={"graph.params.n": [8, 16, 32]},
        seeds=(11, 23, 37),
    )
    result = run_sweep(sweep, jobs=4, cache_dir="benchmarks/.cache")
    print(result.table())
"""

from repro.experiments.fastpath import (
    check_async_determinism,
    check_async_sync_identity,
    check_fastpath_divergence,
    check_null_fault_identity,
)
from repro.experiments.figures import (
    FIGURE1_ROW_KEYS,
    argv_flag,
    figure1_sweep,
)
from repro.experiments.results import (
    PointSummary,
    ResultCache,
    SweepResult,
    aggregate,
    percentile,
    write_report,
)
from repro.experiments.runner import (
    CROWDEDBIN_TAU_NOTE,
    execute_run,
    normalize_payload,
    run_sweep,
    stable_topology_note,
)
from repro.experiments.specs import (
    EXPERIMENT_ALGORITHMS,
    RunSpec,
    SweepSpec,
    build_config,
    build_dynamic_graph,
    build_instance,
    build_timing,
    build_topology,
    canonical_json,
    run_hash,
)

__all__ = [
    "CROWDEDBIN_TAU_NOTE",
    "EXPERIMENT_ALGORITHMS",
    "FIGURE1_ROW_KEYS",
    "argv_flag",
    "figure1_sweep",
    "PointSummary",
    "ResultCache",
    "RunSpec",
    "SweepResult",
    "SweepSpec",
    "aggregate",
    "build_config",
    "build_dynamic_graph",
    "build_instance",
    "build_timing",
    "build_topology",
    "canonical_json",
    "check_async_determinism",
    "check_async_sync_identity",
    "check_fastpath_divergence",
    "check_null_fault_identity",
    "execute_run",
    "normalize_payload",
    "percentile",
    "run_hash",
    "run_sweep",
    "stable_topology_note",
    "write_report",
]
