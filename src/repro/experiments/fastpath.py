"""Differential harness: the array fast path vs the object reference path.

One implementation of the byte-identity check, shared by the test suite
(tests/test_fastpath.py), the benchmark gate (benchmarks/bench_engine.py)
and CI's bench-smoke job — so there is a single notion of "byte-identical"
and it cannot drift between surfaces.

A *case* is (algorithm, dynamics kind, acceptance rule, fault regime,
engine mode); its outcome is a hashable signature covering everything an
execution observably did: every sampled trace record (gauges and the
fault columns included), every running total, the final round, and the
algorithm's end state (who got informed when / who knows which tokens).
Two engine modes agree iff their signatures are equal.

The fault layer adds a second invariant:
:func:`check_null_fault_identity` pins that the null model
(:class:`~repro.sim.faults.NoFaults`) is byte-identical to running with
no fault model at all — on both paths, the layer costs nothing and
consumes zero randomness unless a real regime is selected.

The asynchrony layer adds a third axis (ASYNC):
:func:`check_async_sync_identity` pins that the event-driven engine
(:class:`~repro.asynchrony.engine.AsyncSimulation`) under
:class:`~repro.asynchrony.timing.Synchronous` timing is *event-for-event
identical* to the round engine — same matches, same random-stream
consumption, same traces, same end state — on both the object and the
array path; :func:`check_async_determinism` pins that jittered timing
models are seed-deterministic (same seed, twice, byte-identical);
:func:`check_async_batched_identity` pins that the batched window path
(``async_mode="batched"``) is byte-identical to the generic per-event
path under every timing regime and fault regime, on both the object and
the array front half — the determinism contract of the window-batching
optimization ("no random draw may move").

The scale layer adds two more invariants: :func:`check_dtype_identity`
pins that running the array path over int32 CSR index arrays (the
memory-lean layout auto-chosen below n = 2^31) is byte-identical to
int64 — same matches, same random-stream consumption, same traces —
and :func:`check_grid_identity` pins the cell-grid geometric primitives
(:mod:`repro.graphs.spatial`) to their O(n^2) differential references:
grid disk edges == blocked-sweep disk edges (same arrays, same order),
and :class:`~repro.graphs.spatial.PointIndex` nearest queries ==
dense ``nearest_pair`` (value *and* tie-break).

The telemetry layer (repro.telemetry) adds the observability axis:
:func:`check_telemetry_identity` pins that enabling metrics + phase
profiling perturbs nothing — telemetry draws zero randomness, so every
case is byte-identical with it on or off, on both engine-mode front
halves of the round engine and on both front halves of the event
engine's batched window path.

The live deployment layer (repro.net) adds a fourth invariant:
:func:`check_local_acceptance_identity` pins that the per-target
acceptance-stream discipline (``acceptance_streams="local"`` — the
draws a distributed proposee can derive knowing only seed, round, and
its own UID) is byte-identical between the object and array paths for
every proposee-side rule.  The replay bridge
(:mod:`repro.net.bridge`) records under this discipline, so the check
anchors live-replay equivalence to whichever engine path recorded.
"""

from __future__ import annotations

from repro.asynchrony.engine import AsyncSimulation
from repro.asynchrony.timing import (
    GilbertElliottPauses,
    HeterogeneousRates,
    Synchronous,
    UniformJitter,
)
from repro.core.ppush import PPushNode
from repro.core.problem import uniform_instance
from repro.core.runner import build_nodes
from repro.core.tokens import Token
from repro.graphs.dynamic import (
    GeometricMobilityGraph,
    RelabelingAdversary,
    StaticDynamicGraph,
)
from repro.graphs.topologies import cycle, star
from repro.registry import ALGORITHM_REGISTRY
from repro.rng import SeedTree
from repro.sim.channel import ChannelPolicy
from repro.sim.engine import Simulation
from repro.sim.faults import CrashChurn, LossyLinks, SleepCycle

__all__ = [
    "CHECK_ALGORITHMS",
    "CHECK_ACCEPTANCES",
    "CHECK_DYNAMICS",
    "CHECK_FAULTS",
    "CHECK_ASYNC_ALGORITHMS",
    "CHECK_ASYNC_DYNAMICS",
    "CHECK_TIMINGS",
    "check_dtype_identity",
    "check_fastpath_divergence",
    "check_grid_identity",
    "check_local_acceptance_identity",
    "check_null_fault_identity",
    "check_async_sync_identity",
    "check_async_determinism",
    "check_async_batched_identity",
    "check_telemetry_identity",
    "make_dynamics",
    "make_fault",
    "make_timing",
    "run_case",
    "trace_signature",
]

CHECK_ALGORITHMS = ("ppush", "blindmatch", "sharedbit")
CHECK_DYNAMICS = ("static", "relabeling", "geometric")
CHECK_ACCEPTANCES = ("uniform", "lowest_uid", "highest_uid", "unbounded")
#: Fault regimes the differential matrix exercises ("none" = no model).
CHECK_FAULTS = ("none", "sleep", "churn", "lossy")
#: The ASYNC identity axis: algorithms × dynamics run through both the
#: round engine and the event engine under synchronous timing.
CHECK_ASYNC_ALGORITHMS = ("sharedbit", "blindmatch")
CHECK_ASYNC_DYNAMICS = ("static", "geometric")
#: Jittered timing regimes the determinism check exercises.
CHECK_TIMINGS = ("jitter", "heterogeneous", "bursty")


def trace_signature(rounds: int, trace) -> tuple:
    """Everything a trace observed, ready for exact comparison."""
    records = tuple(
        (r.round_index, r.proposals, r.connections, r.tokens_moved,
         r.control_bits, r.active_nodes, r.dropped_connections,
         tuple(sorted(r.gauges.items())))
        for r in trace.records
    )
    return (
        rounds,
        trace.total_rounds,
        trace.total_proposals,
        trace.total_connections,
        trace.total_tokens_moved,
        trace.total_control_bits,
        trace.total_dropped_connections,
        records,
    )


def make_dynamics(kind: str, n: int, seed: int):
    """One fresh dynamic graph per execution (GeometricMobilityGraph
    carries evolving state and must be walked forward once per run)."""
    if kind == "static":
        return StaticDynamicGraph(star(n))
    if kind == "relabeling":
        return RelabelingAdversary(cycle(n), tau=2, seed=seed)
    if kind == "geometric":
        return GeometricMobilityGraph(n=n, radius=0.4, step=0.05, tau=3,
                                      seed=seed)
    raise ValueError(f"unknown differential dynamics kind {kind!r}")


def make_fault(kind, n: int, seed: int):
    """One fresh fault model per execution, sized for short differential
    runs (aggressive rates so a few dozen rounds actually exercise the
    masked paths and the drop branch).  An already-built
    :class:`~repro.sim.faults.FaultModel` passes through unchanged."""
    if not isinstance(kind, str):
        return kind
    if kind == "none":
        return None
    if kind == "sleep":
        return SleepCycle(n=n, seed=seed, period=4, duty=2)
    if kind == "churn":
        return CrashChurn(n=n, seed=seed, cycle=12, crash_prob=0.5,
                          min_outage=3, max_outage=6, reset_tokens=True)
    if kind == "lossy":
        return LossyLinks(n=n, seed=seed, drop_prob=0.3)
    raise ValueError(f"unknown differential fault kind {kind!r}")


def _ppush_nodes(n: int, seed: int) -> dict:
    tree = SeedTree(seed)
    return {
        vertex: PPushNode(
            uid=vertex + 1,
            upper_n=n,
            rng=tree.stream("node", vertex + 1),
            rumor=Token(1) if vertex == 0 else None,
        )
        for vertex in range(n)
    }


def make_timing(kind, n: int, seed: int):
    """One fresh timing model per execution (jittered models sized so a
    few dozen rounds exercise partial cohorts, stale reads, and stalls).
    An already-built :class:`~repro.asynchrony.timing.TimingModel`
    passes through unchanged; ``None`` means the round engine."""
    if kind is None or not isinstance(kind, str):
        return kind
    if kind == "synchronous":
        return Synchronous(n, seed)
    if kind == "jitter":
        return UniformJitter(n=n, seed=seed, jitter=0.6)
    if kind == "heterogeneous":
        return HeterogeneousRates(n=n, seed=seed, rates=(0.5, 1.0, 1.7))
    if kind == "bursty":
        return GilbertElliottPauses(n=n, seed=seed, p_pause=0.2,
                                    p_resume=0.5, pause_scale=2.0)
    raise ValueError(f"unknown differential timing kind {kind!r}")


def run_case(
    algorithm: str,
    dynamics_kind: str,
    acceptance: str,
    engine_mode: str,
    n: int = 24,
    seed: int = 7,
    rounds: int = 40,
    fault="none",
    timing=None,
    async_mode="auto",
    acceptance_streams="global",
    csr_dtype=None,
    telemetry=None,
) -> tuple:
    """Run one differential case; returns (trace signature, final state).

    ``timing=None`` runs the round engine; anything else (a kind name or
    a built model — including ``"synchronous"``) runs the event engine,
    with ``async_mode`` selecting its front half (``"event"`` forces the
    generic per-event path, ``"batched"`` forces window batching).
    ``acceptance_streams`` selects the match-stream discipline (the
    event engine supports only ``"global"``).  ``csr_dtype`` forces the
    dynamic graph's CSR index dtype (``"int32"`` / ``"int64"``; ``None``
    keeps the auto-chosen narrowest) — the dtype-identity axis.
    ``telemetry`` is the observability axis: anything
    :func:`repro.telemetry.resolve_telemetry` accepts (``True`` turns
    profiling + metrics on); the telemetry-identity gate pins that it
    never perturbs the signature.
    """
    import numpy as np
    if algorithm == "ppush":
        nodes = _ppush_nodes(n, seed)
        b = 1
        policy = None
    else:
        instance = uniform_instance(n=n, k=3, seed=seed)
        nodes = build_nodes(algorithm, instance, seed=seed)
        defn = ALGORITHM_REGISTRY.get(algorithm)
        b = defn.resolve_tag_length(defn.make_config())
        policy = ChannelPolicy.for_upper_n(instance.upper_n)
    timing = make_timing(timing, n, seed)
    engine_kwargs = dict(
        b=b, seed=seed, channel_policy=policy, acceptance=acceptance,
        engine_mode=engine_mode, faults=make_fault(fault, n, seed),
        acceptance_streams=acceptance_streams, telemetry=telemetry,
    )
    dynamics = make_dynamics(dynamics_kind, n, seed)
    if csr_dtype is not None:
        dynamics.csr_dtype = np.dtype(csr_dtype)
    if timing is None:
        sim = Simulation(dynamics, nodes, **engine_kwargs)
    else:
        sim = AsyncSimulation(dynamics, nodes, timing=timing,
                              async_mode=async_mode, **engine_kwargs)
    sim.run(max_rounds=rounds)
    if algorithm == "ppush":
        state = tuple(
            (node.uid, node.informed_at_round)
            for node in sim.protocols.values()
        )
    else:
        state = tuple(
            tuple(sorted(node.known_tokens))
            for node in sim.protocols.values()
        )
    return trace_signature(sim.current_round, sim.trace), state


def check_fastpath_divergence(
    n: int = 24,
    seed: int = 7,
    rounds: int = 40,
    algorithms=CHECK_ALGORITHMS,
    dynamics=CHECK_DYNAMICS,
    acceptances=CHECK_ACCEPTANCES,
    faults=("none",),
) -> list[str]:
    """Run every case both ways; report mismatches (empty = identical)."""
    failures = []
    for algorithm in algorithms:
        for kind in dynamics:
            for acceptance in acceptances:
                for fault in faults:
                    reference = run_case(algorithm, kind, acceptance,
                                         "object", n, seed, rounds,
                                         fault=fault)
                    fast = run_case(algorithm, kind, acceptance, "array",
                                    n, seed, rounds, fault=fault)
                    if reference != fast:
                        failures.append(
                            f"{algorithm}/{kind}/{acceptance}/{fault}: "
                            "fast path diverged from reference trace"
                        )
    return failures


def check_dtype_identity(
    n: int = 24,
    seed: int = 7,
    rounds: int = 40,
    algorithms=CHECK_ALGORITHMS,
    dynamics=CHECK_DYNAMICS,
    acceptances=CHECK_ACCEPTANCES,
) -> list[str]:
    """The memory-lean layout's invariant: int32 CSR == int64 CSR.

    Runs every (algorithm, dynamics, acceptance) case through the array
    path twice — once with the CSR index arrays forced to int64, once to
    int32 — and reports any observable difference (empty = the index
    dtype is pure representation; uids and random draws never touch it).
    """
    failures = []
    for algorithm in algorithms:
        for kind in dynamics:
            for acceptance in acceptances:
                wide = run_case(algorithm, kind, acceptance, "array",
                                n, seed, rounds, csr_dtype="int64")
                narrow = run_case(algorithm, kind, acceptance, "array",
                                  n, seed, rounds, csr_dtype="int32")
                if wide != narrow:
                    failures.append(
                        f"{algorithm}/{kind}/{acceptance}: int32 CSR "
                        "diverged from int64 on the array path"
                    )
    return failures


def check_grid_identity(
    ns=(64, 256, 1024),
    radii=(0.02, 0.1, 0.35),
    seeds=(0, 1),
) -> list[str]:
    """The spatial grid's invariant: grid output == O(n^2) reference.

    For every (n, seed) point cloud: the cell-grid disk-edge builder
    must return byte-identical arrays to the blocked pairwise sweep at
    every radius (order included — nx component iteration is
    edge-insertion-order sensitive), and :class:`PointIndex` nearest
    queries must agree with the dense ``nearest_pair`` reduction on
    value *and* tie-break.
    """
    import numpy as np

    from repro.graphs.spatial import (
        PointIndex,
        disk_edges_blocked,
        disk_edges_grid,
        nearest_pair,
    )

    failures = []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        for n in ns:
            xs = rng.random(n)
            ys = rng.random(n)
            for radius in radii:
                bu, bv = disk_edges_blocked(xs, ys, radius)
                gu, gv = disk_edges_grid(xs, ys, radius)
                if not (np.array_equal(bu, gu) and np.array_equal(bv, gv)):
                    failures.append(
                        f"n={n}/radius={radius}/seed={seed}: grid edge "
                        "set diverged from the blocked sweep"
                    )
            half = n // 2
            reference = nearest_pair(xs[:half], ys[:half],
                                     xs[half:], ys[half:])
            indexed = PointIndex(xs[:half], ys[:half]).nearest(
                xs[half:], ys[half:]
            )
            if reference != indexed:
                failures.append(
                    f"n={n}/seed={seed}: PointIndex nearest pair "
                    f"diverged from the dense reduction "
                    f"({indexed} != {reference})"
                )
    return failures


def check_null_fault_identity(
    n: int = 24,
    seed: int = 7,
    rounds: int = 40,
    algorithms=CHECK_ALGORITHMS,
    dynamics=CHECK_DYNAMICS,
) -> list[str]:
    """The fault layer's load-bearing invariant: ``NoFaults`` == no model.

    Runs each case twice per engine mode — once with no fault model at
    all, once with the registered null model — and reports any case where
    the two differ in any observable way (empty = the null model is free).
    """
    from repro.sim.faults import NoFaults

    failures = []
    for algorithm in algorithms:
        for kind in dynamics:
            for engine_mode in ("object", "array"):
                bare = run_case(algorithm, kind, "uniform", engine_mode,
                                n, seed, rounds)
                null = run_case(algorithm, kind, "uniform", engine_mode,
                                n, seed, rounds,
                                fault=NoFaults(n, seed))
                if bare != null:
                    failures.append(
                        f"{algorithm}/{kind}/{engine_mode}: NoFaults "
                        "perturbed the trace (the null model must be free)"
                    )
    return failures


def check_local_acceptance_identity(
    n: int = 24,
    seed: int = 7,
    rounds: int = 40,
    algorithms=CHECK_ALGORITHMS,
    dynamics=CHECK_DYNAMICS,
    acceptances=("uniform", "lowest_uid", "highest_uid"),
) -> list[str]:
    """The live bridge's recording discipline: local streams, both paths.

    Runs every (algorithm, dynamics, proposee-side rule) case under
    ``acceptance_streams="local"`` through the object reference path and
    the array fast path and reports any observable difference (empty =
    the per-target stream discipline is engine-mode independent, so a
    :func:`repro.net.bridge.record_run` recording replays identically
    regardless of which path produced it).  ``"unbounded"`` is excluded:
    it is not a proposee-side rule and the live layer rejects it.
    """
    failures = []
    for algorithm in algorithms:
        for kind in dynamics:
            for acceptance in acceptances:
                reference = run_case(algorithm, kind, acceptance,
                                     "object", n, seed, rounds,
                                     acceptance_streams="local")
                fast = run_case(algorithm, kind, acceptance, "array",
                                n, seed, rounds,
                                acceptance_streams="local")
                if reference != fast:
                    failures.append(
                        f"{algorithm}/{kind}/{acceptance}: array path "
                        "diverged from the object path under local "
                        "acceptance streams"
                    )
    return failures


def check_async_sync_identity(
    n: int = 24,
    seed: int = 7,
    rounds: int = 40,
    algorithms=CHECK_ASYNC_ALGORITHMS,
    dynamics=CHECK_ASYNC_DYNAMICS,
    acceptances=("uniform",),
    async_mode="auto",
) -> list[str]:
    """The ASYNC axis: synchronous timing == the round engine.

    Runs each case through the round engine and through the event-driven
    engine under the :class:`~repro.asynchrony.timing.Synchronous` null
    model — on *both* the object and the array path — and reports any
    case where the two differ in any observable way (matches, stream
    consumption, traces, end state).  Empty means the event machinery
    reproduces the round engine event for event.
    """
    failures = []
    for algorithm in algorithms:
        for kind in dynamics:
            for acceptance in acceptances:
                for engine_mode in ("object", "array"):
                    round_engine = run_case(
                        algorithm, kind, acceptance, engine_mode,
                        n, seed, rounds,
                    )
                    event_engine = run_case(
                        algorithm, kind, acceptance, engine_mode,
                        n, seed, rounds, timing="synchronous",
                        async_mode=async_mode,
                    )
                    if round_engine != event_engine:
                        failures.append(
                            f"{algorithm}/{kind}/{acceptance}/"
                            f"{engine_mode}: event engine diverged from "
                            "the round engine under synchronous timing"
                        )
    return failures


def check_async_batched_identity(
    n: int = 24,
    seed: int = 7,
    rounds: int = 40,
    algorithms=CHECK_ASYNC_ALGORITHMS,
    dynamics=CHECK_ASYNC_DYNAMICS,
    timings=("synchronous",) + CHECK_TIMINGS,
    faults=("none", "sleep", "churn", "lossy"),
) -> list[str]:
    """The window-batching contract: no random draw may move.

    Runs each (algorithm, dynamics, timing, fault) case through the
    generic per-event path (``async_mode="event"``) and through the
    batched window path (``async_mode="batched"``) on *both* the object
    and the array front half, and reports any case where any observable —
    matches, stream consumption, traces, fault composition, end state —
    differs (empty = batching is a pure reordering of work, not of
    randomness).  ``"synchronous"`` timing is included so the batched
    machinery is also pinned against full-cohort windows, transitively
    anchoring it to the round engine through
    :func:`check_async_sync_identity`.
    """
    failures = []
    for algorithm in algorithms:
        for kind in dynamics:
            for timing in timings:
                for fault in faults:
                    reference = run_case(
                        algorithm, kind, "uniform", "object",
                        n, seed, rounds, fault=fault, timing=timing,
                        async_mode="event",
                    )
                    for engine_mode in ("object", "array"):
                        batched = run_case(
                            algorithm, kind, "uniform", engine_mode,
                            n, seed, rounds, fault=fault, timing=timing,
                            async_mode="batched",
                        )
                        if reference != batched:
                            failures.append(
                                f"{algorithm}/{kind}/{timing}/{fault}/"
                                f"{engine_mode}: batched window path "
                                "diverged from the per-event path"
                            )
    return failures


def check_async_determinism(
    n: int = 24,
    seed: int = 7,
    rounds: int = 40,
    algorithms=CHECK_ASYNC_ALGORITHMS,
    dynamics=CHECK_ASYNC_DYNAMICS,
    timings=CHECK_TIMINGS,
    async_mode="auto",
) -> list[str]:
    """Jittered timing is replayable: same seed => byte-identical runs."""
    failures = []
    for algorithm in algorithms:
        for kind in dynamics:
            for timing in timings:
                first = run_case(algorithm, kind, "uniform", "object",
                                 n, seed, rounds, timing=timing,
                                 async_mode=async_mode)
                second = run_case(algorithm, kind, "uniform", "object",
                                  n, seed, rounds, timing=timing,
                                  async_mode=async_mode)
                if first != second:
                    failures.append(
                        f"{algorithm}/{kind}/{timing}: two runs from the "
                        "same seed diverged (async determinism broken)"
                    )
    return failures


def check_telemetry_identity(
    n: int = 24,
    seed: int = 7,
    rounds: int = 40,
    algorithms=CHECK_ALGORITHMS,
    dynamics=CHECK_DYNAMICS,
) -> list[str]:
    """The observability contract: telemetry on == telemetry off.

    Runs each (algorithm, dynamics) case with telemetry disabled and
    enabled — on both engine-mode front halves of the round engine, and
    (for the event-engine algorithms) on both front halves of the
    batched window path under jittered timing — and reports any case
    where instrumentation changed any observable (empty = telemetry
    draws zero randomness and never feeds back into engine state).
    """
    failures = []
    for algorithm in algorithms:
        for kind in dynamics:
            for engine_mode in ("object", "array"):
                off = run_case(algorithm, kind, "uniform", engine_mode,
                               n, seed, rounds)
                on = run_case(algorithm, kind, "uniform", engine_mode,
                              n, seed, rounds, telemetry=True)
                if off != on:
                    failures.append(
                        f"{algorithm}/{kind}/{engine_mode}: telemetry "
                        "perturbed the trace (must be byte-identical)"
                    )
    for algorithm in CHECK_ASYNC_ALGORITHMS:
        for kind in CHECK_ASYNC_DYNAMICS:
            for engine_mode in ("object", "array"):
                off = run_case(algorithm, kind, "uniform", engine_mode,
                               n, seed, rounds, timing="jitter",
                               async_mode="batched")
                on = run_case(algorithm, kind, "uniform", engine_mode,
                              n, seed, rounds, timing="jitter",
                              async_mode="batched", telemetry=True)
                if off != on:
                    failures.append(
                        f"{algorithm}/{kind}/{engine_mode}/batched: "
                        "telemetry perturbed the async trace (must be "
                        "byte-identical)"
                    )
    return failures
