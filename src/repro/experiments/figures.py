"""Canonical sweep specs for the paper's figures.

One definition per figure, shared by the benchmark that regenerates the
table (``benchmarks/bench_figure1.py``) and the example that drives it in
parallel (``examples/sweep_figure1.py``) — the two must never drift, and
sharing the spec also means they share cache entries.

:func:`argv_flag` is the tolerant flag lookup the example drivers use:
example scripts are executed by the test suite under pytest's own
``sys.argv``, so unknown flags must be ignored and a trailing bare flag
must not crash.
"""

from __future__ import annotations

from repro.experiments.specs import SweepSpec

__all__ = ["FIGURE1_ROW_KEYS", "argv_flag", "figure1_sweep"]

#: The rows of Figure 1, in the paper's order (the last is §7 ε-gossip).
FIGURE1_ROW_KEYS = (
    "blindmatch", "sharedbit", "simsharedbit", "crowdedbin", "epsilon",
)


def figure1_sweep(n: int = 16, k: int = 2, seeds=(11, 23, 37)) -> SweepSpec:
    """The Figure-1 comparison as one declarative sweep.

    Rows 1–3 on a relabeled star (τ = 1); CrowdedBin's τ = ∞ requirement
    and ε-gossip's k = n static-expander setting are stated as overrides.
    """
    return SweepSpec(
        name=f"figure1-n{n}-k{k}",
        base={
            "algorithm": "sharedbit",
            "graph": {"family": "star", "params": {"n": n}},
            "dynamic": {"kind": "relabeling", "tau": 1},
            "instance": {"kind": "uniform", "k": k},
            "max_rounds": 600_000,
            "engine": {"trace_sample_every": 1024},
        },
        grid={"algorithm": list(FIGURE1_ROW_KEYS)},
        seeds=tuple(seeds),
        overrides=[
            {
                "when": {"algorithm": "crowdedbin"},
                "set": {
                    "dynamic": {"kind": "static"},
                    "config": {"preset": "practical"},
                    "engine.termination_every": 16,
                    "max_rounds": 2_000_000,
                },
            },
            {
                "when": {"algorithm": "epsilon"},
                "set": {
                    "graph": {
                        "family": "expander",
                        "params": {"n": n, "degree": 4, "seed": 1},
                    },
                    "dynamic": {"kind": "static"},
                    "instance": {"kind": "everyone"},
                    "config": {"epsilon": 0.5},
                    "max_rounds": 400_000,
                },
            },
        ],
    )


def argv_flag(argv, name: str, default=None):
    """Value following ``name`` in ``argv``, or ``default`` (never raises).

    The next token must look like a value — a bare flag followed by
    another flag falls back to ``default``.
    """
    if name in argv:
        index = argv.index(name)
        if index + 1 < len(argv) and not argv[index + 1].startswith("--"):
            return argv[index + 1]
    return default
