"""Sweep results: per-run records, per-point aggregates, reports, cache.

The runner produces one JSON-able *run record* per (grid point, seed);
:func:`aggregate` folds records into :class:`PointSummary` rows (median /
percentile round counts, solve rates) and :class:`SweepResult` renders the
sweep table and serializes everything for EXPERIMENTS.md to quote.

:class:`ResultCache` is the on-disk memo: one JSON file per run, keyed by
the stable spec hash, so re-running a sweep only pays for cells whose spec
actually changed.  Corrupt or unreadable entries degrade to cache misses.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.tables import render_table
from repro.errors import ConfigurationError
from repro.experiments.specs import SweepSpec, canonical_json

__all__ = [
    "PointSummary",
    "ResultCache",
    "ShardedRunLog",
    "SweepResult",
    "aggregate",
    "load_streamed",
    "percentile",
    "write_report",
]

#: Result-format version; bump to invalidate every cached run record.
RESULT_FORMAT = 1


def percentile(values, q: float) -> float:
    """Linear-interpolation percentile (q in [0, 100]) of a small sample."""
    if not values:
        raise ConfigurationError("percentile of an empty sample")
    if not 0 <= q <= 100:
        raise ConfigurationError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * q / 100.0
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class ResultCache:
    """One JSON file per run record under ``cache_dir``, keyed by run hash."""

    def __init__(self, cache_dir):
        self.dir = Path(cache_dir)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.dir / f"{key}.json"

    def get(self, key: str) -> dict | None:
        try:
            payload = json.loads(self._path(key).read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != RESULT_FORMAT
        ):
            self.misses += 1
            return None
        self.hits += 1
        return payload["record"]

    def put(self, key: str, record: dict) -> None:
        self.dir.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps({"format": RESULT_FORMAT, "record": record})
        )
        tmp.replace(path)


class ShardedRunLog:
    """Append-only JSONL shards + index for a streamed sweep.

    The bounded-memory counterpart of the runner's in-memory record
    dict: each completed run is appended to the current shard file as
    one canonical-JSON line (``{"index": flat_run_index, "record":
    ...}``) the moment it finishes, and :meth:`finalize` seals the
    stream with an ``index.json`` naming every shard.  Aggregation then
    happens from a re-read (:func:`load_streamed`), so a million-node
    sweep never holds more than one run record in the parent process —
    and a crashed sweep leaves every completed run on disk.

    Appends open/write/close per record: slow-path-proof (a worker
    crash loses at most the in-flight line) and trivially correct; at
    sweep granularity the cost is noise.  A fresh log *truncates* any
    prior shards in the directory — resumability is the result cache's
    job, the stream is one sweep's output.
    """

    def __init__(self, directory, shard_size: int = 256):
        if shard_size < 1:
            raise ConfigurationError(
                f"shard_size must be >= 1, got {shard_size}"
            )
        self.dir = Path(directory)
        self.shard_size = shard_size
        self.count = 0
        self.shards: list[str] = []
        self.dir.mkdir(parents=True, exist_ok=True)
        for stale in self.dir.glob("shard-*.jsonl"):
            stale.unlink()
        index = self.dir / "index.json"
        if index.exists():
            index.unlink()

    def append(self, flat_index: int, record: dict) -> None:
        shard_number = self.count // self.shard_size
        if shard_number == len(self.shards):
            self.shards.append(f"shard-{shard_number:05d}.jsonl")
        line = canonical_json({"index": flat_index, "record": record})
        with open(self.dir / self.shards[shard_number], "a") as handle:
            handle.write(line + "\n")
        self.count += 1

    def finalize(self, spec: SweepSpec) -> Path:
        """Seal the stream: write ``index.json`` naming every shard."""
        path = self.dir / "index.json"
        path.write_text(
            json.dumps(
                {
                    "format": RESULT_FORMAT,
                    "sweep_hash": spec.spec_hash(),
                    "total_runs": self.count,
                    "shard_size": self.shard_size,
                    "shards": list(self.shards),
                },
                indent=2,
            )
            + "\n"
        )
        return path


def load_streamed(directory) -> dict:
    """Re-read a sealed stream into the runner's records-by-index form.

    The dict this returns is exactly what :func:`aggregate` consumes, so
    ``aggregate(spec, load_streamed(d))`` over a streamed sweep is
    byte-identical (``SweepResult.to_json``) to the in-memory path —
    record values are JSON-native, and a JSON round-trip preserves them
    exactly.  Raises :class:`ConfigurationError` on a missing or
    unsealed stream.
    """
    directory = Path(directory)
    index_path = directory / "index.json"
    try:
        index = json.loads(index_path.read_text())
    except OSError as exc:
        raise ConfigurationError(
            f"no sealed stream at {directory}: {exc}"
        ) from exc
    except ValueError as exc:
        raise ConfigurationError(
            f"corrupt stream index {index_path}: {exc}"
        ) from exc
    if index.get("format") != RESULT_FORMAT:
        raise ConfigurationError(
            f"stream {directory} has format {index.get('format')!r}; "
            f"this reader expects {RESULT_FORMAT}"
        )
    records: dict[int, dict] = {}
    for shard in index.get("shards", ()):
        with open(directory / shard) as handle:
            for line in handle:
                if not line.strip():
                    continue
                entry = json.loads(line)
                records[entry["index"]] = entry["record"]
    total = index.get("total_runs")
    if total is not None and len(records) != total:
        raise ConfigurationError(
            f"stream {directory} is incomplete: index.json promises "
            f"{total} runs, shards hold {len(records)}"
        )
    return records


@dataclass
class PointSummary:
    """Aggregated outcome of one grid cell across its seeds."""

    point: dict                 # dotted grid keys -> values for this cell
    seeds: tuple
    rounds: tuple               # per-seed round counts, in seed order
    solved: tuple               # per-seed solved flags, in seed order
    notes: tuple = ()           # deduplicated run notes (e.g. τ substitution)
    runs: tuple = ()            # the full per-seed run records, in seed order

    @property
    def median_rounds(self) -> float:
        return percentile(self.rounds, 50)

    @property
    def p90_rounds(self) -> float:
        return percentile(self.rounds, 90)

    @property
    def min_rounds(self) -> int:
        return min(self.rounds)

    @property
    def max_rounds(self) -> int:
        return max(self.rounds)

    @property
    def all_solved(self) -> bool:
        return all(self.solved)

    def to_payload(self) -> dict:
        payload = {
            "point": dict(self.point),
            "seeds": list(self.seeds),
            "rounds": list(self.rounds),
            "solved": list(self.solved),
            "median_rounds": self.median_rounds,
            "p90_rounds": self.p90_rounds,
            "notes": list(self.notes),
        }
        # Gauge series the spec asked the engine to collect travel with
        # the serialized result (one entry per seed, in seed order).
        gauges = [record.get("gauges") for record in self.runs]
        if any(gauges):
            payload["gauges"] = [g or {} for g in gauges]
        return payload


@dataclass
class SweepResult:
    """Everything a finished sweep produced, renderable and serializable."""

    spec: SweepSpec
    points: list = field(default_factory=list)   # PointSummary, sweep order
    cache_hits: int = 0
    cache_misses: int = 0
    jobs: int = 1

    def point_for(self, **match) -> PointSummary:
        """The summary whose grid cell contains all of ``match``.

        Keys may be full dotted axes or their last segment (``k`` for
        ``instance.k``) when unambiguous.
        """
        def cell_view(point: dict) -> dict:
            view = dict(point)
            for dotted, value in point.items():
                view.setdefault(dotted.rsplit(".", 1)[-1], value)
            return view

        found = [
            summary
            for summary in self.points
            if all(
                cell_view(summary.point).get(key) == value
                for key, value in match.items()
            )
        ]
        if len(found) != 1:
            raise ConfigurationError(
                f"{len(found)} grid cells match {match!r}"
            )
        return found[0]

    def table(self, title: str | None = None) -> str:
        """The sweep as a fixed-width table (one row per grid cell)."""
        axes = self.spec.axes
        short = [axis.rsplit(".", 1)[-1] for axis in axes]
        headers = tuple(short) + (
            "median rounds", "p90", "solved", "notes",
        )
        rows = []
        for summary in self.points:
            solved = f"{sum(summary.solved)}/{len(summary.solved)}"
            rows.append(
                tuple(summary.point[axis] for axis in axes)
                + (
                    summary.median_rounds,
                    summary.p90_rounds,
                    solved,
                    "; ".join(summary.notes) or "-",
                )
            )
        return render_table(
            headers=headers,
            rows=rows,
            title=title
            or f"sweep {self.spec.name} ({len(self.spec.seeds)} seeds/cell)",
        )

    def phase_totals(self) -> dict:
        """Merged phase profile across every run of the sweep.

        Sums the ``"profile"`` dicts telemetry-enabled runs carry in
        their records (see :func:`repro.telemetry.merge_profiles`) —
        a commutative fold over per-run records in sweep order, so the
        merged call counts are invariant to what ``jobs`` was.  Empty
        when the sweep ran without telemetry.
        """
        from repro.telemetry import merge_profiles

        return merge_profiles(
            record.get("profile")
            for summary in self.points
            for record in summary.runs
        )

    def to_payload(self) -> dict:
        return {
            "sweep": self.spec.to_payload(),
            "sweep_hash": self.spec.spec_hash(),
            "points": [summary.to_payload() for summary in self.points],
        }

    def to_json(self, indent: int | None = None) -> str:
        """Canonical JSON (byte-identical for identical sweep outcomes)."""
        if indent is None:
            return canonical_json(self.to_payload())
        return json.dumps(self.to_payload(), sort_keys=True, indent=indent)


def aggregate(
    spec: SweepSpec, records_by_index: dict, runs: list | None = None
) -> SweepResult:
    """Fold per-run records into per-point summaries, in sweep order.

    ``records_by_index`` maps the flat run index (the order of
    ``spec.runs()``) to that run's record dict.  Pass the already-expanded
    ``runs`` list to avoid re-expanding (and re-validating) the grid.
    """
    if runs is None:
        runs = spec.runs()
    by_point: dict[int, list] = {}
    points: dict[int, dict] = {}
    for flat_index, (point_index, point, seed, _payload) in enumerate(runs):
        record = records_by_index[flat_index]
        points[point_index] = point
        by_point.setdefault(point_index, []).append((seed, record))
    summaries = []
    for point_index in sorted(by_point):
        cell = by_point[point_index]
        notes: list[str] = []
        for _seed, record in cell:
            for note in record.get("notes", ()):
                if note not in notes:
                    notes.append(note)
        summaries.append(
            PointSummary(
                point=points[point_index],
                seeds=tuple(seed for seed, _ in cell),
                rounds=tuple(record["rounds"] for _, record in cell),
                solved=tuple(record["solved"] for _, record in cell),
                notes=tuple(notes),
                runs=tuple(record for _, record in cell),
            )
        )
    return SweepResult(spec=spec, points=summaries)


def write_report(name: str, text: str, output_dir) -> Path:
    """Persist a sweep table (the files EXPERIMENTS.md quotes)."""
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    path = output_dir / f"{name}.txt"
    path.write_text(text + "\n")
    return path
