"""Execute runs and sweeps: serial, process-parallel, and cached.

:func:`execute_run` is the worker: it takes one JSON-able run payload,
rebuilds the topology / dynamic graph / instance / config *inside the
worker process* (nothing unpicklable ever crosses the process boundary),
runs the simulation, and returns a JSON-able record.

:func:`run_sweep` fans a :class:`~repro.experiments.specs.SweepSpec` out
over a ``ProcessPoolExecutor`` (``jobs > 1``) or runs it inline
(``jobs = 1``).  Results are keyed by each run's stable spec hash, so an
optional on-disk :class:`~repro.experiments.results.ResultCache` makes
re-runs free, and aggregation happens in sweep order — the aggregated
output is byte-identical whatever ``jobs`` was.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from repro.core.runner import coverage_gauge, potential_gauge, run_gossip
from repro.errors import ConfigurationError
from repro.experiments.results import (
    ResultCache,
    ShardedRunLog,
    SweepResult,
    aggregate,
    load_streamed,
)
from repro.experiments.specs import (
    RunSpec,
    SweepSpec,
    build_config,
    build_dynamic_graph,
    build_fault,
    build_instance,
    build_timing,
    build_topology,
    run_hash,
)
from repro.registry import ALGORITHM_REGISTRY, load_plugin

__all__ = ["execute_run", "normalize_payload", "run_sweep",
           "stable_topology_note"]


def stable_topology_note(algorithm: str) -> str:
    """The note recorded when a τ = ∞ model rule forces a substitution."""
    return f"tau=inf substituted ({algorithm} needs stable topology)"


#: The note attached when CrowdedBin's τ = ∞ requirement forces a
#: substitution (also surfaced by ``repro-gossip compare``).
CROWDEDBIN_TAU_NOTE = stable_topology_note("crowdedbin")

_NAMED_GAUGES = {
    "coverage": coverage_gauge,
    "potential": potential_gauge,
}


def normalize_payload(payload: dict) -> tuple[dict, list[str]]:
    """Apply model-rule substitutions a spec author may have missed.

    Any algorithm whose registration declares
    ``requires_stable_topology`` (CrowdedBin's τ = ∞ assumption) gets the
    static version of the same shape when a sweep's grid puts it on a
    changing topology, with a note recorded in the run record so
    comparison tables aren't misleading.  Unknown algorithm names pass
    through untouched — :class:`RunSpec` validation rejects them with the
    registered set.
    """
    notes: list[str] = []
    defn = ALGORITHM_REGISTRY.find(payload.get("algorithm"))
    if (
        defn is not None
        and defn.requires_stable_topology
        and payload.get("dynamic", {}).get("kind", "static") != "static"
    ):
        payload = dict(payload)
        payload["dynamic"] = {"kind": "static"}
        notes.append(stable_topology_note(defn.name))
    return payload, notes


def execute_run(payload) -> dict:
    """Run one spec to completion and return its JSON-able record.

    Accepts a :class:`RunSpec` or its payload dict.  This is the function
    worker processes execute; everything it needs is rebuilt locally from
    the spec.  Algorithms whose registration carries a custom ``execute``
    hook (the ε-gossip harness) own their whole run; everything else goes
    through :func:`repro.core.runner.run_gossip`.
    """
    if isinstance(payload, RunSpec):
        payload = payload.to_payload()
    payload, notes = normalize_payload(payload)
    spec = RunSpec.from_payload(payload)
    defn = ALGORITHM_REGISTRY.get(spec.algorithm)
    engine = spec.engine
    gauge_names = tuple(engine.get("gauges", ()))
    for name in gauge_names:
        if name not in _NAMED_GAUGES:
            raise ConfigurationError(
                f"unknown gauge {name!r}; choose from {sorted(_NAMED_GAUGES)}"
            )

    dynamic_graph = build_dynamic_graph(spec.graph, spec.dynamic, spec.seed)
    fault = build_fault(spec.fault, dynamic_graph.n, spec.seed)
    timing = build_timing(spec.timing, dynamic_graph.n, spec.seed)

    if defn.execute is not None:
        if spec.telemetry is not None and spec.telemetry.get("enabled", True):
            raise ConfigurationError(
                f"algorithm {spec.algorithm!r} runs through a custom "
                "experiments-layer executor, which does not support "
                "telemetry; omit the telemetry block"
            )
        if fault is not None:
            raise ConfigurationError(
                f"algorithm {spec.algorithm!r} runs through a custom "
                "experiments-layer executor, which does not support fault "
                "injection; use fault kind 'none'"
            )
        if timing is not None:
            raise ConfigurationError(
                f"algorithm {spec.algorithm!r} runs through a custom "
                "experiments-layer executor, which does not support "
                "asynchronous timing; use timing kind 'synchronous'"
            )
        record = defn.execute(
            spec, dynamic_graph, build_config(spec.algorithm, spec.config)
        )
    else:
        instance = build_instance(spec.instance, dynamic_graph.n, spec.seed)
        gauges = {
            name: _NAMED_GAUGES[name](instance.token_ids)
            for name in gauge_names
        }
        result = run_gossip(
            algorithm=spec.algorithm,
            dynamic_graph=dynamic_graph,
            instance=instance,
            seed=spec.seed,
            max_rounds=spec.max_rounds,
            config=build_config(spec.algorithm, spec.config),
            fault=fault,
            timing=timing,
            gauges=gauges or None,
            gauge_every=engine.get("gauge_every", 64),
            trace_sample_every=engine.get("trace_sample_every", 1024),
            trace_max_records=engine.get("trace_max_records"),
            termination_every=engine.get("termination_every", 1),
            telemetry=spec.telemetry,
        )
        record = {
            "rounds": result.rounds,
            "solved": result.solved,
        }
        if gauge_names:
            record["gauges"] = {
                name: [
                    [round_index, value]
                    for round_index, value in result.trace.gauge_series(name)
                ]
                for name in gauge_names
            }
        record["connections"] = result.trace.total_connections
        record["tokens_moved"] = result.trace.total_tokens_moved
        record["control_bits"] = result.trace.total_control_bits
        record["dropped_connections"] = (
            result.trace.total_dropped_connections
        )
        if result.event_counts is not None:
            # Asynchronous runs: total node activations (the virtual
            # clock's work measure, distinct from rounds).
            record["events"] = int(result.event_counts.sum())
        profile = result.profile
        if profile is not None:
            # Phase profile rides the JSON-able record across the
            # process boundary; SweepResult.phase_totals() merges the
            # per-run dicts in sweep order, so the merged structure is
            # invariant to how run_sweep partitioned work over jobs.
            record["profile"] = profile

    record["notes"] = notes
    return record


def _init_worker_plugins(plugins: tuple) -> None:
    """Process-pool initializer: re-register plugin definitions.

    Worker processes import repro fresh, so out-of-tree registrations
    made in the parent (``--plugin`` files, imported plugin modules) must
    be replayed before any run referencing them is dispatched.
    """
    for plugin in plugins:
        load_plugin(plugin)


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    cache_dir=None,
    progress=None,
    plugins=(),
    stream_to=None,
) -> SweepResult:
    """Run every cell × seed of ``spec`` and aggregate in sweep order.

    ``jobs > 1`` fans cache-missing runs out over a process pool; because
    every run is independently seeded and results are re-ordered by their
    position in the sweep, the aggregated result is identical for any
    ``jobs``.  ``progress`` (optional) is called with one status line per
    completed run.  ``plugins`` (optional) names plugin modules or files
    (see :func:`repro.registry.load_plugin`) loaded both here and in
    every worker process, so a sweep over an out-of-tree algorithm
    parallelizes like any other.

    ``stream_to`` (optional) is a directory: each completed run record is
    appended to JSONL shards there (:class:`ShardedRunLog`) instead of
    accumulating in memory, and aggregation happens from a re-read of the
    sealed stream — the million-node mode.  The returned
    :class:`SweepResult` is byte-identical (``to_json``) to the in-memory
    path's, and the shards survive for later re-aggregation.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    plugins = tuple(plugins)
    for plugin in plugins:
        load_plugin(plugin)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    stream = ShardedRunLog(stream_to) if stream_to is not None else None
    runs = spec.runs()
    hashes = [run_hash(payload) for _, _, _, payload in runs]

    records: dict[int, dict] = {}
    pending: list[int] = []
    done = 0

    def keep(index: int, record: dict) -> None:
        nonlocal done
        done += 1
        if stream is not None:
            stream.append(index, record)
        else:
            records[index] = record

    for index, key in enumerate(hashes):
        cached = cache.get(key) if cache is not None else None
        if cached is not None:
            keep(index, cached)
        else:
            pending.append(index)

    def note_done(index: int, record: dict) -> None:
        if progress is not None:
            _, point, seed, _ = runs[index]
            cell = ", ".join(f"{k}={v}" for k, v in point.items()) or "base"
            progress(
                f"[{done}/{len(runs)}] {cell} seed={seed}: "
                f"{record['rounds']} rounds"
            )

    def consume(fresh) -> None:
        for index, record in zip(pending, fresh):
            keep(index, record)
            if cache is not None:
                cache.put(hashes[index], record)
            note_done(index, record)

    if pending:
        payloads = [runs[index][3] for index in pending]
        if jobs == 1 or len(pending) == 1:
            consume(map(execute_run, payloads))
        else:
            pool = ProcessPoolExecutor(
                max_workers=min(jobs, len(pending)),
                initializer=_init_worker_plugins if plugins else None,
                initargs=(plugins,) if plugins else (),
            )
            try:
                consume(pool.map(execute_run, payloads))
            finally:
                # On a worker error, drop the queued runs instead of
                # silently simulating them to completion first.
                pool.shutdown(cancel_futures=True)

    if stream is not None:
        stream.finalize(spec)
        records = load_streamed(stream_to)
    result = aggregate(spec, records, runs=runs)
    result.jobs = jobs
    if cache is not None:
        result.cache_hits = cache.hits
        result.cache_misses = cache.misses
    return result
