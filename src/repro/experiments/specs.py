"""Declarative experiment specs: what to run, serialized as plain JSON.

A :class:`RunSpec` names one execution completely — algorithm, graph
family, dynamic-graph recipe, instance recipe, seed, round budget, config
overrides — using only JSON-able values, so a run is reproducible from its
spec alone and a spec can cross a process boundary without pickling any
simulator object (workers rebuild graphs and instances locally).

A :class:`SweepSpec` is a named family of runs: a ``base`` run-spec dict,
a ``grid`` of dotted-key parameter axes expanded as a cartesian product,
declarative ``overrides`` for per-cell adjustments (e.g. CrowdedBin's
τ = ∞ requirement), and the seeds averaged per grid point.  Both layers
round-trip through JSON, and :func:`run_hash` / :meth:`SweepSpec.spec_hash`
give stable content hashes used as cache keys.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field

from repro.core.problem import GossipInstance
from repro.errors import ConfigurationError
from repro.graphs.dynamic import DynamicGraph
from repro.graphs.topologies import Topology
from repro.registry import (
    ALGORITHM_REGISTRY,
    DYNAMICS_REGISTRY,
    FAULT_REGISTRY,
    INSTANCE_REGISTRY,
    RegistryNames,
    TIMING_REGISTRY,
    TOPOLOGY_REGISTRY,
)

__all__ = [
    "EXPERIMENT_ALGORITHMS",
    "RunSpec",
    "SweepSpec",
    "build_config",
    "build_dynamic_graph",
    "build_fault",
    "build_instance",
    "build_timing",
    "build_topology",
    "canonical_json",
    "run_hash",
]

#: Algorithms the experiment runner accepts — every registered algorithm,
#: including experiments-layer-only ones (the §7 ε-gossip harness).  A
#: live registry view: plugin registrations appear automatically.
EXPERIMENT_ALGORITHMS = RegistryNames(ALGORITHM_REGISTRY)

_ENGINE_KEYS = frozenset(
    {"trace_sample_every", "trace_max_records", "termination_every",
     "gauge_every", "gauges"}
)

_TELEMETRY_KEYS = frozenset({"enabled", "stream"})


def canonical_json(payload) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def run_hash(payload) -> str:
    """Stable content hash of a run payload (the result-cache key)."""
    digest = hashlib.sha256(canonical_json(payload).encode()).hexdigest()
    return f"run-{digest[:20]}"


def _set_dotted(target: dict, dotted: str, value) -> None:
    """Assign ``value`` at a dotted path, creating nested dicts on the way."""
    keys = dotted.split(".")
    for key in keys[:-1]:
        node = target.setdefault(key, {})
        if not isinstance(node, dict):
            raise ConfigurationError(
                f"cannot descend into {key!r} of {dotted!r}: not a mapping"
            )
        target = node
    target[keys[-1]] = value


def _get_dotted(source: dict, dotted: str, default=None):
    node = source
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return default
        node = node[key]
    return node


def _deep_copy_jsonable(value):
    """Copy a JSON-able structure (dicts/lists/scalars) without pickling."""
    if isinstance(value, dict):
        return {k: _deep_copy_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_deep_copy_jsonable(v) for v in value]
    return value


@dataclass
class RunSpec:
    """One fully-specified execution, built from JSON-able parts only.

    ``graph``    — ``{"family": <TOPOLOGY_FAMILIES key>, "params": {...}}``
    ``dynamic``  — ``{"kind": "static"}``,
                   ``{"kind": "relabeling", "tau": t}``,
                   ``{"kind": "resampled_regular", "tau": t, "degree": d}`` or
                   ``{"kind": "resampled_gnp", "tau": t, "p": p}``
    ``instance`` — ``{"kind": "uniform", "k": k[, "upper_n": N]}``,
                   ``{"kind": "everyone"}``,
                   ``{"kind": "skewed", "k": k, "holders": h}`` or
                   ``{"kind": "token_at", "vertex": v}``
    ``fault``    — ``{"kind": "none"}`` (the clean model, default),
                   ``{"kind": "sleep", "period": p, "duty": d}``,
                   ``{"kind": "churn", "cycle": c, "crash_prob": q, ...}`` or
                   ``{"kind": "lossy", "drop_prob": q}`` — the fault regime
                   degrading the run (sweepable like any dotted key, e.g.
                   ``{"fault.duty": [2, 4, 6]}``)
    ``timing``   — ``{"kind": "synchronous"}`` (the paper's lock-step
                   rounds, default), ``{"kind": "jitter", "jitter": j}``,
                   ``{"kind": "heterogeneous", "rates": [...]}`` or
                   ``{"kind": "bursty", "p_pause": p, ...}`` — the timing
                   regime scheduling per-node cycles (sweepable, e.g.
                   ``{"timing.jitter": [0.0, 0.5, 0.9]}``)
    ``config``   — algorithm-config overrides; an optional ``"preset"`` key
                   selects a classmethod preset (``paper`` / ``practical``)
                   before field overrides apply.  For ``epsilon`` runs the
                   ``"epsilon"`` key holds the coverage fraction.
    ``engine``   — ``trace_sample_every`` / ``trace_max_records`` /
                   ``termination_every`` / ``gauge_every`` / ``gauges``
                   (named gauges, e.g. ``["coverage"]``, serialized into
                   the run result).
    ``telemetry``— ``{"enabled": true[, "stream": path]}`` turns on
                   metrics + phase profiling (:mod:`repro.telemetry`);
                   the run record gains a ``"profile"`` phase table.
                   ``None`` (the default) is the no-op bundle and leaves
                   the run byte-identical — telemetry draws zero
                   randomness, so it never shifts results.
    """

    algorithm: str
    graph: dict
    seed: int
    max_rounds: int
    dynamic: dict = field(default_factory=lambda: {"kind": "static"})
    instance: dict = field(default_factory=lambda: {"kind": "uniform", "k": 1})
    fault: dict = field(default_factory=lambda: {"kind": "none"})
    timing: dict = field(default_factory=lambda: {"kind": "synchronous"})
    config: dict | None = None
    engine: dict = field(default_factory=dict)
    telemetry: dict | None = None

    def __post_init__(self):
        # Eager name resolution: a malformed spec fails here, with the
        # registry enumerating what *is* registered, before any dispatch.
        ALGORITHM_REGISTRY.get(self.algorithm)
        TOPOLOGY_REGISTRY.get(self.graph.get("family"))
        DYNAMICS_REGISTRY.get(self.dynamic.get("kind", "static"))
        INSTANCE_REGISTRY.get(self.instance.get("kind", "uniform"))
        FAULT_REGISTRY.get(self.fault.get("kind", "none"))
        TIMING_REGISTRY.get(self.timing.get("kind", "synchronous"))
        if self.max_rounds < 1:
            raise ConfigurationError(
                f"max_rounds must be >= 1, got {self.max_rounds}"
            )
        unknown = set(self.engine) - _ENGINE_KEYS
        if unknown:
            raise ConfigurationError(
                f"unknown engine keys {sorted(unknown)}; legal keys are "
                f"{sorted(_ENGINE_KEYS)}"
            )
        if self.telemetry is not None:
            if not isinstance(self.telemetry, dict):
                raise ConfigurationError(
                    "telemetry must be a spec dict "
                    f"({{'enabled': ..., 'stream': ...}}); got "
                    f"{type(self.telemetry).__name__}"
                )
            unknown = set(self.telemetry) - _TELEMETRY_KEYS
            if unknown:
                raise ConfigurationError(
                    f"unknown telemetry keys {sorted(unknown)}; legal keys "
                    f"are {sorted(_TELEMETRY_KEYS)}"
                )

    def to_payload(self) -> dict:
        """The JSON-able dict form (what workers and the cache see)."""
        return {
            "algorithm": self.algorithm,
            "graph": _deep_copy_jsonable(self.graph),
            "dynamic": _deep_copy_jsonable(self.dynamic),
            "instance": _deep_copy_jsonable(self.instance),
            "fault": _deep_copy_jsonable(self.fault),
            "timing": _deep_copy_jsonable(self.timing),
            "seed": self.seed,
            "max_rounds": self.max_rounds,
            "config": _deep_copy_jsonable(self.config),
            "engine": _deep_copy_jsonable(self.engine),
            "telemetry": _deep_copy_jsonable(self.telemetry),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RunSpec":
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - fields
        if unknown:
            raise ConfigurationError(f"unknown run-spec keys {sorted(unknown)}")
        return cls(**_deep_copy_jsonable(payload))

    def spec_hash(self) -> str:
        return run_hash(self.to_payload())


def build_topology(graph_spec: dict) -> Topology:
    """Instantiate the named topology family from its params dict."""
    defn = TOPOLOGY_REGISTRY.get(graph_spec.get("family"))
    params = graph_spec.get("params", {})
    try:
        return defn.factory(**params)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad params for topology family {defn.name!r}: {exc}"
        ) from exc


@dataclass(frozen=True)
class _SizeOnlyTopology:
    """Stand-in passed to topology-free dynamics builders.

    Dynamics kinds flagged ``topology_free`` (resampled families,
    geometric mobility) read nothing but ``topology.n`` — they generate
    their own graphs.  At n = 10^6 materializing the nx topology they
    would ignore costs minutes and gigabytes, so the builder gets this
    shim instead whenever the graph params carry an explicit size.
    """

    n: int


def build_dynamic_graph(
    graph_spec: dict, dynamic_spec: dict, seed: int
) -> DynamicGraph:
    """Build the dynamic graph a run spec describes.

    Two scale bypasses sit in front of the general
    ``build_topology`` → ``defn.build`` path, both behavior-preserving:

    - a family with a ``build_dynamic`` hook (``ring_expander``) builds
      its :class:`DynamicGraph` directly for static runs — no nx graph,
      no redundant connectivity check;
    - a ``topology_free`` dynamics kind gets a size-only shim when the
      graph params name ``n``, skipping the nx topology it would ignore.
    """
    defn = DYNAMICS_REGISTRY.get(dynamic_spec.get("kind", "static"))
    family = TOPOLOGY_REGISTRY.get(graph_spec.get("family"))
    params = {key: value for key, value in dynamic_spec.items()
              if key != "kind"}
    if family.build_dynamic is not None and defn.name == "static":
        graph_params = graph_spec.get("params", {})
        try:
            return family.build_dynamic(**graph_params)
        except TypeError as exc:
            raise ConfigurationError(
                f"bad params for topology family {family.name!r}: {exc}"
            ) from exc
    if defn.topology_free and isinstance(
        graph_spec.get("params", {}).get("n"), int
    ):
        topo = _SizeOnlyTopology(n=graph_spec["params"]["n"])
    else:
        topo = build_topology(graph_spec)
    try:
        return defn.build(topo, seed, **params)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad params for dynamics kind {defn.name!r}: {exc}"
        ) from exc


def build_instance(instance_spec: dict, n: int, seed: int) -> GossipInstance:
    """Build the gossip instance a run spec describes (n from the graph)."""
    defn = INSTANCE_REGISTRY.get(instance_spec.get("kind", "uniform"))
    params = {key: value for key, value in instance_spec.items()
              if key != "kind"}
    try:
        return defn.build(n, seed, **params)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad params for instance kind {defn.name!r}: {exc}"
        ) from exc


def build_fault(fault_spec: dict | None, n: int, seed: int):
    """Build the fault model a run spec describes (``n`` from the graph).

    Returns ``None`` for the clean model (kind ``"none"``).  Delegates to
    the one shared constructor in :mod:`repro.sim.faults`.
    """
    from repro.sim.faults import build_fault as build_fault_model

    return build_fault_model(fault_spec, n, seed)


def build_timing(timing_spec: dict | None, n: int, seed: int):
    """Build the timing model a run spec describes (``n`` from the graph).

    Returns ``None`` for the synchronous null model (the run stays on the
    round engine).  Delegates to the one shared constructor in
    :mod:`repro.asynchrony.timing`.
    """
    from repro.asynchrony.timing import build_timing as build_timing_model

    return build_timing_model(timing_spec, n, seed)


def build_config(algorithm: str, config_spec: dict | None):
    """Materialize an algorithm config from preset name + field overrides."""
    defn = ALGORITHM_REGISTRY.get(algorithm)
    if config_spec is None:
        return None
    spec = dict(config_spec)
    for key in defn.config_extra_keys:  # run parameters, not config fields
        spec.pop(key, None)
    cls = defn.config_class
    if cls is None:
        if spec:
            raise ConfigurationError(
                f"algorithm {algorithm!r} takes no config; got keys "
                f"{sorted(spec)}"
            )
        return None
    preset = spec.pop("preset", None)
    if preset is not None:
        factory = getattr(cls, preset, None)
        if factory is None:
            raise ConfigurationError(
                f"config class {cls.__name__} has no preset {preset!r}"
            )
        base = factory()
    else:
        base = cls()
    if not spec:
        return base
    try:
        return dataclasses.replace(base, **spec)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad config overrides for {cls.__name__}: {exc}"
        ) from exc


@dataclass
class SweepSpec:
    """A named, serializable family of runs.

    ``base``      — a :class:`RunSpec`-shaped dict without ``seed``;
    ``grid``      — dotted-key axes (``{"instance.k": [1, 2, 4]}``) expanded
                    as a cartesian product in declaration order;
    ``seeds``     — seeds run (and aggregated over) per grid point;
    ``overrides`` — declarative per-cell patches: each entry's ``when``
                    dotted-key conditions are matched against the expanded
                    run, and on a match its ``set`` patches apply.  This is
                    how a sweep over algorithms states "CrowdedBin rows run
                    static with the practical preset" inside the spec.
    """

    name: str
    base: dict
    grid: dict = field(default_factory=dict)
    seeds: tuple = (11, 23, 37)
    overrides: list = field(default_factory=list)

    def __post_init__(self):
        if not self.name:
            raise ConfigurationError("a sweep needs a name")
        self.seeds = tuple(self.seeds)
        if not self.seeds:
            raise ConfigurationError("a sweep needs at least one seed")
        if "seed" in self.base or "seed" in self.grid:
            raise ConfigurationError(
                "seeds belong in SweepSpec.seeds, not base/grid"
            )
        for axis, values in self.grid.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ConfigurationError(
                    f"grid axis {axis!r} must be a non-empty list"
                )
        for entry in self.overrides:
            if not isinstance(entry, dict) or "set" not in entry:
                raise ConfigurationError(
                    "each override must be a dict with a 'set' mapping "
                    "(and an optional 'when' mapping)"
                )
            # Overrides apply after the per-seed assignment; letting one
            # assign "seed" would silently collapse every seed of a cell
            # onto the same run.
            if any(
                dotted == "seed" or dotted.startswith("seed.")
                for dotted in entry["set"]
            ):
                raise ConfigurationError(
                    "overrides must not set 'seed'; seeds belong in "
                    "SweepSpec.seeds"
                )

    @property
    def axes(self) -> tuple:
        return tuple(self.grid)

    def points(self) -> list[dict]:
        """Grid cells in deterministic (declaration) order."""
        if not self.grid:
            return [{}]
        axes = list(self.grid)
        return [
            dict(zip(axes, combo))
            for combo in itertools.product(*(self.grid[a] for a in axes))
        ]

    def run_payload(self, point: dict, seed: int) -> dict:
        """The fully-merged run payload for one grid cell and seed."""
        payload = _deep_copy_jsonable(self.base)
        for dotted, value in point.items():
            _set_dotted(payload, dotted, _deep_copy_jsonable(value))
        payload["seed"] = seed
        for entry in self.overrides:
            when = entry.get("when", {})
            if all(
                _get_dotted(payload, dotted) == expected
                for dotted, expected in when.items()
            ):
                for dotted, value in entry["set"].items():
                    _set_dotted(payload, dotted, _deep_copy_jsonable(value))
        # Validate eagerly so malformed cells fail before dispatch.
        RunSpec.from_payload(payload)
        return payload

    def runs(self) -> list[tuple[int, dict, int, dict]]:
        """All (point_index, point, seed, run_payload) in sweep order."""
        out = []
        for index, point in enumerate(self.points()):
            for seed in self.seeds:
                out.append((index, point, seed, self.run_payload(point, seed)))
        return out

    def to_payload(self) -> dict:
        return {
            "name": self.name,
            "base": _deep_copy_jsonable(self.base),
            "grid": _deep_copy_jsonable(self.grid),
            "seeds": list(self.seeds),
            "overrides": _deep_copy_jsonable(self.overrides),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_payload(), indent=indent)

    @classmethod
    def from_payload(cls, payload: dict) -> "SweepSpec":
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - fields
        if unknown:
            raise ConfigurationError(
                f"unknown sweep-spec keys {sorted(unknown)}"
            )
        return cls(**_deep_copy_jsonable(payload))

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_payload(json.loads(text))

    def spec_hash(self) -> str:
        """Content hash of the whole sweep (reports embed it)."""
        digest = hashlib.sha256(
            canonical_json(self.to_payload()).encode()
        ).hexdigest()
        return f"sweep-{digest[:20]}"
