"""Network topologies, dynamic graphs, and graph metrics.

The mobile telephone model runs on a *dynamic graph*: a sequence
``G_1, G_2, ...`` of connected graphs over a fixed vertex set, constrained
by a stability factor τ (at least τ rounds between changes; τ = ∞ means the
graph never changes).  This subpackage provides:

* :mod:`repro.graphs.topologies` — named static graph families used
  throughout the paper's analysis (stars, the Ω(Δ²) double-star, paths,
  expanders, ...), each annotated with known structural facts;
* :mod:`repro.graphs.metrics` — vertex expansion α, boundary ∂S, maximum
  degree Δ, diameter D (exact for small graphs, witness-based estimates for
  larger ones);
* :mod:`repro.graphs.dynamic` — dynamic-graph adversaries respecting τ,
  including full per-round re-sampling (τ = 1) and a geometric mobility
  workload.
"""

from repro.graphs.topologies import (
    Topology,
    star,
    double_star,
    path,
    cycle,
    complete,
    hypercube,
    random_regular,
    erdos_renyi,
    grid,
    barbell,
    lollipop,
    binary_tree,
    expander,
    TOPOLOGY_FAMILIES,
)
from repro.graphs.metrics import (
    boundary,
    expansion_of_set,
    vertex_expansion_exact,
    vertex_expansion_estimate,
    max_degree,
    diameter,
    ExpansionEstimate,
)
from repro.graphs.dynamic import (
    TAU_INFINITY,
    DynamicGraph,
    StaticDynamicGraph,
    PeriodicRewireGraph,
    RelabelingAdversary,
    GeometricMobilityGraph,
    dynamic_max_degree,
    dynamic_expansion_estimate,
)

__all__ = [
    "Topology",
    "star",
    "double_star",
    "path",
    "cycle",
    "complete",
    "hypercube",
    "random_regular",
    "erdos_renyi",
    "grid",
    "barbell",
    "lollipop",
    "binary_tree",
    "expander",
    "TOPOLOGY_FAMILIES",
    "boundary",
    "expansion_of_set",
    "vertex_expansion_exact",
    "vertex_expansion_estimate",
    "max_degree",
    "diameter",
    "ExpansionEstimate",
    "TAU_INFINITY",
    "DynamicGraph",
    "StaticDynamicGraph",
    "PeriodicRewireGraph",
    "RelabelingAdversary",
    "GeometricMobilityGraph",
    "dynamic_max_degree",
    "dynamic_expansion_estimate",
]
