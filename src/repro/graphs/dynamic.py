"""Dynamic graphs with a stability factor τ.

The model (§2 of the paper): the topology in round ``r`` is a connected
graph ``G_r`` over the fixed vertex set; the sequence ``G_1, G_2, ...`` is
*fixed at the beginning of the execution* (an oblivious adversary) and at
least τ rounds must pass between changes.  ``τ = 1`` allows arbitrary
change every round; ``τ = ∞`` (``TAU_INFINITY``) means the graph never
changes.

Implementations here derive each epoch's graph deterministically from a
seed, so the dynamic graph is a pure function of (seed, round) — i.e. fixed
in advance — while only O(1) graphs are kept in memory at a time.

:class:`RelabelingAdversary` deserves a note: it permutes the vertex labels
of a fixed *shape* each epoch.  Because relabeling preserves α, Δ and D,
this adversary gives experiments a fully-dynamic (τ = 1) graph whose
structural parameters are still known exactly — which is what the paper's
bounds are stated in terms of.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod

import networkx as nx
import numpy as np

from repro.errors import ConfigurationError, TopologyError
from repro.graphs.metrics import vertex_expansion_estimate, max_degree
from repro.graphs.spatial import PointIndex, disk_edges, nearest_pair
from repro.graphs.topologies import Topology
from repro.registry import register_dynamics
from repro.rng import SeedTree

__all__ = [
    "TAU_INFINITY",
    "DynamicGraph",
    "StaticDynamicGraph",
    "CSRStaticGraph",
    "PeriodicRewireGraph",
    "RelabelingAdversary",
    "GeometricMobilityGraph",
    "ring_expander_graph",
    "dynamic_max_degree",
    "dynamic_expansion_estimate",
]

#: Stability factor meaning "the graph never changes".
TAU_INFINITY = math.inf


def _check_round(round_index: int) -> None:
    if round_index < 1:
        raise ConfigurationError(f"rounds are 1-indexed, got {round_index}")


def _check_graph(
    graph: nx.Graph, n: int, context: str, require_connected: bool = True
) -> nx.Graph:
    """Validate an epoch graph.  Connectivity is *policy*, not an
    invariant: the paper's clean model requires every ``G_r`` connected
    (the default), but fault-era workloads may deliberately run on a
    fragmented topology (e.g. an unbridged mobility mesh), where only the
    vertex-set check applies."""
    if graph.number_of_nodes() != n or sorted(graph.nodes) != list(range(n)):
        raise TopologyError(f"{context}: graph must use vertices 0..{n - 1}")
    if require_connected and not nx.is_connected(graph):
        raise TopologyError(f"{context}: graph must be connected")
    return graph


class DynamicGraph(ABC):
    """A τ-stable sequence of connected graphs over vertices ``0..n-1``."""

    def __init__(self, n: int, tau):
        if n < 2:
            raise ConfigurationError(f"need n >= 2, got n={n}")
        if tau != TAU_INFINITY and (not isinstance(tau, int) or tau < 1):
            raise ConfigurationError(
                f"tau must be a positive integer or TAU_INFINITY, got {tau!r}"
            )
        self.n = n
        self.tau = tau
        #: Forced CSR index dtype for every snapshot this graph produces
        #: (``None`` = the narrowest dtype that fits, see
        #: :func:`repro.sim.adjacency.index_dtype_for`).  The int32/int64
        #: differential gate sets this to pin byte-identity.
        self.csr_dtype = None
        # Per-epoch CSR snapshot cache, keyed on the graph object identity
        # (graph_at returns the same object for every round of an epoch).
        self._csr_cache_key = None
        self._csr_cache = None

    def epoch_of(self, round_index: int) -> int:
        """The index of the stability window containing ``round_index``."""
        _check_round(round_index)
        if self.tau == TAU_INFINITY:
            return 0
        return (round_index - 1) // self.tau

    def graph_at(self, round_index: int) -> nx.Graph:
        """The (connected) topology for round ``round_index`` (1-indexed)."""
        _check_round(round_index)
        return self._graph_for_epoch(self.epoch_of(round_index))

    def csr_at(self, round_index: int):
        """The round's topology as a :class:`~repro.sim.adjacency.CSRAdjacency`.

        The hook the engine's array fast path calls instead of
        :meth:`graph_at`.  This default converts the epoch's ``nx.Graph``
        once and caches the snapshot for the rest of the epoch; dynamics
        that can produce arrays without materializing a graph object
        override it (:class:`RelabelingAdversary` permutes the base
        shape's CSR directly).  Overrides must keep every row's neighbors
        in ascending vertex order — the object engine's neighbor order —
        or fast-path traces diverge from the reference.
        """
        graph = self.graph_at(round_index)
        if self._csr_cache_key is not graph:
            from repro.sim.adjacency import CSRAdjacency

            self._csr_cache = CSRAdjacency.from_graph(
                graph, dtype=self.csr_dtype
            )
            self._csr_cache_key = graph
        return self._csr_cache

    @abstractmethod
    def _graph_for_epoch(self, epoch: int) -> nx.Graph:
        """Return the graph for a stability window (deterministic in epoch)."""

    def __repr__(self) -> str:
        tau = "inf" if self.tau == TAU_INFINITY else self.tau
        return f"{type(self).__name__}(n={self.n}, tau={tau})"


class StaticDynamicGraph(DynamicGraph):
    """τ = ∞: the same topology in every round.

    Always connected — :class:`~repro.graphs.topologies.Topology` itself
    enforces connectivity, so there is no fragmented-static variant; the
    fault-era fragmentation knobs live on the dynamics that build raw
    graphs (``PeriodicRewireGraph(require_connected=False)``,
    ``GeometricMobilityGraph(bridge=False)``).
    """

    def __init__(self, topology: Topology):
        super().__init__(n=topology.n, tau=TAU_INFINITY)
        self.topology = topology
        self._graph = _check_graph(topology.graph, topology.n, topology.name)

    def _graph_for_epoch(self, epoch: int) -> nx.Graph:
        return self._graph


class CSRStaticGraph(DynamicGraph):
    """τ = ∞ over a CSR snapshot — no ``nx.Graph``, no O(n) node dicts.

    The million-node static workhorse: families that can certify
    connectivity *by construction* (``ring_expander`` — a union of
    Hamiltonian cycles) build their edge arrays directly and skip both
    the ``nx`` materialization and the O(n + m) connectivity check that
    :class:`~repro.graphs.topologies.Topology` performs.  The array
    engine only ever calls :meth:`csr_at`, so the graph object is built
    lazily and only if an object-path or analysis consumer asks for it
    (fine at test sizes, deliberately unbounded at scale — the object
    path refuses large n anyway, see
    :class:`~repro.errors.MemoryBudgetError`).
    """

    def __init__(self, csr, name: str = "csr"):
        super().__init__(n=csr.n, tau=TAU_INFINITY)
        self.name = name
        self._csr = csr
        self._graph: nx.Graph | None = None

    def csr_at(self, round_index: int):
        _check_round(round_index)
        if self.csr_dtype is not None and (
            self._csr.indptr.dtype != self.csr_dtype
        ):
            from repro.sim.adjacency import CSRAdjacency

            self._csr = CSRAdjacency(
                n=self._csr.n,
                indptr=self._csr.indptr.astype(self.csr_dtype),
                indices=self._csr.indices.astype(self.csr_dtype),
            )
        return self._csr

    def _graph_for_epoch(self, epoch: int) -> nx.Graph:
        if self._graph is None:
            g = nx.Graph()
            g.add_nodes_from(range(self.n))
            csr = self._csr
            sources = csr.edge_sources()
            upper = csr.indices > sources
            g.add_edges_from(
                zip(sources[upper].tolist(), csr.indices[upper].tolist())
            )
            self._graph = g
        return self._graph


class _EpochCache:
    """Keep the two most recent epochs (engine access is sequential)."""

    def __init__(self):
        self._entries: dict[int, nx.Graph] = {}

    def get(self, epoch: int, build) -> nx.Graph:
        if epoch not in self._entries:
            if len(self._entries) >= 2:
                oldest = min(self._entries)
                del self._entries[oldest]
            self._entries[epoch] = build(epoch)
        return self._entries[epoch]


class PeriodicRewireGraph(DynamicGraph):
    """Re-sample a fresh graph from a family every τ rounds.

    ``factory(epoch, rng)`` must return a connected graph on ``0..n-1``;
    it is called with a per-epoch ``random.Random`` derived from ``seed``,
    so the whole sequence is reproducible and, importantly, *re-derivable*:
    old epochs can be regenerated exactly (used by tests to verify that the
    sequence is fixed in advance).
    """

    def __init__(self, n: int, tau, seed: int, factory,
                 require_connected: bool = True):
        super().__init__(n=n, tau=tau)
        self.seed = seed
        self.require_connected = require_connected
        self._factory = factory
        self._tree = SeedTree(seed).child("periodic-rewire")
        self._cache = _EpochCache()

    def _graph_for_epoch(self, epoch: int) -> nx.Graph:
        return self._cache.get(epoch, self._build)

    def _build(self, epoch: int) -> nx.Graph:
        rng = self._tree.stream("epoch", epoch)
        graph = self._factory(epoch, rng)
        return _check_graph(graph, self.n, f"epoch {epoch}",
                            require_connected=self.require_connected)

    @classmethod
    def resampled_regular(cls, n: int, degree: int, tau, seed: int):
        """Fresh random ``degree``-regular graph each epoch."""

        def factory(epoch: int, rng: random.Random) -> nx.Graph:
            for attempt in range(64):
                g = nx.random_regular_graph(degree, n, seed=rng.randrange(2**31))
                if nx.is_connected(g):
                    return g
            raise TopologyError(
                f"failed to sample connected {degree}-regular graph (epoch {epoch})"
            )

        return cls(n=n, tau=tau, seed=seed, factory=factory)

    @classmethod
    def resampled_gnp(cls, n: int, p: float, tau, seed: int,
                      require_connected: bool = True):
        """Fresh G(n, p) sample each epoch.

        With ``require_connected=False`` the first sample is taken as-is
        — possibly fragmented, the fault-era regime where raw proximity
        is all there is (clean-model runs keep the default: resample
        until connected).
        """

        def factory(epoch: int, rng: random.Random) -> nx.Graph:
            for attempt in range(256 if require_connected else 1):
                g = nx.gnp_random_graph(n, p, seed=rng.randrange(2**31))
                if not require_connected or nx.is_connected(g):
                    return g
            raise TopologyError(
                f"failed to sample connected G({n},{p}) (epoch {epoch})"
            )

        return cls(n=n, tau=tau, seed=seed, factory=factory,
                   require_connected=require_connected)


class RelabelingAdversary(DynamicGraph):
    """Permute the labels of a fixed shape every τ rounds.

    The graph "changes completely" from the nodes' point of view (their
    neighborhoods are rewired arbitrarily) while α, Δ and D stay exactly
    those of the base topology — the natural adversary for the paper's
    τ = 1 results, where bounds are stated in terms of those parameters.
    """

    def __init__(self, topology: Topology, tau, seed: int):
        super().__init__(n=topology.n, tau=tau)
        self.topology = topology
        self.seed = seed
        _check_graph(topology.graph, topology.n, topology.name)
        self._tree = SeedTree(seed).child("relabeling")
        self._cache = _EpochCache()
        self._base_csr = None
        self._csr_epoch: int | None = None

    def _graph_for_epoch(self, epoch: int) -> nx.Graph:
        return self._cache.get(epoch, self._build)

    def _epoch_permutation(self, epoch: int) -> list[int]:
        # One shared derivation for both representations: graph_at and
        # csr_at draw the same labels from the same per-epoch stream, so
        # mixing the two paths (or running them side by side, as the
        # differential tests do) always sees the same topology.
        rng = self._tree.stream("epoch", epoch)
        labels = list(range(self.n))
        rng.shuffle(labels)
        return labels

    def _build(self, epoch: int) -> nx.Graph:
        mapping = dict(enumerate(self._epoch_permutation(epoch)))
        return nx.relabel_nodes(self.topology.graph, mapping)

    def csr_at(self, round_index: int):
        """Permute the base shape's CSR arrays — no ``nx.Graph`` built.

        The fast path's epoch turnover is a numpy permutation + lexsort
        instead of ``nx.relabel_nodes`` allocating a fresh graph object
        every τ rounds.
        """
        epoch = self.epoch_of(round_index)
        if self._csr_epoch != epoch:
            from repro.sim.adjacency import CSRAdjacency

            if self._base_csr is None:
                self._base_csr = CSRAdjacency.from_graph(
                    self.topology.graph, dtype=self.csr_dtype
                )
            base = self._base_csr
            perm = np.asarray(self._epoch_permutation(epoch), dtype=np.int64)
            self._csr_cache = CSRAdjacency.from_edge_lists(
                perm[base.edge_sources()], perm[base.indices], self.n,
                dtype=self.csr_dtype,
            )
            self._csr_epoch = epoch
        return self._csr_cache


class GeometricMobilityGraph(DynamicGraph):
    """A unit-square random-waypoint mobility mesh (smartphone crowd).

    Nodes live on the unit square; each epoch every node drifts toward a
    waypoint by ``step`` and the topology is the unit-disk graph of radius
    ``radius``.  Because the clean model requires connectivity,
    disconnected components are bridged by adding an edge between the
    closest pair of nodes across components (recorded in
    ``bridges_added``); this keeps the workload honest about when raw
    proximity alone fails.  ``bridge=False`` disables that repair —
    connectivity as *policy* — for fault-era workloads that want the raw
    fragmented proximity mesh (the engine tolerates isolated vertices on
    both paths).

    Epochs are **re-derivable**: positions are a pure function of (seed,
    epoch), so any past epoch can be replayed from scratch — sequential
    engine access walks forward incrementally, while post-run consumers
    (``dynamic_max_degree``, ``dynamic_expansion_estimate``) revisit old
    epochs and get the exact graphs the run saw.

    This is the substitute for real smartphone mobility traces (DESIGN.md
    §4): it exercises exactly the same code paths — a τ-stable dynamic
    graph with evolving neighborhoods.
    """

    def __init__(self, n: int, radius: float, step: float, tau, seed: int,
                 bridge: bool = True):
        super().__init__(n=n, tau=tau)
        if not 0 < radius <= 1.5:
            raise ConfigurationError(f"need 0 < radius <= 1.5, got {radius}")
        if not 0 <= step <= 1:
            raise ConfigurationError(f"need 0 <= step <= 1, got {step}")
        self.radius = radius
        self.step = step
        self.seed = seed
        self.bridge = bridge
        self.bridges_added = 0
        self._tree = SeedTree(seed).child("mobility")
        self._cache = _EpochCache()
        self._positions, self._waypoints = self._initial_state()
        self._built_through = -1
        self._geo_csr_epoch: int | None = None
        self._geo_csr_cache = None

    def _initial_state(self) -> tuple[list, list]:
        """Epoch-0 positions and waypoints, re-derivable from the seed."""
        rng = self._tree.stream("init")
        positions = [(rng.random(), rng.random()) for _ in range(self.n)]
        waypoints = [(rng.random(), rng.random()) for _ in range(self.n)]
        return positions, waypoints

    def _graph_for_epoch(self, epoch: int) -> nx.Graph:
        # Sequential access (the engine's pattern) advances the live
        # position state; revisiting an older epoch replays it from the
        # seed instead — same graphs, no mutation of the live state.
        if epoch <= self._built_through:
            return self._cache.get(epoch, self._replay)
        return self._cache.get(epoch, self._advance_to)

    def _advance_to(self, epoch: int) -> nx.Graph:
        while self._built_through < epoch:
            self._built_through += 1
            if self._built_through > 0:
                self._move(self._positions, self._waypoints,
                           self._built_through)
        return self._disk_graph(self._positions, record_bridges=True)

    def positions_at(self, epoch: int) -> list:
        """The node positions of ``epoch``, replayed from the seed.

        A pure function — it never touches the live forward state, so
        analysis code can sample any epoch's geometry at any time.
        """
        if epoch < 0:
            raise ConfigurationError(f"epochs are 0-indexed, got {epoch}")
        positions, waypoints = self._initial_state()
        for past in range(1, epoch + 1):
            self._move(positions, waypoints, past)
        return positions

    def _replay(self, epoch: int) -> nx.Graph:
        """Rebuild a past epoch's graph from scratch (pure in the seed).

        Bridges added during replay are *not* re-counted in
        ``bridges_added`` — the counter records what the forward pass
        built, and a replayed epoch's bridges were already counted when
        the run first reached it."""
        return self._disk_graph(self.positions_at(epoch),
                                record_bridges=False)

    def csr_at(self, round_index: int):
        """Unbridged meshes never materialize an ``nx.Graph`` on the
        array path: the grid's edge list goes straight into a CSR
        snapshot (structurally identical to converting the graph —
        both sort rows by neighbor vertex).  Bridged meshes fall back
        to the default graph-conversion hook because bridging needs the
        component iteration, which lives on the graph object.
        """
        if self.bridge:
            return super().csr_at(round_index)
        _check_round(round_index)
        epoch = self.epoch_of(round_index)
        if self._geo_csr_epoch != epoch:
            from repro.sim.adjacency import CSRAdjacency

            if epoch <= self._built_through:
                positions = self.positions_at(epoch)
            else:
                while self._built_through < epoch:
                    self._built_through += 1
                    if self._built_through > 0:
                        self._move(self._positions, self._waypoints,
                                   self._built_through)
                positions = self._positions
            pos = np.asarray(positions)
            rows, cols = disk_edges(pos[:, 0], pos[:, 1], self.radius)
            self._geo_csr_cache = CSRAdjacency.from_edge_lists(
                np.concatenate([rows, cols]),
                np.concatenate([cols, rows]),
                self.n,
                dtype=self.csr_dtype,
            )
            self._geo_csr_epoch = epoch
        return self._geo_csr_cache

    def _move(self, positions: list, waypoints: list, epoch: int) -> None:
        rng = self._tree.stream("epoch", epoch)
        for i in range(self.n):
            x, y = positions[i]
            wx, wy = waypoints[i]
            dx, dy = wx - x, wy - y
            dist = math.hypot(dx, dy)
            if dist <= self.step:
                positions[i] = (wx, wy)
                waypoints[i] = (rng.random(), rng.random())
            else:
                scale = self.step / dist
                positions[i] = (x + dx * scale, y + dy * scale)

    def _disk_graph(self, positions: list,
                    record_bridges: bool) -> nx.Graph:
        # Edges come from the cell-binning grid (repro.graphs.spatial):
        # O(n) at constant density where the former blocked pairwise
        # sweep was O(n^2).  The grid emits edges in (i, j) lexicographic
        # order with i < j — exactly the sweep's order, pinned identical
        # by a differential gate — so the graph, and the component
        # iteration the bridging step depends on, is unchanged.
        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        pos = np.asarray(positions)
        rows, cols = disk_edges(pos[:, 0], pos[:, 1], self.radius)
        g.add_edges_from(zip(rows.tolist(), cols.tolist()))
        if self.bridge:
            self._bridge_components(g, positions, record_bridges)
        return g

    # Above this many base*other distance evaluations per bridging
    # iteration, the dense nearest-pair reduction gives way to a
    # PointIndex over the base component (identical results — the grid
    # replicates the dense tie-break exactly).
    _BRIDGE_DENSE_MAX = 1 << 22

    def _bridge_components(self, g: nx.Graph, positions: list,
                           record_bridges: bool) -> None:
        # Nearest-pair search per component pair: dense pairwise
        # reduction for small products, a cell grid over the (large)
        # base component otherwise — both produce np.argmin's
        # first-minimum, row-major tie-break (u outer, v inner, strict-<
        # update), so the chosen bridge edges are identical either way,
        # pinned by tests/test_dynamic.py against a reference loop.
        components = [list(c) for c in nx.connected_components(g)]
        if len(components) <= 1:
            return
        pos = np.asarray(positions)
        xs, ys = pos[:, 0], pos[:, 1]
        while len(components) > 1:
            base = components[0]
            bx = xs[base]
            by = ys[base]
            rest = sum(len(other) for other in components[1:])
            index = None
            if len(base) * rest > self._BRIDGE_DENSE_MAX:
                index = PointIndex(bx, by)
            best = None
            for other_idx, other in enumerate(components[1:], start=1):
                if index is None:
                    d, u_index, v_index = nearest_pair(
                        bx, by, xs[other], ys[other]
                    )
                else:
                    d, u_index, v_index = index.nearest(xs[other], ys[other])
                if best is None or d < best[0]:
                    best = (d, base[u_index], other[v_index], other_idx)
            _, u, v, other_idx = best
            g.add_edge(u, v)
            if record_bridges:
                self.bridges_added += 1
            base.extend(components.pop(other_idx))


def ring_expander_graph(n: int, degree: int = 6, seed: int = 0,
                        csr_dtype=None) -> CSRStaticGraph:
    """A union of ``degree/2`` random Hamiltonian cycles, CSR-direct.

    The million-node static expander: each cycle alone is connected, so
    the union is connected **by construction** — no O(n + m) check, no
    ``nx`` materialization, just numpy permutations into a
    :class:`CSRStaticGraph`.  Unions of independent Hamiltonian cycles
    are expanders w.h.p. (constant α for degree ≥ 4), which is the
    regime the paper's bounds, and the scale benchmarks, care about.
    Duplicate edges across cycles (rare at large n) are deduplicated so
    the graph is simple, matching every other family's contract.
    """
    if n < 3:
        raise ConfigurationError(f"need n >= 3, got n={n}")
    if degree < 2 or degree % 2 or degree >= n:
        raise ConfigurationError(
            f"need an even 2 <= degree < n, got degree={degree}"
        )
    from repro.sim.adjacency import CSRAdjacency

    rng = np.random.default_rng(np.random.SeedSequence([seed, n, degree]))
    cycle_us, cycle_vs = [], []
    for _ in range(degree // 2):
        perm = rng.permutation(n)
        cycle_us.append(perm)
        cycle_vs.append(np.roll(perm, -1))
    a = np.concatenate(cycle_us)
    b = np.concatenate(cycle_vs)
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    # n^2 fits int64 up to n ~ 3e9, far past the int32 vertex ceiling.
    unique = np.unique(lo * np.int64(n) + hi)
    lo, hi = np.divmod(unique, np.int64(n))
    csr = CSRAdjacency.from_edge_lists(
        np.concatenate([lo, hi]), np.concatenate([hi, lo]), n,
        dtype=csr_dtype,
    )
    return CSRStaticGraph(csr, name="ring_expander")


def dynamic_max_degree(dynamic_graph: DynamicGraph, horizon: int) -> int:
    """Δ of the dynamic graph over rounds ``1..horizon`` (max over epochs)."""
    _check_round(horizon)
    best = 0
    round_index = 1
    while round_index <= horizon:
        best = max(best, max_degree(dynamic_graph.graph_at(round_index)))
        if dynamic_graph.tau == TAU_INFINITY:
            break
        round_index += dynamic_graph.tau
    return best


def dynamic_expansion_estimate(
    dynamic_graph: DynamicGraph, horizon: int, samples: int = 32, seed: int = 0
) -> float:
    """Upper-bound estimate of the dynamic graph's α over ``1..horizon``.

    α of a dynamic graph is the minimum over its constituent graphs (§2);
    we estimate each epoch's α and take the minimum.
    """
    _check_round(horizon)
    best = float("inf")
    round_index = 1
    while round_index <= horizon:
        graph = dynamic_graph.graph_at(round_index)
        best = min(
            best,
            vertex_expansion_estimate(graph, samples=samples, seed=seed).alpha,
        )
        if dynamic_graph.tau == TAU_INFINITY:
            break
        round_index += dynamic_graph.tau
    return best


@register_dynamics(
    name="static",
    description="one fixed topology for the whole execution (tau = infinity)",
)
def _build_static_dynamics(topology, seed):
    return StaticDynamicGraph(topology)


@register_dynamics(
    name="relabeling",
    description="same shape, vertex labels permuted every tau rounds "
                "(alpha, Delta, D preserved)",
)
def _build_relabeling_dynamics(topology, seed, *, tau=1):
    return RelabelingAdversary(topology, tau=tau, seed=seed)


@register_dynamics(
    name="resampled_regular",
    description="a fresh random degree-regular graph every tau rounds",
    topology_free=True,
)
def _build_resampled_regular_dynamics(topology, seed, *, degree, tau=1):
    return PeriodicRewireGraph.resampled_regular(
        n=topology.n, degree=degree, tau=tau, seed=seed
    )


@register_dynamics(
    name="resampled_gnp",
    description="a fresh G(n, p) sample every tau rounds (connected by "
                "default; require_connected=False allows fragments)",
    topology_free=True,
)
def _build_resampled_gnp_dynamics(topology, seed, *, p, tau=1,
                                  require_connected=True):
    return PeriodicRewireGraph.resampled_gnp(
        n=topology.n, p=p, tau=tau, seed=seed,
        require_connected=require_connected,
    )


@register_dynamics(
    name="geometric",
    description="random-waypoint mobility on the unit square (tau-stable "
                "unit-disk graph; bridge=False allows fragmentation)",
    topology_free=True,
)
def _build_geometric_dynamics(topology, seed, *, radius=0.35, step=0.05,
                              tau=1, bridge=True):
    return GeometricMobilityGraph(
        n=topology.n, radius=radius, step=step, tau=tau, seed=seed,
        bridge=bridge,
    )
