"""Graph metrics: vertex expansion, boundary, degree, diameter.

The paper (§2) defines, for a connected graph ``G = (V, E)`` and
``S ⊆ V``::

    ∂S   = { v ∈ V \\ S : N(v) ∩ S ≠ ∅ }      (the outer boundary)
    α(S) = |∂S| / |S|
    α(G) = min over S ⊂ V, 0 < |S| ≤ n/2 of α(S)

and for a dynamic graph, α is the minimum over all constituent graphs and
Δ the maximum over them.

Exact α is NP-hard in general, so this module offers two entry points:

* :func:`vertex_expansion_exact` — exhaustive over all subsets; only for
  small n (default guard: n ≤ 18);
* :func:`vertex_expansion_estimate` — an *upper bound with witness*, taking
  the best cut found among: Fiedler-vector sweep cuts, BFS balls around
  every vertex, degree-ordered prefixes, and randomized local search.  For
  the structured families in :mod:`repro.graphs.topologies` the estimate is
  exact in practice (tests cross-check it against closed forms and the
  exhaustive computation).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

import networkx as nx

from repro.errors import ConfigurationError

__all__ = [
    "boundary",
    "expansion_of_set",
    "vertex_expansion_exact",
    "vertex_expansion_estimate",
    "ExpansionEstimate",
    "max_degree",
    "diameter",
    "cut_edges",
    "conductance_of_set",
    "conductance_exact",
    "conductance_estimate",
]

_EXACT_LIMIT = 18


def boundary(graph: nx.Graph, subset) -> set:
    """Return ∂S: vertices outside ``subset`` adjacent to it."""
    s = set(subset)
    if not s:
        raise ConfigurationError("boundary of the empty set is undefined")
    out = set()
    for u in s:
        for v in graph.neighbors(u):
            if v not in s:
                out.add(v)
    return out


def expansion_of_set(graph: nx.Graph, subset) -> float:
    """Return α(S) = |∂S| / |S|."""
    s = set(subset)
    return len(boundary(graph, s)) / len(s)


def vertex_expansion_exact(graph: nx.Graph, limit: int = _EXACT_LIMIT) -> float:
    """Exact α(G) by exhausting all subsets with 0 < |S| ≤ n/2.

    Guarded by ``limit`` because the cost is Θ(2^n); raise the limit
    explicitly if you really want a bigger exhaustive run.
    """
    n = graph.number_of_nodes()
    if n > limit:
        raise ConfigurationError(
            f"exact expansion is exponential; n={n} exceeds limit={limit} "
            "(use vertex_expansion_estimate instead)"
        )
    nodes = list(graph.nodes)
    best = float("inf")
    for size in range(1, n // 2 + 1):
        for subset in itertools.combinations(nodes, size):
            best = min(best, expansion_of_set(graph, subset))
    return best


@dataclass(frozen=True)
class ExpansionEstimate:
    """An upper bound on α(G) with the witness set that achieves it."""

    alpha: float
    witness: frozenset

    def __float__(self) -> float:
        return self.alpha


def _candidate_cuts(graph: nx.Graph, rng: random.Random, samples: int):
    """Yield candidate subsets S with 0 < |S| <= n/2."""
    n = graph.number_of_nodes()
    nodes = list(graph.nodes)
    half = n // 2

    # Fiedler sweep: order vertices by the second Laplacian eigenvector and
    # take every prefix.  This is the classic spectral heuristic; it finds
    # the bottleneck cut of every structured family we generate.
    try:
        fiedler = nx.fiedler_vector(graph, seed=0)
    except Exception:  # pragma: no cover - scipy edge cases on tiny graphs
        fiedler = None
    if fiedler is not None:
        order = [v for _, v in sorted(zip(fiedler, nodes))]
        for size in range(1, half + 1):
            yield order[:size]

    # BFS balls: for each vertex, every ball that fits in half the graph.
    for root in nodes:
        ball = [root]
        seen = {root}
        frontier = [root]
        while frontier and len(ball) < half:
            nxt = []
            for u in frontier:
                for v in graph.neighbors(u):
                    if v not in seen:
                        seen.add(v)
                        nxt.append(v)
            take = nxt[: half - len(ball)]
            if not take:
                break
            ball.extend(take)
            frontier = nxt
            yield list(ball)

    # Degree-ordered prefixes (low-degree fringe first).
    by_degree = sorted(nodes, key=lambda v: graph.degree(v))
    for size in range(1, half + 1):
        yield by_degree[:size]

    # Random subsets.
    for _ in range(samples):
        size = rng.randint(1, half)
        yield rng.sample(nodes, size)


def _local_search(graph: nx.Graph, subset: set, rounds: int = 2) -> set:
    """Greedy improvement: try single-vertex swaps that lower α(S)."""
    n = graph.number_of_nodes()
    current = set(subset)
    best_alpha = expansion_of_set(graph, current)
    for _ in range(rounds):
        improved = False
        for v in list(graph.nodes):
            if v in current:
                if len(current) <= 1:
                    continue
                trial = current - {v}
            else:
                if len(current) + 1 > n // 2:
                    continue
                trial = current | {v}
            alpha = expansion_of_set(graph, trial)
            if alpha < best_alpha:
                best_alpha = alpha
                current = trial
                improved = True
        if not improved:
            break
    return current


def vertex_expansion_estimate(
    graph: nx.Graph,
    samples: int = 64,
    seed: int = 0,
    local_search: bool = True,
) -> ExpansionEstimate:
    """Best (smallest) α(S) found over heuristic candidate cuts.

    Always an *upper bound* on the true α(G), with a concrete witness set.
    For n ≤ 18 callers wanting ground truth should use
    :func:`vertex_expansion_exact`.
    """
    if graph.number_of_nodes() < 2:
        raise ConfigurationError("expansion needs at least 2 vertices")
    rng = random.Random(seed)
    best_alpha = float("inf")
    best_set: set = set()
    for candidate in _candidate_cuts(graph, rng, samples):
        alpha = expansion_of_set(graph, candidate)
        if alpha < best_alpha:
            best_alpha = alpha
            best_set = set(candidate)
    if local_search:
        refined = _local_search(graph, best_set)
        alpha = expansion_of_set(graph, refined)
        if alpha < best_alpha:
            best_alpha = alpha
            best_set = refined
    return ExpansionEstimate(alpha=best_alpha, witness=frozenset(best_set))


def max_degree(graph: nx.Graph) -> int:
    """Δ(G): the maximum vertex degree."""
    return max(d for _, d in graph.degree)


def diameter(graph: nx.Graph) -> int:
    """The diameter of a connected graph."""
    return nx.diameter(graph)


# ---------------------------------------------------------------------------
# Graph conductance.
#
# The paper's related-work section leans on a result from [11]: efficient
# rumor spreading *with respect to conductance* is impossible in the mobile
# telephone model, while vertex expansion does govern spreading time.  The
# star is the separating family — conductance Θ(1) but α = Θ(1/n), and
# spreading takes Θ(n) because the hub serves one leaf per round.  The
# conductance computations here power that contrast experiment
# (benchmarks/bench_conductance.py).
# ---------------------------------------------------------------------------


def cut_edges(graph: nx.Graph, subset) -> int:
    """Number of edges crossing the cut (S, V \\ S)."""
    s = set(subset)
    if not s:
        raise ConfigurationError("cut of the empty set is undefined")
    return sum(1 for u in s for v in graph.neighbors(u) if v not in s)


def conductance_of_set(graph: nx.Graph, subset) -> float:
    """φ(S) = cut(S, V\\S) / min(vol(S), vol(V\\S)), vol = degree sum."""
    s = set(subset)
    vol_s = sum(graph.degree(u) for u in s)
    vol_rest = sum(graph.degree(u) for u in graph.nodes if u not in s)
    denominator = min(vol_s, vol_rest)
    if denominator == 0:
        raise ConfigurationError(
            "conductance undefined: one side of the cut has volume 0"
        )
    return cut_edges(graph, s) / denominator


def conductance_exact(graph: nx.Graph, limit: int = _EXACT_LIMIT) -> float:
    """Exact conductance by exhausting all proper subsets (small n only)."""
    n = graph.number_of_nodes()
    if n > limit:
        raise ConfigurationError(
            f"exact conductance is exponential; n={n} exceeds limit={limit} "
            "(use conductance_estimate instead)"
        )
    nodes = list(graph.nodes)
    best = float("inf")
    # Volume-balanced side can exceed n/2 vertices, so scan all proper
    # subsets containing a fixed vertex (complements cover the rest).
    import itertools

    anchor, rest = nodes[0], nodes[1:]
    for size in range(0, n - 1):
        for combo in itertools.combinations(rest, size):
            subset = {anchor, *combo}
            if len(subset) == n:
                continue
            best = min(best, conductance_of_set(graph, subset))
    return best


def conductance_estimate(
    graph: nx.Graph, samples: int = 64, seed: int = 0
) -> float:
    """Upper-bound estimate of φ(G) over the same heuristic cuts as
    :func:`vertex_expansion_estimate` (Fiedler sweeps find the bottleneck
    cut of every structured family we generate)."""
    if graph.number_of_nodes() < 2:
        raise ConfigurationError("conductance needs at least 2 vertices")
    rng = random.Random(seed)
    best = float("inf")
    for candidate in _candidate_cuts(graph, rng, samples):
        best = min(best, conductance_of_set(graph, candidate))
    return best
