"""Cell-binning spatial grid for unit-disk neighbor queries.

:class:`~repro.graphs.dynamic.GeometricMobilityGraph` needs two
geometric primitives per epoch: the radius-``r`` unit-disk edge set of
the node positions, and (when bridging fragments) the nearest pair of
points across two components.  Both used to be O(n^2) pairwise sweeps;
at n = 10^6 a single epoch's sweep is 10^12 distance evaluations.

This module replaces them with a cell grid: positions are binned into
radius-sized cells so that every disk edge lies within one cell or one
of its 8 neighbors, and only those candidate pairs are examined — O(n)
work at constant density.  The grid output is **pinned identical** to
the blocked sweep (kept here as :func:`disk_edges_blocked`, the
differential reference): the same IEEE double ops compute every
distance (``(dx)**2 + (dy)**2`` against ``r*r``), each unordered pair
is generated exactly once, and the result is returned in ``(i, j)``
lexicographic order with ``i < j`` — the order the blocked sweep emits
and the order edge-insertion-sensitive consumers (``nx``'s component
iteration) depend on.  Identity is gated by tests/test_dynamic.py and
``bench_scale.py --quick`` in CI.

Coordinates are assumed to lie in the unit square (the mobility model's
domain); the binning clips boundary values inward so ``x == 1.0`` is
legal.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "disk_edges",
    "disk_edges_blocked",
    "disk_edges_grid",
    "nearest_pair",
    "PointIndex",
]

#: Half-neighborhood cell offsets: (0, 0) pairs within a cell, the rest
#: pair each cell with 4 of its 8 neighbors so every unordered cell
#: pair is visited exactly once.
_HALF_NEIGHBORHOOD = ((0, 0), (0, 1), (1, -1), (1, 0), (1, 1))


def disk_edges_blocked(
    xs: np.ndarray, ys: np.ndarray, radius: float, block: int = 512
) -> tuple[np.ndarray, np.ndarray]:
    """All pairs within ``radius``, by blocked pairwise sweep — O(n^2).

    The differential reference for :func:`disk_edges_grid`: this is the
    exact computation GeometricMobilityGraph shipped with (same blocking,
    same distance arithmetic), kept verbatim so the grid can be pinned
    against it.  Returns ``(rows, cols)`` with ``rows[k] < cols[k]``,
    lexicographically sorted.
    """
    n = len(xs)
    r2 = radius * radius
    all_rows, all_cols = [], []
    for start in range(0, n, block):
        stop = min(start + block, n)
        d2 = (xs[start:stop, None] - xs[None, :]) ** 2
        d2 += (ys[start:stop, None] - ys[None, :]) ** 2
        rows, cols = np.nonzero(d2 <= r2)
        rows += start
        upper = cols > rows
        all_rows.append(rows[upper])
        all_cols.append(cols[upper])
    if not all_rows:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(all_rows), np.concatenate(all_cols)


def _concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[i], starts[i] + counts[i])`` segments."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    flat = np.arange(total, dtype=np.int64)
    return flat - np.repeat(ends - counts, counts) + np.repeat(starts, counts)


def disk_edges_grid(
    xs: np.ndarray, ys: np.ndarray, radius: float
) -> tuple[np.ndarray, np.ndarray]:
    """All pairs within ``radius``, by cell binning — O(n) at constant
    density.

    Cells are ``radius``-sized, so a disk edge's endpoints are at most
    one cell apart; scanning each cell against itself and 4 of its 8
    neighbors (the half-neighborhood) generates every candidate pair
    once.  Distances use the same IEEE ops as the blocked sweep and the
    result is sorted ``(i, j)`` lexicographic with ``i < j`` — byte-for-
    byte the blocked sweep's output.
    """
    n = len(xs)
    r2 = radius * radius
    ncells = max(1, math.ceil(1.0 / radius))
    cx = np.minimum((xs / radius).astype(np.int64), ncells - 1)
    cy = np.minimum((ys / radius).astype(np.int64), ncells - 1)
    cell = cx * ncells + cy
    order = np.argsort(cell, kind="stable")
    sorted_cells = cell[order]

    pair_u, pair_v = [], []
    for dx, dy in _HALF_NEIGHBORHOOD:
        if dx == 0 and dy == 0:
            pts = np.arange(n, dtype=np.int64)
            neighbor_cell = cell
        else:
            ncx = cx + dx
            ncy = cy + dy
            valid = (ncx < ncells) & (0 <= ncy) & (ncy < ncells)
            pts = np.nonzero(valid)[0]
            if len(pts) == 0:
                continue
            neighbor_cell = ncx[pts] * ncells + ncy[pts]
        starts = np.searchsorted(sorted_cells, neighbor_cell, side="left")
        ends = np.searchsorted(sorted_cells, neighbor_cell, side="right")
        counts = ends - starts
        src = np.repeat(pts, counts)
        dst = order[_concat_ranges(starts, counts)]
        if dx == 0 and dy == 0:
            keep = src < dst
            src, dst = src[keep], dst[keep]
        d2 = (xs[src] - xs[dst]) ** 2
        d2 += (ys[src] - ys[dst]) ** 2
        keep = d2 <= r2
        src, dst = src[keep], dst[keep]
        pair_u.append(np.minimum(src, dst))
        pair_v.append(np.maximum(src, dst))

    if not pair_u:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    u = np.concatenate(pair_u)
    v = np.concatenate(pair_v)
    sort = np.lexsort((v, u))
    return u[sort], v[sort]


def disk_edges(
    xs: np.ndarray, ys: np.ndarray, radius: float, method: str = "grid"
) -> tuple[np.ndarray, np.ndarray]:
    """Dispatch between the grid (production) and blocked (reference)."""
    if method == "grid":
        return disk_edges_grid(xs, ys, radius)
    if method == "blocked":
        return disk_edges_blocked(xs, ys, radius)
    raise ValueError(f"unknown disk_edges method {method!r}")


def nearest_pair(
    bx: np.ndarray, by: np.ndarray, ox: np.ndarray, oy: np.ndarray
) -> tuple[float, int, int]:
    """Closest (base, other) point pair, by dense pairwise reduction.

    Returns ``(d2, u_index, v_index)`` where the tie-break is
    ``np.argmin``'s row-major first minimum — smallest ``u_index``, then
    smallest ``v_index`` — the contract the bridging loop was pinned to
    (tests/test_dynamic.py).  O(|base| * |other|) memory and time; the
    differential reference for :meth:`PointIndex.nearest`.
    """
    d2 = (bx[:, None] - ox[None, :]) ** 2
    d2 += (by[:, None] - oy[None, :]) ** 2
    flat = int(np.argmin(d2))
    u_index, v_index = divmod(flat, len(ox))
    return float(d2[u_index, v_index]), u_index, v_index


class PointIndex:
    """A cell grid over a fixed point set for exact nearest queries.

    Built once per bridging iteration over the (large) base component;
    :meth:`nearest` then answers each small component's closest-pair
    query by expanding cell rings outward from the query instead of
    scanning all of the base.  Results — value *and* tie-break — are
    identical to :func:`nearest_pair`: distances are the same IEEE ops,
    ring pruning uses a strict lower bound so exact ties are never cut
    off, and ties resolve to the smallest base index, then the smallest
    query index (row-major first-minimum order).
    """

    def __init__(self, xs: np.ndarray, ys: np.ndarray):
        self.xs = xs
        self.ys = ys
        nb = len(xs)
        self.x0 = float(xs.min())
        self.y0 = float(ys.min())
        extent = max(float(xs.max()) - self.x0, float(ys.max()) - self.y0)
        # ~1 point per cell at uniform density; degenerate (all points
        # coincident) collapses to a single cell.
        self.cell = extent / max(1.0, math.sqrt(nb)) or 1.0
        self.ncx = min(nb, int(extent / self.cell) + 1)
        self.ncy = self.ncx
        cx = np.minimum(
            ((xs - self.x0) / self.cell).astype(np.int64), self.ncx - 1
        )
        cy = np.minimum(
            ((ys - self.y0) / self.cell).astype(np.int64), self.ncy - 1
        )
        keys = cx * self.ncy + cy
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        boundaries = np.nonzero(np.diff(sorted_keys))[0] + 1
        # Buckets hold ascending base indices (stable sort over arange),
        # which is what makes the min-index tie-break cheap.  Each split
        # segment holds original point indices sharing one cell key.
        self._buckets = {
            int(keys[seg[0]]): seg
            for seg in np.split(order, boundaries)
            if len(seg)
        }

    def _nearest_one(self, qx: float, qy: float) -> tuple[float, int]:
        """Exact nearest base point to ``(qx, qy)``: (d2, min base index
        among exact-d2 ties)."""
        cell = self.cell
        qcx = min(max(int((qx - self.x0) / cell), 0), self.ncx - 1)
        qcy = min(max(int((qy - self.y0) / cell), 0), self.ncy - 1)
        best_d2 = math.inf
        best_u = -1
        max_ring = max(self.ncx, self.ncy)
        for ring in range(max_ring + 1):
            # Any cell at Chebyshev ring k is at least (k-1)*cell away
            # from the query (valid for clipped/outside queries too:
            # projection onto the grid box only shrinks distances).
            if best_u >= 0 and ((ring - 1) * cell) ** 2 > best_d2:
                break
            for ccx, ccy in self._ring_cells(qcx, qcy, ring):
                pts = self._buckets.get(ccx * self.ncy + ccy)
                if pts is None:
                    continue
                d2 = (self.xs[pts] - qx) ** 2
                d2 += (self.ys[pts] - qy) ** 2
                m = float(d2.min())
                if m < best_d2:
                    best_d2 = m
                    best_u = int(pts[d2 == m][0])
                elif m == best_d2:
                    best_u = min(best_u, int(pts[d2 == m][0]))
        return best_d2, best_u

    def _ring_cells(self, qcx: int, qcy: int, ring: int):
        """In-bounds cells at exactly Chebyshev distance ``ring``."""
        if ring == 0:
            yield qcx, qcy
            return
        lo_x, hi_x = qcx - ring, qcx + ring
        lo_y, hi_y = qcy - ring, qcy + ring
        for ccx in range(max(lo_x, 0), min(hi_x, self.ncx - 1) + 1):
            on_x_edge = ccx == lo_x or ccx == hi_x
            for ccy in range(max(lo_y, 0), min(hi_y, self.ncy - 1) + 1):
                if on_x_edge or ccy == lo_y or ccy == hi_y:
                    yield ccx, ccy

    def nearest(
        self, ox: np.ndarray, oy: np.ndarray
    ) -> tuple[float, int, int]:
        """Closest (base, query) pair — :func:`nearest_pair`'s contract."""
        best: tuple[float, int, int] | None = None
        for v_index in range(len(ox)):
            d2, u = self._nearest_one(float(ox[v_index]), float(oy[v_index]))
            if (
                best is None
                or d2 < best[0]
                or (d2 == best[0] and u < best[1])
            ):
                best = (d2, u, v_index)
        return best
