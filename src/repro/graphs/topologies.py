"""Named static topology families.

Each generator returns a :class:`Topology`: a connected ``networkx.Graph``
on vertices ``0 .. n-1`` plus the structural facts the paper's bounds are
stated in terms of (when they have clean closed forms): vertex expansion α,
maximum degree Δ, diameter D.

The families here are the ones the paper's analysis leans on:

* :func:`star` / :func:`double_star` — the double star is the Ω(Δ²/√α)
  lower-bound construction sketched in the paper's introduction;
* :func:`path` / :func:`cycle` — worst-case α = Θ(1/n) graphs;
* :func:`complete` — best-case expansion;
* :func:`random_regular` (= :func:`expander`) — constant-expansion graphs
  for the "well-connected" regimes where CrowdedBin and ε-gossip shine;
* :func:`hypercube`, :func:`grid`, :func:`barbell`, :func:`lollipop`,
  :func:`binary_tree`, :func:`erdos_renyi` — intermediate shapes used by
  the test suite and the sweep benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import networkx as nx

from repro.errors import ConfigurationError
from repro.registry import RegistryMapping, TOPOLOGY_REGISTRY, register_topology

__all__ = [
    "Topology",
    "star",
    "double_star",
    "path",
    "cycle",
    "complete",
    "hypercube",
    "random_regular",
    "erdos_renyi",
    "grid",
    "barbell",
    "lollipop",
    "binary_tree",
    "expander",
    "ring_expander",
    "TOPOLOGY_FAMILIES",
]


@dataclass(frozen=True)
class Topology:
    """A connected graph plus its known structural facts.

    ``alpha`` / ``diameter_hint`` are exact when the family has a closed
    form and ``None`` otherwise (callers fall back to
    :mod:`repro.graphs.metrics`).  ``max_degree`` is always exact — it is
    cheap to compute for any graph.
    """

    graph: nx.Graph
    name: str
    params: dict = field(default_factory=dict)
    alpha: float | None = None
    diameter_hint: int | None = None
    notes: str = ""

    @property
    def n(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def max_degree(self) -> int:
        return max(d for _, d in self.graph.degree)

    def __post_init__(self):
        if self.graph.number_of_nodes() < 2:
            raise ConfigurationError(
                f"topology {self.name!r} needs at least 2 nodes"
            )
        if not nx.is_connected(self.graph):
            raise ConfigurationError(
                f"topology {self.name!r} must be connected"
            )
        if sorted(self.graph.nodes) != list(range(self.graph.number_of_nodes())):
            raise ConfigurationError(
                f"topology {self.name!r} must use vertices 0..n-1"
            )

    def __repr__(self) -> str:
        return f"Topology({self.name}, n={self.n}, Δ={self.max_degree})"


def _check_n(n: int, minimum: int = 2) -> None:
    if n < minimum:
        raise ConfigurationError(f"need n >= {minimum}, got n={n}")


def _size_only(n: int, seed: int) -> dict:
    """``from_size`` hook for families parameterized by ``n`` alone."""
    return {"n": n}


def _expander_from_size(n: int, seed: int) -> dict:
    """Near-6-regular expander params for a bare ``--n`` (CLI convention)."""
    degree = min(6, n - 1)
    if (n * degree) % 2:
        degree -= 1
    return {"n": n, "degree": max(degree, 2), "seed": seed}


def _grid_from_size(n: int, seed: int) -> dict:
    """A roughly square grid of about ``n`` vertices (CLI convention)."""
    cols = max(2, int(n**0.5))
    rows = max(2, n // cols)
    return {"rows": rows, "cols": cols}


@register_topology(
    name="star",
    description="one hub, n-1 leaves; alpha = 1/floor(n/2), D = 2",
    from_size=_size_only,
)
def star(n: int) -> Topology:
    """A star: vertex 0 is the hub, 1..n-1 are leaves.

    α = 1/⌊n/2⌋ (witness: any ⌊n/2⌋ leaves have boundary {hub}), Δ = n-1,
    D = 2.
    """
    _check_n(n, 3)
    g = nx.star_graph(n - 1)
    return Topology(
        graph=g,
        name="star",
        params={"n": n},
        alpha=1.0 / (n // 2),
        diameter_hint=2,
    )


@register_topology(
    name="double_star",
    description="two bridged hubs; the Omega(D^2/sqrt(a)) lower-bound shape",
)
def double_star(points: int) -> Topology:
    """Two hubs joined by an edge, each with ``points`` leaves.

    This is the construction behind the Ω(Δ²/√α) lower bound for blind
    strategies sketched in the paper's introduction: for the bridge edge to
    fire, one hub must pick the other (probability ≈ 1/Δ) *and* the pick
    must be accepted against ≈ Δ competing proposals (probability ≈ 1/Δ).

    n = 2·points + 2, Δ = points + 1, α = 1/(points + 1) (witness: one
    whole star), D = 3.
    """
    if points < 1:
        raise ConfigurationError(f"need points >= 1, got {points}")
    n = 2 * points + 2
    g = nx.Graph()
    hub_u, hub_v = 0, 1
    g.add_edge(hub_u, hub_v)
    for i in range(points):
        g.add_edge(hub_u, 2 + i)
        g.add_edge(hub_v, 2 + points + i)
    return Topology(
        graph=g,
        name="double_star",
        params={"points": points, "n": n},
        alpha=1.0 / (points + 1),
        diameter_hint=3,
        notes="Ω(Δ²/√α) lower-bound construction for blind strategies",
    )


@register_topology(
    name="path",
    description="worst-case expansion alpha = Theta(1/n), D = n-1",
    from_size=_size_only,
)
def path(n: int) -> Topology:
    """A path on n vertices. α = 1/⌊n/2⌋, Δ = 2, D = n-1."""
    _check_n(n)
    return Topology(
        graph=nx.path_graph(n),
        name="path",
        params={"n": n},
        alpha=1.0 / (n // 2),
        diameter_hint=n - 1,
    )


@register_topology(
    name="cycle",
    description="ring; alpha = Theta(1/n), Delta = 2",
    from_size=_size_only,
)
def cycle(n: int) -> Topology:
    """A cycle on n vertices. α = 2/⌊n/2⌋, Δ = 2, D = ⌊n/2⌋."""
    _check_n(n, 3)
    return Topology(
        graph=nx.cycle_graph(n),
        name="cycle",
        params={"n": n},
        alpha=2.0 / (n // 2),
        diameter_hint=n // 2,
    )


@register_topology(
    name="complete",
    description="K_n, best-case expansion (alpha >= 1)",
    from_size=_size_only,
)
def complete(n: int) -> Topology:
    """The complete graph K_n. α = ⌈n/2⌉/⌊n/2⌋ ≥ 1, Δ = n-1, D = 1."""
    _check_n(n)
    return Topology(
        graph=nx.complete_graph(n),
        name="complete",
        params={"n": n},
        alpha=math.ceil(n / 2) / (n // 2),
        diameter_hint=1,
    )


@register_topology(
    name="hypercube",
    description="dim-dimensional hypercube (n = 2^dim)",
)
def hypercube(dim: int) -> Topology:
    """The ``dim``-dimensional hypercube (n = 2^dim, Δ = dim, D = dim).

    α = Θ(1/√dim) (Harper's theorem); we leave ``alpha=None`` and let the
    metrics module compute or estimate it, since the exact constant depends
    on n.
    """
    if dim < 1:
        raise ConfigurationError(f"need dim >= 1, got {dim}")
    g = nx.hypercube_graph(dim)
    mapping = {node: int("".join(map(str, node)), 2) for node in g.nodes}
    g = nx.relabel_nodes(g, mapping)
    return Topology(
        graph=g,
        name="hypercube",
        params={"dim": dim, "n": 2**dim},
        diameter_hint=dim,
    )


@register_topology(
    name="random_regular",
    description="connected random d-regular graph (expander w.h.p.)",
)
def random_regular(n: int, degree: int, seed: int) -> Topology:
    """A connected random ``degree``-regular graph.

    Random d-regular graphs (d ≥ 3) are expanders with high probability, so
    this family provides the constant-α graphs in the benchmarks.  Sampling
    retries until connected (a.a.s. one attempt suffices).
    """
    _check_n(n, 4)
    if degree < 2 or degree >= n:
        raise ConfigurationError(f"need 2 <= degree < n, got degree={degree}")
    if (n * degree) % 2 != 0:
        raise ConfigurationError(
            f"n*degree must be even for a regular graph (n={n}, degree={degree})"
        )
    for attempt in range(64):
        g = nx.random_regular_graph(degree, n, seed=seed + attempt)
        if nx.is_connected(g):
            return Topology(
                graph=g,
                name="random_regular",
                params={"n": n, "degree": degree, "seed": seed},
                notes="expander w.h.p. for degree >= 3",
            )
    raise ConfigurationError(
        f"could not sample a connected {degree}-regular graph on {n} vertices"
    )


@register_topology(
    name="expander",
    description="random_regular alias emphasizing constant alpha",
    from_size=_expander_from_size,
)
def expander(n: int, degree: int = 6, seed: int = 0) -> Topology:
    """Alias for :func:`random_regular` emphasizing its role: constant α."""
    topo = random_regular(n, degree, seed)
    return Topology(
        graph=topo.graph,
        name="expander",
        params=topo.params,
        notes=topo.notes,
    )


def _ring_expander_from_size(n: int, seed: int) -> dict:
    """Even degree ≤ 6 for a bare ``--n`` (CLI convention)."""
    degree = min(6, n - 1)
    if degree % 2:
        degree -= 1
    return {"n": n, "degree": max(degree, 2), "seed": seed}


def _ring_expander_dynamic(**params):
    """``build_dynamic`` hook: straight to a CSR-backed DynamicGraph."""
    from repro.graphs.dynamic import ring_expander_graph

    return ring_expander_graph(**params)


@register_topology(
    name="ring_expander",
    description="union of degree/2 random Hamiltonian cycles — connected "
                "by construction, CSR-direct at million-node scale",
    from_size=_ring_expander_from_size,
    build_dynamic=_ring_expander_dynamic,
)
def ring_expander(n: int, degree: int = 6, seed: int = 0) -> Topology:
    """The :func:`~repro.graphs.dynamic.ring_expander_graph` family as a
    conventional ``nx`` Topology (object path, CLI, small-n tests).

    At scale the experiments layer never calls this factory — the
    registered ``build_dynamic`` hook returns the CSR-backed dynamic
    graph directly, skipping the ``nx`` materialization and the
    connectivity check this constructor performs.  Both views are built
    from the same edge arrays, so they are the same graph.
    """
    from repro.graphs.dynamic import ring_expander_graph

    dyn = ring_expander_graph(n=n, degree=degree, seed=seed)
    return Topology(
        graph=dyn._graph_for_epoch(0),
        name="ring_expander",
        params={"n": n, "degree": degree, "seed": seed},
        notes="expander w.h.p. for degree >= 4; connected by construction",
    )


@register_topology(
    name="erdos_renyi",
    description="connected G(n, p) sample",
)
def erdos_renyi(n: int, p: float, seed: int) -> Topology:
    """A connected G(n, p) sample (resamples until connected)."""
    _check_n(n)
    if not 0 < p <= 1:
        raise ConfigurationError(f"need 0 < p <= 1, got p={p}")
    for attempt in range(256):
        g = nx.gnp_random_graph(n, p, seed=seed + attempt)
        if g.number_of_nodes() >= 2 and nx.is_connected(g):
            return Topology(
                graph=g,
                name="erdos_renyi",
                params={"n": n, "p": p, "seed": seed},
            )
    raise ConfigurationError(
        f"could not sample a connected G({n},{p}); increase p"
    )


@register_topology(
    name="grid",
    description="rows x cols street grid; alpha = Theta(1/max(rows, cols))",
    from_size=_grid_from_size,
)
def grid(rows: int, cols: int) -> Topology:
    """A rows×cols grid. Δ = 4, D = rows+cols-2, α = Θ(1/max(rows, cols))."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ConfigurationError(f"need rows*cols >= 2, got {rows}x{cols}")
    g = nx.grid_2d_graph(rows, cols)
    mapping = {(r, c): r * cols + c for r, c in g.nodes}
    g = nx.relabel_nodes(g, mapping)
    return Topology(
        graph=g,
        name="grid",
        params={"rows": rows, "cols": cols, "n": rows * cols},
        diameter_hint=rows + cols - 2,
    )


@register_topology(
    name="barbell",
    description="two cliques joined by a path; alpha = Theta(1/clique_size)",
)
def barbell(clique_size: int, bridge_length: int = 0) -> Topology:
    """Two cliques of ``clique_size`` joined by a path of ``bridge_length``.

    A classic bottleneck graph: α = Θ(1/clique_size).
    """
    if clique_size < 3:
        raise ConfigurationError(f"need clique_size >= 3, got {clique_size}")
    if bridge_length < 0:
        raise ConfigurationError(f"need bridge_length >= 0, got {bridge_length}")
    g = nx.barbell_graph(clique_size, bridge_length)
    return Topology(
        graph=g,
        name="barbell",
        params={"clique_size": clique_size, "bridge_length": bridge_length},
    )


@register_topology(
    name="lollipop",
    description="a clique with a path attached",
)
def lollipop(clique_size: int, path_length: int) -> Topology:
    """A clique with a path attached (the lollipop graph)."""
    if clique_size < 3:
        raise ConfigurationError(f"need clique_size >= 3, got {clique_size}")
    if path_length < 1:
        raise ConfigurationError(f"need path_length >= 1, got {path_length}")
    g = nx.lollipop_graph(clique_size, path_length)
    return Topology(
        graph=g,
        name="lollipop",
        params={"clique_size": clique_size, "path_length": path_length},
    )


@register_topology(
    name="binary_tree",
    description="complete binary tree of the given depth",
)
def binary_tree(depth: int) -> Topology:
    """A complete binary tree of the given depth (n = 2^(depth+1) - 1)."""
    if depth < 1:
        raise ConfigurationError(f"need depth >= 1, got {depth}")
    g = nx.balanced_tree(2, depth)
    return Topology(
        graph=g,
        name="binary_tree",
        params={"depth": depth, "n": 2 ** (depth + 1) - 1},
        diameter_hint=2 * depth,
    )


#: Name -> factory, a live view over the topology registry — third-party
#: families registered via :func:`repro.registry.register_topology` appear
#: here without any edit to this module.
TOPOLOGY_FAMILIES = RegistryMapping(
    TOPOLOGY_REGISTRY, lambda defn: defn.factory
)
