"""Leader election in the mobile telephone model (substrate from [22]).

SimSharedBit (paper §5.2) interleaves gossip with the *BitConvergence*
leader-election algorithm of Newport's IPDPS 2017 paper [22].  This paper
uses only its interface: candidates converge permanently to the minimum
UID, a polylog(N)-bit payload rides along, and convergence takes
O((1/α)·Δ^{1/τ}·polylog n) rounds w.h.p.  See DESIGN.md §4 for the
substitution notes on our implementation.
"""

from repro.leader.bitconvergence import (
    BitConvergence,
    LeaderConfig,
    LeaderElectionNode,
    run_leader_election,
)

__all__ = [
    "BitConvergence",
    "LeaderConfig",
    "LeaderElectionNode",
    "run_leader_election",
]
