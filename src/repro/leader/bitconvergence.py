"""BitConvergence-style leader election with payloads.

The interface this must satisfy (all that §5.2 of the gossip paper relies
on, quoting its summary of [22]):

* every node maintains a *candidate leader* UID and that candidate's
  polylog(N)-bit *payload*;
* eventually all candidates permanently stabilize to the minimum UID among
  participants (with its payload);
* it runs in the mobile telephone model with b = 1, adapting to α, Δ, τ
  with no advance knowledge of them.

Our implementation combines two in-model mechanisms (DESIGN.md §4):

* **news push** — a node whose candidate improved within the last
  ``news_window`` election steps advertises 1 and proposes to a uniformly
  chosen 0-advertising neighbor, spreading fresh minima along the
  expansion of the graph (the same tag discipline PPUSH uses);
* **blind mixing** — a node without news flips a fair coin and, as sender,
  proposes to a uniformly random neighbor.  This is exactly the BlindGossip
  strategy of [22] applied to candidate UIDs, and it alone guarantees
  convergence in O((1/α)·Δ²·log²N) rounds w.h.p.; the news bit is the fast
  path that brings well-connected graphs close to the cited
  O((1/α)·Δ^{1/τ}·polylog N) behavior (measured in the benchmarks).

Every connection merges candidates to the minimum, so the global minimum
candidate is monotone non-increasing at every node: once all nodes hold
the true minimum, agreement is permanent — the stabilization property
SimSharedBit needs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.bits import ceil_log2
from repro.errors import ConfigurationError
from repro.sim.channel import Channel
from repro.sim.context import NeighborView
from repro.sim.engine import Simulation, SimulationResult
from repro.sim.protocol import NodeProtocol
from repro.sim.termination import all_agree_on_leader

__all__ = [
    "LeaderConfig",
    "BitConvergence",
    "LeaderElectionNode",
    "run_leader_election",
]


@dataclass(frozen=True)
class LeaderConfig:
    """Tunables for BitConvergence.

    ``news_window`` — election steps a candidate improvement counts as
    news (the freshness window W).
    ``payload_bits`` — wire budget for the payload (must cover the actual
    payload values used; SimSharedBit puts seed indices here).
    ``blind_send_probability`` — the mixing coin for news-less nodes.
    """

    news_window: int = 8
    payload_bits: int = 64
    blind_send_probability: float = 0.5

    def __post_init__(self):
        if self.news_window < 1:
            raise ConfigurationError(
                f"news_window must be >= 1, got {self.news_window}"
            )
        if self.payload_bits < 1:
            raise ConfigurationError(
                f"payload_bits must be >= 1, got {self.payload_bits}"
            )
        if not 0 < self.blind_send_probability <= 1:
            raise ConfigurationError(
                "blind_send_probability must be in (0, 1], got "
                f"{self.blind_send_probability}"
            )

    @classmethod
    def paper(cls) -> "LeaderConfig":
        return cls(news_window=16)

    @classmethod
    def practical(cls) -> "LeaderConfig":
        return cls(news_window=6)


class BitConvergence:
    """The leader-election state machine, embeddable in other protocols.

    SimSharedBit drives one of these on even rounds; the standalone
    :class:`LeaderElectionNode` drives one every round.  Each call to
    :meth:`advertise` is one *election step*.
    """

    def __init__(self, uid: int, payload: int, upper_n: int,
                 rng: random.Random, config: LeaderConfig | None = None):
        if payload < 0:
            raise ConfigurationError(f"payload must be >= 0, got {payload}")
        self.uid = uid
        self.upper_n = upper_n
        self.rng = rng
        self.config = config or LeaderConfig()
        if payload.bit_length() > self.config.payload_bits:
            raise ConfigurationError(
                f"payload {payload} exceeds payload_bits="
                f"{self.config.payload_bits}"
            )
        self.candidate_uid = uid
        self.candidate_payload = payload
        self._step = 0
        self._last_improved_step = 0
        self._bit_this_step = 1

    @property
    def has_news(self) -> bool:
        return self._step - self._last_improved_step < self.config.news_window

    def advertise(self) -> int:
        """Advance one election step and return the freshness bit."""
        self._step += 1
        self._bit_this_step = 1 if self.has_news else 0
        return self._bit_this_step

    def propose(self, neighbors: tuple[NeighborView, ...]) -> int | None:
        if not neighbors:
            return None
        if self._bit_this_step == 1:
            quiet = [view.uid for view in neighbors if view.tag == 0]
            if quiet:
                return self.rng.choice(sorted(quiet))
            return None
        if self.rng.random() < self.config.blind_send_probability:
            return self.rng.choice(neighbors).uid
        return None

    def interact(self, peer: "BitConvergence", channel: Channel) -> None:
        """Exchange candidates and merge both sides to the minimum."""
        uid_bits = ceil_log2(self.upper_n + 1)
        channel.charge_bits(
            2 * (uid_bits + self.config.payload_bits), label="leader"
        )
        if peer.candidate_uid < self.candidate_uid:
            self._adopt(peer.candidate_uid, peer.candidate_payload)
        elif self.candidate_uid < peer.candidate_uid:
            peer._adopt(self.candidate_uid, self.candidate_payload)

    def _adopt(self, candidate_uid: int, payload: int) -> None:
        self.candidate_uid = candidate_uid
        self.candidate_payload = payload
        self._last_improved_step = self._step


class LeaderElectionNode(NodeProtocol):
    """Standalone leader election (b = 1), one election step per round."""

    def __init__(self, uid: int, upper_n: int, rng: random.Random,
                 payload: int = 0, config: LeaderConfig | None = None):
        super().__init__(uid)
        self.election = BitConvergence(
            uid=uid, payload=payload, upper_n=upper_n, rng=rng, config=config
        )

    @property
    def candidate_leader(self) -> int:
        return self.election.candidate_uid

    @property
    def candidate_payload(self) -> int:
        return self.election.candidate_payload

    def advertise(self, round_index: int, neighbor_uids: tuple[int, ...]) -> int:
        return self.election.advertise()

    def propose(
        self, round_index: int, neighbors: tuple[NeighborView, ...]
    ) -> int | None:
        return self.election.propose(neighbors)

    def interact(self, responder: "LeaderElectionNode", channel: Channel,
                 round_index: int) -> None:
        self.election.interact(responder.election, channel)

    @classmethod
    def make_window_hooks(cls, nodes) -> "_LeaderWindowOps":
        return _LeaderWindowOps(nodes)


class _LeaderWindowOps:
    """Stateful window ops for leader election (see ``window_hooks``).

    The election step advance and the freshness bit live in
    ``advertise`` and consume no randomness, but they are *stateful*
    (``_adopt`` mid-window timestamps improvements against ``_step``),
    so scanning must stay lazy (``eager_scan = False``: the engine calls
    ``scan`` cohort by cohort in event order, exactly when the scalar
    ``advertise`` would run).  The proposal draws consume each member's
    private rng exactly as the scalar hook does: a news node's
    ``rng.choice`` over the ascending quiet-UID array is the same single
    ``_randbelow(len)`` as over ``sorted(quiet)``, and a blind node's
    coin-then-choice runs over the CSR-row-ordered visible UIDs, which
    is the ``NeighborView`` tuple order.  ``senders`` is all-True: a
    news-less member consumes its mixing coin even when it declines, so
    the engine must always reach ``propose_one``.
    """

    eager_scan = False
    needs_retag = False

    def __init__(self, nodes):
        self._nodes = nodes

    def state_changed(self, vertex: int) -> None:
        pass

    def scan(self, vertices, cycles) -> tuple[np.ndarray, np.ndarray]:
        count = len(vertices)
        tags = np.empty(count, dtype=np.int64)
        senders = np.ones(count, dtype=bool)
        nodes = self._nodes
        for i, vertex in enumerate(np.asarray(vertices).tolist()):
            tags[i] = nodes[vertex].election.advertise()
        return tags, senders

    def retag(self, vertex: int, cycle: int) -> int:
        return int(self._nodes[vertex].election._bit_this_step)

    def propose_one(self, vertex, cycle, neighbor_uids, neighbor_tags) -> int:
        election = self._nodes[vertex].election
        if len(neighbor_uids) == 0:
            return -1
        if election._bit_this_step == 1:
            quiet = neighbor_uids[np.asarray(neighbor_tags) == 0]
            if len(quiet):
                return int(election.rng.choice(np.sort(quiet)))
            return -1
        if election.rng.random() < election.config.blind_send_probability:
            return int(election.rng.choice(neighbor_uids))
        return -1


def run_leader_election(
    dynamic_graph,
    uids,
    seed: int,
    max_rounds: int,
    payloads=None,
    config: LeaderConfig | None = None,
    channel_policy=None,
) -> SimulationResult:
    """Convenience harness: elect a leader over a dynamic graph.

    ``uids[vertex]`` gives each node's UID; ``payloads[vertex]`` (optional)
    its payload.  Terminates when all candidates agree.
    """
    from repro.rng import SeedTree
    from repro.sim.channel import ChannelPolicy

    tree = SeedTree(seed)
    upper_n = max(uids)
    nodes = {
        vertex: LeaderElectionNode(
            uid=uids[vertex],
            upper_n=upper_n,
            rng=tree.stream("leader-node", uids[vertex]),
            payload=0 if payloads is None else payloads[vertex],
            config=config,
        )
        for vertex in range(dynamic_graph.n)
    }
    sim = Simulation(
        dynamic_graph=dynamic_graph,
        protocols=nodes,
        b=1,
        seed=seed,
        channel_policy=channel_policy or ChannelPolicy.for_upper_n(upper_n),
    )
    return sim.run(max_rounds=max_rounds, termination=all_agree_on_leader())
