"""repro.net: live deployment of registered gossip protocols.

This package runs the *same* protocol objects the simulator builds —
``ALGORITHMS`` registry entries like ``ppush``, ``blindmatch`` and
``sharedbit`` — as real peer servers over TCP sockets on localhost.
Each node gets a :class:`~repro.net.server.PeerServer` (one thread per
request, length-prefixed JSON framing, stdlib only); a
:class:`~repro.net.coordinator.Coordinator` boots a cluster from any
registered topology and drives the mobile-telephone round structure
(scan → propose → accept → connect) over request/response messages, with
acceptance rules enforced by the *proposee* exactly as
``repro.sim.matching.resolve_proposals`` does.

The keystone is the replay bridge (:mod:`repro.net.bridge`): record a
simulation run, replay it on a live cluster seeded with the same
SeedTree-derived randomness, and assert the live match stream and final
token sets are equivalent to the simulated trace.

The chaos layer hardens all of it against real failure: every RPC is
classified (:mod:`repro.net.errors`) and retried under a seeded
:class:`~repro.net.errors.RetryPolicy`; unresponsive peers are
suspected and rounds degrade gracefully over the surviving quorum; and
:class:`~repro.net.chaos.ChaosModel` enacts the simulator's own seeded
fault schedules *physically* — killed endpoints, sleeping radios,
interdicted handshakes — so the bridge can assert equivalence through
actual failures, not just simulated ones.
"""

from repro.net.bridge import (
    RecordedRun,
    ReplayReport,
    record_run,
    replay,
)
from repro.net.chaos import ChaosModel
from repro.net.coordinator import Coordinator, NetRunReport, deploy_run
from repro.net.errors import (
    DEFAULT_REQUEST_TIMEOUT,
    DEFAULT_RETRY_POLICY,
    NetError,
    ProtocolError,
    RetryBudgetExceeded,
    RetryPolicy,
)
from repro.net.framing import TransportError, recv_msg, request, send_msg
from repro.net.peers import PeerEntry, PeerTable
from repro.net.server import PeerServer
from repro.net.trace import NetTrace

__all__ = [
    "ChaosModel",
    "Coordinator",
    "DEFAULT_REQUEST_TIMEOUT",
    "DEFAULT_RETRY_POLICY",
    "NetError",
    "NetRunReport",
    "NetTrace",
    "PeerEntry",
    "PeerServer",
    "PeerTable",
    "ProtocolError",
    "RecordedRun",
    "ReplayReport",
    "RetryBudgetExceeded",
    "RetryPolicy",
    "TransportError",
    "deploy_run",
    "record_run",
    "recv_msg",
    "replay",
    "request",
    "send_msg",
]
