"""The replay bridge: simulated runs replayed on live clusters.

This is the net layer's keystone correctness instrument.
:func:`record_run` executes a simulation under
``acceptance_streams="local"`` — the per-target match streams a
distributed proposee can derive knowing only (seed, round, own UID) —
and records the post-drop match stream plus final token sets.
:func:`replay` then boots a live TCP cluster from the *same* seed and
drives it for the same number of rounds; because

* live nodes are built by the same registered builder from the same
  :class:`~repro.rng.SeedTree` (identical per-node private streams),
* the coordinator phase-barriers scan/propose per round (identical
  per-node draw order), and
* each proposee resolves contention with exactly the simulator's
  per-target stream and acceptance rule,

the live cluster's match stream and final token sets must equal the
simulation's.  :class:`ReplayReport` asserts that, listing any
divergences.  Tolerated divergences (documented in DESIGN.md §8):
within-round match *order* (matches are node-disjoint; both sides are
compared as sets per round) and wall-clock columns, which only the live
trace has.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.runner import build_nodes
from repro.errors import ConfigurationError
from repro.net.coordinator import Coordinator, NetRunReport
from repro.registry import ALGORITHM_REGISTRY
from repro.sim.channel import ChannelPolicy
from repro.sim.engine import Simulation
from repro.sim.termination import all_hold_tokens

__all__ = [
    "RecordedRun",
    "RecordingSimulation",
    "ReplayReport",
    "record_run",
    "replay",
]


class RecordingSimulation(Simulation):
    """A :class:`Simulation` that records the per-round match stream.

    ``_stage3`` receives exactly the matches that survived the fault
    layer's drop decision, so the recorded stream is directly
    comparable to :class:`~repro.net.coordinator.NetRunReport`'s.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.match_stream: list[tuple] = []

    def _stage3(self, rnd: int, matches) -> tuple[int, int]:
        self.match_stream.append(
            tuple((int(a), int(b)) for a, b in matches)
        )
        return super()._stage3(rnd, matches)


@dataclass(frozen=True)
class RecordedRun:
    """A simulated execution, pinned down enough to replay live."""

    algorithm: str
    seed: int
    rounds: int
    solved: bool
    match_stream: tuple
    final_tokens: dict
    acceptance: str
    instance: object
    graph_source: object
    config: object = None


def _graph_of(graph_source):
    """A fresh dynamic graph: call factories, pass graphs through."""
    return graph_source() if callable(graph_source) else graph_source


def record_run(
    algorithm: str,
    graph_source,
    instance,
    seed: int,
    max_rounds: int = 512,
    *,
    acceptance: str = "uniform",
    engine_mode: str = "auto",
    config=None,
) -> RecordedRun:
    """Simulate and record a run the live layer can replay.

    ``graph_source`` is a :class:`~repro.graphs.dynamic.DynamicGraph`
    or a zero-argument factory for one — pass a factory for stateful
    dynamics (mobility) so the recording and the replay each advance a
    fresh object.  Fault models are deliberately unsupported here: the
    bridge asserts *clean-model* equivalence, where every divergence is
    a bug rather than a wall-clock artifact.
    """
    defn = ALGORITHM_REGISTRY.get(algorithm)
    if config is None:
        config = defn.make_config()
    nodes = build_nodes(algorithm, instance, seed, config)
    sim = RecordingSimulation(
        dynamic_graph=_graph_of(graph_source),
        protocols=nodes,
        b=defn.resolve_tag_length(config),
        seed=seed,
        channel_policy=ChannelPolicy.for_upper_n(instance.upper_n),
        acceptance=acceptance,
        acceptance_streams="local",
        engine_mode=engine_mode,
    )
    result = sim.run(
        max_rounds=max_rounds,
        termination=all_hold_tokens(instance.token_ids),
    )
    final_tokens = {
        node.uid: tuple(sorted(node.known_tokens))
        for node in nodes.values()
    }
    return RecordedRun(
        algorithm=algorithm,
        seed=seed,
        rounds=result.rounds,
        solved=result.terminated,
        match_stream=tuple(sim.match_stream),
        final_tokens=final_tokens,
        acceptance=acceptance,
        instance=instance,
        graph_source=graph_source,
        config=config,
    )


@dataclass
class ReplayReport:
    """The live replay next to its recording, with any divergences."""

    record: RecordedRun
    live: NetRunReport
    divergences: list = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.divergences


def replay(record: RecordedRun, **opts) -> ReplayReport:
    """Replay ``record`` on a live loopback cluster and compare.

    Drives exactly ``record.rounds`` rounds (termination checks off) so
    the two match streams align round for round, then compares them as
    per-round sets plus the final token sets.
    """
    if record.rounds < 1:
        raise ConfigurationError("recorded run has no rounds to replay")
    coordinator = Coordinator(
        record.algorithm,
        _graph_of(record.graph_source),
        record.instance,
        record.seed,
        config=record.config,
        acceptance=record.acceptance,
        termination_every=0,
        **opts,
    )
    with coordinator:
        live = coordinator.run(max_rounds=record.rounds)

    divergences: list[str] = []
    for index, recorded in enumerate(record.match_stream):
        rnd = index + 1
        lived = (
            live.match_stream[index]
            if index < len(live.match_stream)
            else ()
        )
        if set(recorded) != set(lived):
            divergences.append(
                f"round {rnd}: simulated matches {sorted(recorded)} != "
                f"live matches {sorted(lived)}"
            )
    for uid in sorted(record.final_tokens):
        sim_tokens = record.final_tokens[uid]
        live_tokens = live.final_tokens.get(uid)
        if live_tokens != sim_tokens:
            divergences.append(
                f"node {uid}: simulated final tokens {sim_tokens} != "
                f"live {live_tokens}"
            )
    return ReplayReport(record=record, live=live, divergences=divergences)
