"""The replay bridge: simulated runs replayed on live clusters.

This is the net layer's keystone correctness instrument.
:func:`record_run` executes a simulation under
``acceptance_streams="local"`` — the per-target match streams a
distributed proposee can derive knowing only (seed, round, own UID) —
and records the post-drop match stream plus final token sets.
:func:`replay` then boots a live TCP cluster from the *same* seed and
drives it for the same number of rounds; because

* live nodes are built by the same registered builder from the same
  :class:`~repro.rng.SeedTree` (identical per-node private streams),
* the coordinator phase-barriers scan/propose per round (identical
  per-node draw order), and
* each proposee resolves contention with exactly the simulator's
  per-target stream and acceptance rule,

the live cluster's match stream and final token sets must equal the
simulation's.  :class:`ReplayReport` asserts that, listing any
divergences.  Tolerated divergences (documented in DESIGN.md §8):
within-round match *order* (matches are node-disjoint; both sides are
compared as sets per round) and wall-clock columns, which only the live
trace has.

With a fault model the bridge gets sharper teeth: ``record_run(...,
fault=...)`` records a *faulty* simulation, and ``replay(record,
chaos=True)`` replays it against a cluster where the same seeded
schedule is enacted **physically** by
:class:`~repro.net.chaos.ChaosModel` — PeerServers actually killed and
rebound, radios actually refusing connections, handshakes actually
interdicted mid-round.  Equivalence then certifies not just the clean
round structure but the entire fault pipeline: mask timing, crash
resets, drop draws, and the degradation machinery's non-interference.
(``replay(record)`` without ``chaos`` masks the same schedule
logically, which checks the schedule but not the physical enactment.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.runner import build_nodes
from repro.errors import ConfigurationError
from repro.net.coordinator import Coordinator, NetRunReport
from repro.registry import ALGORITHM_REGISTRY
from repro.sim.channel import ChannelPolicy
from repro.sim.engine import Simulation
from repro.sim.faults import build_fault
from repro.sim.termination import all_hold_tokens

__all__ = [
    "RecordedRun",
    "RecordingSimulation",
    "ReplayReport",
    "record_run",
    "replay",
]


class RecordingSimulation(Simulation):
    """A :class:`Simulation` that records the per-round match stream.

    ``_stage3`` receives exactly the matches that survived the fault
    layer's drop decision, so the recorded stream is directly
    comparable to :class:`~repro.net.coordinator.NetRunReport`'s.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.match_stream: list[tuple] = []

    def _stage3(self, rnd: int, matches) -> tuple[int, int]:
        self.match_stream.append(
            tuple((int(a), int(b)) for a, b in matches)
        )
        return super()._stage3(rnd, matches)


@dataclass(frozen=True)
class RecordedRun:
    """A simulated execution, pinned down enough to replay live."""

    algorithm: str
    seed: int
    rounds: int
    solved: bool
    match_stream: tuple
    final_tokens: dict
    acceptance: str
    instance: object
    graph_source: object
    config: object = None
    #: The fault spec (dict/name) the recording ran under, or None.
    #: Kept as a *spec*, not a model instance: both the logical and the
    #: chaos replay rebuild a fresh model from it, so the recording's
    #: consumed streams can never leak into the replay.
    fault: object = None


def _graph_of(graph_source):
    """A fresh dynamic graph: call factories, pass graphs through."""
    return graph_source() if callable(graph_source) else graph_source


def record_run(
    algorithm: str,
    graph_source,
    instance,
    seed: int,
    max_rounds: int = 512,
    *,
    acceptance: str = "uniform",
    engine_mode: str = "auto",
    config=None,
    fault=None,
) -> RecordedRun:
    """Simulate and record a run the live layer can replay.

    ``graph_source`` is a :class:`~repro.graphs.dynamic.DynamicGraph`
    or a zero-argument factory for one — pass a factory for stateful
    dynamics (mobility) so the recording and the replay each advance a
    fresh object.  ``fault`` is an optional fault *spec* (a registered
    name or a ``{"kind": ...}`` dict — not a model instance, so the
    replay can rebuild it fresh); the recording then captures a faulty
    execution that ``replay(..., chaos=True)`` can re-enact physically.
    """
    defn = ALGORITHM_REGISTRY.get(algorithm)
    if config is None:
        config = defn.make_config()
    if fault is not None and not isinstance(fault, (str, dict)):
        raise ConfigurationError(
            "record_run takes a fault *spec* (name or dict), not a model "
            "instance: the replay must rebuild the model from scratch so "
            "the recording's consumed streams cannot leak into it"
        )
    fault_model = (
        build_fault(
            {"kind": fault} if isinstance(fault, str) else fault,
            instance.n,
            seed,
        )
        if fault is not None
        else None
    )
    nodes = build_nodes(algorithm, instance, seed, config)
    sim = RecordingSimulation(
        dynamic_graph=_graph_of(graph_source),
        protocols=nodes,
        b=defn.resolve_tag_length(config),
        seed=seed,
        channel_policy=ChannelPolicy.for_upper_n(instance.upper_n),
        acceptance=acceptance,
        acceptance_streams="local",
        engine_mode=engine_mode,
        faults=fault_model,
    )
    result = sim.run(
        max_rounds=max_rounds,
        termination=all_hold_tokens(instance.token_ids),
    )
    final_tokens = {
        node.uid: tuple(sorted(node.known_tokens))
        for node in nodes.values()
    }
    return RecordedRun(
        algorithm=algorithm,
        seed=seed,
        rounds=result.rounds,
        solved=result.terminated,
        match_stream=tuple(sim.match_stream),
        final_tokens=final_tokens,
        acceptance=acceptance,
        instance=instance,
        graph_source=graph_source,
        config=config,
        fault=fault,
    )


@dataclass
class ReplayReport:
    """The live replay next to its recording, with any divergences."""

    record: RecordedRun
    live: NetRunReport
    divergences: list = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.divergences


def replay(record: RecordedRun, *, chaos: bool = False,
           **opts) -> ReplayReport:
    """Replay ``record`` on a live loopback cluster and compare.

    Drives exactly ``record.rounds`` rounds (termination checks off) so
    the two match streams align round for round, then compares them as
    per-round sets plus the final token sets (``snapshots("all")`` on
    the live side — a node that ends the run mid-outage still has its
    storage compared, exactly as the simulator's final state does).

    A recording made with a fault spec replays under the same schedule:
    masked logically by default, or — with ``chaos=True`` — enacted
    physically (servers killed/rebound, radios asleep, handshakes
    interdicted) through :class:`~repro.net.chaos.ChaosModel`.
    """
    if record.rounds < 1:
        raise ConfigurationError("recorded run has no rounds to replay")
    if chaos and record.fault is None:
        raise ConfigurationError(
            "chaos replay needs a recording made with a fault spec "
            "(record_run(..., fault=...))"
        )
    if record.fault is not None:
        if chaos:
            opts["chaos"] = record.fault
        else:
            opts.setdefault("fault", record.fault)
    coordinator = Coordinator(
        record.algorithm,
        _graph_of(record.graph_source),
        record.instance,
        record.seed,
        config=record.config,
        acceptance=record.acceptance,
        termination_every=0,
        **opts,
    )
    with coordinator:
        live = coordinator.run(max_rounds=record.rounds)

    divergences: list[str] = []
    for index, recorded in enumerate(record.match_stream):
        rnd = index + 1
        lived = (
            live.match_stream[index]
            if index < len(live.match_stream)
            else ()
        )
        if set(recorded) != set(lived):
            divergences.append(
                f"round {rnd}: simulated matches {sorted(recorded)} != "
                f"live matches {sorted(lived)}"
            )
    for uid in sorted(record.final_tokens):
        sim_tokens = record.final_tokens[uid]
        live_tokens = live.final_tokens.get(uid)
        if live_tokens != sim_tokens:
            divergences.append(
                f"node {uid}: simulated final tokens {sim_tokens} != "
                f"live {live_tokens}"
            )
    return ReplayReport(record=record, live=live, divergences=divergences)
