"""Deterministic physical fault injection for live clusters.

:class:`ChaosModel` wraps one :class:`~repro.sim.faults.FaultModel` and
enacts its decisions **physically** against a cluster of
:class:`~repro.net.server.PeerServer`\\ s instead of masking them in
software.  Because it consumes the *same* ``("faults", kind)`` seed
streams as the simulator — it literally holds the same model object a
:class:`~repro.sim.engine.Simulation` would build — the set of nodes
killed, asleep, or interdicted in live round *r* is byte-for-byte the
set the simulator masks or drops in round *r*.  That is what makes a
recorded faulty simulation replayable match-equivalent against a live
cluster experiencing *actual* failures.

How each fault family is enacted (chosen by the model's
``chaos_enactment`` attribute, declared next to the models in
:mod:`repro.sim.faults` so the two layers cannot drift):

``"kill"`` (:class:`~repro.sim.faults.CrashChurn`)
    A node entering an outage has its TCP endpoint torn down
    SIGKILL-style (:meth:`PeerServer.kill` — no draining, in-flight
    requests fail at their callers); if the model resets state, the
    node's tokens are reset through the same ``crashed_this_round``
    schedule and vertex order the simulator uses.  When the outage ends
    the server rebinds the *same* port (:meth:`PeerServer.revive`) and
    rejoins through the ordinary heartbeat / peer-table path.

``"sleep"`` (:class:`~repro.sim.faults.SleepCycle`)
    The endpoint stays bound but drops every connection without a reply
    (``asleep`` shim) — callers see closed-without-reply transport
    faults, exactly a radio that is off.

``"drop"`` (:class:`~repro.sim.faults.LossyLinks`)
    Per-match: after the round's matches resolve, the responder of each
    to-be-dropped match is told to fail that initiator's Stage-3 state
    pull at the socket level (:meth:`PeerServer.interdict`), so the
    initiator experiences a real mid-handshake link failure.

``"mask"`` (fallback)
    No physical enactment; the coordinator masks the node logically,
    as it does for plain ``fault=`` runs.

The coordinator *knows the plan*: chaos failures are scheduled, not
discovered, so rounds proceed over the planned-active set exactly like
the simulator's masked rounds.  Failures the plan does not cover (a
node that really dies) still flow through the retry-budget → suspect →
degradation machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.sim.faults import FaultModel

__all__ = ["ChaosModel", "ChaosRound"]


@dataclass(frozen=True)
class ChaosRound:
    """What one round of chaos did to the cluster, physically."""

    #: Planned-active vertex indices (None = everyone), mirroring the
    #: simulator's normalized ``active_mask``.
    active: tuple[int, ...] | None
    killed: tuple[int, ...] = ()
    revived: tuple[int, ...] = ()
    slept: tuple[int, ...] = ()
    woke: tuple[int, ...] = ()
    reset: tuple[int, ...] = ()
    interdicted: int = field(default=0, compare=False)


class ChaosModel:
    """Enacts a fault model's schedule against live peer servers."""

    def __init__(self, fault: FaultModel):
        if fault is None or fault.is_null:
            raise ConfigurationError(
                "ChaosModel needs a non-null fault model; run without "
                "chaos instead of wrapping NoFaults"
            )
        self.fault = fault
        self.enactment = getattr(fault, "chaos_enactment", "mask")
        self._servers: list = []
        self._by_uid: dict[int, object] = {}
        self._inactive: set[int] = set()

    def bind(self, servers) -> "ChaosModel":
        """Attach the cluster (vertex-ordered list of PeerServers)."""
        if len(servers) != self.fault.n:
            raise ConfigurationError(
                f"chaos fault model is sized for n={self.fault.n} but the "
                f"cluster has {len(servers)} servers"
            )
        self._servers = list(servers)
        self._by_uid = {server.uid: server for server in self._servers}
        self._inactive = set()
        return self

    # -- per-round enactment ------------------------------------------

    def enact(self, rnd: int, fault_round: int) -> ChaosRound:
        """Physically apply round ``fault_round``'s schedule.

        ``rnd`` is the coordinator round (for bookkeeping); the fault
        model is indexed by ``fault_round`` — the same clock-mapped
        index the simulator would pass.  Transitions are applied in
        vertex order, and state resets use ``crashed_this_round`` (the
        authoritative schedule) *before* the round's stages run —
        mirroring ``Simulation._apply_crash_resets`` exactly.
        """
        mask = self.fault.active_mask(fault_round)
        if mask is not None and bool(mask.all()):
            mask = None  # the simulator's normalization
        inactive_now = (
            set() if mask is None
            else {v for v in range(self.fault.n) if not mask[v]}
        )

        reset: list[int] = []
        if self.fault.resets_state:
            crashed = self.fault.crashed_this_round(fault_round)
            if crashed is None:
                crashed = sorted(inactive_now - self._inactive)
            for vertex in crashed:
                server = self._servers[int(vertex)]
                server.handle({"op": "reset"})
                reset.append(int(vertex))

        killed, revived, slept, woke = [], [], [], []
        going_down = sorted(inactive_now - self._inactive)
        coming_up = sorted(self._inactive - inactive_now)
        if self.enactment == "kill":
            for vertex in going_down:
                self._servers[vertex].kill()
                killed.append(vertex)
            for vertex in coming_up:
                self._servers[vertex].revive()
                revived.append(vertex)
        elif self.enactment == "sleep":
            for vertex in going_down:
                self._servers[vertex].asleep = True
                slept.append(vertex)
            for vertex in coming_up:
                self._servers[vertex].asleep = False
                woke.append(vertex)
        # "drop"/"mask": nothing endpoint-level per round; drops are
        # installed per match via interdict().
        self._inactive = inactive_now

        active = (
            None if mask is None
            else tuple(v for v in range(self.fault.n) if mask[v])
        )
        return ChaosRound(
            active=active,
            killed=tuple(killed),
            revived=tuple(revived),
            slept=tuple(slept),
            woke=tuple(woke),
            reset=tuple(reset),
        )

    def interdict(self, rnd: int, fault_round: int, matches) -> int:
        """Install socket-level drops for this round's doomed matches.

        ``matches`` is an iterable of resolved ``(initiator_uid,
        responder_uid)`` pairs — UIDs, matching the key the simulator
        passes to ``drop_connection``.  For each match the fault model
        dooms (the same pure draw the simulator makes), the responder's
        server is told to fail that initiator's Stage-3 state pull.
        Returns how many matches were interdicted.
        """
        count = 0
        for initiator_uid, responder_uid in matches:
            if self.fault.drop_connection(
                fault_round, int(initiator_uid), int(responder_uid)
            ):
                self._by_uid[int(responder_uid)].interdict(
                    rnd, int(initiator_uid)
                )
                count += 1
        return count

    def restore(self) -> None:
        """End-of-run cleanup: wake sleepers, revive the killed.

        Called before final snapshots so every node can report its
        state over the wire (the simulator's final state also includes
        currently-crashed vertices — their storage, not their radio).
        """
        for vertex in sorted(self._inactive):
            server = self._servers[vertex]
            if self.enactment == "kill" and server.dead:
                server.revive()
            elif self.enactment == "sleep":
                server.asleep = False
        self._inactive = set()

    def __repr__(self) -> str:
        return (
            f"ChaosModel({self.fault!r}, enactment={self.enactment!r})"
        )
