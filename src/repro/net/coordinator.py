"""Cluster bootstrap and the live round driver.

:class:`Coordinator` turns any registered (algorithm, topology,
instance) triple into a cluster of :class:`~repro.net.server.PeerServer`
processes-in-threads on localhost, then drives the mobile telephone
model's round structure over TCP: every simulated edge becomes a
peer-table entry, every round runs scan → propose → accept → connect as
request/response messages, and acceptance is enforced by the proposee
(see ``PeerServer._op_resolve``) exactly as
:func:`repro.sim.matching.resolve_proposals` does.

The coordinator never holds a node lock — all protocol state lives
behind the servers and moves over the wire.  Connects run concurrently
(matches are node-disjoint, so no two touch one node); everything else
is phase-barriered per round, which is what makes each node's private
draw order identical to the simulator's and hence makes the replay
bridge's equivalence assertion hold.

Robustness (the chaos-hardening layer):

* Every RPC goes through a shared :class:`~repro.net.errors.RetryPolicy`
  — bounded retries, exponential backoff, jitter drawn from a seeded
  ``("net", "retry", "coordinator")`` stream, so even the retry timing
  of a run is a pure function of its seed.
* A peer that exhausts its retry budget is marked **suspect**: it is
  dropped from every subsequent stage (neighbors stop seeing it, its
  hooks stop being called) and the round *completes over the surviving
  quorum* instead of hanging or raising.  Each round opens with a
  cheap single-attempt rejoin probe; a suspect that answers gets its
  neighbor table re-pushed and rejoins the next stages.
* With ``chaos=`` the coordinator holds a
  :class:`~repro.net.chaos.ChaosModel`: the same seeded fault schedule
  the simulator would mask is enacted *physically* (killed endpoints,
  sleeping radios, interdicted handshakes).  Chaos failures are
  planned, so the coordinator masks them logically exactly like the
  simulator — inactive vertices still run their hooks (via in-process
  dispatch, since their sockets are genuinely down) against empty
  neighborhoods, preserving per-node stream parity; matches the fault
  model dooms are not pre-dropped but *interdicted* and then really
  attempted, the resulting transport failures classified as dropped
  connections.  Unplanned failures still flow through the suspect
  machinery.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.runner import build_nodes
from repro.errors import ConfigurationError
from repro.graphs.dynamic import TAU_INFINITY
from repro.net.chaos import ChaosModel
from repro.net.errors import (
    DEFAULT_REQUEST_TIMEOUT,
    DEFAULT_RETRY_POLICY,
    ProtocolError,
    RetryPolicy,
    TransportError,
)
from repro.net.framing import request
from repro.net.server import PeerServer
from repro.net.trace import NetTrace
from repro.registry import ALGORITHM_REGISTRY, register_transport
from repro.rng import SeedTree
from repro.sim.channel import ChannelPolicy
from repro.sim.faults import build_fault

__all__ = ["Coordinator", "NetRunReport", "deploy_run"]


@dataclass
class NetRunReport:
    """Outcome of one live cluster run.

    ``match_stream[r-1]`` is round ``r``'s post-drop matches as
    ``(initiator_uid, responder_uid)`` pairs in resolution order —
    directly comparable to a recorded simulation's stream.

    The failure columns: ``retries``/``timeouts`` total every retried
    or timed-out RPC across the coordinator and all servers;
    ``suspects`` maps each still-suspect UID to the round it was marked
    in; ``suspect_events``/``rejoins`` count markings and re-admissions
    over the whole run; ``degraded_rounds`` counts rounds that ran over
    a surviving quorum; ``chaos_kills``/``chaos_revives`` count
    physically enacted outages.
    """

    algorithm: str
    n: int
    rounds: int
    solved: bool
    trace: NetTrace
    match_stream: list = field(default_factory=list)
    final_tokens: dict = field(default_factory=dict)
    wall_seconds: float = 0.0
    retries: int = 0
    timeouts: int = 0
    suspects: dict = field(default_factory=dict)
    suspect_events: int = 0
    rejoins: int = 0
    degraded_rounds: int = 0
    chaos_kills: int = 0
    chaos_revives: int = 0
    #: Final `metrics`-op snapshot per uid (scraped at run end): round
    #: progress, peer-table size, robustness counters, connect-latency
    #: histogram quantiles.  See ``PeerServer._op_metrics``.
    server_metrics: dict = field(default_factory=dict)

    @property
    def rounds_per_second(self) -> float | None:
        if self.wall_seconds <= 0 or self.rounds == 0:
            return None
        return self.rounds / self.wall_seconds

    @property
    def degraded(self) -> bool:
        """True if any round ran short-handed or ended with suspects."""
        return self.degraded_rounds > 0 or bool(self.suspects)


def _materialize_fault(fault, n: int, seed: int):
    """Accept a FaultModel, a registered name, a spec dict, or None."""
    if fault is None:
        return None
    if isinstance(fault, str):
        fault = {"kind": fault}
    if isinstance(fault, dict):
        return build_fault(fault, n, seed)
    return None if fault.is_null else fault


class Coordinator:
    """Boot a live cluster and drive rounds over real sockets.

    ``fault`` accepts the same forms as ``run_gossip`` and keys its
    masks off the round counter (``clock="cycle"``) or — the live
    layer's reason for the knob — off elapsed wall time in units of
    ``round_duration`` seconds (``clock="virtual"``), so a slow round
    can burn through several fault windows just as a slow phone would.
    Faults are *logical*: the coordinator masks vertices in software.

    ``chaos`` accepts the same forms but enacts the schedule
    **physically** through a :class:`~repro.net.chaos.ChaosModel` —
    killed endpoints, sleeping radios, interdicted handshakes — while
    keeping the same logical round structure, so a chaos run is
    match-equivalent to the same seed's simulation.  ``fault`` and
    ``chaos`` are mutually exclusive.

    ``retry`` is the :class:`~repro.net.errors.RetryPolicy` every RPC
    uses (None = single-shot); a peer that exhausts it is suspected and
    the run degrades gracefully instead of raising.

    ``heartbeat_every`` > 0 makes every server heartbeat its peer table
    each time that many rounds complete, and ``heartbeat_max_age``
    (seconds) prunes peers not heard from within the horizon — the
    liveness machinery the loopback tests drive with a virtual clock.
    """

    def __init__(
        self,
        algorithm: str,
        dynamic_graph,
        instance,
        seed: int,
        *,
        config=None,
        acceptance: str = "uniform",
        channel_policy: ChannelPolicy | None = None,
        fault=None,
        chaos=None,
        retry: RetryPolicy | None = DEFAULT_RETRY_POLICY,
        heartbeat_every: int = 0,
        heartbeat_max_age: float | None = None,
        round_duration: float | None = None,
        trace_sample_every: int = 1,
        termination_every: int = 1,
        host: str = "127.0.0.1",
        connect_workers: int = 8,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    ):
        defn = ALGORITHM_REGISTRY.get(algorithm)
        if dynamic_graph.n != instance.n:
            raise ConfigurationError(
                f"graph has n={dynamic_graph.n} but instance has "
                f"n={instance.n}"
            )
        if defn.requires_stable_topology and dynamic_graph.tau != TAU_INFINITY:
            raise ConfigurationError(
                f"{algorithm} assumes a stable topology (tau = infinity); "
                f"got tau={dynamic_graph.tau}"
            )
        self.algorithm = algorithm
        self.dynamic_graph = dynamic_graph
        self.instance = instance
        self.seed = seed
        if config is None:
            config = defn.make_config()
        self.config = config
        self.acceptance = acceptance
        self.faults = _materialize_fault(fault, dynamic_graph.n, seed)
        chaos_fault = _materialize_fault(chaos, dynamic_graph.n, seed)
        if self.faults is not None and chaos_fault is not None:
            raise ConfigurationError(
                "fault= and chaos= are mutually exclusive: the same "
                "schedule is either masked logically or enacted "
                "physically, not both"
            )
        self.heartbeat_every = heartbeat_every
        self.heartbeat_max_age = heartbeat_max_age
        self.round_duration = round_duration
        self.termination_every = termination_every
        self.connect_workers = connect_workers
        self.request_timeout = request_timeout
        self.retry_policy = retry
        self._retry_rng = (
            SeedTree(seed).child("net").stream("retry", "coordinator")
        )
        policy = channel_policy or ChannelPolicy.for_upper_n(
            instance.upper_n
        )
        b = defn.resolve_tag_length(config)
        nodes = build_nodes(algorithm, instance, seed, config)
        self.servers = {
            vertex: PeerServer(
                nodes[vertex],
                uid=instance.uid_of(vertex),
                vertex=vertex,
                seed=seed,
                b=b,
                acceptance=acceptance,
                channel_policy=policy,
                host=host,
                request_timeout=request_timeout,
                retry=retry,
            )
            for vertex in range(instance.n)
        }
        self._by_uid = {
            server.uid: server for server in self.servers.values()
        }
        self.chaos = (
            None
            if chaos_fault is None
            else ChaosModel(chaos_fault).bind(
                [self.servers[v] for v in sorted(self.servers)]
            )
        )
        self.trace = NetTrace(sample_every=trace_sample_every)
        self.match_stream: list[tuple] = []
        self.suspects: dict[int, int] = {}
        self.suspect_events = 0
        self.rejoins = 0
        self._retries = 0
        self._timeouts = 0
        self._epoch: int | None = None
        self._neighbors: dict[int, list[int]] = {}
        self._entries_by_vertex: dict[int, list] = {}
        self._started = False
        self._wall_start: float | None = None

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "Coordinator":
        for vertex in sorted(self.servers):
            self.servers[vertex].start()
        self._started = True
        return self

    def stop(self) -> None:
        for vertex in sorted(self.servers):
            self.servers[vertex].stop()
        self._started = False

    def __enter__(self) -> "Coordinator":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- RPC plumbing -------------------------------------------------

    def _ask(
        self,
        uid: int,
        obj: dict,
        *,
        retry: RetryPolicy | None | str = "default",
        timeout: float | None = None,
    ) -> dict:
        server = self._by_uid[uid]
        host, port = server.address
        policy = self.retry_policy if retry == "default" else retry
        reply = request(
            host,
            port,
            obj,
            timeout=self.request_timeout if timeout is None else timeout,
            retry=policy,
            rng=self._retry_rng,
            on_retry=self._note_retry,
            uid=uid,
        )
        if "error" in reply:
            raise ProtocolError(
                f"peer {uid} failed {obj.get('op')!r}: {reply['error']}",
                uid=uid,
                op=obj.get("op"),
                remote_type=reply.get("error_type"),
            )
        return reply

    def _ask_local(self, vertex: int, obj: dict) -> dict:
        """In-process dispatch for a chaos-inactive node.

        A killed or sleeping endpoint cannot answer TCP, but the
        simulator still runs every masked node's hooks each round
        (against empty neighborhoods) — so the coordinator runs them
        directly on the server object, preserving per-node private
        stream parity.  The phone's CPU keeps running; only its radio
        is down.
        """
        reply = self.servers[vertex].handle(obj)
        if "error" in reply:
            raise ProtocolError(
                f"peer vertex {vertex} failed {obj.get('op')!r} locally: "
                f"{reply['error']}",
                uid=self.instance.uid_of(vertex),
                op=obj.get("op"),
            )
        return reply

    def _note_retry(self, exc: TransportError, attempt: int,
                    delay: float) -> None:
        self._retries += 1
        if exc.kind == "timeout":
            self._timeouts += 1

    def _suspect(self, uid: int, rnd: int) -> None:
        """Mark ``uid`` suspect: dropped from every stage until rejoin."""
        if uid not in self.suspects:
            self.suspects[uid] = rnd
            self.suspect_events += 1

    def _probe_rejoins(self, rnd: int) -> None:
        """One cheap single-attempt probe per suspect, each round.

        A suspect that answers is re-admitted: its neighbor table is
        re-pushed (it may have missed an epoch while unreachable) and
        it participates again from this round's stages on.
        """
        probe_timeout = min(1.0, self.request_timeout)
        for uid in sorted(self.suspects):
            server = self._by_uid[uid]
            if server.dead or server.asleep:
                continue  # endpoint verifiably down; skip the probe
            try:
                self._ask(uid, {"op": "ping"}, retry=None,
                          timeout=probe_timeout)
                entries = self._entries_by_vertex.get(server.vertex)
                if entries is not None:
                    self._ask(
                        uid,
                        {"op": "set_neighbors", "entries": entries},
                        retry=None,
                        timeout=probe_timeout,
                    )
            except (TransportError, ProtocolError):
                continue
            del self.suspects[uid]
            self.rejoins += 1

    # -- round driver -------------------------------------------------

    def _install_epoch(self, rnd: int) -> None:
        epoch = self.dynamic_graph.epoch_of(rnd)
        if epoch == self._epoch:
            return
        graph = self.dynamic_graph.graph_at(rnd)
        uid_of = self.instance.uid_of
        self._neighbors = {
            vertex: sorted(graph.neighbors(vertex))
            for vertex in range(self.instance.n)
        }
        for vertex in sorted(self.servers):
            entries = []
            for nb in self._neighbors[vertex]:
                nb_server = self.servers[nb]
                nb_host, nb_port = nb_server.address
                entries.append([uid_of(nb), nb_host, nb_port, nb])
            self._entries_by_vertex[vertex] = entries
            msg = {"op": "set_neighbors", "entries": entries}
            server = self.servers[vertex]
            uid = uid_of(vertex)
            if server.dead or server.asleep:
                # Chaos-inactive: install directly; the table must be
                # current when the node's radio comes back.
                self._ask_local(vertex, msg)
            elif uid in self.suspects:
                continue  # re-pushed by the rejoin probe on re-admission
            else:
                try:
                    self._ask(uid, msg)
                except TransportError:
                    self._suspect(uid, rnd)
        self._epoch = epoch

    def _fault_round(self, rnd: int) -> int:
        """The index fault/chaos schedules key off for round ``rnd``."""
        model = (
            self.faults
            if self.faults is not None
            else (self.chaos.fault if self.chaos is not None else None)
        )
        if (
            model is not None
            and model.clock == "virtual"
            and self.round_duration
            and self._wall_start is not None
        ):
            elapsed = time.monotonic() - self._wall_start
            return int(elapsed / self.round_duration) + 1
        return rnd

    def run_round(self, rnd: int) -> None:
        uid_of = self.instance.uid_of
        n = self.instance.n
        fault_round = self._fault_round(rnd)
        retries_before = self._total_retries()
        timeouts_before = self._total_timeouts()
        rejoins_before = self.rejoins

        if self.suspects:
            self._probe_rejoins(rnd)

        # Planned inactivity: a fault model masks logically, a chaos
        # model enacts physically — either way the coordinator knows
        # the plan, exactly like the simulator.
        chaos_round = None
        if self.chaos is not None:
            chaos_round = self.chaos.enact(rnd, fault_round)
            active_set = (
                None
                if chaos_round.active is None
                else set(chaos_round.active)
            )
        elif self.faults is not None:
            mask = self.faults.active_mask(fault_round)
            if mask is not None and bool(mask.all()):
                mask = None
            active_set = (
                None
                if mask is None
                else {v for v in range(n) if mask[v]}
            )
            if self.faults.resets_state:
                crashed = self.faults.crashed_this_round(fault_round)
                if crashed is None:
                    crashed = ()
                for vertex in crashed:
                    self._ask(uid_of(int(vertex)), {"op": "reset"})
        else:
            active_set = None

        self._install_epoch(rnd)

        def active(vertex: int) -> bool:
            return active_set is None or vertex in active_set

        def planned_down(vertex: int) -> bool:
            """Chaos-inactive: socket is really down; dispatch locally."""
            return self.chaos is not None and not active(vertex)

        suspects = self.suspects
        visible = {
            vertex: (
                [
                    nb
                    for nb in self._neighbors[vertex]
                    if active(nb) and uid_of(nb) not in suspects
                ]
                if active(vertex) and uid_of(vertex) not in suspects
                else []
            )
            for vertex in range(n)
        }

        # Stage 1 — scan.  Every vertex runs its hook (a masked vertex
        # sees an empty neighborhood), mirroring the masked simulator;
        # chaos-inactive vertices run it in-process since their socket
        # is genuinely down.  A vertex that stops answering is
        # suspected and the round continues without it.
        tags: dict[int, int] = {}
        for vertex in range(n):
            uid = uid_of(vertex)
            if uid in suspects:
                continue
            msg = {
                "op": "advertise",
                "round": rnd,
                "neighbors": [uid_of(nb) for nb in visible[vertex]],
            }
            if planned_down(vertex):
                tags[uid] = self._ask_local(vertex, msg)["tag"]
                continue
            try:
                tags[uid] = self._ask(uid, msg)["tag"]
            except TransportError:
                self._suspect(uid, rnd)

        # Stage 2a — propose.  Sequential on purpose: each server
        # delivers its proposal peer-to-peer before the next runs, so
        # proposal sends can never form a waiting cycle.  Views carry
        # only neighbors that actually advertised this round.
        proposal_count = 0
        targets: set[int] = set()
        for vertex in range(n):
            uid = uid_of(vertex)
            if uid in suspects:
                continue
            views = [
                [uid_of(nb), tags[uid_of(nb)]]
                for nb in visible[vertex]
                if uid_of(nb) in tags
            ]
            msg = {"op": "propose", "round": rnd, "views": views}
            try:
                reply = (
                    self._ask_local(vertex, msg)
                    if planned_down(vertex)
                    else self._ask(uid, msg)
                )
            except TransportError:
                self._suspect(uid, rnd)
                continue
            if reply["target"] is not None:
                proposal_count += 1
                if reply.get("delivered"):
                    targets.add(int(reply["target"]))

        # Stage 2b — accept, enforced by each proposee.
        matches = []
        for target in sorted(targets):
            if target in suspects:
                continue
            try:
                reply = self._ask(target, {"op": "resolve", "round": rnd})
            except TransportError:
                self._suspect(target, rnd)
                continue
            if reply["winner"] is not None:
                matches.append((int(reply["winner"]), target))

        # Connection drops.  A logical fault pre-drops doomed matches
        # (the simulator's exact behavior); a chaos model *interdicts*
        # them — the responder will fail the initiator's handshake at
        # the socket level — and the failure is observed for real below.
        dropped = 0
        if self.chaos is not None and matches:
            self.chaos.interdict(rnd, fault_round, matches)
        elif self.faults is not None:
            kept = []
            for initiator, responder in matches:
                if self.faults.drop_connection(
                    fault_round, initiator, responder
                ):
                    dropped += 1
                else:
                    kept.append((initiator, responder))
            matches = kept

        # Stage 3 — connect.  Matches are node-disjoint, so concurrent
        # connections never touch one node from two sides.  A failed
        # handshake (interdicted, or the peer died) is a dropped
        # connection this round, not an aborted run.
        tokens_moved = 0
        control_bits = 0

        def connect(match):
            initiator, responder = match
            try:
                reply = self._ask(
                    initiator,
                    {"op": "connect", "round": rnd, "responder": responder},
                )
                return match, reply, None
            except (TransportError, ProtocolError) as exc:
                return match, None, exc

        surviving = []
        if matches:
            workers = min(self.connect_workers, len(matches))
            if workers > 1:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    outcomes = list(pool.map(connect, matches))
            else:
                outcomes = [connect(match) for match in matches]
            for match, reply, exc in outcomes:
                if reply is not None:
                    surviving.append(match)
                    tokens_moved += reply["tokens_moved"]
                    control_bits += reply["bits"]
                    self.trace.record_connection(rnd, reply["latency_s"])
                    continue
                initiator, responder = match
                if isinstance(exc, ProtocolError):
                    if not exc.transport_related:
                        raise exc  # a real bug, not a broken link
                    # The initiator's Stage-3 pull hit a dead/lossy
                    # responder: a failed connection, charged to the
                    # link; the responder answers for itself next time
                    # something addresses it directly.
                    dropped += 1
                else:
                    # The initiator itself is unreachable.
                    dropped += 1
                    self._suspect(initiator, rnd)
        matches = surviving

        # Liveness plumbing, quorum-only: suspects and planned-down
        # nodes are skipped (their radios are off; beats to them would
        # just burn the retry budget).
        if self.heartbeat_every and rnd % self.heartbeat_every == 0:
            for vertex in sorted(self.servers):
                uid = uid_of(vertex)
                if uid in suspects or planned_down(vertex):
                    continue
                try:
                    self._ask(uid, {"op": "beat"})
                except TransportError:
                    self._suspect(uid, rnd)
            if self.heartbeat_max_age is not None:
                for vertex in sorted(self.servers):
                    uid = uid_of(vertex)
                    if uid in suspects or planned_down(vertex):
                        continue
                    try:
                        self._ask(
                            uid,
                            {"op": "prune",
                             "max_age": self.heartbeat_max_age},
                        )
                    except TransportError:
                        self._suspect(uid, rnd)

        self.match_stream.append(tuple(matches))
        active_count = n if active_set is None else len(active_set)
        self._push_status(rnd, active_count)
        self.trace.suspect_events = self.suspect_events
        self.trace.close_round(
            round_index=rnd,
            proposals=proposal_count,
            connections=len(matches),
            tokens_moved=tokens_moved,
            control_bits=control_bits,
            active_nodes=active_count - len(suspects),
            dropped_connections=dropped,
            retries=self._total_retries() - retries_before,
            timeouts=self._total_timeouts() - timeouts_before,
            suspects=len(suspects),
            rejoins=self.rejoins - rejoins_before,
            chaos_killed=(
                0 if chaos_round is None else len(chaos_round.killed)
            ),
            chaos_revived=(
                0 if chaos_round is None else len(chaos_round.revived)
            ),
            degraded=bool(suspects),
        )

    def _push_status(self, rnd: int, active_count: int) -> None:
        """Relay the cluster-level view to every reachable server.

        The coordinator is not itself an endpoint, so ``repro-gossip
        top`` — which polls one *server's* ``metrics`` op — learns the
        cluster round and suspect count only through this push.
        Single-shot and failure-tolerant: a status push is periodic
        telemetry, never worth a retry or a suspicion.
        """
        status = {
            "op": "status",
            "round": rnd,
            "suspects": len(self.suspects),
            "active": active_count - len(self.suspects),
            "n": self.instance.n,
        }
        push_timeout = min(1.0, self.request_timeout)
        for vertex in sorted(self.servers):
            server = self.servers[vertex]
            uid = self.instance.uid_of(vertex)
            if uid in self.suspects:
                continue
            if server.dead or server.asleep:
                self._ask_local(vertex, status)
                continue
            try:
                self._ask(uid, status, retry=None, timeout=push_timeout)
            except (TransportError, ProtocolError):
                pass

    def scrape_metrics(self) -> dict[int, dict]:
        """uid -> `metrics`-op snapshot, for every server.

        Reads over the wire when the endpoint answers, in-process when
        it is dead, asleep, or suspect (its counters still exist).
        """
        result: dict[int, dict] = {}
        for vertex in sorted(self.servers):
            server = self.servers[vertex]
            uid = self.instance.uid_of(vertex)
            unreachable = (
                server.dead or server.asleep or uid in self.suspects
            )
            if unreachable:
                result[uid] = self._ask_local(vertex, {"op": "metrics"})
                continue
            try:
                result[uid] = self._ask(uid, {"op": "metrics"})
            except TransportError:
                result[uid] = self._ask_local(vertex, {"op": "metrics"})
        return result

    def _total_retries(self) -> int:
        return self._retries + sum(
            s.stats["retries"] for s in self.servers.values()
        )

    def _total_timeouts(self) -> int:
        return self._timeouts + sum(
            s.stats["timeouts"] for s in self.servers.values()
        )

    # -- state readout ------------------------------------------------

    def snapshots(self, include: str = "all") -> dict[int, tuple]:
        """uid -> sorted tuple of known token ids.

        ``include="all"`` reads every node — over the wire when the
        endpoint answers, in-process when it is dead, asleep, or
        suspect (a crashed phone's *storage* still exists, and the
        simulator's final state includes crashed vertices too).
        ``include="quorum"`` reads only currently reachable,
        non-suspect nodes — the set a degraded termination check may
        legitimately consult.
        """
        if include not in ("all", "quorum"):
            raise ConfigurationError(
                f"snapshots(include=...) must be 'all' or 'quorum', "
                f"got {include!r}"
            )
        result = {}
        for vertex in sorted(self.servers):
            server = self.servers[vertex]
            uid = self.instance.uid_of(vertex)
            unreachable = (
                server.dead or server.asleep or uid in self.suspects
            )
            if unreachable:
                if include == "quorum":
                    continue
                reply = self._ask_local(vertex, {"op": "snapshot"})
            else:
                try:
                    reply = self._ask(uid, {"op": "snapshot"})
                except TransportError:
                    if include == "quorum":
                        self._suspect(uid, self.trace.total_rounds)
                        continue
                    reply = self._ask_local(vertex, {"op": "snapshot"})
            result[uid] = tuple(reply["tokens"])
        return result

    def _solved(self) -> bool:
        """Has the surviving quorum finished?  (Degradation-aware: dead
        or suspect nodes do not gate termination — the simulator's
        all-nodes criterion is checked by the replay bridge, which runs
        a fixed round count instead.)"""
        wanted = self.instance.token_ids
        snaps = self.snapshots(include="quorum")
        if not snaps:
            return False
        return all(wanted <= set(tokens) for tokens in snaps.values())

    def run(self, max_rounds: int = 512) -> NetRunReport:
        """Drive rounds until the quorum holds every token (or the cap)."""
        if not self._started:
            raise ConfigurationError(
                "coordinator not started; use `with Coordinator(...)` or "
                "call start() first"
            )
        self._wall_start = time.monotonic()
        started = time.perf_counter()
        solved = False
        rounds = 0
        for rnd in range(1, max_rounds + 1):
            self.run_round(rnd)
            rounds = rnd
            if (
                self.termination_every
                and rnd % self.termination_every == 0
                and self._solved()
            ):
                solved = True
                break
        wall = time.perf_counter() - started
        self.trace.wall_seconds = wall
        if self.chaos is not None:
            # Wake/revive everyone before the final readout and stop:
            # the run is over, and the report reads each node's state
            # through the normal path where possible.
            self.chaos.restore()
        chaos_kills = sum(
            s.stats["kills"] for s in self.servers.values()
        )
        chaos_revives = sum(
            s.stats["revives"] for s in self.servers.values()
        )
        return NetRunReport(
            algorithm=self.algorithm,
            n=self.instance.n,
            rounds=rounds,
            solved=solved,
            trace=self.trace,
            match_stream=list(self.match_stream),
            final_tokens=self.snapshots(include="all"),
            wall_seconds=wall,
            retries=self._total_retries(),
            timeouts=self._total_timeouts(),
            suspects=dict(self.suspects),
            suspect_events=self.suspect_events,
            rejoins=self.rejoins,
            degraded_rounds=self.trace.degraded_rounds,
            chaos_kills=chaos_kills,
            chaos_revives=chaos_revives,
            server_metrics=self.scrape_metrics(),
        )


@register_transport(
    name="tcp",
    description="loopback TCP peer servers: one socket endpoint per node, "
                "length-prefixed JSON framing, seeded retry/backoff with "
                "graceful degradation, optional physical chaos injection "
                "(repro.net)",
)
def deploy_run(
    scenario=None,
    *,
    algorithm: str | None = None,
    dynamic_graph=None,
    instance=None,
    seed: int = 0,
    max_rounds: int = 512,
    **opts,
) -> NetRunReport:
    """Deploy a live cluster and run it to completion.

    Pass either a :class:`~repro.workloads.scenarios.Scenario` — or a
    registered scenario name, materialized with the run seed — (its
    topology, instance, and recommended algorithm are used; overrides
    via keywords) or the explicit pieces.  This is the ``tcp``
    transport's registry entry point, shared by ``repro-gossip serve``
    and ``Experiment.deploy()``.

    ``chaos=`` selects physical fault injection: a fault spec/name/model
    to enact, or ``True``/``"auto"`` to take the scenario's (or the
    explicit ``fault=`` option's) schedule and enact it physically
    instead of masking it logically.
    """
    chaos = opts.pop("chaos", None)
    if isinstance(scenario, str):
        from repro.registry import SCENARIO_REGISTRY

        scenario = SCENARIO_REGISTRY.get(scenario).factory(seed=seed)
    if scenario is not None:
        if getattr(scenario, "timing", None) is not None:
            raise ConfigurationError(
                f"scenario {scenario.name!r} uses a timing model; the live "
                "layer is inherently asynchronous and does not replay "
                "simulated clocks"
            )
        algorithm = algorithm or scenario.recommended_algorithm
        dynamic_graph = dynamic_graph or scenario.dynamic_graph
        instance = instance or scenario.instance
        if chaos is None and scenario.fault is not None:
            opts.setdefault("fault", scenario.fault)
    if chaos in (True, "auto"):
        chaos = opts.pop("fault", None)
        if chaos is None and scenario is not None:
            chaos = scenario.fault
        if chaos is None:
            raise ConfigurationError(
                "chaos='auto' needs a fault schedule to enact — from the "
                "scenario or an explicit fault= option"
            )
    if chaos not in (None, False):
        opts["chaos"] = chaos
    if algorithm is None or dynamic_graph is None or instance is None:
        raise ConfigurationError(
            "deploy_run needs a scenario or all of algorithm, "
            "dynamic_graph, and instance"
        )
    coordinator = Coordinator(
        algorithm, dynamic_graph, instance, seed, **opts
    )
    with coordinator:
        return coordinator.run(max_rounds=max_rounds)
