"""Cluster bootstrap and the live round driver.

:class:`Coordinator` turns any registered (algorithm, topology,
instance) triple into a cluster of :class:`~repro.net.server.PeerServer`
processes-in-threads on localhost, then drives the mobile telephone
model's round structure over TCP: every simulated edge becomes a
peer-table entry, every round runs scan → propose → accept → connect as
request/response messages, and acceptance is enforced by the proposee
(see ``PeerServer._op_resolve``) exactly as
:func:`repro.sim.matching.resolve_proposals` does.

The coordinator never touches a node object after construction — all
state lives behind the servers and moves over the wire.  Connects run
concurrently (matches are node-disjoint, so no two touch one node);
everything else is phase-barriered per round, which is what makes each
node's private draw order identical to the simulator's and hence makes
the replay bridge's equivalence assertion hold.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.runner import build_nodes
from repro.errors import ConfigurationError
from repro.graphs.dynamic import TAU_INFINITY
from repro.net.framing import request
from repro.net.server import PeerServer
from repro.net.trace import NetTrace
from repro.registry import ALGORITHM_REGISTRY, register_transport
from repro.sim.channel import ChannelPolicy
from repro.sim.faults import build_fault

__all__ = ["Coordinator", "NetRunReport", "deploy_run"]


@dataclass
class NetRunReport:
    """Outcome of one live cluster run.

    ``match_stream[r-1]`` is round ``r``'s post-drop matches as
    ``(initiator_uid, responder_uid)`` pairs in resolution order —
    directly comparable to a recorded simulation's stream.
    """

    algorithm: str
    n: int
    rounds: int
    solved: bool
    trace: NetTrace
    match_stream: list = field(default_factory=list)
    final_tokens: dict = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def rounds_per_second(self) -> float | None:
        if self.wall_seconds <= 0 or self.rounds == 0:
            return None
        return self.rounds / self.wall_seconds


def _materialize_fault(fault, n: int, seed: int):
    """Accept a FaultModel, a registered name, a spec dict, or None."""
    if fault is None:
        return None
    if isinstance(fault, str):
        fault = {"kind": fault}
    if isinstance(fault, dict):
        return build_fault(fault, n, seed)
    return None if fault.is_null else fault


class Coordinator:
    """Boot a live cluster and drive rounds over real sockets.

    ``fault`` accepts the same forms as ``run_gossip`` and keys its
    masks off the round counter (``clock="cycle"``) or — the live
    layer's reason for the knob — off elapsed wall time in units of
    ``round_duration`` seconds (``clock="virtual"``), so a slow round
    can burn through several fault windows just as a slow phone would.

    ``heartbeat_every`` > 0 makes every server heartbeat its peer table
    each time that many rounds complete, and ``heartbeat_max_age``
    (seconds) prunes peers not heard from within the horizon — the
    liveness machinery the loopback tests drive with a virtual clock.
    """

    def __init__(
        self,
        algorithm: str,
        dynamic_graph,
        instance,
        seed: int,
        *,
        config=None,
        acceptance: str = "uniform",
        channel_policy: ChannelPolicy | None = None,
        fault=None,
        heartbeat_every: int = 0,
        heartbeat_max_age: float | None = None,
        round_duration: float | None = None,
        trace_sample_every: int = 1,
        termination_every: int = 1,
        host: str = "127.0.0.1",
        connect_workers: int = 8,
        request_timeout: float = 10.0,
    ):
        defn = ALGORITHM_REGISTRY.get(algorithm)
        if dynamic_graph.n != instance.n:
            raise ConfigurationError(
                f"graph has n={dynamic_graph.n} but instance has "
                f"n={instance.n}"
            )
        if defn.requires_stable_topology and dynamic_graph.tau != TAU_INFINITY:
            raise ConfigurationError(
                f"{algorithm} assumes a stable topology (tau = infinity); "
                f"got tau={dynamic_graph.tau}"
            )
        self.algorithm = algorithm
        self.dynamic_graph = dynamic_graph
        self.instance = instance
        self.seed = seed
        if config is None:
            config = defn.make_config()
        self.config = config
        self.acceptance = acceptance
        self.faults = _materialize_fault(fault, dynamic_graph.n, seed)
        self.heartbeat_every = heartbeat_every
        self.heartbeat_max_age = heartbeat_max_age
        self.round_duration = round_duration
        self.termination_every = termination_every
        self.connect_workers = connect_workers
        self.request_timeout = request_timeout
        policy = channel_policy or ChannelPolicy.for_upper_n(
            instance.upper_n
        )
        b = defn.resolve_tag_length(config)
        nodes = build_nodes(algorithm, instance, seed, config)
        self.servers = {
            vertex: PeerServer(
                nodes[vertex],
                uid=instance.uid_of(vertex),
                vertex=vertex,
                seed=seed,
                b=b,
                acceptance=acceptance,
                channel_policy=policy,
                host=host,
                request_timeout=request_timeout,
            )
            for vertex in range(instance.n)
        }
        self._by_uid = {
            server.uid: server for server in self.servers.values()
        }
        self.trace = NetTrace(sample_every=trace_sample_every)
        self.match_stream: list[tuple] = []
        self._epoch: int | None = None
        self._neighbors: dict[int, list[int]] = {}
        self._started = False
        self._wall_start: float | None = None

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "Coordinator":
        for vertex in sorted(self.servers):
            self.servers[vertex].start()
        self._started = True
        return self

    def stop(self) -> None:
        for vertex in sorted(self.servers):
            self.servers[vertex].stop()
        self._started = False

    def __enter__(self) -> "Coordinator":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _ask(self, uid: int, obj: dict) -> dict:
        server = self._by_uid[uid]
        host, port = server.address
        reply = request(host, port, obj, timeout=self.request_timeout)
        if "error" in reply:
            raise ConfigurationError(
                f"peer {uid} failed {obj.get('op')!r}: {reply['error']}"
            )
        return reply

    # -- round driver -------------------------------------------------

    def _install_epoch(self, rnd: int) -> None:
        epoch = self.dynamic_graph.epoch_of(rnd)
        if epoch == self._epoch:
            return
        graph = self.dynamic_graph.graph_at(rnd)
        uid_of = self.instance.uid_of
        self._neighbors = {
            vertex: sorted(graph.neighbors(vertex))
            for vertex in range(self.instance.n)
        }
        for vertex in sorted(self.servers):
            entries = []
            for nb in self._neighbors[vertex]:
                nb_server = self.servers[nb]
                nb_host, nb_port = nb_server.address
                entries.append([uid_of(nb), nb_host, nb_port, nb])
            self._ask(
                uid_of(vertex), {"op": "set_neighbors", "entries": entries}
            )
        self._epoch = epoch

    def _fault_round(self, rnd: int) -> int:
        """The index fault masks key off for round ``rnd``."""
        if (
            self.faults is not None
            and self.faults.clock == "virtual"
            and self.round_duration
            and self._wall_start is not None
        ):
            elapsed = time.monotonic() - self._wall_start
            return int(elapsed / self.round_duration) + 1
        return rnd

    def run_round(self, rnd: int) -> None:
        self._install_epoch(rnd)
        uid_of = self.instance.uid_of
        n = self.instance.n
        fault_round = self._fault_round(rnd)
        mask = (
            self.faults.active_mask(fault_round)
            if self.faults is not None
            else None
        )

        def active(vertex: int) -> bool:
            return mask is None or bool(mask[vertex])

        if self.faults is not None and self.faults.resets_state:
            for vertex in self.faults.crashed_this_round(fault_round):
                self._ask(uid_of(int(vertex)), {"op": "reset"})

        visible = {
            vertex: (
                [nb for nb in self._neighbors[vertex] if active(nb)]
                if active(vertex)
                else []
            )
            for vertex in range(n)
        }

        # Stage 1 — scan.  Every vertex runs its hook (a masked vertex
        # sees an empty neighborhood), mirroring the masked simulator.
        tags: dict[int, int] = {}
        for vertex in range(n):
            uid = uid_of(vertex)
            reply = self._ask(
                uid,
                {
                    "op": "advertise",
                    "round": rnd,
                    "neighbors": [uid_of(nb) for nb in visible[vertex]],
                },
            )
            tags[uid] = reply["tag"]

        # Stage 2a — propose.  Sequential on purpose: each server
        # delivers its proposal peer-to-peer before the next runs, so
        # proposal sends can never form a waiting cycle.
        proposal_count = 0
        targets: set[int] = set()
        for vertex in range(n):
            uid = uid_of(vertex)
            views = [
                [uid_of(nb), tags[uid_of(nb)]] for nb in visible[vertex]
            ]
            reply = self._ask(
                uid, {"op": "propose", "round": rnd, "views": views}
            )
            if reply["target"] is not None:
                proposal_count += 1
                targets.add(int(reply["target"]))

        # Stage 2b — accept, enforced by each proposee.
        matches = []
        for target in sorted(targets):
            reply = self._ask(target, {"op": "resolve", "round": rnd})
            if reply["winner"] is not None:
                matches.append((int(reply["winner"]), target))

        dropped = 0
        if self.faults is not None:
            kept = []
            for initiator, responder in matches:
                if self.faults.drop_connection(
                    fault_round, initiator, responder
                ):
                    dropped += 1
                else:
                    kept.append((initiator, responder))
            matches = kept

        # Stage 3 — connect.  Matches are node-disjoint, so concurrent
        # connections never touch one node from two sides.
        tokens_moved = 0
        control_bits = 0

        def connect(match):
            initiator, responder = match
            return self._ask(
                initiator,
                {"op": "connect", "round": rnd, "responder": responder},
            )

        if matches:
            workers = min(self.connect_workers, len(matches))
            if workers > 1:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    replies = list(pool.map(connect, matches))
            else:
                replies = [connect(match) for match in matches]
            for reply in replies:
                tokens_moved += reply["tokens_moved"]
                control_bits += reply["bits"]
                self.trace.record_connection(rnd, reply["latency_s"])

        if self.heartbeat_every and rnd % self.heartbeat_every == 0:
            for vertex in sorted(self.servers):
                self._ask(uid_of(vertex), {"op": "beat"})
            if self.heartbeat_max_age is not None:
                for vertex in sorted(self.servers):
                    self._ask(
                        uid_of(vertex),
                        {"op": "prune",
                         "max_age": self.heartbeat_max_age},
                    )

        self.match_stream.append(tuple(matches))
        self.trace.close_round(
            round_index=rnd,
            proposals=proposal_count,
            connections=len(matches),
            tokens_moved=tokens_moved,
            control_bits=control_bits,
            active_nodes=(
                n if mask is None else int(mask.sum())
            ),
            dropped_connections=dropped,
        )

    def snapshots(self) -> dict[int, tuple]:
        """uid -> sorted tuple of known token ids, over the wire."""
        result = {}
        for vertex in sorted(self.servers):
            uid = self.instance.uid_of(vertex)
            reply = self._ask(uid, {"op": "snapshot"})
            result[uid] = tuple(reply["tokens"])
        return result

    def _solved(self) -> bool:
        wanted = self.instance.token_ids
        return all(
            wanted <= set(tokens) for tokens in self.snapshots().values()
        )

    def run(self, max_rounds: int = 512) -> NetRunReport:
        """Drive rounds until every node holds every token (or the cap)."""
        if not self._started:
            raise ConfigurationError(
                "coordinator not started; use `with Coordinator(...)` or "
                "call start() first"
            )
        self._wall_start = time.monotonic()
        started = time.perf_counter()
        solved = False
        rounds = 0
        for rnd in range(1, max_rounds + 1):
            self.run_round(rnd)
            rounds = rnd
            if (
                self.termination_every
                and rnd % self.termination_every == 0
                and self._solved()
            ):
                solved = True
                break
        wall = time.perf_counter() - started
        self.trace.wall_seconds = wall
        return NetRunReport(
            algorithm=self.algorithm,
            n=self.instance.n,
            rounds=rounds,
            solved=solved,
            trace=self.trace,
            match_stream=list(self.match_stream),
            final_tokens=self.snapshots(),
            wall_seconds=wall,
        )


@register_transport(
    name="tcp",
    description="loopback TCP peer servers: one socket endpoint per node, "
                "length-prefixed JSON framing (repro.net)",
)
def deploy_run(
    scenario=None,
    *,
    algorithm: str | None = None,
    dynamic_graph=None,
    instance=None,
    seed: int = 0,
    max_rounds: int = 512,
    **opts,
) -> NetRunReport:
    """Deploy a live cluster and run it to completion.

    Pass either a :class:`~repro.workloads.scenarios.Scenario` — or a
    registered scenario name, materialized with the run seed — (its
    topology, instance, and recommended algorithm are used; overrides
    via keywords) or the explicit pieces.  This is the ``tcp``
    transport's registry entry point, shared by ``repro-gossip serve``
    and ``Experiment.deploy()``.
    """
    if isinstance(scenario, str):
        from repro.registry import SCENARIO_REGISTRY

        scenario = SCENARIO_REGISTRY.get(scenario).factory(seed=seed)
    if scenario is not None:
        if getattr(scenario, "timing", None) is not None:
            raise ConfigurationError(
                f"scenario {scenario.name!r} uses a timing model; the live "
                "layer is inherently asynchronous and does not replay "
                "simulated clocks"
            )
        algorithm = algorithm or scenario.recommended_algorithm
        dynamic_graph = dynamic_graph or scenario.dynamic_graph
        instance = instance or scenario.instance
        opts.setdefault("fault", scenario.fault)
    if algorithm is None or dynamic_graph is None or instance is None:
        raise ConfigurationError(
            "deploy_run needs a scenario or all of algorithm, "
            "dynamic_graph, and instance"
        )
    coordinator = Coordinator(
        algorithm, dynamic_graph, instance, seed, **opts
    )
    with coordinator:
        return coordinator.run(max_rounds=max_rounds)
