"""Failure taxonomy and retry policy for the live deployment layer.

The mobile telephone model *expects* peers to vanish and reappear — the
fault layer (:mod:`repro.sim.faults`) simulates exactly that — so the
live layer has to treat transport failure as a first-class, classified
event rather than letting raw ``OSError``\\ s escape.  Two families:

* :class:`TransportError` — the wire failed: connection refused, socket
  timeout, reset, the peer hung up mid-frame.  These are **retryable**
  (a later attempt against the same address can legitimately succeed;
  the peer may be rebooting, sleeping its radio, or mid-rejoin) except
  for *frame* faults (corrupt length prefix, malformed payload), which
  indicate a broken peer rather than a broken link.
* :class:`ProtocolError` — the wire worked but the peer rejected or
  failed the operation (an ``{"error": ...}`` reply).  Never retried:
  repeating a request the peer understood and refused cannot help, and
  retrying it could double-run a protocol hook.

:class:`RetryPolicy` is the one backoff discipline every retrying call
site shares (``framing.request``, ``PeerServer.call_peer``, the
``Coordinator``): bounded attempts, exponential delays, and *seeded*
jitter — the jitter draw comes from a caller-provided ``random.Random``
(derived from the run's :class:`~repro.rng.SeedTree` under a dedicated
``("net", "retry", ...)`` path), so a run's complete retry schedule is
a pure function of the seed and tests can pin it without sleeping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError

__all__ = [
    "DEFAULT_REQUEST_TIMEOUT",
    "DEFAULT_RETRY_POLICY",
    "THREAD_JOIN_TIMEOUT",
    "NetError",
    "ProtocolError",
    "RetryBudgetExceeded",
    "RetryPolicy",
    "TransportError",
]

#: The one request timeout every layer defaults to.  PR 7 shipped 5.0 s
#: in ``server.py`` and 10.0 s in ``coordinator.py``; a coordinator
#: waiting longer than the servers it drives just stretches the hang it
#: is trying to bound, so both now share this constant.
DEFAULT_REQUEST_TIMEOUT = 5.0

#: How long :meth:`~repro.net.server.PeerServer.stop` waits for the
#: accept loop and any in-flight handler threads before reporting them
#: leaked.
THREAD_JOIN_TIMEOUT = 5.0


class NetError(ReproError):
    """Base class for live-layer failures (transport or protocol)."""


class TransportError(NetError):
    """A peer connection failed or sent a malformed frame.

    Carries the peer's ``host:port`` (and UID / op when the caller knows
    them) so a failure inside a 32-node round names the peer that broke
    instead of surfacing a bare ``[Errno 111]``.  ``kind`` classifies
    the failure (``"refused"``, ``"timeout"``, ``"reset"``, ``"eof"``,
    ``"frame"``, or the generic ``"transport"``); ``retryable`` is the
    single bit retry loops consult.
    """

    def __init__(
        self,
        message: str,
        *,
        host: str | None = None,
        port: int | None = None,
        uid: int | None = None,
        op: str | None = None,
        kind: str = "transport",
        retryable: bool = True,
    ):
        super().__init__(message)
        self.host = host
        self.port = port
        self.uid = uid
        self.op = op
        self.kind = kind
        self.retryable = retryable

    @property
    def peer(self) -> str | None:
        """``host:port`` of the peer that failed, when known."""
        if self.host is None:
            return None
        return f"{self.host}:{self.port}"


class RetryBudgetExceeded(TransportError):
    """Every attempt a :class:`RetryPolicy` allowed failed.

    Terminal by construction (``retryable`` is False — the budget *was*
    the retrying); ``attempts`` records how many tries were burned and
    ``__cause__`` chains the last underlying :class:`TransportError`.
    This is the signal the :class:`~repro.net.coordinator.Coordinator`
    turns into a *suspect* marking.
    """

    def __init__(self, message: str, *, attempts: int, **context):
        context.setdefault("retryable", False)
        super().__init__(message, **context)
        self.attempts = attempts


class ProtocolError(NetError):
    """The peer processed the frame but the operation itself failed.

    Raised from an ``{"error": ...}`` reply.  ``remote_type`` is the
    exception class name the peer reported; when the peer's failure was
    itself a transport fault (e.g. an initiator's Stage-3 state pull
    hit a dead responder), :attr:`transport_related` lets the caller
    classify the match as a failed *connection* rather than a bug.
    """

    def __init__(
        self,
        message: str,
        *,
        uid: int | None = None,
        op: str | None = None,
        remote_type: str | None = None,
    ):
        super().__init__(message)
        self.uid = uid
        self.op = op
        self.remote_type = remote_type

    @property
    def transport_related(self) -> bool:
        return self.remote_type in (
            "TransportError",
            "RetryBudgetExceeded",
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff + jitter.

    ``attempts`` is the total number of tries (1 = no retrying).  The
    delay before retry *i* (1-based) is
    ``min(base_delay * factor**(i-1), max_delay)``, stretched by up to
    ``jitter`` (a fraction) drawn from the caller's seeded ``rng`` —
    with no ``rng`` the schedule is the bare exponential.  Delays are a
    pure function of (policy, rng state), so a run's retry timing is
    derivable from its seed; tests inject a recording ``sleep`` and
    assert the schedule without waiting it out.
    """

    attempts: int = 3
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.factor < 1:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def delay(self, attempt: int, rng=None) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        base = min(self.base_delay * self.factor ** (attempt - 1),
                   self.max_delay)
        if rng is not None and self.jitter and base > 0:
            base *= 1.0 + self.jitter * rng.random()
        return base


#: The default policy for every live RPC: three tries, 50 ms first
#: backoff, doubling, capped at 1 s — a dead peer costs at most ~2.2 s
#: of retrying before it is handed to the suspect machinery.
DEFAULT_RETRY_POLICY = RetryPolicy()
