"""Wire framing for the live deployment layer: length-prefixed JSON.

Every message is a 4-byte big-endian unsigned length followed by that
many bytes of UTF-8 compact JSON.  One request per TCP connection keeps
the protocol trivially correct under threading (no stream multiplexing,
no partial-read state machine beyond :func:`_recv_exact`) at the cost of
a connect per message — fine for localhost clusters, and honest about
what a smartphone pairing costs.

Stdlib only by design: ``struct`` + ``json`` + ``socket``.
"""

from __future__ import annotations

import json
import socket
import struct

__all__ = [
    "MAX_FRAME",
    "TransportError",
    "recv_msg",
    "request",
    "send_msg",
]

HEADER = struct.Struct("!I")

#: Upper bound on one frame's payload.  Snapshots of an n=4096 cluster
#: with long payload strings stay far below this; anything bigger is a
#: corrupt length prefix, not a message.
MAX_FRAME = 16 * 1024 * 1024


class TransportError(RuntimeError):
    """A peer connection failed or sent a malformed frame."""


def send_msg(sock: socket.socket, obj) -> None:
    """Send one JSON-able object as a length-prefixed frame."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise TransportError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME={MAX_FRAME}"
        )
    sock.sendall(HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes, or None on clean EOF at a boundary."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise TransportError(
                f"connection closed mid-frame ({count - remaining}/{count}"
                " bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket):
    """Receive one frame; ``None`` on clean EOF before a header."""
    header = _recv_exact(sock, HEADER.size)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME:
        raise TransportError(
            f"frame length {length} exceeds MAX_FRAME={MAX_FRAME}"
        )
    payload = _recv_exact(sock, length)
    if payload is None:
        raise TransportError("connection closed between header and payload")
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"malformed frame payload: {exc}") from exc


def request(host: str, port: int, obj, timeout: float = 5.0):
    """One request/response round trip on a fresh TCP connection."""
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            send_msg(sock, obj)
            reply = recv_msg(sock)
    except OSError as exc:
        raise TransportError(
            f"request to {host}:{port} failed: {exc}"
        ) from exc
    if reply is None:
        raise TransportError(f"{host}:{port} closed without replying")
    return reply
