"""Wire framing for the live deployment layer: length-prefixed JSON.

Every message is a 4-byte big-endian unsigned length followed by that
many bytes of UTF-8 compact JSON.  One request per TCP connection keeps
the protocol trivially correct under threading (no stream multiplexing,
no partial-read state machine beyond :func:`_recv_exact`) at the cost of
a connect per message — fine for localhost clusters, and honest about
what a smartphone pairing costs.

Every socket-level failure inside :func:`request` is translated into a
:class:`~repro.net.errors.TransportError` that names the peer
(``host:port``, plus UID/op when the caller supplies them) and carries a
failure ``kind`` — refused, timeout, reset, eof, frame — so retry loops
can distinguish a rebooting peer from a corrupt one.  Pass a
:class:`~repro.net.errors.RetryPolicy` (and a seeded ``rng``) to retry
retryable faults with deterministic exponential backoff.

Stdlib only by design: ``struct`` + ``json`` + ``socket``.
"""

from __future__ import annotations

import json
import socket
import struct
import time

from repro.net.errors import (
    DEFAULT_REQUEST_TIMEOUT,
    RetryBudgetExceeded,
    RetryPolicy,
    TransportError,
)

__all__ = [
    "DEFAULT_REQUEST_TIMEOUT",
    "MAX_FRAME",
    "TransportError",
    "recv_msg",
    "request",
    "send_msg",
]

HEADER = struct.Struct("!I")

#: Upper bound on one frame's payload.  Snapshots of an n=4096 cluster
#: with long payload strings stay far below this; anything bigger is a
#: corrupt length prefix, not a message.
MAX_FRAME = 16 * 1024 * 1024


def send_msg(sock: socket.socket, obj) -> None:
    """Send one JSON-able object as a length-prefixed frame."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise TransportError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME={MAX_FRAME}",
            kind="frame", retryable=False,
        )
    sock.sendall(HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes, or None on clean EOF at a boundary."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise TransportError(
                f"connection closed mid-frame ({count - remaining}/{count}"
                " bytes read)",
                kind="eof",
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket):
    """Receive one frame; ``None`` on clean EOF before a header."""
    header = _recv_exact(sock, HEADER.size)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME:
        raise TransportError(
            f"frame length {length} exceeds MAX_FRAME={MAX_FRAME}",
            kind="frame", retryable=False,
        )
    payload = _recv_exact(sock, length)
    if payload is None:
        raise TransportError(
            "connection closed between header and payload", kind="eof"
        )
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(
            f"malformed frame payload: {exc}", kind="frame", retryable=False
        ) from exc


def _classify_os_error(exc: OSError) -> str:
    """Map an OSError subclass to a TransportError ``kind``."""
    if isinstance(exc, TimeoutError):  # socket.timeout is an alias
        return "timeout"
    if isinstance(exc, ConnectionRefusedError):
        return "refused"
    if isinstance(exc, (ConnectionResetError, BrokenPipeError,
                        ConnectionAbortedError)):
        return "reset"
    return "transport"


def _request_once(host, port, obj, timeout, *, op, uid):
    """One request/response attempt; every error path closes the socket
    (``create_connection`` is a context manager, and a failure inside it
    tears the connection down before the exception propagates)."""
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            send_msg(sock, obj)
            reply = recv_msg(sock)
    except TransportError as exc:
        if exc.host is not None:
            raise
        # Annotate frame/eof faults raised below us with peer context.
        raise TransportError(
            f"request to {host}:{port}"
            + (f" (uid {uid})" if uid is not None else "")
            + (f" op {op!r}" if op else "") + f" failed: {exc}",
            host=host, port=port, uid=uid, op=op,
            kind=exc.kind, retryable=exc.retryable,
        ) from exc
    except OSError as exc:
        kind = _classify_os_error(exc)
        detail = (
            f"timed out after {timeout}s" if kind == "timeout" else str(exc)
        )
        raise TransportError(
            f"request to {host}:{port}"
            + (f" (uid {uid})" if uid is not None else "")
            + (f" op {op!r}" if op else "") + f" failed: {detail}",
            host=host, port=port, uid=uid, op=op, kind=kind,
        ) from exc
    if reply is None:
        raise TransportError(
            f"{host}:{port}"
            + (f" (uid {uid})" if uid is not None else "")
            + " closed without replying"
            + (f" to op {op!r}" if op else ""),
            host=host, port=port, uid=uid, op=op, kind="eof",
        )
    return reply


def request(
    host: str,
    port: int,
    obj,
    timeout: float = DEFAULT_REQUEST_TIMEOUT,
    *,
    retry: RetryPolicy | None = None,
    rng=None,
    sleep=time.sleep,
    on_retry=None,
    uid: int | None = None,
):
    """One request/response round trip on a fresh TCP connection.

    With a :class:`~repro.net.errors.RetryPolicy`, retryable transport
    faults (refused / timeout / reset / eof — a peer rebooting or
    sleeping its radio) are retried up to ``retry.attempts`` times with
    exponential backoff jittered by the seeded ``rng``; frame faults
    (corruption) are never retried.  ``on_retry(exc, attempt, delay)``
    is called before each backoff so callers can count retries and
    timeouts; ``sleep`` is injectable so tests record the deterministic
    schedule instead of waiting it out.  When the budget runs out the
    final error is a :class:`~repro.net.errors.RetryBudgetExceeded`
    chaining the last underlying fault.
    """
    op = obj.get("op") if isinstance(obj, dict) else None
    attempts = retry.attempts if retry is not None else 1
    last: TransportError | None = None
    for attempt in range(1, attempts + 1):
        try:
            return _request_once(host, port, obj, timeout, op=op, uid=uid)
        except TransportError as exc:
            last = exc
            if not exc.retryable or attempt == attempts:
                break
            delay = retry.delay(attempt, rng)
            if on_retry is not None:
                on_retry(exc, attempt, delay)
            if delay > 0:
                sleep(delay)
    if attempts > 1 and last.retryable:
        raise RetryBudgetExceeded(
            f"request to {host}:{port}"
            + (f" (uid {uid})" if uid is not None else "")
            + (f" op {op!r}" if op else "")
            + f" failed after {attempts} attempts: {last}",
            attempts=attempts, host=host, port=port, uid=uid, op=op,
            kind=last.kind,
        ) from last
    raise last
