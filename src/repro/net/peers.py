"""Peer tables with heartbeat-based liveness pruning.

Each :class:`~repro.net.server.PeerServer` holds a :class:`PeerTable`
mapping neighbor UIDs to addresses — the live analogue of one row of the
simulator's adjacency structure.  Entries age out when their last
heartbeat is older than a caller-chosen horizon; every time-touching
method accepts an explicit ``now`` so tests can drive liveness with a
virtual clock instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace

__all__ = ["PeerEntry", "PeerTable"]


@dataclass(frozen=True)
class PeerEntry:
    """One known peer: identity, address, and last heartbeat instant."""

    uid: int
    host: str
    port: int
    vertex: int = -1
    last_seen: float = 0.0


class PeerTable:
    """Thread-safe UID → :class:`PeerEntry` map with liveness pruning."""

    def __init__(self):
        self._lock = threading.Lock()
        self._entries: dict[int, PeerEntry] = {}

    def upsert(self, entry: PeerEntry) -> None:
        with self._lock:
            self._entries[entry.uid] = entry

    def replace_all(self, entries) -> None:
        """Install a fresh neighbor set (a topology epoch change)."""
        table = {entry.uid: entry for entry in entries}
        with self._lock:
            self._entries = table

    def heartbeat(self, uid: int, now: float | None = None) -> bool:
        """Refresh ``uid``'s last-seen instant; False if unknown."""
        stamp = time.monotonic() if now is None else now
        with self._lock:
            entry = self._entries.get(uid)
            if entry is None:
                return False
            self._entries[uid] = replace(entry, last_seen=stamp)
            return True

    def get(self, uid: int) -> PeerEntry | None:
        with self._lock:
            return self._entries.get(uid)

    def uids(self) -> tuple[int, ...]:
        with self._lock:
            return tuple(sorted(self._entries))

    def entries(self) -> tuple[PeerEntry, ...]:
        with self._lock:
            return tuple(
                self._entries[uid] for uid in sorted(self._entries)
            )

    def touch_all(self, now: float | None = None) -> None:
        """Refresh every entry's ``last_seen`` to ``now``.

        The rejoin path: a peer that was killed and revived still holds
        its pre-outage table, whose stamps are all older than the
        outage — without a refresh its first prune would evict every
        neighbor it needs to rejoin through.  A rejoining phone trusts
        its stored peer list until heartbeats say otherwise.
        """
        stamp = time.monotonic() if now is None else now
        with self._lock:
            self._entries = {
                uid: replace(entry, last_seen=stamp)
                for uid, entry in self._entries.items()
            }

    def prune(self, max_age: float, now: float | None = None) -> tuple[int, ...]:
        """Drop peers not heard from within ``max_age``; return their UIDs."""
        stamp = time.monotonic() if now is None else now
        with self._lock:
            stale = tuple(
                uid
                for uid, entry in sorted(self._entries.items())
                if stamp - entry.last_seen > max_age
            )
            for uid in stale:
                del self._entries[uid]
        return stale

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, uid: int) -> bool:
        with self._lock:
            return uid in self._entries
