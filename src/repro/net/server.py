"""A live peer server wrapping one registered protocol node.

Each :class:`PeerServer` owns exactly one protocol object (the *same*
class the simulator builds — PPushNode, BlindMatchNode, SharedBitNode,
LeaderElectionNode, ...) and exposes the mobile telephone model's round
primitives as request/response operations over the framing protocol:

========== ==========================================================
op          meaning
========== ==========================================================
advertise   run the node's scan-stage hook, reply with its b-bit tag
propose     run the propose hook; deliver the proposal peer-to-peer
proposal    (peer-to-peer) record an incoming proposal for a round
resolve     proposee-enforced acceptance over the round's inbox —
            exactly ``resolve_proposals`` semantics (proposals to
            proposers are lost; ties break by the registered
            acceptance rule on the per-target SeedTree stream)
connect     initiator-side Stage 3: pull the responder's visible
            state, run ``interact`` against a remote-peer adapter
            under the metered :class:`~repro.sim.channel.Channel`,
            push the deltas back
========== ==========================================================

plus cluster plumbing (``ping``/``set_neighbors``/``heartbeat``/
``beat``/``peers``/``prune``), state transfer (``state_pull``/
``state_push``/``snapshot``/``reset``), and ``stop``.

Lock discipline: the node lock is **never held across an outbound
network call**.  ``propose`` computes the target under the lock, then
delivers the proposal with the lock released; ``connect`` pulls remote
state first, runs ``interact`` locally under the lock, then pushes
deltas.  Matches are node-disjoint within a round, so concurrent
connects never contend for one node from two sides.

Determinism: a server derives its acceptance draws from
``SeedTree(seed).child("engine").stream("match", round, "uid", uid)`` —
the same per-target streams the simulator uses under
``acceptance_streams="local"`` — so a proposee knowing only the run
seed, the round number, and its own UID reproduces the simulator's
coin flips exactly.  That is what makes the replay bridge's
equivalence assertion possible.
"""

from __future__ import annotations

import socketserver
import threading
import time

from repro.core.tokens import Token
from repro.errors import ConfigurationError
from repro.net.framing import TransportError, recv_msg, request, send_msg
from repro.net.peers import PeerEntry, PeerTable
from repro.rng import SeedTree
from repro.sim.channel import Channel, ChannelPolicy
from repro.sim.context import NeighborView
from repro.sim.matching import ACCEPTANCE_RULES

__all__ = ["PeerServer"]


class _RemoteTokenPeer:
    """Stand-in for a remote token-gossip node during ``interact``.

    ``run_transfer`` touches only ``known_tokens``, ``token(id)`` and
    ``store_token`` on its peer; this adapter serves those from a pulled
    snapshot and records stores as deltas to push back.
    """

    def __init__(self, tokens: list):
        self._tokens = {
            int(tid): Token(int(tid), payload, int(origin))
            for tid, payload, origin in tokens
        }
        self.received: list[Token] = []

    @property
    def known_tokens(self) -> frozenset:
        return frozenset(self._tokens)

    def token(self, token_id: int) -> Token:
        return self._tokens[token_id]

    def store_token(self, token: Token) -> None:
        if token.token_id not in self._tokens:
            self._tokens[token.token_id] = token
            self.received.append(token)

    def deltas(self) -> dict | None:
        if not self.received:
            return None
        return {
            "kind": "tokens",
            "tokens": [
                [t.token_id, t.payload, t.origin_uid] for t in self.received
            ],
        }


class _RemotePPushPeer:
    """Stand-in for a remote PPUSH responder during ``interact``."""

    def __init__(self, informed: bool, rumor):
        self._was_informed = informed
        self.rumor = (
            Token(int(rumor[0]), rumor[1], int(rumor[2]))
            if rumor is not None
            else None
        )
        self.informed_at_round = None

    @property
    def informed(self) -> bool:
        return self.rumor is not None

    def deltas(self) -> dict | None:
        if self._was_informed or self.rumor is None:
            return None
        return {
            "kind": "ppush",
            "rumor": [
                self.rumor.token_id,
                self.rumor.payload,
                self.rumor.origin_uid,
            ],
            "informed_at_round": self.informed_at_round,
        }


class _Handler(socketserver.BaseRequestHandler):
    """One request per connection: read a frame, dispatch, reply."""

    def handle(self):
        try:
            msg = recv_msg(self.request)
        except TransportError:
            return
        if msg is None:
            return
        try:
            reply = self.server.peer_server.handle(msg)
        except Exception as exc:  # surfaced to the caller, not swallowed
            reply = {"error": f"{type(exc).__name__}: {exc}"}
        try:
            send_msg(self.request, reply)
        except OSError:
            pass


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class PeerServer:
    """One protocol node behind a threaded TCP endpoint."""

    def __init__(
        self,
        node,
        *,
        uid: int,
        vertex: int,
        seed: int,
        b: int,
        acceptance: str = "uniform",
        channel_policy: ChannelPolicy | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout: float = 5.0,
    ):
        if acceptance not in ACCEPTANCE_RULES:
            raise ConfigurationError(
                f"unknown acceptance rule {acceptance!r}; live servers "
                f"support {sorted(ACCEPTANCE_RULES)}"
            )
        self.node = node
        self.uid = uid
        self.vertex = vertex
        self.acceptance = acceptance
        self.channel_policy = channel_policy or ChannelPolicy.for_upper_n(
            max(uid, 1)
        )
        self.max_tag = (1 << b) - 1
        self.request_timeout = request_timeout
        self.table = PeerTable()
        self._engine_tree = SeedTree(seed).child("engine")
        self._lock = threading.RLock()
        self._proposed: dict[int, int | None] = {}
        self._inbox: dict[int, list[int]] = {}
        self._server = _TCPServer((host, port), _Handler)
        self._server.peer_server = self
        self._thread: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._server.server_address[:2]
        return host, port

    def start(self) -> "PeerServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"peer-{self.uid}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "PeerServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- dispatch -----------------------------------------------------

    def handle(self, msg: dict) -> dict:
        op = msg.get("op")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            return {"error": f"unknown op {op!r}"}
        return handler(msg)

    def _peer_request(self, entry: PeerEntry, obj) -> dict:
        reply = request(
            entry.host, entry.port, obj, timeout=self.request_timeout
        )
        if "error" in reply:
            raise TransportError(
                f"peer {entry.uid} rejected {obj.get('op')!r}: "
                f"{reply['error']}"
            )
        return reply

    # -- cluster plumbing ---------------------------------------------

    def _op_ping(self, msg: dict) -> dict:
        return {"ok": True, "uid": self.uid, "vertex": self.vertex}

    def _op_set_neighbors(self, msg: dict) -> dict:
        now = msg.get("now")
        stamp = time.monotonic() if now is None else float(now)
        self.table.replace_all(
            PeerEntry(
                uid=int(uid),
                host=host,
                port=int(port),
                vertex=int(vertex),
                last_seen=stamp,
            )
            for uid, host, port, vertex in msg["entries"]
        )
        return {"ok": True, "peers": len(self.table)}

    def _op_heartbeat(self, msg: dict) -> dict:
        return {
            "ok": self.table.heartbeat(int(msg["from"]), now=msg.get("now"))
        }

    def _op_peers(self, msg: dict) -> dict:
        return {"uids": list(self.table.uids())}

    def _op_beat(self, msg: dict) -> dict:
        """Send one heartbeat to every known peer; dead peers tolerated."""
        now = msg.get("now")
        delivered, failed = [], []
        for entry in self.table.entries():  # snapshot; no lock held below
            beat = {"op": "heartbeat", "from": self.uid}
            if now is not None:
                beat["now"] = now
            try:
                self._peer_request(entry, beat)
                delivered.append(entry.uid)
            except TransportError:
                failed.append(entry.uid)
        return {"delivered": delivered, "failed": failed}

    def _op_prune(self, msg: dict) -> dict:
        removed = self.table.prune(
            float(msg["max_age"]), now=msg.get("now")
        )
        return {"removed": list(removed)}

    # -- round structure ----------------------------------------------

    def _op_advertise(self, msg: dict) -> dict:
        rnd = int(msg["round"])
        neighbor_uids = tuple(int(u) for u in msg.get("neighbors", ()))
        with self._lock:
            tag = int(self.node.advertise(rnd, neighbor_uids))
        if not 0 <= tag <= self.max_tag:
            raise ConfigurationError(
                f"node {self.uid} advertised tag {tag} outside "
                f"[0, {self.max_tag}]"
            )
        return {"tag": tag}

    def _op_propose(self, msg: dict) -> dict:
        rnd = int(msg["round"])
        views = tuple(
            NeighborView(uid=int(uid), tag=int(tag))
            for uid, tag in msg.get("views", ())
        )
        with self._lock:
            target = self.node.propose(rnd, views)
            self._proposed[rnd] = target
            self._proposed.pop(rnd - 8, None)  # bounded per-round memory
        if target is not None:
            entry = self.table.get(int(target))
            if entry is None:
                raise TransportError(
                    f"node {self.uid} proposed to unknown peer {target} "
                    f"in round {rnd}"
                )
            self._peer_request(
                entry, {"op": "proposal", "round": rnd, "from": self.uid}
            )
        return {"target": target}

    def _op_proposal(self, msg: dict) -> dict:
        rnd = int(msg["round"])
        with self._lock:
            self._inbox.setdefault(rnd, []).append(int(msg["from"]))
        return {"ok": True}

    def _op_resolve(self, msg: dict) -> dict:
        """Proposee-enforced acceptance: ``resolve_proposals`` semantics.

        A node that proposed this round loses its incoming proposals
        (the model's collision rule); a contested inbox is settled by
        the registered acceptance rule, drawing — for ``uniform`` — from
        this target's own match stream, which is exactly the draw the
        simulator makes under ``acceptance_streams="local"``.
        """
        rnd = int(msg["round"])
        with self._lock:
            proposed = self._proposed.get(rnd)
            senders = sorted(set(self._inbox.pop(rnd, ())))
        if proposed is not None or not senders:
            return {"winner": None, "senders": len(senders)}
        if len(senders) == 1:
            return {"winner": senders[0], "senders": 1}
        rng = (
            self._engine_tree.stream("match", rnd, "uid", self.uid)
            if self.acceptance == "uniform"
            else None
        )
        winner = ACCEPTANCE_RULES[self.acceptance](senders, rng)
        return {"winner": int(winner), "senders": len(senders)}

    def _op_connect(self, msg: dict) -> dict:
        """Initiator-side Stage 3 against a remote responder."""
        rnd = int(msg["round"])
        responder_uid = int(msg["responder"])
        entry = self.table.get(responder_uid)
        if entry is None:
            raise TransportError(
                f"node {self.uid} has no peer entry for responder "
                f"{responder_uid}"
            )
        started = time.perf_counter()
        pulled = self._peer_request(entry, {"op": "state_pull"})
        if pulled["kind"] == "tokens":
            adapter = _RemoteTokenPeer(pulled["tokens"])
        elif pulled["kind"] == "ppush":
            adapter = _RemotePPushPeer(pulled["informed"], pulled["rumor"])
        else:
            raise TransportError(
                f"responder {responder_uid} pulled unknown state kind "
                f"{pulled['kind']!r}"
            )
        with self._lock:
            channel = Channel(rnd, self.uid, responder_uid,
                              self.channel_policy)
            self.node.interact(adapter, channel, rnd)
            channel.close()
        deltas = adapter.deltas()
        if deltas is not None:
            push = dict(deltas, op="state_push", round=rnd)
            self._peer_request(entry, push)
        latency = time.perf_counter() - started
        return {
            "tokens_moved": channel.tokens_moved,
            "bits": channel.bits.total_bits,
            "latency_s": latency,
        }

    # -- state transfer -----------------------------------------------

    def _op_state_pull(self, msg: dict) -> dict:
        with self._lock:
            node = self.node
            if hasattr(node, "store_token"):
                return {
                    "kind": "tokens",
                    "tokens": [
                        [t.token_id, t.payload, t.origin_uid]
                        for t in sorted(
                            (node.token(tid) for tid in node.known_tokens),
                            key=lambda t: t.token_id,
                        )
                    ],
                }
            rumor = node.rumor
            return {
                "kind": "ppush",
                "informed": node.informed,
                "rumor": None
                if rumor is None
                else [rumor.token_id, rumor.payload, rumor.origin_uid],
            }

    def _op_state_push(self, msg: dict) -> dict:
        with self._lock:
            node = self.node
            if msg["kind"] == "tokens":
                stored = 0
                for tid, payload, origin in msg["tokens"]:
                    token = Token(int(tid), payload, int(origin))
                    if not node.has_token(token.token_id):
                        node.store_token(token)
                        stored += 1
                return {"ok": True, "stored": stored}
            if msg["kind"] == "ppush":
                if not node.informed:
                    tid, payload, origin = msg["rumor"]
                    node.rumor = Token(int(tid), payload, int(origin))
                    node.informed_at_round = msg.get("informed_at_round")
                    return {"ok": True, "stored": 1}
                return {"ok": True, "stored": 0}
            return {"error": f"unknown state kind {msg['kind']!r}"}

    def _op_snapshot(self, msg: dict) -> dict:
        with self._lock:
            return {
                "uid": self.uid,
                "vertex": self.vertex,
                "tokens": sorted(self.node.known_tokens),
            }

    def _op_reset(self, msg: dict) -> dict:
        """Crash-with-state-loss hook (fault models with resets)."""
        with self._lock:
            if hasattr(self.node, "reset_tokens"):
                self.node.reset_tokens()
                return {"ok": True, "reset": True}
        return {"ok": True, "reset": False}

    def _op_stop(self, msg: dict) -> dict:
        threading.Thread(target=self.stop, daemon=True).start()
        return {"ok": True}
