"""A live peer server wrapping one registered protocol node.

Each :class:`PeerServer` owns exactly one protocol object (the *same*
class the simulator builds — PPushNode, BlindMatchNode, SharedBitNode,
LeaderElectionNode, ...) and exposes the mobile telephone model's round
primitives as request/response operations over the framing protocol:

========== ==========================================================
op          meaning
========== ==========================================================
advertise   run the node's scan-stage hook, reply with its b-bit tag
propose     run the propose hook; deliver the proposal peer-to-peer
proposal    (peer-to-peer) record an incoming proposal for a round
resolve     proposee-enforced acceptance over the round's inbox —
            exactly ``resolve_proposals`` semantics (proposals to
            proposers are lost; ties break by the registered
            acceptance rule on the per-target SeedTree stream)
connect     initiator-side Stage 3: pull the responder's visible
            state, run ``interact`` against a remote-peer adapter
            under the metered :class:`~repro.sim.channel.Channel`,
            push the deltas back
========== ==========================================================

plus cluster plumbing (``ping``/``set_neighbors``/``heartbeat``/
``beat``/``peers``/``prune``/``stats``), state transfer
(``state_pull``/``state_push``/``snapshot``/``reset``), ``stop``, and
live introspection: every server carries a
:class:`~repro.telemetry.MetricsRegistry` (connect-latency histogram,
robustness counters) and answers ``metrics`` with a one-shot status
snapshot — round progress, peer-table size, inbox depth, retry/timeout
counters, latency quantiles, plus whatever cluster-level view the
coordinator last pushed via ``status`` (round, suspect count) — which
is what ``repro-gossip top`` polls.

Lock discipline: the node lock is **never held across an outbound
network call**.  ``propose`` computes the target under the lock, then
delivers the proposal with the lock released; ``connect`` pulls remote
state first, runs ``interact`` locally under the lock, then pushes
deltas.  Matches are node-disjoint within a round, so concurrent
connects never contend for one node from two sides.

Robustness: every outbound call goes through :meth:`PeerServer.call_peer`
— per-op timeouts and bounded retries with seeded exponential backoff
(:class:`~repro.net.errors.RetryPolicy`) — and the round ops are
**idempotent per round** (replies are cached by round, incoming
proposals dedup by sender), so a caller whose reply was lost to a
timeout can safely retry: at-least-once delivery, at-most-once
execution of each protocol hook.  Proposal delivery failure is reported
(``delivered: false``) instead of aborting the round.

Chaos hooks (driven by :class:`~repro.net.chaos.ChaosModel`):
:meth:`kill` tears the TCP endpoint down abruptly (SIGKILL-style — no
handler draining) and :meth:`revive` rebinds the *same* port so peer
tables stay valid across the outage; :attr:`asleep` makes the endpoint
drop every connection without replying (a duty-cycled radio); and
:meth:`interdict` makes one round's Stage-3 state pull from a specific
initiator fail at the socket level (a lossy link).

Determinism: a server derives its acceptance draws from
``SeedTree(seed).child("engine").stream("match", round, "uid", uid)`` —
the same per-target streams the simulator uses under
``acceptance_streams="local"`` — so a proposee knowing only the run
seed, the round number, and its own UID reproduces the simulator's
coin flips exactly.  That is what makes the replay bridge's
equivalence assertion possible.  Retry backoff jitter draws from a
separate ``("net", "retry", uid)`` subtree, so robustness machinery
never perturbs protocol streams.
"""

from __future__ import annotations

import logging
import socketserver
import threading
import time
import weakref

from repro.core.tokens import Token
from repro.errors import ConfigurationError
from repro.net.errors import (
    DEFAULT_REQUEST_TIMEOUT,
    DEFAULT_RETRY_POLICY,
    ProtocolError,
    RetryPolicy,
    THREAD_JOIN_TIMEOUT,
    TransportError,
)
from repro.net.framing import recv_msg, request, send_msg
from repro.net.peers import PeerEntry, PeerTable
from repro.rng import SeedTree
from repro.sim.channel import Channel, ChannelPolicy
from repro.sim.context import NeighborView
from repro.sim.matching import ACCEPTANCE_RULES
from repro.telemetry import MetricsRegistry

__all__ = ["PeerServer"]

logger = logging.getLogger(__name__)

#: How many past rounds of op-reply cache / proposal inbox a server
#: keeps.  Retries only ever target the current round; eight is slack.
ROUND_MEMORY = 8


class _ChaosInterdicted(Exception):
    """Internal: drop this connection without replying (lossy link)."""


class _RemoteTokenPeer:
    """Stand-in for a remote token-gossip node during ``interact``.

    ``run_transfer`` touches only ``known_tokens``, ``token(id)`` and
    ``store_token`` on its peer; this adapter serves those from a pulled
    snapshot and records stores as deltas to push back.
    """

    def __init__(self, tokens: list):
        self._tokens = {
            int(tid): Token(int(tid), payload, int(origin))
            for tid, payload, origin in tokens
        }
        self.received: list[Token] = []

    @property
    def known_tokens(self) -> frozenset:
        return frozenset(self._tokens)

    def token(self, token_id: int) -> Token:
        return self._tokens[token_id]

    def store_token(self, token: Token) -> None:
        if token.token_id not in self._tokens:
            self._tokens[token.token_id] = token
            self.received.append(token)

    def deltas(self) -> dict | None:
        if not self.received:
            return None
        return {
            "kind": "tokens",
            "tokens": [
                [t.token_id, t.payload, t.origin_uid] for t in self.received
            ],
        }


class _RemotePPushPeer:
    """Stand-in for a remote PPUSH responder during ``interact``."""

    def __init__(self, informed: bool, rumor):
        self._was_informed = informed
        self.rumor = (
            Token(int(rumor[0]), rumor[1], int(rumor[2]))
            if rumor is not None
            else None
        )
        self.informed_at_round = None

    @property
    def informed(self) -> bool:
        return self.rumor is not None

    def deltas(self) -> dict | None:
        if self._was_informed or self.rumor is None:
            return None
        return {
            "kind": "ppush",
            "rumor": [
                self.rumor.token_id,
                self.rumor.payload,
                self.rumor.origin_uid,
            ],
            "informed_at_round": self.informed_at_round,
        }


class _Handler(socketserver.BaseRequestHandler):
    """One request per connection: read a frame, dispatch, reply."""

    def handle(self):
        peer_server = self.server.peer_server
        peer_server._handler_threads.add(threading.current_thread())
        if peer_server.asleep:
            # Duty-cycled radio: accept at the OS level (the listen
            # backlog already did), then hang up without a byte — the
            # caller sees a closed-without-reply transport fault.
            return
        self.request.settimeout(peer_server.handler_timeout)
        try:
            msg = recv_msg(self.request)
        except (TransportError, OSError):
            return
        if msg is None:
            return
        try:
            reply = peer_server.handle(msg)
        except _ChaosInterdicted:
            return  # lossy link: abrupt close, no reply frame
        except Exception as exc:  # surfaced to the caller, not swallowed
            reply = {
                "error": f"{type(exc).__name__}: {exc}",
                "error_type": type(exc).__name__,
            }
        try:
            send_msg(self.request, reply)
        except (TransportError, OSError):
            pass


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class PeerServer:
    """One protocol node behind a threaded TCP endpoint."""

    def __init__(
        self,
        node,
        *,
        uid: int,
        vertex: int,
        seed: int,
        b: int,
        acceptance: str = "uniform",
        channel_policy: ChannelPolicy | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        retry: RetryPolicy | None = DEFAULT_RETRY_POLICY,
    ):
        if acceptance not in ACCEPTANCE_RULES:
            raise ConfigurationError(
                f"unknown acceptance rule {acceptance!r}; live servers "
                f"support {sorted(ACCEPTANCE_RULES)}"
            )
        self.node = node
        self.uid = uid
        self.vertex = vertex
        self.acceptance = acceptance
        self.channel_policy = channel_policy or ChannelPolicy.for_upper_n(
            max(uid, 1)
        )
        self.max_tag = (1 << b) - 1
        self.request_timeout = request_timeout
        #: Handler-socket inactivity bound: a client that connects and
        #: never finishes its frame cannot pin a handler thread forever.
        self.handler_timeout = max(4 * request_timeout, 10.0)
        self.retry_policy = retry
        self.table = PeerTable()
        self._engine_tree = SeedTree(seed).child("engine")
        # Backoff jitter draws from a dedicated subtree: robustness
        # machinery must never touch the protocol/acceptance streams.
        self._retry_rng = SeedTree(seed).child("net").stream("retry", uid)
        self._lock = threading.RLock()
        self._proposed: dict[int, int | None] = {}
        self._inbox: dict[int, set[int]] = {}
        #: Per-round reply cache making the round ops idempotent under
        #: caller retries (a reply lost to a timeout must not re-run a
        #: protocol hook or re-deliver a proposal on retry).
        self._op_cache: dict[tuple, dict] = {}
        #: (round, initiator_uid) pairs whose Stage-3 state pull this
        #: server must fail at the socket level (chaos lossy links).
        self._interdicted: set[tuple[int, int]] = set()
        self.stats = {
            "retries": 0,
            "timeouts": 0,
            "failed_deliveries": 0,
            "kills": 0,
            "revives": 0,
        }
        # Live introspection: always-on (the live layer is wall-clock
        # territory anyway — no determinism contract to protect), read
        # by the `metrics` op and scraped into NetRunReport.
        self.metrics = MetricsRegistry()
        self._latency_hist = self.metrics.histogram(
            "net.connect_latency_s", uid=uid
        )
        self._last_round = 0
        #: Cluster-level view last pushed by the coordinator (`status`
        #: op): round, suspect count, active count — what lets any
        #: single server answer `repro-gossip top` for the cluster.
        self._cluster_status: dict = {}
        self._handler_threads: weakref.WeakSet = weakref.WeakSet()
        self._server = _TCPServer((host, port), _Handler)
        self._server.peer_server = self
        self._bound = self._server.server_address[:2]
        self._thread: threading.Thread | None = None
        self._dead = False
        self.asleep = False

    # -- lifecycle ----------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        # The bound address is remembered across kill/revive so peer
        # tables installed before an outage stay valid after it.
        return self._bound

    @property
    def dead(self) -> bool:
        """True between :meth:`kill` (or :meth:`stop`) and :meth:`revive`."""
        return self._dead

    def start(self) -> "PeerServer":
        self._thread = threading.Thread(
            # A short poll interval keeps kill() prompt: shutdown()
            # blocks until the accept loop notices the flag.
            target=lambda: self._server.serve_forever(poll_interval=0.05),
            name=f"peer-{self.uid}",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = THREAD_JOIN_TIMEOUT) -> int:
        """Stop serving; returns the number of threads that leaked.

        Joins the accept loop and every in-flight handler thread within
        ``timeout`` seconds total.  Threads still alive after that are
        *reported* — counted in the return value, logged, and added to
        ``stats["leaked_threads"]`` — instead of silently abandoned.
        """
        if self._dead:
            return self._count_leaked(log=False)
        self._dead = True
        deadline = time.monotonic() + timeout
        if self._thread is not None:
            self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=max(0.0, deadline - time.monotonic()))
            if not self._thread.is_alive():
                self._thread = None
        for thread in list(self._handler_threads):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            if thread.is_alive():
                thread.join(timeout=remaining)
        return self._count_leaked(log=True)

    def _count_leaked(self, log: bool) -> int:
        leaked = sum(
            1 for t in list(self._handler_threads) if t.is_alive()
        )
        if self._thread is not None and self._thread.is_alive():
            leaked += 1
        self.stats["leaked_threads"] = leaked
        if leaked and log:
            logger.warning(
                "peer server uid=%d stopped with %d thread(s) failing to "
                "join within the timeout", self.uid, leaked,
            )
        return leaked

    def kill(self) -> None:
        """SIGKILL-style termination: tear the endpoint down abruptly.

        No handler draining, no leak accounting — the process is gone.
        In-flight requests fail at their callers as transport faults;
        subsequent connections are refused.  The node object (the
        phone's storage) survives in-process for :meth:`revive`.
        """
        if self._dead:
            return
        self._dead = True
        self.stats["kills"] += 1
        if self._thread is not None:
            self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
            self._thread = None

    def revive(self) -> None:
        """Rejoin after :meth:`kill`: rebind the same port and serve.

        The peer table the node stored before the outage is trusted
        afresh (``touch_all`` — its stamps all predate the outage and
        would otherwise be pruned on the first liveness pass); the
        cluster re-admits the node through the normal heartbeat /
        ``set_neighbors`` path.
        """
        if not self._dead:
            return
        self._server = _TCPServer(self._bound, _Handler)
        self._server.peer_server = self
        self._dead = False
        self.asleep = False
        self.stats["revives"] += 1
        self.table.touch_all()
        self.start()

    def __enter__(self) -> "PeerServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- chaos shims --------------------------------------------------

    def interdict(self, rnd: int, initiator_uid: int) -> None:
        """Make round ``rnd``'s Stage-3 pull from ``initiator_uid`` fail.

        The interdicted state pull is dropped at the socket level (no
        reply frame), so the initiator experiences a real mid-handshake
        link failure.  Entries for rounds older than
        ``rnd - ROUND_MEMORY`` are expired as new ones arrive.
        """
        with self._lock:
            self._interdicted.add((rnd, initiator_uid))
            self._interdicted = {
                entry for entry in self._interdicted
                if entry[0] > rnd - ROUND_MEMORY
            }

    # -- dispatch -----------------------------------------------------

    def handle(self, msg: dict) -> dict:
        op = msg.get("op")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            return {"error": f"unknown op {op!r}"}
        return handler(msg)

    def _cached(self, key: tuple, compute) -> dict:
        """At-most-once execution for retried round ops: the first call
        computes and caches the reply under the node lock; retries get
        the cached reply without re-running any protocol hook."""
        with self._lock:
            reply = self._op_cache.get(key)
            if reply is None:
                reply = compute()
                self._op_cache[key] = reply
                rnd = key[1]
                for stale in [
                    k for k in self._op_cache if k[1] <= rnd - ROUND_MEMORY
                ]:
                    del self._op_cache[stale]
            return reply

    def call_peer(
        self,
        entry: PeerEntry,
        obj,
        *,
        retry: RetryPolicy | None | str = "default",
        timeout: float | None = None,
    ) -> dict:
        """One robust outbound RPC to a known peer.

        Applies this server's :class:`~repro.net.errors.RetryPolicy`
        (override with ``retry=None`` for single-shot calls such as
        heartbeats and Stage-3 pulls), counts retries/timeouts in
        :attr:`stats`, and raises
        :class:`~repro.net.errors.ProtocolError` when the peer replies
        with an op-level error.
        """
        policy = self.retry_policy if retry == "default" else retry
        reply = request(
            entry.host,
            entry.port,
            obj,
            timeout=self.request_timeout if timeout is None else timeout,
            retry=policy,
            rng=self._retry_rng,
            on_retry=self._note_retry,
            uid=entry.uid,
        )
        if "error" in reply:
            raise ProtocolError(
                f"peer {entry.uid} rejected {obj.get('op')!r}: "
                f"{reply['error']}",
                uid=entry.uid,
                op=obj.get("op"),
                remote_type=reply.get("error_type"),
            )
        return reply

    def _note_retry(self, exc: TransportError, attempt: int,
                    delay: float) -> None:
        self.stats["retries"] += 1
        if exc.kind == "timeout":
            self.stats["timeouts"] += 1

    # -- cluster plumbing ---------------------------------------------

    def _op_ping(self, msg: dict) -> dict:
        return {"ok": True, "uid": self.uid, "vertex": self.vertex}

    def _op_set_neighbors(self, msg: dict) -> dict:
        now = msg.get("now")
        stamp = time.monotonic() if now is None else float(now)
        self.table.replace_all(
            PeerEntry(
                uid=int(uid),
                host=host,
                port=int(port),
                vertex=int(vertex),
                last_seen=stamp,
            )
            for uid, host, port, vertex in msg["entries"]
        )
        return {"ok": True, "peers": len(self.table)}

    def _op_heartbeat(self, msg: dict) -> dict:
        return {
            "ok": self.table.heartbeat(int(msg["from"]), now=msg.get("now"))
        }

    def _op_peers(self, msg: dict) -> dict:
        return {"uids": list(self.table.uids())}

    def _op_beat(self, msg: dict) -> dict:
        """Send one heartbeat to every known peer; dead peers tolerated.

        Single-shot on purpose (``retry=None``): a heartbeat is periodic
        — a missed beat *is* the liveness signal, and retrying it would
        only delay the prune that reacts to it.
        """
        now = msg.get("now")
        delivered, failed = [], []
        for entry in self.table.entries():  # snapshot; no lock held below
            beat = {"op": "heartbeat", "from": self.uid}
            if now is not None:
                beat["now"] = now
            try:
                self.call_peer(entry, beat, retry=None)
                delivered.append(entry.uid)
            except (TransportError, ProtocolError):
                failed.append(entry.uid)
        return {"delivered": delivered, "failed": failed}

    def _op_prune(self, msg: dict) -> dict:
        removed = self.table.prune(
            float(msg["max_age"]), now=msg.get("now")
        )
        return {"removed": list(removed)}

    def _op_stats(self, msg: dict) -> dict:
        """Robustness counters: retries, timeouts, failed deliveries."""
        with self._lock:
            return {"uid": self.uid, **self.stats}

    def _op_status(self, msg: dict) -> dict:
        """Coordinator push: the cluster-level view (round, suspects).

        Stored verbatim so any single endpoint can answer ``metrics``
        with cluster context — the coordinator is not itself a server,
        so ``repro-gossip top`` needs some peer to relay its view.
        """
        with self._lock:
            self._cluster_status = {
                key: msg[key]
                for key in ("round", "suspects", "active", "n", "solved")
                if key in msg
            }
        return {"ok": True}

    def _op_metrics(self, msg: dict) -> dict:
        """One-shot introspection snapshot (what ``top`` polls).

        ``round`` is the highest round this node has participated in;
        ``cluster`` is the coordinator's last pushed view (empty until
        the first push).  ``latency`` carries the connect-latency
        histogram's exact count/sum/min/max plus windowed p50/p99.
        """
        with self._lock:
            inbox_depth = sum(
                len(senders) for senders in self._inbox.values()
            )
            return {
                "uid": self.uid,
                "vertex": self.vertex,
                "round": self._last_round,
                "peers": len(self.table),
                "inbox": inbox_depth,
                "asleep": self.asleep,
                "stats": dict(self.stats),
                "latency": self._latency_hist.snapshot(),
                "cluster": dict(self._cluster_status),
            }

    # -- round structure ----------------------------------------------

    def _op_advertise(self, msg: dict) -> dict:
        rnd = int(msg["round"])

        def compute():
            self._last_round = max(self._last_round, rnd)
            neighbor_uids = tuple(int(u) for u in msg.get("neighbors", ()))
            tag = int(self.node.advertise(rnd, neighbor_uids))
            if not 0 <= tag <= self.max_tag:
                raise ConfigurationError(
                    f"node {self.uid} advertised tag {tag} outside "
                    f"[0, {self.max_tag}]"
                )
            return {"tag": tag}

        return self._cached(("advertise", rnd), compute)

    def _op_propose(self, msg: dict) -> dict:
        rnd = int(msg["round"])
        key = ("propose", rnd)
        with self._lock:
            cached = self._op_cache.get(key)
        if cached is not None:
            return cached
        views = tuple(
            NeighborView(uid=int(uid), tag=int(tag))
            for uid, tag in msg.get("views", ())
        )
        with self._lock:
            # Re-check under the lock: a retry racing the first attempt
            # must not run the propose hook twice.
            cached = self._op_cache.get(key)
            if cached is not None:
                return cached
            target = self.node.propose(rnd, views)
            self._proposed[rnd] = target
            self._proposed.pop(rnd - ROUND_MEMORY, None)
        reply: dict = {"target": target, "delivered": target is not None}
        if target is not None:
            entry = self.table.get(int(target))
            if entry is None:
                # A pruned peer table entry: the proposal is lost, the
                # round is not.  Degradation, not a protocol violation.
                reply = {
                    "target": target,
                    "delivered": False,
                    "delivery_error": f"no peer-table entry for {target}",
                }
                self.stats["failed_deliveries"] += 1
            else:
                try:
                    self.call_peer(
                        entry,
                        {"op": "proposal", "round": rnd, "from": self.uid},
                    )
                except (TransportError, ProtocolError) as exc:
                    reply = {
                        "target": target,
                        "delivered": False,
                        "delivery_error": str(exc),
                    }
                    self.stats["failed_deliveries"] += 1
        with self._lock:
            self._op_cache[key] = reply
        return reply

    def _op_proposal(self, msg: dict) -> dict:
        rnd = int(msg["round"])
        with self._lock:
            # A set, so a retried delivery (reply lost to a timeout)
            # cannot double-count a sender.
            self._inbox.setdefault(rnd, set()).add(int(msg["from"]))
        return {"ok": True}

    def _op_resolve(self, msg: dict) -> dict:
        """Proposee-enforced acceptance: ``resolve_proposals`` semantics.

        A node that proposed this round loses its incoming proposals
        (the model's collision rule); a contested inbox is settled by
        the registered acceptance rule, drawing — for ``uniform`` — from
        this target's own match stream, which is exactly the draw the
        simulator makes under ``acceptance_streams="local"``.  The
        verdict is cached: resolving consumes the inbox and (when
        contested) a random draw, so a retried resolve must see the
        first answer, not a second flip.
        """
        rnd = int(msg["round"])

        def compute():
            proposed = self._proposed.get(rnd)
            senders = sorted(self._inbox.pop(rnd, ()))
            if proposed is not None or not senders:
                return {"winner": None, "senders": len(senders)}
            if len(senders) == 1:
                return {"winner": senders[0], "senders": 1}
            rng = (
                self._engine_tree.stream("match", rnd, "uid", self.uid)
                if self.acceptance == "uniform"
                else None
            )
            winner = ACCEPTANCE_RULES[self.acceptance](senders, rng)
            return {"winner": int(winner), "senders": len(senders)}

        return self._cached(("resolve", rnd), compute)

    def _op_connect(self, msg: dict) -> dict:
        """Initiator-side Stage 3 against a remote responder.

        The state pull is single-shot (``retry=None``): the model grants
        one connection attempt per round, so a mid-handshake link
        failure — including a chaos interdiction on the responder — is
        a failed connection this round, not something to retry through.
        The delta push *is* retried (it is idempotent and the handshake
        already succeeded).  The reply is cached per round so a caller
        retry cannot re-run ``interact``.
        """
        rnd = int(msg["round"])
        responder_uid = int(msg["responder"])

        def compute():
            entry = self.table.get(responder_uid)
            if entry is None:
                raise TransportError(
                    f"node {self.uid} has no peer entry for responder "
                    f"{responder_uid}"
                )
            started = time.perf_counter()
            pulled = self.call_peer(
                entry,
                {"op": "state_pull", "round": rnd, "from": self.uid},
                retry=None,
            )
            if pulled["kind"] == "tokens":
                adapter = _RemoteTokenPeer(pulled["tokens"])
            elif pulled["kind"] == "ppush":
                adapter = _RemotePPushPeer(
                    pulled["informed"], pulled["rumor"]
                )
            else:
                raise TransportError(
                    f"responder {responder_uid} pulled unknown state kind "
                    f"{pulled['kind']!r}"
                )
            channel = Channel(rnd, self.uid, responder_uid,
                              self.channel_policy)
            self.node.interact(adapter, channel, rnd)
            channel.close()
            deltas = adapter.deltas()
            if deltas is not None:
                push = dict(deltas, op="state_push", round=rnd)
                self.call_peer(entry, push)
            latency = time.perf_counter() - started
            self._latency_hist.observe(latency)
            return {
                "tokens_moved": channel.tokens_moved,
                "bits": channel.bits.total_bits,
                "latency_s": latency,
            }

        return self._cached(("connect", rnd, responder_uid), compute)

    # -- state transfer -----------------------------------------------

    def _op_state_pull(self, msg: dict) -> dict:
        rnd = msg.get("round")
        initiator = msg.get("from")
        if rnd is not None and initiator is not None:
            with self._lock:
                if (int(rnd), int(initiator)) in self._interdicted:
                    raise _ChaosInterdicted()
        with self._lock:
            node = self.node
            if hasattr(node, "store_token"):
                return {
                    "kind": "tokens",
                    "tokens": [
                        [t.token_id, t.payload, t.origin_uid]
                        for t in sorted(
                            (node.token(tid) for tid in node.known_tokens),
                            key=lambda t: t.token_id,
                        )
                    ],
                }
            rumor = node.rumor
            return {
                "kind": "ppush",
                "informed": node.informed,
                "rumor": None
                if rumor is None
                else [rumor.token_id, rumor.payload, rumor.origin_uid],
            }

    def _op_state_push(self, msg: dict) -> dict:
        with self._lock:
            node = self.node
            if msg["kind"] == "tokens":
                stored = 0
                for tid, payload, origin in msg["tokens"]:
                    token = Token(int(tid), payload, int(origin))
                    if not node.has_token(token.token_id):
                        node.store_token(token)
                        stored += 1
                return {"ok": True, "stored": stored}
            if msg["kind"] == "ppush":
                if not node.informed:
                    tid, payload, origin = msg["rumor"]
                    node.rumor = Token(int(tid), payload, int(origin))
                    node.informed_at_round = msg.get("informed_at_round")
                    return {"ok": True, "stored": 1}
                return {"ok": True, "stored": 0}
            return {"error": f"unknown state kind {msg['kind']!r}"}

    def _op_snapshot(self, msg: dict) -> dict:
        with self._lock:
            return {
                "uid": self.uid,
                "vertex": self.vertex,
                "tokens": sorted(self.node.known_tokens),
            }

    def _op_reset(self, msg: dict) -> dict:
        """Crash-with-state-loss hook (fault models with resets)."""
        with self._lock:
            if hasattr(self.node, "reset_tokens"):
                self.node.reset_tokens()
                return {"ok": True, "reset": True}
        return {"ok": True, "reset": False}

    def _op_stop(self, msg: dict) -> dict:
        threading.Thread(target=self.stop, daemon=True).start()
        return {"ok": True}
