"""Live-run traces: the simulator's Trace plus wall-clock latencies.

:class:`NetTrace` reuses the whole :class:`~repro.sim.trace.Trace`
column machinery (records, totals, ``column_series``/``gauge_series``)
and adds what only a real deployment can measure: per-connection
wall-clock latency, folded into each round's gauges as
``net_latency_mean_s`` / ``net_latency_max_s``, and overall throughput
— plus the failure columns the robustness layer produces: per-round
retries / timeouts / suspects / rejoins / chaos kill and revive counts
(gauges ``net_retries`` etc.) and their run totals.
"""

from __future__ import annotations

from repro.sim.trace import RoundRecord, Trace
from repro.telemetry import quantile

__all__ = ["NetTrace"]


class NetTrace(Trace):
    """A :class:`Trace` that also logs per-connection wall latencies."""

    def __init__(self, sample_every: int = 1):
        super().__init__(sample_every=sample_every)
        #: Flat (round_index, seconds) list of every connection's
        #: wall-clock duration (state pull + interact + state push).
        self.connection_latencies: list[tuple[int, float]] = []
        self._pending: list[float] = []
        self.wall_seconds: float = 0.0
        # Failure accounting (populated by the robustness layer).
        self.total_retries: int = 0
        self.total_timeouts: int = 0
        self.suspect_events: int = 0
        self.rejoin_events: int = 0
        self.degraded_rounds: int = 0
        self.chaos_kills: int = 0
        self.chaos_revives: int = 0

    def record_connection(self, round_index: int, seconds: float) -> None:
        self.connection_latencies.append((round_index, float(seconds)))
        self._pending.append(float(seconds))

    def close_round(
        self,
        round_index: int,
        proposals: int,
        connections: int,
        tokens_moved: int,
        control_bits: int,
        active_nodes: int | None = None,
        dropped_connections: int = 0,
        retries: int = 0,
        timeouts: int = 0,
        suspects: int = 0,
        rejoins: int = 0,
        chaos_killed: int = 0,
        chaos_revived: int = 0,
        degraded: bool = False,
    ) -> None:
        """Fold the round's buffered latencies into a round record.

        ``retries``/``timeouts`` are this round's deltas; ``suspects``
        is the suspect-set size *at round close* (a level, not a delta);
        ``rejoins``/``chaos_killed``/``chaos_revived`` count this
        round's events.  A ``degraded`` round ran over a surviving
        quorum rather than the full planned-active set.
        """
        gauges: dict = {}
        if self._pending:
            gauges["net_latency_mean_s"] = sum(self._pending) / len(
                self._pending
            )
            gauges["net_latency_max_s"] = max(self._pending)
        self._pending = []
        self.total_retries += retries
        self.total_timeouts += timeouts
        self.rejoin_events += rejoins
        self.chaos_kills += chaos_killed
        self.chaos_revives += chaos_revived
        if degraded:
            self.degraded_rounds += 1
        if retries:
            gauges["net_retries"] = retries
        if timeouts:
            gauges["net_timeouts"] = timeouts
        if suspects:
            gauges["net_suspects"] = suspects
        if rejoins:
            gauges["net_rejoins"] = rejoins
        if chaos_killed:
            gauges["net_chaos_killed"] = chaos_killed
        if chaos_revived:
            gauges["net_chaos_revived"] = chaos_revived
        self.record(
            RoundRecord(
                round_index=round_index,
                proposals=proposals,
                connections=connections,
                tokens_moved=tokens_moved,
                control_bits=control_bits,
                gauges=gauges,
                active_nodes=active_nodes,
                dropped_connections=dropped_connections,
            )
        )

    def rounds_per_second(self) -> float | None:
        """Throughput, or ``None`` when undefined.

        A run that recorded no rounds, or whose wall clock never
        advanced (``wall_seconds`` unset, or a sub-resolution run),
        has no meaningful rate — boundary cases return ``None``
        rather than raising.
        """
        if self.wall_seconds <= 0 or self.total_rounds == 0:
            return None
        return self.total_rounds / self.wall_seconds

    def latency_stats(self) -> dict | None:
        """Overall mean/max/p50/p99 per-connection latency in seconds."""
        if not self.connection_latencies:
            return None
        values = [seconds for _, seconds in self.connection_latencies]
        return {
            "connections": len(values),
            "mean_s": sum(values) / len(values),
            "max_s": max(values),
            "p50_s": quantile(values, 0.50),
            "p99_s": quantile(values, 0.99),
        }
