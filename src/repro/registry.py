"""The one extension surface: registries of first-class definition objects.

Everything runnable in this repo — gossip algorithms, topology families,
dynamic-graph kinds, instance kinds, fault regimes, timing regimes, and
motivating scenarios — is described by a definition object registered here and
resolved *by name*
from every layer: :func:`repro.core.runner.run_gossip`, the declarative
specs in :mod:`repro.experiments`, and the ``repro-gossip`` CLI.  The
paper's model is deliberately open-ended (follow-up work swaps in new
gossip processes and connectivity regimes on the same round structure),
and the registry is how that openness survives in code: adding an
algorithm is one registration in one file, not parallel edits to four
dispatch tables.

Model requirements live in the declaration, not in scattered checks:
``AlgorithmDef.requires_stable_topology`` is the single statement of
CrowdedBin's τ = ∞ assumption — ``run_gossip`` enforces it, the sweep
normalization pass substitutes for it, and ``repro-gossip list`` prints
it, all from the same field.

Third-party extension needs no edits to repro itself::

    # my_plugin.py — an out-of-tree algorithm
    from repro.registry import register_algorithm
    from repro.core.sharedbit import SharedBitConfig, SharedBitNode
    from repro.rng import SharedRandomness

    @register_algorithm(
        name="my_gossip",
        description="SharedBit with my twist",
        config_class=SharedBitConfig,
        tag_length=1,
    )
    def build_my_gossip(ctx):
        shared = SharedRandomness(
            ctx.tree.key("shared-string"), ctx.instance.upper_n
        )
        return {
            v: SharedBitNode(shared=shared, config=ctx.config,
                             **ctx.common(v))
            for v in ctx.vertices()
        }

then ``repro-gossip --plugin my_plugin.py run --algorithm my_gossip ...``
or ``import my_plugin`` before using the Python API.
"""

from __future__ import annotations

import hashlib
import importlib
import importlib.util
import sys
from collections.abc import Mapping, Sequence
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.errors import ConfigurationError

__all__ = [
    "AlgorithmDef",
    "TopologyDef",
    "DynamicsDef",
    "InstanceDef",
    "ScenarioDef",
    "FaultDef",
    "TimingDef",
    "TransportDef",
    "NodeBuildContext",
    "Registry",
    "RegistryNames",
    "RegistryMapping",
    "ALGORITHM_REGISTRY",
    "TOPOLOGY_REGISTRY",
    "DYNAMICS_REGISTRY",
    "INSTANCE_REGISTRY",
    "SCENARIO_REGISTRY",
    "FAULT_REGISTRY",
    "TIMING_REGISTRY",
    "TRANSPORT_REGISTRY",
    "register_algorithm",
    "register_topology",
    "register_dynamics",
    "register_instance",
    "register_scenario",
    "register_fault",
    "register_timing",
    "register_transport",
    "ensure_builtins",
    "load_plugin",
]


@dataclass
class NodeBuildContext:
    """What an algorithm's node builder gets to work with.

    ``instance`` is the :class:`~repro.core.problem.GossipInstance`,
    ``tree`` the run's root :class:`~repro.rng.SeedTree` (derive shared
    objects from named child streams so adding a consumer never perturbs
    existing ones), and ``config`` the already-resolved algorithm config
    (never ``None`` when the definition has a ``config_class``).
    """

    instance: Any
    tree: Any
    config: Any

    def vertices(self) -> range:
        return range(self.instance.n)

    def common(self, vertex: int) -> dict:
        """The constructor kwargs every :class:`GossipNode` shares.

        The private stream is a :class:`~repro.rng.LazyStream`: draw-
        for-draw identical to ``tree.stream("node", uid)`` but not
        materialized until first use — array-path runs of bulk-hook
        algorithms never touch per-node streams, and at n = 10^6 the
        eager Mersenne states alone would cost ~2.5 GB.
        """
        uid = self.instance.uid_of(vertex)
        return {
            "uid": uid,
            "upper_n": self.instance.upper_n,
            "initial_tokens": self.instance.tokens_for(vertex),
            "rng": self.tree.lazy_stream("node", uid),
        }


@dataclass(frozen=True)
class AlgorithmDef:
    """A gossip algorithm, declared once.

    ``build_nodes(ctx)`` returns one protocol object per vertex;
    ``tag_length`` is the advertising-bit count ``b`` — an int, or a
    callable on the config for algorithms whose ``b`` is a tunable
    (MultiBit).  ``requires_stable_topology`` is the declarative home of
    τ = ∞ model assumptions (CrowdedBin): ``run_gossip`` rejects, sweeps
    substitute-and-note, the CLI prints it.  ``config_extra_keys`` names
    config-spec keys that are run parameters rather than config fields
    (ε-gossip's ``"epsilon"``).  Experiments-layer-only algorithms set
    ``execute`` instead of ``build_nodes``: a callable
    ``execute(spec, dynamic_graph, config) -> record`` that owns the
    whole run (ε-gossip's coverage-fraction harness).
    """

    name: str
    description: str
    config_class: type | None = None
    build_nodes: Callable[[NodeBuildContext], dict] | None = None
    tag_length: int | Callable[[Any], int] = 1
    requires_stable_topology: bool = False
    config_extra_keys: tuple = ()
    execute: Callable | None = None

    @property
    def runnable(self) -> bool:
        """Whether :func:`repro.core.runner.run_gossip` can run it."""
        return self.build_nodes is not None

    def make_config(self):
        return self.config_class() if self.config_class is not None else None

    def resolve_tag_length(self, config) -> int:
        if callable(self.tag_length):
            return self.tag_length(config)
        return self.tag_length

    @property
    def tag_length_label(self) -> str:
        return "cfg" if callable(self.tag_length) else str(self.tag_length)

    @property
    def model_label(self) -> str:
        return "tau=inf" if self.requires_stable_topology else "tau>=1"


@dataclass(frozen=True)
class TopologyDef:
    """A named static topology family.

    ``factory(**params)`` returns a :class:`~repro.graphs.topologies.Topology`.
    ``from_size(n, seed) -> params`` is the optional CLI convention: a
    family that knows how to size itself from a single ``--n`` appears as
    a ``--graph`` choice.

    ``build_dynamic(**params)`` is the optional scale path: it returns a
    ready :class:`~repro.graphs.dynamic.DynamicGraph` directly — no
    ``nx`` Topology, no connectivity check — for families that certify
    connectivity by construction (``ring_expander``).  The experiments
    layer uses it for ``static`` dynamics, and for any dynamics kind
    declaring ``topology_free`` (which only needs the size); other
    kinds still go through ``factory``.
    """

    name: str
    description: str
    factory: Callable[..., Any]
    from_size: Callable[[int, int], dict] | None = None
    build_dynamic: Callable[..., Any] | None = None


@dataclass(frozen=True)
class DynamicsDef:
    """A dynamic-graph kind: how a topology evolves over rounds.

    ``build(topology, seed, **params)`` returns a
    :class:`~repro.graphs.dynamic.DynamicGraph`.  Kinds that resample
    their own shapes each epoch still receive the built topology and read
    ``topology.n`` from it, so every spec names its size the same way.

    ``topology_free=True`` declares that ``build`` reads nothing but
    ``topology.n`` — the experiments layer may then hand it a size-only
    shim instead of materializing a million-node ``nx`` graph it would
    ignore (geometric mobility, resampled families).
    """

    name: str
    description: str
    build: Callable[..., Any]
    topology_free: bool = False


@dataclass(frozen=True)
class InstanceDef:
    """An initial token-assignment recipe.

    ``build(n, seed, **params)`` returns a
    :class:`~repro.core.problem.GossipInstance` (``n`` comes from the
    built graph).
    """

    name: str
    description: str
    build: Callable[..., Any]


@dataclass(frozen=True)
class ScenarioDef:
    """A motivating workload: ``factory(seed=..., **kw)`` -> Scenario."""

    name: str
    description: str
    factory: Callable[..., Any]


@dataclass(frozen=True)
class FaultDef:
    """A fault regime: how the clean model degrades during a run.

    ``build(n, seed, **params)`` returns a
    :class:`~repro.sim.faults.FaultModel` bound to the run's population
    size and seed (the model derives its own ``("faults", kind)`` streams
    from the seed, so fault draws never perturb engine or node streams).
    """

    name: str
    description: str
    build: Callable[..., Any]


@dataclass(frozen=True)
class TimingDef:
    """A timing regime: when each node's local scan/connect cycle fires.

    ``build(n, seed, **params)`` returns a
    :class:`~repro.asynchrony.timing.TimingModel` bound to the run's
    population size and seed (the model derives its own
    ``("async", kind)`` streams from the seed, so clock jitter never
    perturbs engine, fault, or node streams).  The null model
    (``"synchronous"``) is the paper's lock-step round structure and runs
    on the round engine itself.
    """

    name: str
    description: str
    build: Callable[..., Any]


@dataclass(frozen=True)
class TransportDef:
    """A deployment transport: how a cluster of live peer servers runs
    the registered protocols over real message passing.

    ``deploy(scenario_or_spec, **opts)`` boots a cluster (e.g. loopback
    TCP peer servers, :mod:`repro.net`), drives the round loop, and
    returns the transport's run report.  The simulator never calls
    this; it is the execution target for ``repro-gossip serve``,
    ``Experiment.deploy()``, and the replay bridge.
    """

    name: str
    description: str
    deploy: Callable[..., Any]


class Registry:
    """Name -> definition, with duplicate protection and enumerated errors."""

    def __init__(self, kind: str, plural: str):
        self.kind = kind
        self.plural = plural
        self._defs: dict[str, Any] = {}

    def register(self, defn):
        """Add a definition; duplicate names are an error, never a shadow."""
        if not getattr(defn, "name", ""):
            raise ConfigurationError(
                f"a {self.kind} definition needs a non-empty name"
            )
        if defn.name in self._defs:
            raise ConfigurationError(
                f"{self.kind} {defn.name!r} is already registered"
            )
        self._defs[defn.name] = defn
        return defn

    def unregister(self, name: str) -> None:
        if name not in self._defs:
            raise ConfigurationError(
                f"cannot unregister unknown {self.kind} {name!r}"
            )
        del self._defs[name]

    @contextmanager
    def temporary(self, defn):
        """Register for the duration of a ``with`` block (test fixtures)."""
        self.register(defn)
        try:
            yield defn
        finally:
            if self._defs.get(defn.name) is defn:
                del self._defs[defn.name]

    def find(self, name):
        """The definition, or ``None`` — never raises on unknown names."""
        ensure_builtins()
        return self._defs.get(name)

    def get(self, name):
        """The definition; unknown names raise with the registered set."""
        defn = self.find(name)
        if defn is None:
            known = ", ".join(sorted(self._defs)) or "(none)"
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; registered {self.plural}: "
                f"{known}"
            )
        return defn

    def names(self) -> tuple:
        """Registered names in registration order."""
        ensure_builtins()
        return tuple(self._defs)

    def values(self) -> tuple:
        ensure_builtins()
        return tuple(self._defs.values())

    def __contains__(self, name) -> bool:
        ensure_builtins()
        return name in self._defs

    def __iter__(self):
        return iter(self.names())

    def __len__(self) -> int:
        ensure_builtins()
        return len(self._defs)

    def __repr__(self) -> str:
        return f"Registry({self.kind}, {len(self._defs)} registered)"


class RegistryNames(Sequence):
    """A live, ordered view of a registry's names (optionally filtered).

    Stands in for the old hard-coded name tuples (``ALGORITHMS``,
    ``EXPERIMENT_ALGORITHMS``): indexing, iteration, ``in``, and ``len``
    all reflect the registry *now*, so third-party registrations appear
    without any edit to the modules exporting these views.
    """

    def __init__(self, registry: Registry, predicate=None):
        self._registry = registry
        self._predicate = predicate

    def _names(self) -> tuple:
        if self._predicate is None:
            return self._registry.names()
        return tuple(
            defn.name
            for defn in self._registry.values()
            if self._predicate(defn)
        )

    def __getitem__(self, index):
        return self._names()[index]

    def __len__(self) -> int:
        return len(self._names())

    def __contains__(self, name) -> bool:
        return name in self._names()

    def __iter__(self):
        return iter(self._names())

    def __repr__(self) -> str:
        return repr(self._names())


class RegistryMapping(Mapping):
    """A live name -> ``project(defn)`` mapping view over a registry.

    Keeps dict-shaped legacy surfaces (``TOPOLOGY_FAMILIES``,
    ``SCENARIOS``) alive while the registry stays the single source of
    truth.  Missing names raise ``KeyError`` per the Mapping contract.
    """

    def __init__(self, registry: Registry, project=None):
        self._registry = registry
        self._project = project or (lambda defn: defn)

    def __getitem__(self, name):
        defn = self._registry.find(name)
        if defn is None:
            raise KeyError(name)
        return self._project(defn)

    def __iter__(self):
        return iter(self._registry.names())

    def __len__(self) -> int:
        return len(self._registry)

    def __repr__(self) -> str:
        return f"RegistryMapping({self._registry.kind}: {list(self)})"


ALGORITHM_REGISTRY = Registry("algorithm", "algorithms")
TOPOLOGY_REGISTRY = Registry("topology family", "topology families")
DYNAMICS_REGISTRY = Registry("dynamics kind", "dynamics kinds")
INSTANCE_REGISTRY = Registry("instance kind", "instance kinds")
SCENARIO_REGISTRY = Registry("scenario", "scenarios")
FAULT_REGISTRY = Registry("fault model", "fault models")
TIMING_REGISTRY = Registry("timing model", "timing models")
TRANSPORT_REGISTRY = Registry("transport", "transports")


def register_algorithm(
    *,
    name: str,
    description: str,
    config_class: type | None = None,
    tag_length: int | Callable[[Any], int] = 1,
    requires_stable_topology: bool = False,
    config_extra_keys: tuple = (),
    experiment_only: bool = False,
):
    """Decorator registering an :class:`AlgorithmDef`.

    Decorates the node builder (``fn(ctx) -> {vertex: node}``) — or, with
    ``experiment_only=True``, the experiments-layer executor
    (``fn(spec, dynamic_graph, config) -> record``).
    """

    def decorate(fn):
        ALGORITHM_REGISTRY.register(
            AlgorithmDef(
                name=name,
                description=description,
                config_class=config_class,
                build_nodes=None if experiment_only else fn,
                tag_length=tag_length,
                requires_stable_topology=requires_stable_topology,
                config_extra_keys=tuple(config_extra_keys),
                execute=fn if experiment_only else None,
            )
        )
        return fn

    return decorate


def register_topology(*, name: str, description: str, from_size=None,
                      build_dynamic=None):
    """Decorator registering a topology-family factory."""

    def decorate(fn):
        TOPOLOGY_REGISTRY.register(
            TopologyDef(
                name=name,
                description=description,
                factory=fn,
                from_size=from_size,
                build_dynamic=build_dynamic,
            )
        )
        return fn

    return decorate


def register_dynamics(*, name: str, description: str, topology_free=False):
    """Decorator registering a dynamic-graph builder."""

    def decorate(fn):
        DYNAMICS_REGISTRY.register(
            DynamicsDef(name=name, description=description, build=fn,
                        topology_free=topology_free)
        )
        return fn

    return decorate


def register_instance(*, name: str, description: str):
    """Decorator registering an instance-recipe builder."""

    def decorate(fn):
        INSTANCE_REGISTRY.register(
            InstanceDef(name=name, description=description, build=fn)
        )
        return fn

    return decorate


def register_scenario(*, name: str, description: str):
    """Decorator registering a scenario factory."""

    def decorate(fn):
        SCENARIO_REGISTRY.register(
            ScenarioDef(name=name, description=description, factory=fn)
        )
        return fn

    return decorate


def register_fault(*, name: str, description: str):
    """Decorator registering a fault-model builder."""

    def decorate(fn):
        FAULT_REGISTRY.register(
            FaultDef(name=name, description=description, build=fn)
        )
        return fn

    return decorate


def register_timing(*, name: str, description: str):
    """Decorator registering a timing-model builder."""

    def decorate(fn):
        TIMING_REGISTRY.register(
            TimingDef(name=name, description=description, build=fn)
        )
        return fn

    return decorate


def register_transport(*, name: str, description: str):
    """Decorator registering a deployment-transport entry point."""

    def decorate(fn):
        TRANSPORT_REGISTRY.register(
            TransportDef(name=name, description=description, deploy=fn)
        )
        return fn

    return decorate


#: Modules whose import registers the built-in definitions.  Algorithm
#: order here fixes the display/grid order of the name views (the paper's
#: Figure 1 order, then MultiBit — our b ≥ 1 generalization — then the
#: single-rumor PPUSH primitive from §6).
_BUILTIN_MODULES = (
    "repro.graphs.topologies",
    "repro.graphs.dynamic",
    "repro.sim.faults",
    "repro.asynchrony.timing",
    "repro.core.problem",
    "repro.core.blindmatch",
    "repro.core.sharedbit",
    "repro.core.simsharedbit",
    "repro.core.crowdedbin",
    "repro.core.multibit",
    "repro.core.epsilon",
    "repro.core.ppush",
    "repro.workloads.scenarios",
    "repro.net.coordinator",
)

_builtins_loaded = False
_builtins_loading = False


def ensure_builtins() -> None:
    """Import every module that registers built-in definitions (once).

    Normal package imports do this implicitly; the guard exists so that
    resolving names works even when only ``repro.registry`` was imported.
    A separate in-progress flag stops recursion from registration calls
    made during those imports; the loaded flag is only set after every
    import succeeded, so a failed import surfaces again on the next
    lookup instead of leaving the registries half-empty for good.
    """
    global _builtins_loaded, _builtins_loading
    if _builtins_loaded or _builtins_loading:
        return
    _builtins_loading = True
    try:
        for module in _BUILTIN_MODULES:
            importlib.import_module(module)
    finally:
        _builtins_loading = False
    _builtins_loaded = True


def load_plugin(spec: str):
    """Import a plugin module that registers out-of-tree definitions.

    ``spec`` is either an importable module name or a path to a ``.py``
    file.  File plugins are loaded under a stable synthetic module name
    derived from their resolved path, so loading the same file twice
    (e.g. two CLI invocations in one process) is a no-op rather than a
    duplicate registration.
    """
    path = Path(spec)
    if path.suffix == ".py":
        if not path.exists():
            raise ConfigurationError(f"plugin file {spec!r} does not exist")
        resolved = str(path.resolve())
        digest = hashlib.sha1(resolved.encode()).hexdigest()[:8]
        module_name = f"repro_plugin_{path.stem}_{digest}"
        if module_name in sys.modules:
            return sys.modules[module_name]
        module_spec = importlib.util.spec_from_file_location(
            module_name, resolved
        )
        if module_spec is None or module_spec.loader is None:
            raise ConfigurationError(f"cannot load plugin file {spec!r}")
        module = importlib.util.module_from_spec(module_spec)
        sys.modules[module_name] = module
        try:
            module_spec.loader.exec_module(module)
        except BaseException:
            del sys.modules[module_name]
            raise
        return module
    try:
        return importlib.import_module(spec)
    except ImportError as exc:
        raise ConfigurationError(
            f"cannot import plugin module {spec!r}: {exc}"
        ) from exc
