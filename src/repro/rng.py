"""Deterministic randomness for simulations.

Two kinds of randomness appear in the paper and therefore in this library:

* **Private randomness** — each node flips its own coins (BlindMatch's
  sender/receiver coin, EQTest's evaluation points, ...). We model this with
  a :class:`SeedTree`: a root seed from which independent, reproducible
  ``random.Random`` streams are derived by name, so a whole experiment is
  replayable from one integer.

* **Shared randomness** — SharedBit assumes a uniform shared string ``r̂`` of
  length Θ(N³ log N) partitioned into *groups* (one per round) of *N bundles*
  (one per UID) of ``⌈log N⌉ + 1`` bits each.  Materializing that string is
  infeasible and unnecessary: algorithms read only a handful of bundles per
  round.  :class:`SharedRandomness` therefore evaluates the string lazily
  with a keyed BLAKE2b PRF — functionally a uniform string, and *shared*
  because every node holds the same key.  This substitution is recorded in
  DESIGN.md §4.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

__all__ = [
    "LazyStream",
    "SeedTree",
    "SharedRandomness",
    "prf_bytes",
    "prf_bits",
    "prf_bits_many",
    "prf_uniform_int",
    "serialize_index",
    "prf_template",
]

_PERSON = b"repro-gossip"


def serialize_index(index: tuple[int, ...]) -> bytes:
    """The unambiguous serialization of a PRF index tuple.

    Length-prefixed big-endian integers — exactly the payload prefix
    :func:`prf_bytes` hashes.  Exposed so batched evaluators can build
    payloads incrementally (e.g. a cached per-vertex prefix plus a
    per-cycle suffix) and still land on the same digests.
    """
    return b"".join(
        len(ix := i.to_bytes((max(i.bit_length(), 1) + 7) // 8, "big", signed=False)).to_bytes(2, "big") + ix
        for i in index
    )


def prf_template(key: bytes):
    """A keyed BLAKE2b state compatible with :func:`prf_bytes`.

    ``prf_template(key).copy()`` then ``update(serialize_index(index) +
    counter.to_bytes(4, "big"))`` yields the same digest ``prf_bytes``
    computes for ``index`` at that counter.  Batched evaluators copy the
    template instead of re-keying the hash per call, which is the
    dominant setup cost at thousands of draws per round window.
    """
    return hashlib.blake2b(key=key[:64], person=_PERSON, digest_size=64)


def prf_bytes(key: bytes, index: tuple[int, ...], nbytes: int) -> bytes:
    """Return ``nbytes`` pseudorandom bytes for ``index`` under ``key``.

    The PRF is BLAKE2b in keyed mode; the index tuple is serialized
    unambiguously (length-prefixed big-endian integers). Output longer than
    one digest is produced in counter mode.
    """
    if nbytes <= 0:
        raise ValueError(f"nbytes must be positive, got {nbytes}")
    payload = serialize_index(index)
    out = bytearray()
    counter = 0
    while len(out) < nbytes:
        h = hashlib.blake2b(
            payload + counter.to_bytes(4, "big"),
            key=key[:64],
            person=_PERSON,
            digest_size=64,
        )
        out.extend(h.digest())
        counter += 1
    return bytes(out[:nbytes])


def prf_bits(key: bytes, index: tuple[int, ...], nbits: int) -> int:
    """Return an ``nbits``-bit pseudorandom integer for ``index`` under ``key``."""
    if nbits <= 0:
        raise ValueError(f"nbits must be positive, got {nbits}")
    raw = prf_bytes(key, index, (nbits + 7) // 8)
    return int.from_bytes(raw, "big") >> ((8 * len(raw)) - nbits)


def prf_bits_many(
    key: bytes, indices, nbits: int, prefix: tuple[int, ...] = (),
    suffix: tuple[int, ...] = (),
) -> list[int]:
    """``prf_bits(key, prefix + (i,) + suffix, nbits)`` for many ``i``.

    The batched form the engine's array fast path uses: hashing is still
    one BLAKE2b per index (the PRF is inherently per-input), but the
    caller pays Python call overhead once per *batch* instead of once per
    (node, token) pair — and, crucially, shares the batch result across
    all nodes in a round instead of re-deriving identical bits per node.
    """
    return [prf_bits(key, prefix + (i,) + suffix, nbits) for i in indices]


def prf_uniform_int(key: bytes, index: tuple[int, ...], bound: int) -> int:
    """Return a uniform integer in ``[0, bound)`` derived from the PRF.

    Uses deterministic rejection sampling over successive PRF blocks so the
    result is exactly uniform (the paper's nodes use ``log N`` shared bits to
    pick uniformly among at most N neighbors; rejection sampling is the
    standard way to realize that uniformity exactly).
    """
    if bound <= 0:
        raise ValueError(f"bound must be positive, got {bound}")
    if bound == 1:
        return 0
    nbits = (bound - 1).bit_length()
    attempt = 0
    while True:
        value = prf_bits(key, index + (0x52, attempt), nbits)
        if value < bound:
            return value
        attempt += 1


def _derive_seed(root: int, path: tuple) -> int:
    material = repr((root, path)).encode()
    return int.from_bytes(hashlib.blake2b(material, digest_size=16).digest(), "big")


class LazyStream:
    """A ``random.Random`` stand-in that materializes on first draw.

    A real ``random.Random`` carries the full Mersenne state — roughly
    2.5 KB — so a million per-node private streams cost ~2.5 GB at node
    build time, even though array-path runs of bulk-hook algorithms
    never draw from them (private randomness flows through the batched
    PRF and acceptance streams instead).  The proxy holds only a seed
    closure until the first attribute access; it then builds the real
    stream and caches the requested bound methods in its instance dict,
    so every later ``rng.random()`` is one dict hit away from the real
    thing.  Draw-for-draw identical to the eager stream for the same
    derivation path (pinned in tests/test_scale.py).
    """

    def __init__(self, factory):
        self._factory = factory

    def __getattr__(self, name):
        rng = self.__dict__.get("_rng")
        if rng is None:
            rng = self.__dict__["_rng"] = self._factory()
        attr = getattr(rng, name)
        if not name.startswith("_"):
            # Cache the bound method so repeated draws skip __getattr__.
            self.__dict__[name] = attr
        return attr


@dataclass
class SeedTree:
    """A tree of independent reproducible random streams.

    Example::

        tree = SeedTree(seed=7)
        node_rng = tree.stream("node", uid)     # random.Random
        child = tree.child("leader-election")   # SeedTree

    Streams for distinct paths are computationally independent (derived by
    hashing the path under the root seed), and the same path always yields
    the same stream.
    """

    seed: int
    _path: tuple = field(default_factory=tuple)

    def stream(self, *path) -> random.Random:
        """Return a ``random.Random`` dedicated to ``path``."""
        return random.Random(_derive_seed(self.seed, self._path + tuple(path)))

    def lazy_stream(self, *path) -> LazyStream:
        """Like :meth:`stream`, but deferred until the first draw.

        Returns a :class:`LazyStream` whose materialized stream is the
        exact ``random.Random`` :meth:`stream` would have built for the
        same path — the memory-lean form for per-node private streams
        that bulk-hook runs never touch.
        """
        root = self.seed
        full = self._path + tuple(path)
        return LazyStream(lambda: random.Random(_derive_seed(root, full)))

    def child(self, *path) -> "SeedTree":
        """Return a subtree rooted at ``path`` (for handing to subsystems)."""
        return SeedTree(seed=self.seed, _path=self._path + tuple(path))

    def key(self, *path) -> bytes:
        """Return 32 key bytes for ``path`` (for PRF-based shared strings)."""
        return _derive_seed(self.seed, self._path + tuple(path)).to_bytes(16, "big") * 2


class SharedRandomness:
    """The shared string ``r̂`` of SharedBit, evaluated lazily.

    The string is organized exactly as in §5.1 of the paper: ``groups`` of
    ``N`` *bundles*, each bundle holding ``⌈log N⌉ + 1`` bits.  Group ``r``
    supplies the bits for round ``r``; bundle ``t`` of a group belongs to
    UID/token ``t``.

    * :meth:`token_bit` — the *first* bit of a bundle, used as ``t.bit`` when
      hashing token sets to a 1-bit advertisement.
    * :meth:`selection_index` — a uniform index derived from the remaining
      bits of a node's own bundle, used to pick which 0-advertising neighbor
      receives the proposal.

    Two instances constructed with the same key are bit-for-bit identical,
    which is the shared-randomness assumption. ``SimSharedBit`` builds its
    family R′ of candidate strings as SharedRandomness instances with
    distinct keys (see :mod:`repro.commcplx.newman`).
    """

    def __init__(self, key: bytes, capacity_n: int):
        if capacity_n < 2:
            raise ValueError(f"capacity_n must be >= 2, got {capacity_n}")
        self._key = key
        self.capacity_n = capacity_n

    @classmethod
    def from_seed(cls, seed: int, capacity_n: int) -> "SharedRandomness":
        return cls(SeedTree(seed).key("shared-string"), capacity_n)

    @property
    def key(self) -> bytes:
        return self._key

    def token_bit(self, group: int, bundle: int) -> int:
        """Bit assigned to token/UID ``bundle`` in round-group ``group``."""
        self._check(group, bundle)
        return prf_bits(self._key, (group, bundle, 0), 1)

    def token_bits(self, group: int, bundles) -> dict[int, int]:
        """``{bundle: token_bit(group, bundle)}`` for many bundles at once.

        Each bit equals :meth:`token_bit` exactly (same PRF inputs); the
        batched form exists so SharedBit's bulk hooks can derive each
        round's token bits *once* and share them across all n nodes —
        the object path recomputes them per (node, token), which is the
        sharedbit hot path's dominant cost at scale.
        """
        bundles = list(bundles)
        for bundle in bundles:
            self._check(group, bundle)
        bits = prf_bits_many(self._key, bundles, 1, prefix=(group,),
                             suffix=(0,))
        return dict(zip(bundles, bits))

    def selection_index(self, group: int, bundle: int, bound: int) -> int:
        """Uniform value in ``[0, bound)`` from bundle ``bundle`` of ``group``."""
        self._check(group, bundle)
        return prf_uniform_int(self._key, (group, bundle, 1), bound)

    def bundle_bits(self, group: int, bundle: int, nbits: int) -> int:
        """Raw ``nbits`` of the bundle, for callers that need the bit string."""
        self._check(group, bundle)
        return prf_bits(self._key, (group, bundle, 2), nbits)

    def _check(self, group: int, bundle: int) -> None:
        if group < 0:
            raise ValueError(f"group must be >= 0, got {group}")
        if not 0 <= bundle <= self.capacity_n:
            raise ValueError(
                f"bundle must be in [0, {self.capacity_n}], got {bundle}"
            )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, SharedRandomness)
            and self._key == other._key
            and self.capacity_n == other.capacity_n
        )

    def __hash__(self) -> int:
        return hash((self._key, self.capacity_n))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedRandomness(key={self._key[:4].hex()}…, N={self.capacity_n})"
