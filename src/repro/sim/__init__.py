"""The mobile telephone model as a discrete-round simulator.

A round proceeds in the model's three stages (§2 of the paper):

1. **Scan** — every node learns its neighbors in this round's topology
   graph; every node picks a ``b``-bit advertising tag; neighbors see tags.
2. **Propose** — each node may send one connection proposal to one
   neighbor.  A proposer cannot also receive; a non-proposer with incoming
   proposals accepts one chosen uniformly at random.
3. **Connect** — each matched pair communicates over a metered
   :class:`~repro.sim.channel.Channel`: at most ``max_tokens`` tokens and
   ``max_control_bits`` extra bits.

:class:`~repro.sim.engine.Simulation` drives the loop; algorithms implement
:class:`~repro.sim.protocol.NodeProtocol`.
"""

from repro.sim.adjacency import CSRAdjacency
from repro.sim.context import NeighborView
from repro.sim.channel import Channel, ChannelPolicy
from repro.sim.faults import (
    CrashChurn,
    FaultModel,
    LossyLinks,
    NoFaults,
    SleepCycle,
    build_fault,
)
from repro.sim.protocol import NodeProtocol, TokenHolder, bulk_hooks
from repro.sim.matching import resolve_proposals, resolve_proposals_arrays
from repro.sim.trace import RoundRecord, Trace
from repro.sim.engine import Simulation, SimulationResult
from repro.sim.termination import (
    never,
    all_hold_tokens,
    all_agree_on_leader,
    any_of,
)

__all__ = [
    "CSRAdjacency",
    "NeighborView",
    "Channel",
    "ChannelPolicy",
    "FaultModel",
    "NoFaults",
    "SleepCycle",
    "CrashChurn",
    "LossyLinks",
    "build_fault",
    "NodeProtocol",
    "TokenHolder",
    "bulk_hooks",
    "resolve_proposals",
    "resolve_proposals_arrays",
    "RoundRecord",
    "Trace",
    "Simulation",
    "SimulationResult",
    "never",
    "all_hold_tokens",
    "all_agree_on_leader",
    "any_of",
]
