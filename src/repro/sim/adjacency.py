"""CSR adjacency snapshots — the flat-array view of one epoch's topology.

The object engine hands protocols per-vertex ``NeighborView`` tuples; the
array fast path instead hands bulk protocol hooks one
:class:`CSRAdjacency` per epoch: the topology in compressed-sparse-row
form (``indptr``/``indices`` in the narrowest index dtype that fits —
int32 below 2^31 vertices/edges, int64 above, see
:func:`index_dtype_for`), with each row's neighbors **sorted by
vertex** — exactly the order the object engine's ``_refresh_adjacency``
produces, which is what keeps the two paths' random-stream consumption
aligned.  UID arrays stay int64 regardless (the matching resolvers
coerce to int64, so the index dtype never reaches a random draw — the
int32/int64 identity the differential harness pins).

A CSR snapshot is built once per τ-epoch.  :meth:`DynamicGraph.csr_at
<repro.graphs.dynamic.DynamicGraph.csr_at>` is the producing hook: the
default implementation converts ``graph_at``'s ``nx.Graph``, while
dynamics that can do better (``RelabelingAdversary``) permute arrays
directly and never materialize a graph object on the fast path.

UIDs are simulation-side knowledge (the dynamic graph only knows
vertices), so the engine *binds* its per-vertex UID array onto the epoch
snapshot with :meth:`CSRAdjacency.bind_uids`; bulk hooks then read
``csr.uids`` (per-edge neighbor UIDs) and ``csr.vertex_uids`` without any
per-round translation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CSRAdjacency", "index_dtype_for"]

#: Largest value an int32 index array can hold.  Vertex ids must stay
#: below it, and so must the edge count (``indptr``'s last entry).
_INT32_LIMIT = np.iinfo(np.int32).max


def index_dtype_for(n: int, nnz: int | None = None) -> np.dtype:
    """The narrowest index dtype that can hold a snapshot's structure.

    int32 when every vertex id (< ``n``) and every ``indptr`` offset
    (≤ ``nnz``) fits, int64 otherwise.  Halving the index width is the
    single biggest memory lever at n = 10^6: a degree-6 snapshot's
    ``indices`` drop from 48 MB to 24 MB, and every masked/bound copy
    shrinks with them.  When ``nnz`` is unknown pass ``None`` and the
    decision is made on ``n`` alone (callers that later learn the edge
    count re-check it).
    """
    if n > _INT32_LIMIT or (nnz is not None and nnz > _INT32_LIMIT):
        return np.dtype(np.int64)
    return np.dtype(np.int32)


# eq=False: a generated __eq__ over array fields raises on comparison;
# snapshots compare by identity (the engine's epoch key), and
# same_structure() is the content comparison.
@dataclass(eq=False)
class CSRAdjacency:
    """One epoch's topology as flat arrays.

    ``indices[indptr[v]:indptr[v + 1]]`` are vertex ``v``'s neighbors in
    ascending vertex order.  ``uids``/``vertex_uids`` are populated only
    on snapshots returned by :meth:`bind_uids` (the engine's view);
    ``base`` then points at the unbound epoch snapshot, which the engine
    uses as the epoch-change identity key.
    """

    n: int
    indptr: np.ndarray
    indices: np.ndarray
    uids: np.ndarray | None = None
    vertex_uids: np.ndarray | None = None
    base: "CSRAdjacency | None" = None
    arena: "object | None" = field(default=None, repr=False)
    _edge_sources: np.ndarray | None = field(default=None, repr=False)
    _uid_rows: list | None = field(default=None, repr=False)
    _masked_memo: dict | None = field(default=None, repr=False)

    @classmethod
    def from_graph(cls, graph, dtype=None) -> "CSRAdjacency":
        """Snapshot an ``nx.Graph`` over vertices ``0..n-1``.

        ``dtype`` forces the index dtype; ``None`` picks the narrowest
        one that fits (:func:`index_dtype_for`).
        """
        n = graph.number_of_nodes()
        adj = graph.adj
        counts = [len(adj[vertex]) for vertex in range(n)]
        nnz = sum(counts)
        if dtype is None:
            dtype = index_dtype_for(n, nnz)
        indptr = np.zeros(n + 1, dtype=dtype)
        np.cumsum(counts, out=indptr[1:])
        indices = np.empty(nnz, dtype=dtype)
        for vertex in range(n):
            row = sorted(adj[vertex])
            indices[indptr[vertex]:indptr[vertex + 1]] = row
        return cls(n=n, indptr=indptr, indices=indices)

    @classmethod
    def from_edge_lists(cls, sources, targets, n: int,
                        dtype=None) -> "CSRAdjacency":
        """Snapshot from parallel per-edge arrays (both directions listed).

        Rows come out sorted by neighbor vertex whatever order the edges
        arrive in — the contract every snapshot shares.  ``dtype`` as in
        :meth:`from_graph`.
        """
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if dtype is None:
            dtype = index_dtype_for(n, len(sources))
        order = np.lexsort((targets, sources))
        indptr = np.zeros(n + 1, dtype=dtype)
        np.cumsum(np.bincount(sources, minlength=n), out=indptr[1:])
        return cls(n=n, indptr=indptr,
                   indices=targets[order].astype(dtype, copy=False))

    @property
    def degrees(self) -> np.ndarray:
        return self.indptr[1:] - self.indptr[:-1]

    def neighbors(self, vertex: int) -> np.ndarray:
        return self.indices[self.indptr[vertex]:self.indptr[vertex + 1]]

    def edge_sources(self) -> np.ndarray:
        """Per-edge source vertex (``rows`` of the CSR), built lazily."""
        if self._edge_sources is None:
            self._edge_sources = np.repeat(
                np.arange(self.n, dtype=self.indices.dtype), self.degrees
            )
        return self._edge_sources

    def round_buffer(self, name: str, shape, dtype,
                     fill=None) -> np.ndarray:
        """A per-round scratch array, arena-backed when one is attached.

        Bulk hooks allocate their tag/proposal arrays through this so
        Stage 1–2 stop creating fresh numpy arrays every round: with an
        engine :class:`~repro.sim.arena.BufferArena` attached (UID-bound
        snapshots on the array path) the same buffer comes back each
        round; without one it degrades to a plain allocation.  Buffers
        are only valid until the next round's call with the same name.
        """
        if self.arena is None:
            buf = np.empty(shape, dtype=dtype)
        else:
            buf = self.arena.take(name, shape, dtype)
        if fill is not None:
            buf[...] = fill
        return buf

    def uid_rows(self) -> list:
        """Per-vertex neighbor-UID tuples (UID-bound snapshots only).

        Cached for the epoch.  Bulk hooks that hand whole rows to
        ``random.Random.choice`` use these: ``choice`` on a small tuple is
        measurably cheaper than on a numpy slice, and the draw is
        identical (same length, same one ``_randbelow``).
        """
        if self._uid_rows is None:
            if self.uids is None:
                raise ValueError("uid_rows needs a UID-bound snapshot")
            flat = self.uids.tolist()
            indptr = self.indptr.tolist()
            self._uid_rows = [
                tuple(flat[indptr[v]:indptr[v + 1]]) for v in range(self.n)
            ]
        return self._uid_rows

    def candidate_rows(self, tags, source_tag: int = 1,
                       neighbor_tag: int = 0):
        """Yield ``(vertex, sorted neighbor UIDs)`` for proposal rounds.

        The b = 1 bulk-hook scaffold shared by PPUSH and SharedBit: every
        vertex advertising ``source_tag`` that has at least one neighbor
        advertising ``neighbor_tag``, in ascending vertex order (the
        scalar hooks' iteration order), each with that neighbor subset's
        UIDs sorted ascending (the scalar hooks' candidate order).
        UID-bound snapshots only.  The eligibility count is a bincount
        over edge sources, not a reduceat over indptr segments, so
        zero-degree vertices (possible under out-of-tree dynamics) are
        handled correctly.
        """
        if self.uids is None:
            raise ValueError("candidate_rows needs a UID-bound snapshot")
        mask = tags[self.indices] == neighbor_tag
        counts = np.bincount(self.edge_sources()[mask], minlength=self.n)
        indptr, uids = self.indptr, self.uids
        for vertex in np.nonzero((tags == source_tag) & (counts > 0))[0].tolist():
            start, end = indptr[vertex], indptr[vertex + 1]
            yield vertex, np.sort(uids[start:end][mask[start:end]])

    def masked(self, active: np.ndarray) -> "CSRAdjacency":
        """The active-subgraph snapshot under a boolean vertex mask.

        Keeps exactly the edges whose *both* endpoints are active:
        inactive vertices come out with empty rows, and active vertices
        lose their sleeping neighbors.  Row order is preserved, so rows
        stay sorted by vertex — the invariant every snapshot shares.
        This is how the fault layer's per-round activity mask reaches
        the array fast path (the object path filters its neighbor lists
        with the same mask).
        """
        sources = self.edge_sources()
        keep = active[sources] & active[self.indices]
        indptr = np.zeros(self.n + 1, dtype=self.indptr.dtype)
        np.cumsum(
            np.bincount(sources[keep], minlength=self.n), out=indptr[1:]
        )
        return CSRAdjacency(
            n=self.n, indptr=indptr, indices=self.indices[keep]
        )

    def masked_bound(self, active: np.ndarray) -> "CSRAdjacency":
        """:meth:`masked` for UID-bound snapshots, memoized per mask.

        Produces the active-subgraph snapshot *with the UID binding
        carried along* in the same edge pass (``masked()`` returns an
        unbound snapshot the caller would have to re-bind, a second
        O(edges) gather).  A small per-snapshot memo keyed by the mask's
        bytes makes repeated masks — a duty cycle's few phases, or the
        many cohorts of one asynchronous round window sharing a fault
        mask — reuse the filtered row buffers instead of rebuilding
        them; distinct-every-round masks (churn) just rotate through the
        memo.  Rows keep the sorted-by-vertex invariant.
        """
        if self.uids is None:
            raise ValueError("masked_bound needs a UID-bound snapshot")
        if self._masked_memo is None:
            self._masked_memo = {}
        key = active.tobytes()
        snapshot = self._masked_memo.get(key)
        if snapshot is None:
            sources = self.edge_sources()
            keep = active[sources] & active[self.indices]
            indptr = np.zeros(self.n + 1, dtype=self.indptr.dtype)
            np.cumsum(
                np.bincount(sources[keep], minlength=self.n), out=indptr[1:]
            )
            snapshot = CSRAdjacency(
                n=self.n,
                indptr=indptr,
                indices=self.indices[keep],
                uids=self.uids[keep],
                vertex_uids=self.vertex_uids,
                base=self.base if self.base is not None else self,
                arena=self.arena,
            )
            if len(self._masked_memo) >= 8:
                self._masked_memo.pop(next(iter(self._masked_memo)))
            self._masked_memo[key] = snapshot
        return snapshot

    def bind_uids(self, vertex_uids: np.ndarray,
                  arena=None) -> "CSRAdjacency":
        """Return a snapshot with UID arrays attached (engine-side)."""
        return CSRAdjacency(
            n=self.n,
            indptr=self.indptr,
            indices=self.indices,
            uids=vertex_uids[self.indices],
            vertex_uids=vertex_uids,
            base=self,
            arena=arena,
            _edge_sources=self._edge_sources,
        )

    def same_structure(self, other: "CSRAdjacency") -> bool:
        return (
            self.n == other.n
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __repr__(self) -> str:
        return (
            f"CSRAdjacency(n={self.n}, edges={len(self.indices) // 2}, "
            f"bound={self.uids is not None})"
        )
