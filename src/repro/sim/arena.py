"""Preallocated per-round scratch buffers for the array fast path.

At n = 10^6 the array engine's Stage 1–3 used to allocate a handful of
fresh n-length (and edge-length) numpy arrays *every round* — tags,
proposal targets, legality masks.  Each is tens of megabytes at that
scale, so a 100-round run churned gigabytes through the allocator for
arrays whose shapes never change.  :class:`BufferArena` keeps one buffer
per (name, dtype) slot and hands the same memory back each round;
callers own the buffer only until their next request for the same name.

The arena is engine-private: :class:`~repro.sim.engine.Simulation`
creates one and attaches it to the UID-bound CSR snapshot, which is how
bulk protocol hooks reach it (via
:meth:`~repro.sim.adjacency.CSRAdjacency.round_buffer`) without any
change to the hook signatures.  Buffers are reallocated transparently
when a requested shape grows or changes (epoch changes, fault masks),
so correctness never depends on the arena — it is purely an allocation
cache.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BufferArena"]


class BufferArena:
    """A named pool of reusable numpy scratch buffers.

    ``take(name, shape, dtype)`` returns an *uninitialized* array of
    exactly that shape and dtype, reusing the previous round's memory
    when shape and dtype match.  Contents are whatever the last user
    left there — callers must overwrite every element they read (or ask
    :meth:`~repro.sim.adjacency.CSRAdjacency.round_buffer` to ``fill``).
    """

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def take(self, name: str, shape, dtype) -> np.ndarray:
        if isinstance(shape, int):
            shape = (shape,)
        else:
            shape = tuple(shape)
        dtype = np.dtype(dtype)
        buf = self._buffers.get(name)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[name] = buf
        return buf

    def __len__(self) -> int:
        return len(self._buffers)

    def nbytes(self) -> int:
        """Total bytes currently held (for memory accounting/benches)."""
        return sum(buf.nbytes for buf in self._buffers.values())
