"""Metered pairwise channels.

When two nodes connect they may perform "a bounded amount of reliable
communication before the round ends" (§2): at most O(1) tokens and
O(polylog N) additional bits.  :class:`Channel` is the meter and the
enforcement point — every subroutine that moves data between connected
nodes (EQTest trials, Transfer control flow, token payloads, leader
payloads) charges its cost here, and the test suite asserts every algorithm
stays inside its budget.

The channel meters; it does not carry payloads.  Both endpoints are Python
objects in one process, so data moves through ordinary calls while the
channel records what that data *would* cost on the wire.  This keeps the
accounting exact without forcing every protocol into a serialization
ceremony.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bits import BitCounter, polylog_budget
from repro.errors import ChannelBudgetError, ChannelClosedError, ConfigurationError

__all__ = ["ChannelPolicy", "Channel"]


@dataclass(frozen=True)
class ChannelPolicy:
    """Per-connection budgets.

    ``max_tokens`` — tokens per connection per round (the paper's O(1);
    default 1).
    ``max_control_bits`` — non-token bits per connection per round (the
    paper's O(polylog N)).
    ``strict`` — raise :class:`ChannelBudgetError` on overflow when True;
    otherwise record the overflow in ``Channel.violations`` and continue
    (useful for measuring how far an experimental protocol overshoots).
    """

    max_tokens: int = 1
    max_control_bits: int = 1 << 20
    strict: bool = True

    @classmethod
    def for_upper_n(cls, upper_n: int, max_tokens: int = 1, strict: bool = True):
        """Budget scaled as O(polylog N) for a concrete network-size bound."""
        return cls(
            max_tokens=max_tokens,
            max_control_bits=polylog_budget(upper_n),
            strict=strict,
        )

    def __post_init__(self):
        if self.max_tokens < 0:
            raise ConfigurationError(
                f"max_tokens must be >= 0, got {self.max_tokens}"
            )
        if self.max_control_bits < 0:
            raise ConfigurationError(
                f"max_control_bits must be >= 0, got {self.max_control_bits}"
            )


class Channel:
    """One round's connection between two nodes, with metered budgets."""

    def __init__(self, round_index: int, endpoint_a: int, endpoint_b: int,
                 policy: ChannelPolicy):
        self.round_index = round_index
        self.endpoints = (endpoint_a, endpoint_b)
        self.policy = policy
        self.bits = BitCounter()
        self.tokens_moved = 0
        self.violations: list[str] = []
        self._open = True

    def charge_bits(self, nbits: int, label: str = "control") -> None:
        """Record ``nbits`` of control traffic (either direction)."""
        self._require_open()
        self.bits.charge(nbits, label=label)
        if self.bits.total_bits > self.policy.max_control_bits:
            self._violate(
                f"control bits exceeded: {self.bits.total_bits} > "
                f"{self.policy.max_control_bits} (round {self.round_index})"
            )

    def charge_token(self) -> None:
        """Record one token payload crossing the channel."""
        self._require_open()
        self.tokens_moved += 1
        if self.tokens_moved > self.policy.max_tokens:
            self._violate(
                f"token budget exceeded: {self.tokens_moved} > "
                f"{self.policy.max_tokens} (round {self.round_index})"
            )

    def close(self) -> None:
        self._open = False

    @property
    def is_open(self) -> bool:
        return self._open

    def peer_of(self, uid: int) -> int:
        a, b = self.endpoints
        if uid == a:
            return b
        if uid == b:
            return a
        raise ConfigurationError(f"uid {uid} is not an endpoint of {self!r}")

    def _require_open(self) -> None:
        if not self._open:
            raise ChannelClosedError(
                f"channel {self.endpoints} used after round {self.round_index} ended"
            )

    def _violate(self, message: str) -> None:
        self.violations.append(message)
        if self.policy.strict:
            raise ChannelBudgetError(message)

    def __repr__(self) -> str:
        return (
            f"Channel(round={self.round_index}, endpoints={self.endpoints}, "
            f"bits={self.bits.total_bits}, tokens={self.tokens_moved})"
        )
