"""Per-round views handed to node protocols.

A node's knowledge at decision time is deliberately narrow — exactly what
the model grants: the UIDs of its current neighbors and, once tags are
published, each neighbor's ``b``-bit tag.  Protocols receive tuples of
:class:`NeighborView`; they never see the topology object, other nodes'
state, or the future.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NeighborView"]


@dataclass(frozen=True, slots=True)
class NeighborView:
    """What a node sees of one neighbor after the scan: UID and tag."""

    uid: int
    tag: int

    def __repr__(self) -> str:
        return f"NeighborView(uid={self.uid}, tag={self.tag})"
