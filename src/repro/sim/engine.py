"""The synchronous round engine for the mobile telephone model.

:class:`Simulation` owns the round loop and enforces the model's rules so
that protocols cannot cheat:

* tags are validated against the tag length ``b`` (with ``b = 0`` only the
  empty tag 0 is legal);
* proposals must name a current neighbor;
* matching follows :func:`repro.sim.matching.resolve_proposals` (one
  connection per node, proposers cannot receive);
* every connection runs over a budget-metered channel.

Everything is deterministic given the seed: topology evolution, acceptance
draws, and protocol-internal randomness (protocols are constructed with
streams from the same :class:`~repro.rng.SeedTree`).

Two interchangeable front halves drive Stages 1–2 of each round:

* the **object path** (the reference): per-node ``advertise``/``propose``
  calls over cached :class:`~repro.sim.context.NeighborView` skeletons;
* the **array path**: when every node provides the bulk hooks
  (:func:`repro.sim.protocol.bulk_hooks`), the engine feeds them one
  UID-bound CSR snapshot per epoch
  (:class:`~repro.sim.adjacency.CSRAdjacency` via
  ``DynamicGraph.csr_at``) and resolves matching with
  :func:`repro.sim.matching.resolve_proposals_arrays`.

The two paths are **byte-identical**: same tags, same proposals, same
random-stream consumption, same matching, same traces (pinned by
tests/test_fastpath.py across algorithms × dynamics × acceptance rules).
``engine_mode`` selects: ``"auto"`` (array when available), ``"object"``
(force the reference), ``"array"`` (require the fast path).

An optional :class:`~repro.sim.faults.FaultModel` degrades the clean
model deterministically: its per-round activity mask removes sleeping
vertices from the round's topology on *both* paths (they do not
advertise, cannot be proposed to, and see no neighbors), and its
per-match drop decisions make accepted connections fail before Stage 3.
The null model (:class:`~repro.sim.faults.NoFaults`, the default)
consumes zero randomness and leaves every trace byte-identical to an
engine without the layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Mapping

import networkx as nx
import numpy as np

from repro.errors import (
    ConfigurationError,
    MemoryBudgetError,
    ProtocolViolationError,
    RoundLimitExceeded,
)
from repro.graphs.dynamic import DynamicGraph
from repro.rng import SeedTree
from repro.sim.arena import BufferArena
from repro.sim.channel import Channel, ChannelPolicy
from repro.sim.context import NeighborView
from repro.sim.faults import FaultModel, NoFaults
from repro.sim.matching import (
    ACCEPTANCE_RULES,
    resolve_proposals,
    resolve_proposals_arrays,
    resolve_proposals_arrays_local,
    resolve_proposals_local,
    resolve_proposals_unbounded,
)
from repro.sim.protocol import NodeProtocol, bulk_hooks
from repro.sim.termination import TerminationCondition, never
from repro.sim.trace import RoundRecord, Trace
from repro.telemetry import resolve_telemetry

__all__ = ["Simulation", "SimulationResult"]

Gauge = Callable[[Mapping[int, NodeProtocol], int], object]

ENGINE_MODES = ("auto", "array", "object")

#: Above this n the object path refuses to build (see
#: :class:`~repro.errors.MemoryBudgetError`): per-vertex NeighborView
#: skeletons, neighbor tuples, and frozensets cost kilobytes per node
#: in Python objects, which silently turns into gigabytes at 10^6.
#: Pass ``object_path_max_n=None`` to Simulation to disable the guard,
#: or a larger value to move it.
OBJECT_PATH_MAX_N = 200_000

#: Rough per-node cost of the object path's epoch caches and per-node
#: Python state, used for the guard's error message (measured ~2-4 KB
#: per node at average degree 6 on CPython 3.12).
_OBJECT_PATH_BYTES_PER_NODE = 3_000


@dataclass
class SimulationResult:
    """Outcome of a run: how long it took and what the system looked like.

    ``event_counts`` (per-vertex activation totals) is filled in only by
    the asynchronous engine; the round engine activates every node once
    per round, so the column would be redundant there.
    """

    rounds: int
    terminated: bool
    trace: Trace
    nodes: Mapping[int, NodeProtocol]
    event_counts: np.ndarray | None = None

    @cached_property
    def nodes_by_uid(self) -> dict[int, NodeProtocol]:
        # Built once and cached: analysis code reads this in loops, and
        # the node set never changes after the run.
        return {node.uid: node for node in self.nodes.values()}

    @property
    def estimated_wall_rounds(self) -> float:
        """Effective run length in wall-clock rounds.

        Round-engine runs spend exactly one wall round per round;
        asynchronous runs report the trace's skew-stretched estimate
        (see :meth:`~repro.sim.trace.Trace.estimated_wall_rounds`),
        falling back to ``rounds`` when the trace kept no async records
        (e.g. aggressive downsampling).
        """
        estimate = self.trace.estimated_wall_rounds()
        return float(self.rounds) if estimate is None else estimate


class Simulation:
    """Drive a set of node protocols over a dynamic graph.

    ``protocols`` maps graph vertex (``0..n-1``) to the protocol object for
    the node at that vertex; each protocol carries its own UID, which is
    what other nodes observe (the vertex is an artifact of the simulator).
    """

    def __init__(
        self,
        dynamic_graph: DynamicGraph,
        protocols: Mapping[int, NodeProtocol],
        b: int,
        seed: int,
        channel_policy: ChannelPolicy | None = None,
        gauges: Mapping[str, Gauge] | None = None,
        gauge_every: int = 1,
        trace_sample_every: int = 1,
        termination_every: int = 1,
        acceptance: str = "uniform",
        acceptance_streams: str = "global",
        engine_mode: str = "auto",
        faults: FaultModel | None = None,
        trace_max_records: int | None = None,
        object_path_max_n: int | None = OBJECT_PATH_MAX_N,
        telemetry=None,
    ):
        if b < 0:
            raise ConfigurationError(f"tag length b must be >= 0, got {b}")
        if acceptance != "unbounded" and acceptance not in ACCEPTANCE_RULES:
            raise ConfigurationError(
                f"unknown acceptance mode {acceptance!r}; choose from "
                f"{sorted(ACCEPTANCE_RULES) + ['unbounded']}"
            )
        if acceptance_streams not in ("global", "local"):
            raise ConfigurationError(
                f"unknown acceptance_streams {acceptance_streams!r}; choose "
                "from ('global', 'local')"
            )
        if engine_mode not in ENGINE_MODES:
            raise ConfigurationError(
                f"unknown engine_mode {engine_mode!r}; choose from "
                f"{ENGINE_MODES}"
            )
        if set(protocols) != set(range(dynamic_graph.n)):
            raise ConfigurationError(
                "protocols must be keyed by every vertex 0..n-1"
            )
        uids = [node.uid for node in protocols.values()]
        if len(set(uids)) != len(uids):
            raise ConfigurationError("node UIDs must be unique")
        if gauge_every < 1 or termination_every < 1:
            raise ConfigurationError(
                "gauge_every and termination_every must be >= 1"
            )
        if (
            faults is not None
            and not faults.is_null
            and faults.n != dynamic_graph.n
        ):
            raise ConfigurationError(
                f"fault model is bound to n={faults.n} but the graph has "
                f"n={dynamic_graph.n}"
            )

        self.dynamic_graph = dynamic_graph
        self.protocols = dict(protocols)
        self.b = b
        self.max_tag = (1 << b) - 1
        self.seed = seed
        self.channel_policy = channel_policy or ChannelPolicy()
        self.gauges = dict(gauges or {})
        self.gauge_every = gauge_every
        self.termination_every = termination_every
        #: "uniform"/"lowest_uid"/"highest_uid" (mobile telephone model) or
        #: "unbounded" (the classical telephone model baseline).
        self.acceptance = acceptance
        #: "global" (default — one sequential acceptance stream per round,
        #: consumed in sorted-target order) or "local" (one stream per
        #: contested target, keyed ("match", round, "uid", target_uid) —
        #: the discipline a distributed proposee can reproduce; used by
        #: the live deployment bridge, see repro.net).
        self.acceptance_streams = acceptance_streams
        self.trace = Trace(
            sample_every=trace_sample_every, max_records=trace_max_records
        )
        # Observability (repro.telemetry): disabled by default — the
        # null bundle's profiler/sink are shared no-ops, so every
        # instrumented site below costs one attribute check.  Telemetry
        # draws zero randomness and never writes engine state: traces
        # are byte-identical with it on or off (check_telemetry_identity).
        self.telemetry = resolve_telemetry(telemetry)
        self._prof = self.telemetry.profiler

        self._tree = SeedTree(seed).child("engine")
        self._vertex_of_uid = {
            node.uid: vertex for vertex, node in self.protocols.items()
        }
        self._round = 0
        # Vertices are dense 0..n-1 (validated above), so the hot loop
        # walks lists instead of dict lookups.
        self._nodes = [self.protocols[vertex] for vertex in range(self.n)]
        self._tags = [0] * self.n
        # Adjacency caches are keyed on the graph object identity; dynamic
        # graphs return the same object for every round of an epoch, so this
        # rebuilds only when the topology actually changes.  The cached
        # NeighborView skeletons (and their tuples) live for a whole epoch:
        # each round only the views whose tag actually changed are replaced,
        # and a vertex's tuple is rebuilt only if any of its views changed.
        self._adjacency_for: nx.Graph | None = None
        self._neighbor_vertices: list[tuple[int, ...]] = []
        self._neighbor_uids: list[tuple[int, ...]] = []
        self._neighbor_uid_sets: list[frozenset] = []
        self._views: list[list[NeighborView]] = []
        self._view_tuples: list[tuple[NeighborView, ...]] = []

        # Array fast path: elected at construction, fixed for the run.
        self._bulk = None if engine_mode == "object" else bulk_hooks(self._nodes)
        if engine_mode == "array" and self._bulk is None:
            raise ConfigurationError(
                "engine_mode='array' but the node population does not "
                "provide equivalent bulk hooks (see repro.sim.protocol."
                "bulk_hooks); use 'auto' or 'object'"
            )
        self.engine_mode = "array" if self._bulk is not None else "object"
        if (
            self.engine_mode == "object"
            and object_path_max_n is not None
            and self.n > object_path_max_n
        ):
            est_mb = self.n * _OBJECT_PATH_BYTES_PER_NODE // (1 << 20)
            hint = (
                "the node population provides no bulk hooks — port them "
                "(repro.sim.protocol.bulk_hooks)"
                if engine_mode == "auto"
                else "use engine_mode='auto' or 'array'"
            )
            raise MemoryBudgetError(
                f"engine_mode={engine_mode!r} resolved to the object path "
                f"at n={self.n}: per-vertex NeighborView skeletons and "
                f"neighbor tuples would cost roughly {est_mb} MB of Python "
                f"objects (plus proportional per-round churn). {hint}, or "
                f"pass object_path_max_n={self.n} (None disables the "
                f"guard) to force it."
            )
        self._uid_array = np.fromiter(
            (node.uid for node in self._nodes), dtype=np.int64, count=self.n
        )
        self._csr_bound = None  # UID-bound CSR for the current epoch
        # Per-round scratch buffers for the array front half (and bulk
        # hooks, via the bound snapshot): one allocation per shape, not
        # one per round.
        self._arena = BufferArena()

        # Fault layer: when the model is null the per-round fault branch
        # is skipped entirely — no mask, no stream, byte-identical traces
        # to an engine without the layer.
        self.faults = faults if faults is not None else NoFaults(self.n)
        self._fault_active = not self.faults.is_null
        self._masked_bound = None   # UID-bound active-subgraph CSR
        self._masked_for = None     # ... built from this epoch snapshot
        self._masked_bytes = None   # ... under this activity mask
        self._prev_mask = None      # last round's mask (None = all awake)

    @property
    def n(self) -> int:
        return self.dynamic_graph.n

    @property
    def current_round(self) -> int:
        return self._round

    def run(
        self,
        max_rounds: int,
        termination: TerminationCondition | None = None,
        raise_on_limit: bool = False,
    ) -> SimulationResult:
        """Run until ``termination`` fires or ``max_rounds`` elapse."""
        if max_rounds < 1:
            raise ConfigurationError(f"max_rounds must be >= 1, got {max_rounds}")
        condition = termination or never()
        terminated = False
        while self._round < max_rounds:
            self.step()
            if (
                self._round % self.termination_every == 0
                or self._round == max_rounds
            ) and condition(self.protocols, self._round):
                terminated = True
                break
        if not terminated and raise_on_limit:
            raise RoundLimitExceeded(
                f"no termination within {max_rounds} rounds", trace=self.trace
            )
        return SimulationResult(
            rounds=self._round,
            terminated=terminated,
            trace=self.trace,
            nodes=self.protocols,
        )

    def step(self) -> RoundRecord | None:
        """Execute one full round.

        Returns the round's :class:`RoundRecord` when the trace keeps it
        (always with ``trace_sample_every=1``); unsampled rounds update the
        trace totals through a light path and return ``None``.
        """
        self._round += 1
        rnd = self._round
        prof = self._prof
        if prof.enabled:
            with prof.span("round.stages12"):
                proposal_count, matches, dropped, mask = \
                    self._round_stages(rnd)
            with prof.span("round.stage3"):
                tokens_moved, control_bits = self._stage3(rnd, matches)
            with prof.span("round.observe"):
                return self._observe_round(
                    rnd, proposal_count, len(matches), tokens_moved,
                    control_bits, dropped,
                    self.n if mask is None else int(mask.sum()),
                )
        proposal_count, matches, dropped, mask = self._round_stages(rnd)
        tokens_moved, control_bits = self._stage3(rnd, matches)
        return self._observe_round(
            rnd, proposal_count, len(matches), tokens_moved, control_bits,
            dropped, self.n if mask is None else int(mask.sum()),
        )

    def _round_stages(
        self, rnd: int
    ) -> tuple[int, list[tuple[int, int]], int, np.ndarray | None]:
        """Stages 1–2 of round ``rnd`` plus both fault decisions.

        Returns ``(proposal_count, surviving_matches, dropped, mask)``.
        Shared between :meth:`step` and the asynchronous engine's
        full-cohort path (:class:`~repro.asynchrony.engine.AsyncSimulation`
        runs exactly this body once per synchronous cohort).
        """
        # Fault layer, decision 1: who participates this round.  An
        # all-awake mask is normalized to None so degenerate masks (and
        # mask-free models like LossyLinks) stay on the cached hot paths.
        mask = None
        if self._fault_active:
            mask = self.faults.active_mask(rnd)
            if mask is not None:
                mask = np.asarray(mask, dtype=bool)
                if mask.shape != (self.n,):
                    raise ConfigurationError(
                        f"fault model returned a mask of shape "
                        f"{mask.shape}; expected ({self.n},)"
                    )
                if mask.all():
                    mask = None
            if self.faults.resets_state:
                self._apply_crash_resets(rnd, mask)

        if self._bulk is not None:
            if mask is None:
                proposal_count, matches = self._stages12_array(rnd)
            else:
                proposal_count, matches = self._stages12_array_masked(
                    rnd, mask
                )
        else:
            if mask is None:
                proposal_count, matches = self._stages12_object(rnd)
            else:
                proposal_count, matches = self._stages12_object_masked(
                    rnd, mask
                )

        # Fault layer, decision 2: accepted matches whose connection
        # fails.  Dropped matches never become connections: they skip
        # Stage 3 and are counted in the dropped_connections column.
        dropped = 0
        if self._fault_active and matches:
            surviving = []
            for pair in matches:
                if self.faults.drop_connection(rnd, pair[0], pair[1]):
                    dropped += 1
                else:
                    surviving.append(pair)
            matches = surviving
        return proposal_count, matches, dropped, mask

    def _stage3(
        self, rnd: int, matches: list[tuple[int, int]]
    ) -> tuple[int, int]:
        """Stage 3: bounded pairwise interaction over metered channels."""
        tokens_moved = 0
        control_bits = 0
        for initiator_uid, responder_uid in matches:
            initiator = self.protocols[self._vertex_of_uid[initiator_uid]]
            responder = self.protocols[self._vertex_of_uid[responder_uid]]
            channel = Channel(rnd, initiator_uid, responder_uid,
                              self.channel_policy)
            initiator.interact(responder, channel, rnd)
            channel.close()
            tokens_moved += channel.tokens_moved
            control_bits += channel.bits.total_bits
        return tokens_moved, control_bits

    def _observe_round(
        self,
        rnd: int,
        proposal_count: int,
        connections: int,
        tokens_moved: int,
        control_bits: int,
        dropped: int,
        active_nodes: int,
        **extra_columns,
    ) -> RoundRecord | None:
        """Fold one round into the trace (record or light path).

        ``extra_columns`` are additional :class:`RoundRecord` fields
        (the asynchrony layer's ``virtual_time``/``clock_skew_max``/
        ``events``); unsampled rounds skip the RoundRecord/gauge-dict
        churn entirely and only bump the trace totals.
        """
        gauges_due = bool(self.gauges) and rnd % self.gauge_every == 0
        if not (
            gauges_due or rnd == 1 or rnd % self.trace.sample_every == 0
        ):
            self.trace.observe(
                rnd, proposal_count, connections, tokens_moved,
                control_bits, dropped,
            )
            return None
        gauges = {}
        if gauges_due:
            gauges = {
                name: fn(self.protocols, rnd) for name, fn in self.gauges.items()
            }
        record = RoundRecord(
            round_index=rnd,
            proposals=proposal_count,
            connections=connections,
            tokens_moved=tokens_moved,
            control_bits=control_bits,
            gauges=gauges,
            active_nodes=active_nodes,
            dropped_connections=dropped,
            **extra_columns,
        )
        self.trace.record(record)
        return record

    def _apply_crash_resets(
        self, rnd: int, mask: np.ndarray | None
    ) -> None:
        """Reset protocols that crashed this round (fault models with
        ``resets_state``): every crashing vertex loses its learned state
        via ``reset_tokens()`` where the protocol provides it.  The
        model's own ``crashed_this_round`` report is authoritative when
        available — it sees a crash that starts the instant a previous
        outage ends, which the mask-transition fallback cannot.  Applied
        in vertex order before the stages, so both engine paths see
        identical post-crash state."""
        prev = self._prev_mask
        self._prev_mask = mask
        reported = self.faults.crashed_this_round(rnd)
        if reported is not None:
            crashed_vertices = np.asarray(reported, dtype=np.int64)
        elif mask is None:
            return
        else:
            crashed = ~mask if prev is None else prev & ~mask
            crashed_vertices = np.nonzero(crashed)[0]
        for vertex in crashed_vertices.tolist():
            reset = getattr(self._nodes[vertex], "reset_tokens", None)
            if reset is not None:
                reset()

    def _stages12_object(self, rnd: int) -> tuple[int, list[tuple[int, int]]]:
        """Stages 1–2 through per-node hooks (the reference path)."""
        graph = self.dynamic_graph.graph_at(rnd)
        self._refresh_adjacency(graph)

        nodes = self._nodes
        tags = self._tags
        max_tag = self.max_tag

        # Stage 1: scan + tag selection.
        for vertex, node in enumerate(nodes):
            tag = node.advertise(rnd, self._neighbor_uids[vertex])
            if not isinstance(tag, int) or not 0 <= tag <= max_tag:
                raise ProtocolViolationError(
                    f"node uid={node.uid} advertised tag {tag!r}; "
                    f"legal range with b={self.b} is [0, {self.max_tag}]"
                )
            tags[vertex] = tag

        # Stage 2: proposals, with each node seeing neighbor tags.  Views
        # come from the per-epoch skeleton cache; only views whose tag
        # changed since the previous round are replaced.
        proposals: dict[int, int] = {}
        neighbor_vertices = self._neighbor_vertices
        view_tuples = self._view_tuples
        for vertex, node in enumerate(nodes):
            views = self._views[vertex]
            stale = False
            for i, nv in enumerate(neighbor_vertices[vertex]):
                tag = tags[nv]
                view = views[i]
                if view.tag != tag:
                    views[i] = NeighborView(uid=view.uid, tag=tag)
                    stale = True
            if stale:
                view_tuples[vertex] = tuple(views)
            target = node.propose(rnd, view_tuples[vertex])
            if target is None:
                continue
            if target not in self._neighbor_uid_sets[vertex]:
                raise ProtocolViolationError(
                    f"node uid={node.uid} proposed to uid={target}, "
                    f"not a neighbor in round {rnd}"
                )
            proposals[node.uid] = target

        return len(proposals), self._resolve_matches(rnd, proposals)

    def _match_rng_for_target(self, rnd: int):
        """Per-target acceptance streams for ``acceptance_streams="local"``.

        Keyed ``("match", rnd, "uid", target_uid)`` off the engine
        subtree — derivable by any party that knows the run seed, the
        round, and its own UID (the live proposee's position)."""
        return lambda target: self._tree.stream("match", rnd, "uid", target)

    def _resolve_matches(self, rnd: int, proposals: dict) -> list:
        """Resolve one round's proposal dict under the configured
        acceptance rule and stream discipline."""
        if self.acceptance == "unbounded":
            return resolve_proposals_unbounded(proposals)
        if self.acceptance_streams == "local":
            return resolve_proposals_local(
                proposals, self._match_rng_for_target(rnd),
                rule=self.acceptance,
            )
        return resolve_proposals(
            proposals, self._tree.stream("match", rnd), rule=self.acceptance
        )

    def _stages12_object_masked(
        self, rnd: int, mask: np.ndarray
    ) -> tuple[int, list[tuple[int, int]]]:
        """Stages 1–2 on the active subgraph (the fault layer's mask).

        Every node's hooks still run — in the same vertex order as the
        unmasked path and as a bulk hook's scalar-equivalent loop — but
        an inactive vertex sees an empty neighborhood and an active
        vertex sees only its awake neighbors.  Views are built fresh per
        round (masks change round to round, so the per-epoch skeleton
        cache does not apply); the cached skeletons are left untouched
        for the next unmasked round.
        """
        graph = self.dynamic_graph.graph_at(rnd)
        self._refresh_adjacency(graph)

        nodes = self._nodes
        tags = self._tags
        max_tag = self.max_tag
        active = mask.tolist()
        masked_vertices: list[tuple[int, ...]] = [
            tuple(nv for nv in self._neighbor_vertices[vertex] if active[nv])
            if active[vertex]
            else ()
            for vertex in range(self.n)
        ]
        masked_uids = [
            tuple(nodes[nv].uid for nv in nvs) for nvs in masked_vertices
        ]

        # Stage 1: scan + tag selection over awake neighbors only.
        for vertex, node in enumerate(nodes):
            tag = node.advertise(rnd, masked_uids[vertex])
            if not isinstance(tag, int) or not 0 <= tag <= max_tag:
                raise ProtocolViolationError(
                    f"node uid={node.uid} advertised tag {tag!r}; "
                    f"legal range with b={self.b} is [0, {self.max_tag}]"
                )
            tags[vertex] = tag

        # Stage 2: proposals against the masked views.
        proposals: dict[int, int] = {}
        for vertex, node in enumerate(nodes):
            views = tuple(
                NeighborView(uid=nodes[nv].uid, tag=tags[nv])
                for nv in masked_vertices[vertex]
            )
            target = node.propose(rnd, views)
            if target is None:
                continue
            if target not in masked_uids[vertex]:
                raise ProtocolViolationError(
                    f"node uid={node.uid} proposed to uid={target}, "
                    f"not an active neighbor in round {rnd}"
                )
            proposals[node.uid] = target

        # Plain resolution suffices: the neighbor checks above already
        # guarantee every surviving proposal has both endpoints active,
        # so the masked resolver twins (the public API for callers
        # without that guarantee) would filter nothing here.
        return len(proposals), self._resolve_matches(rnd, proposals)

    def _stages12_array(self, rnd: int) -> tuple[int, list[tuple[int, int]]]:
        """Stages 1–2 through bulk hooks over the epoch's CSR snapshot."""
        csr = self.dynamic_graph.csr_at(rnd)
        bound = self._csr_bound
        if bound is None or bound.base is not csr:
            with self._prof.span("round.csr_bind"):
                bound = self._csr_bound = csr.bind_uids(
                    self._uid_array, arena=self._arena
                )
            self.telemetry.metrics.gauge("engine.arena_bytes").set(
                self._arena.nbytes()
            )
        return self._stages12_array_on(rnd, bound)

    def _stages12_array_masked(
        self, rnd: int, mask: np.ndarray
    ) -> tuple[int, list[tuple[int, int]]]:
        """The array path on the active subgraph: same bulk hooks, fed a
        masked CSR snapshot (inactive rows empty, sleeping neighbors
        removed) — the flat-array twin of
        :meth:`_stages12_object_masked`.  The masked bound snapshot is
        cached by (epoch snapshot, mask bytes), so periodic masks
        (SleepCycle) rebuild only when the mask actually changes."""
        csr = self.dynamic_graph.csr_at(rnd)
        mask_bytes = mask.tobytes()
        if (
            self._masked_bound is None
            or self._masked_for is not csr
            or self._masked_bytes != mask_bytes
        ):
            with self._prof.span("round.csr_bind"):
                self._masked_bound = csr.masked(mask).bind_uids(
                    self._uid_array, arena=self._arena
                )
            self._masked_for = csr
            self._masked_bytes = mask_bytes
        return self._stages12_array_on(rnd, self._masked_bound)

    def _stages12_array_on(
        self, rnd: int, bound
    ) -> tuple[int, list[tuple[int, int]]]:
        """Shared body of the array front half over one bound snapshot."""
        advertise_all, propose_all = self._bulk

        # Stage 1: every tag at once, then one vectorized range check.
        with self._prof.span("round.advertise"):
            tags = self._as_int_array(
                advertise_all(self._nodes, rnd, bound), "advertise_all"
            )
        if tags.shape != (self.n,):
            raise ProtocolViolationError(
                f"advertise_all returned shape {tags.shape}; expected "
                f"({self.n},)"
            )
        if ((tags < 0) | (tags > self.max_tag)).any():
            vertex = int(np.nonzero((tags < 0) | (tags > self.max_tag))[0][0])
            raise ProtocolViolationError(
                f"node uid={self._nodes[vertex].uid} advertised tag "
                f"{int(tags[vertex])!r}; legal range with b={self.b} is "
                f"[0, {self.max_tag}]"
            )

        # Stage 2: every proposal at once (-1 = no proposal), then one
        # vectorized is-it-a-neighbor check — the same model rule the
        # object path enforces per node.
        with self._prof.span("round.propose"):
            targets = self._as_int_array(
                propose_all(self._nodes, rnd, bound, tags), "propose_all"
            )
        if targets.shape != (self.n,):
            raise ProtocolViolationError(
                f"propose_all returned shape {targets.shape}; expected "
                f"({self.n},)"
            )
        arena = self._arena
        proposer_mask = arena.take("proposer_mask", self.n, bool)
        np.greater_equal(targets, 0, out=proposer_mask)
        if proposer_mask.any():
            # Scatter per-edge hits to their source vertex: unlike a
            # reduceat over indptr segments this stays correct for
            # zero-degree vertices (possible under out-of-tree dynamics
            # even though in-tree graphs are connected).
            sources = bound.edge_sources()
            edge_targets = arena.take("edge_targets", sources.shape, np.int64)
            np.take(targets, sources, out=edge_targets)
            hit = arena.take("edge_hit", sources.shape, bool)
            np.equal(bound.uids, edge_targets, out=hit)
            legal = arena.take("legal", self.n, bool)
            legal[:] = False
            legal[sources[hit]] = True
            bad = proposer_mask & ~legal
            if bad.any():
                vertex = int(np.nonzero(bad)[0][0])
                raise ProtocolViolationError(
                    f"node uid={self._nodes[vertex].uid} proposed to "
                    f"uid={int(targets[vertex])}, not a neighbor in round "
                    f"{rnd}"
                )

        # Masked rounds need no masked resolver: `bound` is already the
        # active subgraph, so the legality check above left only
        # proposals with both endpoints active.
        proposer_uids = self._uid_array[proposer_mask]
        target_uids = targets[proposer_mask]
        with self._prof.span("round.resolve"):
            if self.acceptance == "unbounded":
                matches = resolve_proposals_arrays(
                    proposer_uids, target_uids, rule="unbounded"
                )
            elif self.acceptance_streams == "local":
                matches = resolve_proposals_arrays_local(
                    proposer_uids, target_uids,
                    self._match_rng_for_target(rnd), rule=self.acceptance,
                )
            else:
                matches = resolve_proposals_arrays(
                    proposer_uids, target_uids,
                    self._tree.stream("match", rnd), rule=self.acceptance,
                )
        return int(proposer_mask.sum()), matches

    @staticmethod
    def _as_int_array(values, hook: str) -> np.ndarray:
        """Coerce a bulk-hook result to int64, refusing non-integer
        dtypes — the array twin of the object path's ``isinstance(tag,
        int)`` check (a silent float->int cast would let through values
        the reference path rejects)."""
        array = np.asarray(values)
        if not np.issubdtype(array.dtype, np.integer):
            raise ProtocolViolationError(
                f"{hook} returned dtype {array.dtype}; bulk hooks must "
                "return integer arrays"
            )
        return array.astype(np.int64, copy=False)

    def _refresh_adjacency(self, graph: nx.Graph) -> None:
        if graph is self._adjacency_for:
            return
        self._adjacency_for = graph
        nodes = self._nodes
        self._neighbor_vertices = [
            tuple(sorted(graph.neighbors(vertex)))
            for vertex in range(self.n)
        ]
        self._neighbor_uids = [
            tuple(nodes[nv].uid for nv in nvs)
            for nvs in self._neighbor_vertices
        ]
        self._neighbor_uid_sets = [
            frozenset(uids) for uids in self._neighbor_uids
        ]
        # Per-epoch view skeletons.  UIDs are fixed for the epoch; tags
        # start at 0 (already correct for b = 0 protocols, so their view
        # tuples are built once per epoch and reused verbatim) and are
        # refreshed in place by :meth:`step` as nodes change what they
        # advertise.
        self._views = [
            [NeighborView(uid=uid, tag=0) for uid in uids]
            for uids in self._neighbor_uids
        ]
        self._view_tuples = [tuple(views) for views in self._views]
