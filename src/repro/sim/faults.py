"""Deterministic fault injection: sleep, churn, and lossy connections.

The paper's mobile telephone model idealizes the smartphone crowd: every
phone is awake every round, every accepted connection succeeds, and the
population never changes.  The motivating settings (protests, disasters,
festivals) are exactly where phones duty-cycle their radios, drop links,
and churn — follow-up work in this line (Newport & Weaver's random gossip
processes, Newport/Weaver/Zheng's asynchronous gossip) studies gossip
under precisely this kind of unreliable behavior.  This module is the
simulator's home for that axis.

A :class:`FaultModel` makes two kinds of decisions, both *pure functions
of (seed, round)* so that every consumer — either engine front half, any
``run_sweep --jobs`` value, a metrics pass replaying old rounds — derives
the same faults:

* :meth:`FaultModel.active_mask` — which vertices participate this round.
  An inactive vertex is invisible for the round: it does not advertise,
  cannot be proposed to, and sees no neighbors (the engine masks it out
  of the round's topology on both the object and the array path).
* :meth:`FaultModel.drop_connection` — whether a resolved match fails
  after acceptance (the link-layer handshake breaking down).  Dropped
  matches skip Stage 3 entirely and are counted in the trace's
  ``dropped_connections`` column.

All randomness comes from a dedicated :class:`~repro.rng.SeedTree`
subtree (``("faults", <kind>)``), so fault draws never perturb the
engine's acceptance stream or any node's private stream.  The null model
:class:`NoFaults` consumes **zero** randomness and leaves the engine's
behavior byte-identical to a run with no fault model at all — enforced by
:func:`repro.experiments.fastpath.check_null_fault_identity`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.registry import FAULT_REGISTRY, register_fault
from repro.rng import SeedTree

__all__ = [
    "FaultModel",
    "NoFaults",
    "SleepCycle",
    "CrashChurn",
    "LossyLinks",
    "build_fault",
]


def build_fault(spec: dict | None, n: int, seed: int) -> "FaultModel | None":
    """Build a fault model from a ``{"kind": ..., **params}`` spec dict.

    The one constructor every layer shares (``run_gossip``, the
    experiments builders, the CLI).  ``None`` or kind ``"none"`` returns
    ``None`` — the clean model — so callers hand the result straight to
    :class:`~repro.sim.engine.Simulation` without special-casing.
    """
    spec = spec or {}
    defn = FAULT_REGISTRY.get(spec.get("kind", "none"))
    params = {key: value for key, value in spec.items() if key != "kind"}
    try:
        model = defn.build(n, seed, **params)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad params for fault model {defn.name!r}: {exc}"
        ) from exc
    return None if model.is_null else model


class FaultModel:
    """Per-round activity masks plus per-match drop decisions.

    Subclasses draw from ``self._tree`` (a ``("faults", kind)`` subtree of
    the run seed) and must keep every decision a pure function of the
    seed and the round index — never of call order or call count — so the
    object and array engine paths, re-runs, and parallel sweep workers
    all see identical faults.
    """

    #: True only on :class:`NoFaults`: the engine skips the fault branch
    #: entirely, keeping the no-fault hot paths untouched.
    is_null = False

    #: When True, the engine calls ``reset_tokens()`` (where a protocol
    #: provides it) on every vertex that crashes, modeling a phone that
    #: loses app state instead of resuming where it left off.
    resets_state = False

    #: How :class:`~repro.net.chaos.ChaosModel` enacts this model's
    #: decisions *physically* against live :class:`PeerServer`\\ s:
    #: ``"kill"`` (tear the TCP endpoint down and rebind it on rejoin —
    #: crash/churn), ``"sleep"`` (the endpoint accepts and hangs up
    #: without replying — a duty-cycled radio), ``"drop"`` (per-match
    #: socket-level interdiction of the Stage-3 handshake — lossy
    #: links), ``"mask"`` (coordinator-side masking only, the
    #: conservative fallback), or ``"none"``.  The mapping lives here,
    #: next to the models, so sim and chaos can never disagree about
    #: what a fault *is*.
    chaos_enactment = "mask"

    #: How the model's ``round_index`` argument is derived by the
    #: caller: ``"cycle"`` (default — the synchronous round number, or a
    #: node's *local* cycle under asynchrony) or ``"virtual"`` (the
    #: global virtual-time round window / wall-clock round index, so one
    #: fault spec drives :class:`~repro.sim.engine.Simulation`,
    #: :class:`~repro.asynchrony.engine.AsyncSimulation`, and live
    #: :mod:`repro.net` runs off the same clock).  The model itself is
    #: clock-agnostic — the attribute tells the engine which index to
    #: pass.
    FAULT_CLOCKS = ("cycle", "virtual")

    def __init__(self, n: int, seed: int, kind: str, clock: str = "cycle"):
        if n < 1:
            raise ConfigurationError(f"fault models need n >= 1, got {n}")
        if clock not in self.FAULT_CLOCKS:
            raise ConfigurationError(
                f"unknown fault clock {clock!r}; choose from "
                f"{self.FAULT_CLOCKS}"
            )
        self.n = n
        self.seed = seed
        self.kind = kind
        self.clock = clock
        self._tree = SeedTree(seed).child("faults", kind)

    def active_mask(self, round_index: int) -> np.ndarray | None:
        """Boolean vertex mask for ``round_index`` (``None`` = all active).

        Must be derivable for any round in any order.
        """
        return None

    def drop_connection(
        self, round_index: int, initiator_uid: int, responder_uid: int
    ) -> bool:
        """Whether the resolved match ``(initiator, responder)`` fails."""
        return False

    def crashed_this_round(self, round_index: int):
        """Vertices whose crash *starts* at ``round_index`` (reset hook).

        Models with ``resets_state`` should override this so the engine
        resets exactly the crashes the model knows about — including one
        that begins the instant a previous outage ends, which a
        mask-transition diff cannot see.  ``None`` (the default) tells
        the engine to fall back to diffing consecutive activity masks.
        """
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self.n})"


class NoFaults(FaultModel):
    """The null model: the paper's clean execution, zero randomness.

    The engine treats this exactly like having no fault model: no mask is
    computed, no stream is consumed, and traces are byte-identical to the
    pre-fault-layer engine on both paths (the load-bearing invariant the
    differential harness pins).
    """

    is_null = True
    chaos_enactment = "none"

    def __init__(self, n: int = 1, seed: int = 0):
        # No SeedTree: the null model must not even derive a stream.
        self.n = n
        self.seed = seed
        self.kind = "none"
        self.clock = "cycle"

    def active_mask(self, round_index: int) -> None:
        return None


class SleepCycle(FaultModel):
    """Duty-cycled radios: each node is awake ``duty`` of every ``period``
    rounds.

    Phones conserve battery by sleeping their peer-to-peer radio on a
    fixed cycle.  With ``stagger=True`` (default) each node draws a
    uniform phase offset once at construction, so at any instant roughly
    ``duty/period`` of the crowd is awake; with ``stagger=False`` the
    whole crowd sleeps in lockstep (the adversarial variant: the network
    is empty for ``period - duty`` consecutive rounds).

    After the one-time phase draw the mask is fully deterministic — a
    sleep schedule, not a coin flip per round.
    """

    chaos_enactment = "sleep"

    def __init__(self, n: int, seed: int, period: int = 8, duty: int = 6,
                 stagger: bool = True, clock: str = "cycle"):
        super().__init__(n, seed, "sleep", clock=clock)
        if period < 1:
            raise ConfigurationError(f"period must be >= 1, got {period}")
        if not 1 <= duty <= period:
            raise ConfigurationError(
                f"duty must be in [1, period={period}], got {duty}"
            )
        self.period = period
        self.duty = duty
        self.stagger = stagger
        if stagger:
            rng = self._tree.stream("phase")
            self._phases = np.fromiter(
                (rng.randrange(period) for _ in range(n)),
                dtype=np.int64, count=n,
            )
        else:
            self._phases = np.zeros(n, dtype=np.int64)

    def active_mask(self, round_index: int) -> np.ndarray | None:
        if self.duty == self.period:
            return None
        return ((round_index - 1 + self._phases) % self.period) < self.duty

    def __repr__(self) -> str:
        return (
            f"SleepCycle(n={self.n}, duty={self.duty}/{self.period}, "
            f"stagger={self.stagger})"
        )


class CrashChurn(FaultModel):
    """Nodes crash and rejoin: outages drawn per (node, window).

    Rounds are partitioned into windows of ``cycle`` rounds.  In each
    window a node crashes with probability ``crash_prob``; a crash starts
    at a uniform offset within the window and lasts a uniform number of
    rounds in ``[min_outage, max_outage]`` (truncated at the window edge,
    so every window's schedule is self-contained and re-derivable).  All
    draws come from a per-(node, window) stream, making the mask a pure
    function of (seed, node, window) whatever order rounds are visited.

    ``reset_tokens=True`` models full app-state loss: on the crash round
    the engine calls ``reset_tokens()`` on protocols that provide it
    (:class:`~repro.core.problem.GossipNode` does), dropping every learned
    token back to the node's initial assignment.  The default models a
    phone whose storage survives the reboot.
    """

    chaos_enactment = "kill"

    def __init__(self, n: int, seed: int, cycle: int = 64,
                 crash_prob: float = 0.15, min_outage: int = 8,
                 max_outage: int = 24, reset_tokens: bool = False,
                 clock: str = "cycle"):
        super().__init__(n, seed, "churn", clock=clock)
        if cycle < 2:
            raise ConfigurationError(f"cycle must be >= 2, got {cycle}")
        if not 0 <= crash_prob <= 1:
            raise ConfigurationError(
                f"crash_prob must be in [0, 1], got {crash_prob}"
            )
        if not 1 <= min_outage <= max_outage:
            raise ConfigurationError(
                f"need 1 <= min_outage <= max_outage, got "
                f"[{min_outage}, {max_outage}]"
            )
        self.cycle = cycle
        self.crash_prob = crash_prob
        self.min_outage = min_outage
        self.max_outage = max_outage
        self.resets_state = bool(reset_tokens)
        # Two cached window schedules (engine access is sequential, but
        # any window can be re-derived from scratch for replays).
        self._schedules: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def _window_schedule(self, window: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-vertex ``(start, stop)`` outage offsets for one window.

        ``start == cycle`` encodes "no crash this window"; otherwise the
        vertex is inactive for offsets in ``[start, stop)``.
        """
        if window not in self._schedules:
            starts = np.full(self.n, self.cycle, dtype=np.int64)
            stops = np.full(self.n, self.cycle, dtype=np.int64)
            for vertex in range(self.n):
                rng = self._tree.stream("window", window, vertex)
                if rng.random() >= self.crash_prob:
                    continue
                start = rng.randrange(self.cycle)
                length = rng.randint(self.min_outage, self.max_outage)
                starts[vertex] = start
                stops[vertex] = min(start + length, self.cycle)
            if len(self._schedules) >= 2:
                del self._schedules[min(self._schedules)]
            self._schedules[window] = (starts, stops)
        return self._schedules[window]

    def active_mask(self, round_index: int) -> np.ndarray:
        window, offset = divmod(round_index - 1, self.cycle)
        starts, stops = self._window_schedule(window)
        return ~((starts <= offset) & (offset < stops))

    def crashed_this_round(self, round_index: int) -> np.ndarray:
        """Vertices whose outage *starts* at ``round_index`` (reset hook)."""
        window, offset = divmod(round_index - 1, self.cycle)
        starts, stops = self._window_schedule(window)
        return np.nonzero((starts == offset) & (stops > offset))[0]

    def __repr__(self) -> str:
        return (
            f"CrashChurn(n={self.n}, cycle={self.cycle}, "
            f"crash_prob={self.crash_prob}, "
            f"outage=[{self.min_outage}, {self.max_outage}], "
            f"reset_tokens={self.resets_state})"
        )


class LossyLinks(FaultModel):
    """Probabilistic connection failure after matching.

    Every vertex stays awake; instead, each resolved match independently
    fails with probability ``drop_prob`` — the accepted connection's
    handshake breaking down at the link layer.  The drop draw is keyed by
    (round, initiator UID, responder UID), so it does not depend on how
    many other matches the round produced or in what order they are
    examined.
    """

    chaos_enactment = "drop"

    def __init__(self, n: int, seed: int, drop_prob: float = 0.2,
                 clock: str = "cycle"):
        super().__init__(n, seed, "lossy", clock=clock)
        if not 0 <= drop_prob <= 1:
            raise ConfigurationError(
                f"drop_prob must be in [0, 1], got {drop_prob}"
            )
        self.drop_prob = drop_prob

    def drop_connection(
        self, round_index: int, initiator_uid: int, responder_uid: int
    ) -> bool:
        if self.drop_prob == 0:
            return False
        draw = self._tree.stream(
            "drop", round_index, initiator_uid, responder_uid
        ).random()
        return draw < self.drop_prob

    def __repr__(self) -> str:
        return f"LossyLinks(n={self.n}, drop_prob={self.drop_prob})"


@register_fault(
    name="none",
    description="the paper's clean model: every node awake, every "
                "connection succeeds (zero randomness consumed)",
)
def _build_no_faults(n, seed):
    return NoFaults(n=n, seed=seed)


@register_fault(
    name="sleep",
    description="duty-cycled radios: each node awake duty-of-period "
                "rounds on a per-node phase",
)
def _build_sleep_cycle(n, seed, *, period=8, duty=6, stagger=True,
                       clock="cycle"):
    return SleepCycle(n=n, seed=seed, period=period, duty=duty,
                      stagger=stagger, clock=clock)


@register_fault(
    name="churn",
    description="crash/rejoin churn: per-window outages, token state "
                "retained or reset on crash",
)
def _build_crash_churn(n, seed, *, cycle=64, crash_prob=0.15, min_outage=8,
                       max_outage=24, reset_tokens=False, clock="cycle"):
    return CrashChurn(n=n, seed=seed, cycle=cycle, crash_prob=crash_prob,
                      min_outage=min_outage, max_outage=max_outage,
                      reset_tokens=reset_tokens, clock=clock)


@register_fault(
    name="lossy",
    description="lossy connections: each resolved match independently "
                "fails with drop_prob after acceptance",
)
def _build_lossy_links(n, seed, *, drop_prob=0.2, clock="cycle"):
    return LossyLinks(n=n, seed=seed, drop_prob=drop_prob, clock=clock)
