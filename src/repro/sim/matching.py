"""Proposal resolution: who connects to whom.

The model's connection rules (§2):

* a node sends at most one proposal;
* a node that sends a proposal cannot also receive one — proposals aimed
  at a proposer are simply lost;
* a node that did not propose and received at least one proposal accepts
  exactly one.  The paper fixes the acceptance draw to *uniform* "for
  simplicity" while noting "there are different ways to model how v
  selects a proposal to accept" — so the rule is pluggable here
  (:data:`ACCEPTANCE_RULES`), with uniform as the default everywhere.

The result is a partial matching: every node is in at most one connection.
This bounded-acceptance rule is *the* difference from the classical
telephone model (which allows unbounded incoming connections), and it is
why the paper needs new analysis — see the double-star discussion in §1.
:func:`resolve_proposals_unbounded` implements the classical model's rule
as a measurable baseline (benchmarks/bench_classical.py shows the Δ²
penalty collapsing once acceptance is unbounded).
"""

from __future__ import annotations

import random
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError, ProtocolViolationError

__all__ = [
    "resolve_proposals",
    "resolve_proposals_arrays",
    "resolve_proposals_arrays_local",
    "resolve_proposals_arrays_masked",
    "resolve_proposals_local",
    "resolve_proposals_masked",
    "resolve_proposal_cohorts",
    "resolve_proposals_unbounded",
    "ACCEPTANCE_RULES",
    "AcceptanceRule",
]

#: An acceptance rule picks one proposer among the incoming ones.
AcceptanceRule = Callable[[list[int], random.Random], int]


def _accept_uniform(senders: list[int], rng: random.Random) -> int:
    """The paper's rule: uniform among incoming proposals."""
    return senders[0] if len(senders) == 1 else rng.choice(senders)


def _accept_lowest_uid(senders: list[int], rng: random.Random) -> int:
    """Deterministic tie-break: smallest UID wins (an adversary-friendly
    rule — the same proposer can monopolize a popular target)."""
    return min(senders)


def _accept_highest_uid(senders: list[int], rng: random.Random) -> int:
    """Deterministic tie-break: largest UID wins."""
    return max(senders)


#: Named acceptance rules for the bounded (mobile telephone) model.
ACCEPTANCE_RULES: dict[str, AcceptanceRule] = {
    "uniform": _accept_uniform,
    "lowest_uid": _accept_lowest_uid,
    "highest_uid": _accept_highest_uid,
}


def _validate(proposals: dict[int, int]) -> None:
    for proposer, target in proposals.items():
        if proposer == target:
            raise ProtocolViolationError(f"node {proposer} proposed to itself")


def _incoming_at_non_proposers(proposals: dict[int, int]) -> dict[int, list[int]]:
    proposers = set(proposals)
    incoming: dict[int, list[int]] = {}
    for proposer, target in proposals.items():
        if target in proposers:
            # The target is busy proposing; this proposal is lost.
            continue
        incoming.setdefault(target, []).append(proposer)
    return incoming


def resolve_proposals(
    proposals: dict[int, int],
    rng: random.Random,
    rule: str = "uniform",
) -> list[tuple[int, int]]:
    """Resolve ``{proposer_uid: target_uid}`` into connection pairs.

    Returns ``(initiator, responder)`` pairs under the mobile telephone
    model: at most one connection per node.  Determinism: the acceptance
    draw consumes ``rng`` in sorted-target order, so a fixed seed yields a
    fixed matching.
    """
    if rule not in ACCEPTANCE_RULES:
        raise ConfigurationError(
            f"unknown acceptance rule {rule!r}; choose from "
            f"{sorted(ACCEPTANCE_RULES)}"
        )
    _validate(proposals)
    accept = ACCEPTANCE_RULES[rule]
    matches = []
    incoming = _incoming_at_non_proposers(proposals)
    for target in sorted(incoming):
        senders = sorted(incoming[target])
        matches.append((accept(senders, rng), target))
    return matches


def resolve_proposals_local(
    proposals: dict[int, int],
    rng_for_target,
    rule: str = "uniform",
) -> list[tuple[int, int]]:
    """Per-target-stream twin of :func:`resolve_proposals`.

    Instead of one sequential rng consumed in sorted-target order — a
    discipline only a centralized resolver can reproduce —
    ``rng_for_target(target_uid)`` supplies a *fresh* stream for each
    contested target, so a distributed proposee that knows only its own
    UID and the round number can derive exactly the draw made here.  This
    is the acceptance semantics the live deployment layer
    (:mod:`repro.net`) enforces proposee-side; the simulator's
    ``acceptance_streams="local"`` knob runs the same rule so recorded
    traces replay bit-for-bit against a live cluster.

    Deterministic rules (``lowest_uid``/``highest_uid``) never call
    ``rng_for_target``; the uniform rule calls it only for targets with
    two or more surviving proposals (matching the cohort resolvers'
    no-draw singleton discipline).
    """
    if rule not in ACCEPTANCE_RULES:
        raise ConfigurationError(
            f"unknown acceptance rule {rule!r}; choose from "
            f"{sorted(ACCEPTANCE_RULES)}"
        )
    _validate(proposals)
    accept = ACCEPTANCE_RULES[rule]
    matches = []
    incoming = _incoming_at_non_proposers(proposals)
    for target in sorted(incoming):
        senders = sorted(incoming[target])
        rng = (
            rng_for_target(target)
            if rule == "uniform" and len(senders) > 1
            else None
        )
        matches.append((accept(senders, rng), target))
    return matches


def resolve_proposals_arrays_local(
    proposer_uids,
    target_uids,
    rng_for_target,
    rule: str = "uniform",
) -> list[tuple[int, int]]:
    """Array twin of :func:`resolve_proposals_local`.

    Pair-for-pair identical to the dict form on the same proposals, with
    the same per-target stream discipline — ``rng_for_target`` is called
    once per contested target under the uniform rule, never otherwise.
    """
    if rule not in ACCEPTANCE_RULES:
        raise ConfigurationError(
            f"unknown acceptance rule {rule!r}; choose from "
            f"{sorted(ACCEPTANCE_RULES)}"
        )
    proposer_uids = np.asarray(proposer_uids, dtype=np.int64)
    target_uids = np.asarray(target_uids, dtype=np.int64)
    if proposer_uids.shape != target_uids.shape:
        raise ConfigurationError(
            "proposer_uids and target_uids must have matching shapes"
        )
    if proposer_uids.size == 0:
        return []
    self_loops = proposer_uids == target_uids
    if self_loops.any():
        offender = int(proposer_uids[self_loops][0])
        raise ProtocolViolationError(f"node {offender} proposed to itself")
    if np.unique(proposer_uids).size != proposer_uids.size:
        raise ProtocolViolationError("duplicate proposer UIDs")
    keep = ~np.isin(target_uids, proposer_uids)
    senders = proposer_uids[keep]
    targets = target_uids[keep]
    if senders.size == 0:
        return []
    order = np.lexsort((senders, targets))
    senders = senders[order]
    targets = targets[order]
    group_targets, starts = np.unique(targets, return_index=True)
    bounds = np.append(starts, senders.size)
    if rule == "lowest_uid":
        initiators = senders[starts]
    elif rule == "highest_uid":
        initiators = senders[bounds[1:] - 1]
    else:  # uniform, one fresh stream per contested target
        initiators = senders[starts].copy()
        sizes = np.diff(bounds)
        for g in np.nonzero(sizes > 1)[0]:
            group = senders[bounds[g]:bounds[g + 1]]
            initiators[g] = rng_for_target(int(group_targets[g])).choice(group)
    return list(zip(initiators.tolist(), group_targets.tolist()))


def resolve_proposals_arrays(
    proposer_uids,
    target_uids,
    rng: random.Random | None = None,
    rule: str = "uniform",
) -> list[tuple[int, int]]:
    """Array-based twin of :func:`resolve_proposals` (and the unbounded
    baseline, via ``rule="unbounded"``).

    ``proposer_uids``/``target_uids`` are parallel int arrays: proposer
    ``proposer_uids[i]`` proposed to ``target_uids[i]``.  Proposer UIDs
    must be distinct (each node sends at most one proposal).

    **Byte-identical matching guarantee**: the result — pair values *and*
    list order — equals the dict resolver's on the same proposals, and the
    acceptance draw consumes ``rng`` in the same sorted-target order,
    drawing only for targets with two or more surviving proposals.  The
    engine's array fast path relies on this to keep traces identical to
    the reference path; tests/test_matching.py pins it property-style.
    """
    if rule != "unbounded" and rule not in ACCEPTANCE_RULES:
        raise ConfigurationError(
            f"unknown acceptance rule {rule!r}; choose from "
            f"{sorted(ACCEPTANCE_RULES) + ['unbounded']}"
        )
    if rule == "uniform" and rng is None:
        raise ConfigurationError("the uniform rule needs an rng")
    proposer_uids = np.asarray(proposer_uids, dtype=np.int64)
    target_uids = np.asarray(target_uids, dtype=np.int64)
    if proposer_uids.shape != target_uids.shape:
        raise ConfigurationError(
            "proposer_uids and target_uids must have matching shapes"
        )
    if proposer_uids.size == 0:
        return []
    self_loops = proposer_uids == target_uids
    if self_loops.any():
        offender = int(proposer_uids[self_loops][0])
        raise ProtocolViolationError(f"node {offender} proposed to itself")
    if np.unique(proposer_uids).size != proposer_uids.size:
        raise ProtocolViolationError("duplicate proposer UIDs")

    # Proposals aimed at a proposer are lost (§2).
    keep = ~np.isin(target_uids, proposer_uids)
    senders = proposer_uids[keep]
    targets = target_uids[keep]
    if senders.size == 0:
        return []
    # Sort by (target, sender): groups come out in sorted-target order
    # with each group's senders ascending — the dict resolver's order.
    order = np.lexsort((senders, targets))
    senders = senders[order]
    targets = targets[order]
    if rule == "unbounded":
        return list(zip(senders.tolist(), targets.tolist()))
    group_targets, starts = np.unique(targets, return_index=True)
    bounds = np.append(starts, senders.size)
    if rule == "lowest_uid":
        initiators = senders[starts]
    elif rule == "highest_uid":
        initiators = senders[bounds[1:] - 1]
    else:  # uniform
        initiators = senders[starts].copy()
        sizes = np.diff(bounds)
        for g in np.nonzero(sizes > 1)[0]:
            group = senders[bounds[g]:bounds[g + 1]]
            initiators[g] = rng.choice(group)
    return list(zip(initiators.tolist(), group_targets.tolist()))


def resolve_proposals_masked(
    proposals: dict[int, int],
    active_uids,
    rng: random.Random | None = None,
    rule: str = "uniform",
) -> list[tuple[int, int]]:
    """Masked twin of :func:`resolve_proposals` for fault-layer rounds.

    Proposals whose proposer *or* target UID is not in ``active_uids``
    (a set-like of awake nodes) are discarded before resolution — a
    sleeping node neither sends nor accepts.  The acceptance draw then
    consumes ``rng`` exactly as the unmasked resolver would on the
    surviving proposals, so with every endpoint active the result — and
    the stream consumption — is identical to :func:`resolve_proposals`.
    ``rule="unbounded"`` delegates to the classical-model resolver.
    """
    active = (
        active_uids
        if isinstance(active_uids, (set, frozenset))
        else frozenset(active_uids)
    )
    surviving = {
        proposer: target
        for proposer, target in proposals.items()
        if proposer in active and target in active
    }
    if rule == "unbounded":
        return resolve_proposals_unbounded(surviving)
    return resolve_proposals(surviving, rng, rule=rule)


def resolve_proposals_arrays_masked(
    proposer_uids,
    target_uids,
    active_uids,
    rng: random.Random | None = None,
    rule: str = "uniform",
) -> list[tuple[int, int]]:
    """Masked twin of :func:`resolve_proposals_arrays`.

    ``active_uids`` is an int array of awake UIDs; proposals with an
    inactive endpoint are dropped before resolution.  Matches
    :func:`resolve_proposals_masked` pair-for-pair (same survivors, same
    sorted-target draw order), which keeps the engine's two front halves
    byte-identical under any activity mask.
    """
    proposer_uids = np.asarray(proposer_uids, dtype=np.int64)
    target_uids = np.asarray(target_uids, dtype=np.int64)
    if proposer_uids.shape != target_uids.shape:
        raise ConfigurationError(
            "proposer_uids and target_uids must have matching shapes"
        )
    active_uids = np.asarray(active_uids, dtype=np.int64)
    keep = np.isin(proposer_uids, active_uids) & np.isin(
        target_uids, active_uids
    )
    return resolve_proposals_arrays(
        proposer_uids[keep], target_uids[keep], rng, rule=rule
    )


def resolve_proposal_cohorts(
    proposer_uids,
    target_uids,
    bounds,
    rng_for_cohort,
    rule: str = "uniform",
    active_uids=None,
) -> list[list[tuple[int, int]]]:
    """Resolve many cohorts' proposals in one call (batched async path).

    ``proposer_uids``/``target_uids`` hold a whole round window's
    proposals, cohorts concatenated in event order; cohort ``c`` owns the
    slice ``bounds[c]:bounds[c + 1]``.  Each cohort resolves
    *independently* — simultaneity is per tick, so proposals in different
    cohorts never compete — and its matches equal what the per-event
    engine computes for that cohort:

    * ``rng_for_cohort(c)`` is called only when cohort ``c`` holds two or
      more proposals (singletons consume no randomness — the per-event
      engine's rule), and the acceptance draw consumes it in the
      resolver's sorted-target order;
    * ``active_uids`` (optional, per-cohort: ``active_uids(c)`` returning
      an awake-UID array or ``None``) routes the cohort through
      :func:`resolve_proposals_arrays_masked`, dropping proposals with a
      sleeping endpoint before resolution.

    Returns one match list per cohort.
    """
    proposer_uids = np.asarray(proposer_uids, dtype=np.int64)
    target_uids = np.asarray(target_uids, dtype=np.int64)
    results: list[list[tuple[int, int]]] = []
    for cohort in range(len(bounds) - 1):
        lo, hi = int(bounds[cohort]), int(bounds[cohort + 1])
        if hi == lo:
            results.append([])
            continue
        senders = proposer_uids[lo:hi]
        targets = target_uids[lo:hi]
        active = active_uids(cohort) if active_uids is not None else None
        if rule == "unbounded":
            rng = None
        else:
            rng = rng_for_cohort(cohort) if hi - lo >= 2 else None
        if hi - lo == 1:
            # Singleton fast path: the lone proposal always lands (a
            # self-proposal is a protocol violation, so the target is
            # never itself a proposer here).
            if int(senders[0]) == int(targets[0]):
                raise ProtocolViolationError(
                    f"node {int(senders[0])} proposed to itself"
                )
            if active is not None and (
                int(senders[0]) not in active or int(targets[0]) not in active
            ):
                results.append([])
            else:
                results.append([(int(senders[0]), int(targets[0]))])
            continue
        if active is not None:
            results.append(
                resolve_proposals_arrays_masked(
                    senders, targets, active, rng, rule=rule
                )
            )
        else:
            results.append(
                resolve_proposals_arrays(senders, targets, rng, rule=rule)
            )
    return results


def resolve_proposals_unbounded(
    proposals: dict[int, int],
) -> list[tuple[int, int]]:
    """The classical telephone model's rule: every proposal to a
    non-proposer connects (a node may accept unboundedly many).

    Provided as a baseline only — most classical-model bounds silently
    rely on this rule (c.f. Daum et al. and the paper's related work), and
    the benchmarks use it to measure exactly what the bounded-acceptance
    change costs.
    """
    _validate(proposals)
    matches = []
    incoming = _incoming_at_non_proposers(proposals)
    for target in sorted(incoming):
        for sender in sorted(incoming[target]):
            matches.append((sender, target))
    return matches
