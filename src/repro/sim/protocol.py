"""The node-protocol interface every algorithm implements.

A protocol is the per-node state machine of a distributed algorithm.  Each
round the engine calls, in model order:

1. :meth:`NodeProtocol.advertise` — pick this round's ``b``-bit tag,
   knowing only the round number and the current neighbor UIDs;
2. :meth:`NodeProtocol.propose` — after tags are published, decide whether
   to send a connection proposal (and to whom) based on the neighbor views;
3. :meth:`NodeProtocol.interact` — if matched, the *initiator's* method is
   invoked with the responder object and a metered channel; the pair
   performs its bounded exchange.

Protocols must not communicate outside these hooks; the test suite checks
the engine-enforced parts (tag width, proposing only to neighbors) and the
channel meters the rest.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Protocol, runtime_checkable

from repro.sim.channel import Channel
from repro.sim.context import NeighborView

__all__ = ["NodeProtocol", "TokenHolder"]


class NodeProtocol(ABC):
    """Per-node algorithm state plus the three per-round decision hooks."""

    def __init__(self, uid: int):
        if uid < 0:
            raise ValueError(f"uid must be >= 0, got {uid}")
        self.uid = uid

    @abstractmethod
    def advertise(self, round_index: int, neighbor_uids: tuple[int, ...]) -> int:
        """Return this round's tag (an integer in ``[0, 2**b)``).

        With ``b = 0`` the only legal tag is 0.
        """

    @abstractmethod
    def propose(
        self, round_index: int, neighbors: tuple[NeighborView, ...]
    ) -> int | None:
        """Return the UID of the neighbor to propose to, or None to wait.

        This hook is also where a protocol digests what it heard during the
        scan (CrowdedBin's tag-spelling reception happens here), because it
        is the one hook per round where the node sees all neighbor tags.
        """

    @abstractmethod
    def interact(self, responder: "NodeProtocol", channel: Channel,
                 round_index: int) -> None:
        """Run the bounded pairwise exchange with ``responder``.

        Called on the node whose proposal was accepted.  All communication
        cost must be charged to ``channel``.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(uid={self.uid})"


@runtime_checkable
class TokenHolder(Protocol):
    """Anything exposing the set of gossip tokens it currently knows.

    Gossip protocols implement this so generic termination conditions and
    trace gauges can measure coverage without knowing the algorithm.
    """

    @property
    def known_tokens(self) -> frozenset: ...


def coverage_counts(nodes: Iterable[TokenHolder], token_ids) -> list[int]:
    """Per-node counts of how many of ``token_ids`` each node knows."""
    wanted = frozenset(token_ids)
    return [len(node.known_tokens & wanted) for node in nodes]
