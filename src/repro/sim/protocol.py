"""The node-protocol interface every algorithm implements.

A protocol is the per-node state machine of a distributed algorithm.  Each
round the engine calls, in model order:

1. :meth:`NodeProtocol.advertise` — pick this round's ``b``-bit tag,
   knowing only the round number and the current neighbor UIDs;
2. :meth:`NodeProtocol.propose` — after tags are published, decide whether
   to send a connection proposal (and to whom) based on the neighbor views;
3. :meth:`NodeProtocol.interact` — if matched, the *initiator's* method is
   invoked with the responder object and a metered channel; the pair
   performs its bounded exchange.

Protocols must not communicate outside these hooks; the test suite checks
the engine-enforced parts (tag width, proposing only to neighbors) and the
channel meters the rest.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Protocol, runtime_checkable

from repro.sim.channel import Channel
from repro.sim.context import NeighborView

__all__ = ["NodeProtocol", "TokenHolder", "bulk_hooks", "window_hooks"]


class NodeProtocol(ABC):
    """Per-node algorithm state plus the three per-round decision hooks."""

    def __init__(self, uid: int):
        if uid < 0:
            raise ValueError(f"uid must be >= 0, got {uid}")
        self.uid = uid

    @abstractmethod
    def advertise(self, round_index: int, neighbor_uids: tuple[int, ...]) -> int:
        """Return this round's tag (an integer in ``[0, 2**b)``).

        With ``b = 0`` the only legal tag is 0.
        """

    @abstractmethod
    def propose(
        self, round_index: int, neighbors: tuple[NeighborView, ...]
    ) -> int | None:
        """Return the UID of the neighbor to propose to, or None to wait.

        This hook is also where a protocol digests what it heard during the
        scan (CrowdedBin's tag-spelling reception happens here), because it
        is the one hook per round where the node sees all neighbor tags.
        """

    @abstractmethod
    def interact(self, responder: "NodeProtocol", channel: Channel,
                 round_index: int) -> None:
        """Run the bounded pairwise exchange with ``responder``.

        Called on the node whose proposal was accepted.  All communication
        cost must be charged to ``channel``.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(uid={self.uid})"


def _defining_class(node_type: type, name: str) -> type | None:
    for base in node_type.__mro__:
        if name in base.__dict__:
            return base
    return None


def bulk_hooks(nodes) -> tuple | None:
    """Detect the optional *bulk* protocol hooks for the array fast path.

    A protocol class may implement, alongside the scalar per-node hooks,
    two classmethods operating on the whole population at once:

    * ``advertise_all(nodes, round_index, csr) -> numpy int array`` —
      Stage 1 for every vertex; entry ``v`` is vertex ``v``'s tag.
    * ``propose_all(nodes, round_index, csr, tags) -> numpy int array`` —
      Stage 2 for every vertex; entry ``v`` is the *UID* vertex ``v``
      proposes to, or ``-1`` for no proposal.

    ``csr`` is the epoch's UID-bound
    :class:`~repro.sim.adjacency.CSRAdjacency`.  The contract is strict
    equivalence: a bulk hook must produce exactly what looping the scalar
    hook over vertices ``0..n-1`` would — including consuming each node's
    private ``random.Random`` in that same vertex order and updating any
    per-round node state the other hooks read.  The engine picks the
    fast path only when this function approves the whole population:

    * every node is the *same concrete class* (mixed populations fall
      back to the object path);
    * both hooks exist, and each is defined at least as deep in the MRO
      as its scalar twin — a subclass that overrides ``propose`` but
      inherits ``propose_all`` would silently diverge, so it is refused;
    * no class below the bulk hooks' defining classes overrides anything
      else (``__init__``-style dunders excepted) — a subclass overriding
      a *helper* the scalar hooks call (e.g. SharedBit's
      ``advertisement_bit``) would be invisible to the inherited bulk
      hooks, so such populations fall back to the object path; a
      subclass opts back in by re-declaring both bulk hooks;
    * an optional ``bulk_ready(nodes)`` classmethod (shared-state
      homogeneity checks, e.g. one ``SharedRandomness`` instance for all
      of SharedBit) returns True.

    Returns ``(advertise_all, propose_all)`` or ``None``.
    """
    node_type = type(nodes[0])
    if any(type(node) is not node_type for node in nodes):
        return None
    advertise_all = getattr(node_type, "advertise_all", None)
    propose_all = getattr(node_type, "propose_all", None)
    if advertise_all is None or propose_all is None:
        return None
    for scalar, bulk in (
        ("advertise", "advertise_all"),
        ("propose", "propose_all"),
    ):
        scalar_owner = _defining_class(node_type, scalar)
        bulk_owner = _defining_class(node_type, bulk)
        if scalar_owner is None or bulk_owner is None:
            return None
        if not issubclass(bulk_owner, scalar_owner):
            return None
    # Helper-override guard: anything a subclass defines below the bulk
    # hooks' classes (other than dunders and the hook names themselves,
    # which the pair rule above already polices) could change what the
    # scalar hooks do without the inherited bulk hooks noticing.
    mro = node_type.__mro__
    guard_depth = max(
        mro.index(_defining_class(node_type, "advertise_all")),
        mro.index(_defining_class(node_type, "propose_all")),
    )
    harmless = {"advertise", "propose", "advertise_all", "propose_all",
                "bulk_ready", "_abc_impl"}  # _abc_impl: ABCMeta bookkeeping
    for cls in mro[:guard_depth]:
        for name in cls.__dict__:
            if name not in harmless and not (
                name.startswith("__") and name.endswith("__")
            ):
                return None
    ready = getattr(node_type, "bulk_ready", None)
    if ready is not None and not ready(nodes):
        return None
    return advertise_all, propose_all


def window_hooks(nodes):
    """Detect the optional *window* protocol hooks for batched async runs.

    Bulk hooks (:func:`bulk_hooks`) batch one full synchronous cohort —
    every vertex, one round index.  Under asynchronous timing a round
    window instead holds many small cohorts at distinct ticks and local
    cycles, so batching needs a different shape: a protocol class may
    provide a ``make_window_hooks(nodes) -> ops`` classmethod returning a
    stateful per-run *window ops* object with:

    * ``eager_scan`` (bool) — True when ``scan`` reads only shared
      randomness and protocol state (no per-node private ``Random``), so
      the engine may compute a whole window's tags upfront and patch the
      few members whose state changes mid-window; False makes the engine
      call ``scan`` cohort by cohort in event order, preserving each
      node's private-stream consumption order relative to interactions.
    * ``needs_retag`` (bool) — whether a node's tag can change when its
      protocol state changes mid-window (token transfer, crash reset).
      Eager-scan hooks with True get ``retag`` calls for exactly those
      members; False lets the engine skip the patch bookkeeping.
    * ``scan(vertices, cycles) -> (tags, senders)`` — parallel int64 tag
      array and boolean proposer-candidate mask for the given members.
      Must equal looping scalar ``advertise`` over the members in order
      (same values, same private-rng consumption); ``senders[i]`` False
      guarantees member ``i``'s scalar ``propose`` would return ``None``
      without consuming randomness, so the engine never evaluates it.
    * ``retag(vertex, cycle) -> int`` — recompute one member's tag from
      current node state (eager hooks only; must consume no randomness
      beyond what scalar ``advertise`` would, i.e. shared PRF reads).
    * ``sender_from_tag(tag) -> bool`` — (eager hooks only) the
      candidate rule as a function of the tag, so a retagged member's
      proposer candidacy is refreshed along with its advertisement.
    * ``propose_one(vertex, cycle, neighbor_uids, neighbor_tags) -> int``
      — the proposal target UID (or ``-1``) given the member's visible
      neighborhood, equal to scalar ``propose`` on the same views
      including its private-rng consumption.
    * ``state_changed(vertex)`` — cache invalidation after the node's
      protocol state mutated (interaction endpoint, token reset).

    The window ops may skip per-round node bookkeeping the scalar hooks
    perform (e.g. SharedBit's ``_bit_this_round``) *only* if nothing
    outside the scalar hooks reads it — a run uses either the window ops
    or the scalar hooks, never both.

    Eligibility mirrors :func:`bulk_hooks` exactly: one concrete class,
    the factory defined at least as deep in the MRO as the scalar hooks
    it replaces, no helper overrides below it, and the shared
    ``bulk_ready`` homogeneity check (window batching leans on the same
    shared state the bulk hooks do).  Returns the ops object or ``None``.
    """
    node_type = type(nodes[0])
    if any(type(node) is not node_type for node in nodes):
        return None
    factory = getattr(node_type, "make_window_hooks", None)
    if factory is None:
        return None
    factory_owner = _defining_class(node_type, "make_window_hooks")
    for scalar in ("advertise", "propose"):
        scalar_owner = _defining_class(node_type, scalar)
        if scalar_owner is None or not issubclass(factory_owner, scalar_owner):
            return None
    harmless = {"advertise", "propose", "advertise_all", "propose_all",
                "make_window_hooks", "bulk_ready", "_abc_impl"}
    mro = node_type.__mro__
    for cls in mro[:mro.index(factory_owner)]:
        for name in cls.__dict__:
            if name not in harmless and not (
                name.startswith("__") and name.endswith("__")
            ):
                return None
    ready = getattr(node_type, "bulk_ready", None)
    if ready is not None and not ready(nodes):
        return None
    return factory(nodes)


@runtime_checkable
class TokenHolder(Protocol):
    """Anything exposing the set of gossip tokens it currently knows.

    Gossip protocols implement this so generic termination conditions and
    trace gauges can measure coverage without knowing the algorithm.
    """

    @property
    def known_tokens(self) -> frozenset: ...


def coverage_counts(nodes: Iterable[TokenHolder], token_ids) -> list[int]:
    """Per-node counts of how many of ``token_ids`` each node knows."""
    wanted = frozenset(token_ids)
    return [len(node.known_tokens & wanted) for node in nodes]
