"""Reusable termination conditions for simulations.

A termination condition is a callable ``(nodes, round_index) -> bool``
evaluated by the engine at the end of every round, where ``nodes`` maps
vertex → protocol object.  These are *harness-side* observers — the
distributed nodes themselves never see them, mirroring the paper's setup
where termination is a property the analysis certifies rather than
something nodes detect.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.sim.protocol import NodeProtocol

__all__ = ["TerminationCondition", "never", "all_hold_tokens",
           "all_agree_on_leader", "any_of"]

TerminationCondition = Callable[[Mapping[int, NodeProtocol], int], bool]


def never() -> TerminationCondition:
    """Run until the round limit (used when measuring fixed horizons)."""

    def check(nodes: Mapping[int, NodeProtocol], round_index: int) -> bool:
        return False

    return check


def all_hold_tokens(token_ids) -> TerminationCondition:
    """True once every node's ``known_tokens`` contains all of ``token_ids``.

    This is the gossip success condition: all nodes know all k tokens.
    """
    wanted = frozenset(token_ids)

    def check(nodes: Mapping[int, NodeProtocol], round_index: int) -> bool:
        return all(wanted <= node.known_tokens for node in nodes.values())

    return check


def all_agree_on_leader() -> TerminationCondition:
    """True once every node's ``candidate_leader`` is identical.

    Note this checks *agreement at an instant*; permanent stabilization is
    what the leader-election guarantee promises, and the leader tests check
    that agreement, once reached with the true minimum, never degrades.
    """

    def check(nodes: Mapping[int, NodeProtocol], round_index: int) -> bool:
        candidates = {node.candidate_leader for node in nodes.values()}
        return len(candidates) == 1

    return check


def any_of(*conditions: TerminationCondition) -> TerminationCondition:
    """True when any constituent condition is true."""

    def check(nodes: Mapping[int, NodeProtocol], round_index: int) -> bool:
        return any(cond(nodes, round_index) for cond in conditions)

    return check
