"""Execution traces: per-round records and summary statistics.

The trace is how benchmarks and tests observe an execution without
breaking the protocol abstraction: the engine appends one
:class:`RoundRecord` per round (optionally downsampled for very long runs)
with connection counts, communication totals, and the values of any
caller-supplied *gauges* (e.g. token coverage, potential φ).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RoundRecord", "Trace"]


@dataclass(frozen=True)
class RoundRecord:
    """What happened in one round.

    ``connections`` counts connections that actually carried the Stage 3
    exchange; matches the fault layer dropped after acceptance are in
    ``dropped_connections`` instead.  ``active_nodes`` is how many
    vertices participated in the round (``None`` when the producer does
    not track activity — the engine always fills it in).

    The asynchrony layer's columns are ``None`` on round-engine records:
    ``virtual_time`` is the virtual instant (in rounds, fractional) of
    the window's last event, ``clock_skew_max`` the spread between the
    fastest and slowest node's local cycle counter at the window's
    close, and ``events`` how many node activations the window held (the
    round engine activates every node exactly once per round).
    """

    round_index: int
    proposals: int
    connections: int
    tokens_moved: int
    control_bits: int
    gauges: dict = field(default_factory=dict)
    active_nodes: int | None = None
    dropped_connections: int = 0
    virtual_time: float | None = None
    clock_skew_max: int | None = None
    events: int | None = None


class Trace:
    """An append-only log of round records plus running totals.

    ``sample_every`` controls how often full records are kept (1 = every
    round); totals are exact regardless of sampling.

    ``max_records`` bounds the memory held by kept records for long
    large-n runs: when the log grows past the bound, ``sample_every``
    doubles and already-kept records are re-thinned under the new rate
    (round 1 and gauge-carrying records always survive).  The thinning
    is deterministic — a run's final record set depends only on the
    rounds executed, never on when the bound was hit — and the engine
    reads ``sample_every`` afresh each round, so subsequent rounds are
    sampled at the widened rate automatically.
    """

    def __init__(self, sample_every: int = 1, max_records: int | None = None):
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        if max_records is not None and max_records < 1:
            raise ValueError(
                f"max_records must be >= 1 or None, got {max_records}"
            )
        self.sample_every = sample_every
        self.max_records = max_records
        self.records: list[RoundRecord] = []
        self.total_rounds = 0
        self.total_proposals = 0
        self.total_connections = 0
        self.total_tokens_moved = 0
        self.total_control_bits = 0
        self.total_dropped_connections = 0

    def observe(
        self,
        round_index: int,
        proposals: int,
        connections: int,
        tokens_moved: int,
        control_bits: int,
        dropped_connections: int = 0,
    ) -> None:
        """Fold one round into the totals without materializing a record.

        The engine's light path for unsampled rounds; totals stay exact
        while no :class:`RoundRecord` (or its gauges dict) is allocated.
        """
        self.total_rounds = max(self.total_rounds, round_index)
        self.total_proposals += proposals
        self.total_connections += connections
        self.total_tokens_moved += tokens_moved
        self.total_control_bits += control_bits
        self.total_dropped_connections += dropped_connections

    def record(self, record: RoundRecord) -> None:
        self.observe(
            record.round_index,
            record.proposals,
            record.connections,
            record.tokens_moved,
            record.control_bits,
            record.dropped_connections,
        )
        keep = (
            record.round_index % self.sample_every == 0
            or record.round_index == 1
            or record.gauges
        )
        if keep:
            self.records.append(record)
            if (
                self.max_records is not None
                and len(self.records) > self.max_records
            ):
                self._thin()

    def _thin(self) -> None:
        """Double ``sample_every`` until the kept log fits ``max_records``.

        Each doubling keeps exactly the records the wider rate would
        have kept from the start (rates divide their successors), so the
        surviving set is independent of *when* the bound was crossed.
        Stops early if thinning no longer shrinks the log (everything
        left is round 1 or gauge-carrying — unconditional keeps).
        """
        while len(self.records) > self.max_records:
            self.sample_every *= 2
            thinned = [
                rec
                for rec in self.records
                if rec.round_index % self.sample_every == 0
                or rec.round_index == 1
                or rec.gauges
            ]
            if len(thinned) == len(self.records):
                break
            self.records = thinned

    def column_series(self, name: str) -> list[tuple[int, object]]:
        """(round, value) pairs for one :class:`RoundRecord` field
        (e.g. ``"active_nodes"`` or ``"dropped_connections"``)."""
        return [
            (rec.round_index, getattr(rec, name)) for rec in self.records
        ]

    def gauge_series(self, name: str) -> list[tuple[int, object]]:
        """(round, value) pairs for one named gauge."""
        return [
            (rec.round_index, rec.gauges[name])
            for rec in self.records
            if name in rec.gauges
        ]

    def estimated_wall_rounds(self) -> float | None:
        """Effective duration of the run in wall-clock rounds, or None.

        Asynchronous runs advance virtual time unevenly: the trace's
        ``virtual_time`` column holds the fractional round of each
        window's last event, and ``clock_skew_max`` how many local
        cycles the slowest node trails the fastest at that instant.  A
        reasonable wall-clock estimate is the last observed virtual
        instant stretched by the closing skew — the laggards still need
        that many cycles to catch up to what the trace already counted.
        Round-engine traces carry neither column and return ``None``
        (every round is exactly one wall round there).
        """
        for rec in reversed(self.records):
            if rec.virtual_time is not None:
                return float(rec.virtual_time) + float(
                    rec.clock_skew_max or 0
                )
        return None

    def last(self) -> RoundRecord | None:
        return self.records[-1] if self.records else None

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return (
            f"Trace(rounds={self.total_rounds}, "
            f"connections={self.total_connections}, "
            f"tokens={self.total_tokens_moved})"
        )
