"""Unified observability: metrics, phase profiling, live introspection.

One :class:`Telemetry` object bundles the two halves — a
:class:`~repro.telemetry.metrics.MetricsRegistry` (counters / gauges /
histograms with label sets) and a
:class:`~repro.telemetry.profile.PhaseProfiler` (``span()`` wall-clock
accounting) — and every surface that runs gossip accepts a ``telemetry``
argument resolved by :func:`resolve_telemetry`:

* ``None`` / ``False`` (the default): :data:`NULL_TELEMETRY`, whose
  sink and profiler are shared no-ops — the instrumented hot paths cost
  one attribute check;
* ``True`` / ``"on"``: a fresh enabled :class:`Telemetry`;
* a spec dict ``{"enabled": bool, "stream": path}`` (the RunSpec
  ``telemetry`` block): ``stream`` appends one canonical JSON line per
  closed span to ``path``;
* an existing :class:`Telemetry` (or :data:`NULL_TELEMETRY`): passed
  through, so a caller can share one registry across runs.

The package-wide contract: **telemetry draws zero randomness and never
feeds back into engine state** — traces are byte-identical with it on
or off (``check_telemetry_identity`` in
:mod:`repro.experiments.fastpath`, CI-gated), and measured profiling
overhead stays under 5% of rounds/s at n=2000
(``benchmarks/bench_engine.py``; EXPERIMENTS.md OBS).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_SINK,
    NullSink,
    prometheus_text,
    quantile,
)
from repro.telemetry.profile import (
    NULL_PROFILER,
    NullProfiler,
    PhaseProfiler,
    merge_profiles,
    render_phase_table,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullSink",
    "NULL_SINK",
    "NullProfiler",
    "NULL_PROFILER",
    "PhaseProfiler",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "merge_profiles",
    "prometheus_text",
    "quantile",
    "render_phase_table",
    "resolve_telemetry",
]

#: Keys a ``telemetry`` spec dict may carry (the RunSpec block).
TELEMETRY_SPEC_KEYS = frozenset({"enabled", "stream"})


class Telemetry:
    """An enabled telemetry bundle: one registry + one profiler."""

    enabled = True

    def __init__(self, stream=None):
        self.metrics = MetricsRegistry()
        self.profiler = PhaseProfiler(stream=stream)

    def profile(self) -> dict:
        """The accumulated phase profile (see PhaseProfiler.as_dict)."""
        return self.profiler.as_dict()


class NullTelemetry:
    """The disabled bundle — shared no-op sink and profiler."""

    enabled = False
    metrics = NULL_SINK
    profiler = NULL_PROFILER

    def profile(self) -> dict:
        return {}


NULL_TELEMETRY = NullTelemetry()


def resolve_telemetry(spec):
    """Materialize any accepted ``telemetry=`` form (see module doc)."""
    if spec is None or spec is False:
        return NULL_TELEMETRY
    if spec is True or spec == "on":
        return Telemetry()
    if isinstance(spec, (Telemetry, NullTelemetry)):
        return spec
    if isinstance(spec, dict):
        unknown = set(spec) - TELEMETRY_SPEC_KEYS
        if unknown:
            raise ConfigurationError(
                f"unknown telemetry keys {sorted(unknown)}; allowed: "
                f"{sorted(TELEMETRY_SPEC_KEYS)}"
            )
        if not spec.get("enabled", True):
            return NULL_TELEMETRY
        return Telemetry(stream=spec.get("stream"))
    raise ConfigurationError(
        f"telemetry must be None, a bool, 'on', a spec dict, or a "
        f"Telemetry instance; got {type(spec).__name__}"
    )
