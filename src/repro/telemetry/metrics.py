"""Process-local metrics: counters, gauges, and histograms with labels.

The registry is the passive half of :mod:`repro.telemetry` — call sites
hold a metric object (``registry.counter("net.retries", uid=3)``) and
bump it; nothing here samples, schedules, or draws randomness.  Two
contracts matter:

* **Zero randomness.**  No code in this module (or anywhere in the
  telemetry package) touches a random stream, the :class:`SeedTree`, or
  any engine state.  Enabling telemetry must leave every differential
  gate in :mod:`repro.experiments.fastpath` byte-identical — that
  invariant is CI-enforced (``check_telemetry_identity``).
* **Deterministic snapshots.**  :meth:`MetricsRegistry.snapshot` orders
  entries canonically (kind, name, sorted label items), label values are
  stringified at registration, and :meth:`to_json` serializes with
  sorted keys and no whitespace — two registries fed the same events
  produce the same bytes.

When telemetry is disabled the engine holds :data:`NULL_SINK` instead: a
:class:`NullSink` whose ``counter``/``gauge``/``histogram`` all return
one shared no-op metric, so an instrumented hot path costs a single
attribute check plus a no-op call.

Histograms keep a bounded window of recent observations (the last
:data:`HISTOGRAM_WINDOW`) for quantiles — deterministic thinning (drop
oldest), no reservoir sampling — alongside exact ``count``/``sum``/
``min``/``max``.
"""

from __future__ import annotations

import json
import math
from collections import deque

__all__ = [
    "HISTOGRAM_WINDOW",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullSink",
    "NULL_SINK",
    "prometheus_text",
    "quantile",
]

#: Observations a histogram keeps for quantile queries.  Oldest are
#: dropped first (deque), so the window is a pure function of the
#: observation sequence — no sampling randomness.
HISTOGRAM_WINDOW = 4096


def quantile(values, q: float) -> float | None:
    """Linear-interpolation quantile of ``values`` (numpy's default
    rule), ``None`` on an empty sequence.  ``q`` is in [0, 1]."""
    ordered = sorted(values)
    if not ordered:
        return None
    if len(ordered) == 1:
        return float(ordered[0])
    position = (len(ordered) - 1) * q
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return float(ordered[low])
    fraction = position - low
    return float(ordered[low] * (1 - fraction) + ordered[high] * fraction)


class Counter:
    """Monotonically increasing integer."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self):
        return self.value


class Gauge:
    """Last-write-wins numeric level."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value) -> None:
        self.value = float(value)

    def snapshot(self):
        return self.value


class Histogram:
    """Exact count/sum/min/max plus a bounded window for quantiles."""

    kind = "histogram"
    __slots__ = ("count", "total", "min", "max", "_window")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._window: deque = deque(maxlen=HISTOGRAM_WINDOW)

    def observe(self, value) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self._window.append(value)

    def quantile(self, q: float) -> float | None:
        return quantile(self._window, q)

    def snapshot(self):
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
        }


class _NullMetric:
    """One shared object standing in for every disabled metric."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def quantile(self, q: float) -> None:
        return None


_NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Names + label sets -> live metric objects.

    Metric names are dotted lowercase ``subsystem.measurement`` (units
    suffixed: ``_s``, ``_bytes``); labels are keyword arguments whose
    values are stringified so the registry key — and therefore snapshot
    order — is canonical.
    """

    enabled = True

    def __init__(self):
        self._metrics: dict[tuple, object] = {}

    def _get(self, cls, name: str, labels: dict):
        key = (
            cls.kind,
            name,
            tuple(sorted((k, str(v)) for k, v in labels.items())),
        )
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls()
        elif metric.kind != cls.kind:  # pragma: no cover - keyed by kind
            raise TypeError(f"metric {name!r} already registered as "
                            f"{metric.kind}")
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    def snapshot(self) -> list[dict]:
        """Canonically ordered, JSON-able view of every metric."""
        return [
            {
                "kind": kind,
                "name": name,
                "labels": dict(labels),
                "value": metric.snapshot(),
            }
            for (kind, name, labels), metric in sorted(
                self._metrics.items(), key=lambda item: item[0]
            )
        ]

    def to_json(self) -> str:
        return json.dumps(
            self.snapshot(), sort_keys=True, separators=(",", ":")
        )


class NullSink:
    """Disabled-telemetry stand-in: every lookup yields the shared no-op
    metric, snapshots are empty, and nothing allocates per call."""

    enabled = False

    def counter(self, name: str, **labels) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, **labels) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, **labels) -> _NullMetric:
        return _NULL_METRIC

    def snapshot(self) -> list:
        return []

    def to_json(self) -> str:
        return "[]"


NULL_SINK = NullSink()


def _prom_name(name: str) -> str:
    return "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )


def _prom_labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{_prom_name(k)}="{v}"' for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def prometheus_text(registry) -> str:
    """Render a registry snapshot in Prometheus text exposition format.

    Counters/gauges become single samples; histograms expand to
    ``_count``/``_sum`` plus ``quantile``-labelled p50/p99 samples
    (summary-style).  Output order is the registry's canonical snapshot
    order, so equal registries render equal bytes.
    """
    lines: list[str] = []
    for entry in registry.snapshot():
        name = _prom_name(entry["name"])
        labels = entry["labels"]
        value = entry["value"]
        if entry["kind"] == "histogram":
            lines.append(f"{name}_count{_prom_labels(labels)} "
                         f"{value['count']}")
            lines.append(f"{name}_sum{_prom_labels(labels)} {value['sum']}")
            for q, quantile_label in (("p50", "0.5"), ("p99", "0.99")):
                if value[q] is not None:
                    tag = {"quantile": quantile_label}
                    lines.append(
                        f"{name}{_prom_labels(labels, tag)} {value[q]}"
                    )
        else:
            lines.append(f"{name}{_prom_labels(labels)} {value}")
    return "\n".join(lines) + ("\n" if lines else "")
