"""Phase profiling: where does the wall clock go inside a round?

:class:`PhaseProfiler` accumulates ``(calls, seconds)`` per dotted span
name (``"round.stages12"``, ``"window.drain"``, ...).  Call sites wrap
work in ``with profiler.span("name"):`` — when profiling is disabled
they hold :data:`NULL_PROFILER` instead, whose :meth:`span` returns one
shared no-op context manager, so the disabled path costs an attribute
check and an empty ``with``.

Span names form a fixed two-level hierarchy (see DESIGN.md §11):
``round.*`` for the synchronous engine's stages, ``window.*`` for the
asynchronous engine's window machinery, ``run.*`` for harness-level
totals, and ``net.*`` for the live layer.  Timing comes from
``time.perf_counter`` — wall seconds are *not* deterministic, and
nothing here feeds back into engine state, traces, or random streams:
profiles ride beside a run, never inside it.

Profiles serialize as ``{name: {"calls": int, "seconds": float}}``
(sorted names).  :func:`merge_profiles` sums any number of them — the
sweep runner merges per-worker profiles this way, and because merging
is commutative/associative over per-run dicts keyed by flat run index,
the totals are invariant to the ``jobs`` partitioning.

``stream=`` mirrors :class:`repro.experiments.results.ShardedRunLog`'s
discipline — one canonical JSON line per closed span, appended to the
given path — for offline span-level analysis of long runs.
"""

from __future__ import annotations

import json
from time import perf_counter

__all__ = [
    "PhaseProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "merge_profiles",
    "render_phase_table",
]


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullProfiler:
    """Disabled-profiling stand-in (see :data:`NULL_PROFILER`)."""

    enabled = False
    __slots__ = ()

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        pass

    def as_dict(self) -> dict:
        return {}

    def table(self) -> str:
        return "(profiling disabled)"


NULL_PROFILER = NullProfiler()


class _Span:
    """One reusable timing context per span name.

    :meth:`PhaseProfiler.span` hands back the *same* object for the
    same name, so hot loops pay no allocation per round.  The price is
    that a span name must not nest inside itself (re-entry would
    clobber ``_started``); the ``round.* / window.* / run.*`` hierarchy
    never does — parents and children have distinct names.
    """

    __slots__ = ("_profiler", "_name", "_started")

    def __init__(self, profiler: "PhaseProfiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self):
        self._started = perf_counter()
        return self

    def __exit__(self, *exc):
        self._profiler.add(self._name, perf_counter() - self._started)
        return False


class PhaseProfiler:
    """Accumulate wall seconds per span name; optionally stream spans."""

    enabled = True

    def __init__(self, stream=None):
        self._acc: dict[str, list] = {}
        self._spans: dict[str, _Span] = {}
        self._stream_path = stream
        self._stream_file = None
        self._seq = 0

    def span(self, name: str) -> _Span:
        span = self._spans.get(name)
        if span is None:
            span = self._spans[name] = _Span(self, name)
        return span

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        entry = self._acc.get(name)
        if entry is None:
            self._acc[name] = [calls, seconds]
        else:
            entry[0] += calls
            entry[1] += seconds
        if self._stream_path is not None:
            self._stream_span(name, seconds)

    def _stream_span(self, name: str, seconds: float) -> None:
        if self._stream_file is None:
            self._stream_file = open(self._stream_path, "a",
                                     encoding="utf-8")
        line = json.dumps(
            {"seq": self._seq, "span": name, "seconds": seconds},
            sort_keys=True, separators=(",", ":"),
        )
        self._stream_file.write(line + "\n")
        self._stream_file.flush()
        self._seq += 1

    def close(self) -> None:
        if self._stream_file is not None:
            self._stream_file.close()
            self._stream_file = None

    def as_dict(self) -> dict:
        """``{name: {"calls": int, "seconds": float}}``, sorted names."""
        return {
            name: {"calls": calls, "seconds": seconds}
            for name, (calls, seconds) in sorted(self._acc.items())
        }

    def table(self) -> str:
        return render_phase_table(self.as_dict())


def merge_profiles(profiles) -> dict:
    """Sum any number of profile dicts into one (sorted names).

    ``None`` entries are skipped, so per-run records without a profile
    (telemetry off, cached runs from older revisions) merge cleanly.
    """
    merged: dict[str, list] = {}
    for profile in profiles:
        if not profile:
            continue
        for name, cell in profile.items():
            entry = merged.get(name)
            if entry is None:
                merged[name] = [cell["calls"], cell["seconds"]]
            else:
                entry[0] += cell["calls"]
                entry[1] += cell["seconds"]
    return {
        name: {"calls": calls, "seconds": seconds}
        for name, (calls, seconds) in sorted(merged.items())
    }


def render_phase_table(profile: dict) -> str:
    """A fixed-width phase table, widest-seconds first.

    Percentages are of the summed span seconds (spans nest, so the sum
    over-counts parent/child pairs; the table is a where-does-time-go
    view, not a stopwatch)."""
    if not profile:
        return "(no spans recorded)"
    rows = sorted(
        profile.items(), key=lambda item: (-item[1]["seconds"], item[0])
    )
    total = sum(cell["seconds"] for _, cell in rows) or 1.0
    width = max(len("phase"), max(len(name) for name, _ in rows))
    lines = [
        f"{'phase':<{width}}  {'calls':>10}  {'seconds':>10}  {'share':>6}"
    ]
    for name, cell in rows:
        lines.append(
            f"{name:<{width}}  {cell['calls']:>10}  "
            f"{cell['seconds']:>10.4f}  "
            f"{100.0 * cell['seconds'] / total:>5.1f}%"
        )
    return "\n".join(lines)
