"""Scenario generators motivated by the paper's introduction.

The paper motivates smartphone peer-to-peer meshes with concrete settings:
censored infrastructure (protests), overwhelmed infrastructure (festivals,
marches), absent infrastructure (disasters, remote events), and
data-budget conservation in developing regions.  Each scenario here builds
a (dynamic graph, gossip instance) pair exercising the corresponding
regime of the model parameters.
"""

from repro.workloads.scenarios import (
    Scenario,
    protest_scenario,
    festival_scenario,
    disaster_scenario,
    rural_mesh_scenario,
    SCENARIOS,
)

__all__ = [
    "Scenario",
    "protest_scenario",
    "festival_scenario",
    "disaster_scenario",
    "rural_mesh_scenario",
    "SCENARIOS",
]
