"""Concrete (dynamic graph, instance) pairs for the paper's motivating settings."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.problem import GossipInstance, uniform_instance, skewed_instance
from repro.errors import ConfigurationError
from repro.graphs.dynamic import (
    DynamicGraph,
    GeometricMobilityGraph,
    PeriodicRewireGraph,
    StaticDynamicGraph,
)
from repro.graphs.topologies import expander, grid
from repro.registry import (
    RegistryMapping,
    SCENARIO_REGISTRY,
    register_scenario,
)

__all__ = [
    "Scenario",
    "protest_scenario",
    "festival_scenario",
    "disaster_scenario",
    "rural_mesh_scenario",
    "SCENARIOS",
]


@dataclass(frozen=True)
class Scenario:
    """A named workload: topology dynamics plus a token assignment."""

    name: str
    description: str
    dynamic_graph: DynamicGraph
    instance: GossipInstance
    recommended_algorithm: str


@register_scenario(
    name="protest",
    description="mobile crowd, censored infrastructure, few sources",
)
def protest_scenario(n: int = 40, k: int = 5, seed: int = 0,
                     tau: int = 4) -> Scenario:
    """A moving crowd under censored infrastructure.

    Phones drift through a square (random-waypoint mobility); a handful of
    organizers hold messages to spread.  The topology changes every ``tau``
    rounds, so the τ ≥ 1 algorithms apply; SimSharedBit is the recommended
    choice because no shared-randomness service can be assumed.
    """
    if n < 8:
        raise ConfigurationError(f"protest needs n >= 8, got {n}")
    graph = GeometricMobilityGraph(
        n=n, radius=0.35, step=0.05, tau=tau, seed=seed
    )
    instance = uniform_instance(n=n, k=k, seed=seed)
    return Scenario(
        name="protest",
        description="mobile crowd, censored infrastructure, few sources",
        dynamic_graph=graph,
        instance=instance,
        recommended_algorithm="simsharedbit",
    )


@register_scenario(
    name="festival",
    description="dense stable mesh, no infrastructure, several sources",
)
def festival_scenario(n: int = 48, k: int = 8, seed: int = 0) -> Scenario:
    """A dense, mostly-stationary festival crowd (Burning Man, far from towers).

    Stable, well-connected topology — the τ = ∞, large-α regime where
    CrowdedBin's O((k/α)·polylog) shines.
    """
    topo = expander(n=n, degree=6, seed=seed)
    instance = uniform_instance(n=n, k=k, seed=seed)
    return Scenario(
        name="festival",
        description="dense stable mesh, no infrastructure, several sources",
        dynamic_graph=StaticDynamicGraph(topo),
        instance=instance,
        recommended_algorithm="crowdedbin",
    )


@register_scenario(
    name="disaster",
    description="sparse grid mesh, one staging source with k messages",
)
def disaster_scenario(n: int = 36, k: int = 3, seed: int = 0) -> Scenario:
    """Post-disaster relay: sparse, elongated topology, few working phones.

    A grid-like street layout with low expansion; messages originate at a
    single staging node (multiple tokens per holder exercises the paper's
    multi-token allowance).
    """
    cols = max(n // 4, 2)
    rows = max(n // cols, 2)
    topo = grid(rows=rows, cols=cols)
    actual_n = topo.n
    instance = skewed_instance(n=actual_n, k=k, seed=seed, holders=1)
    return Scenario(
        name="disaster",
        description="sparse grid mesh, one staging source with k messages",
        dynamic_graph=StaticDynamicGraph(topo),
        instance=instance,
        recommended_algorithm="sharedbit",
    )


@register_scenario(
    name="rural_mesh",
    description="periodically rewired mesh, cellular-data-free gossip",
)
def rural_mesh_scenario(n: int = 32, k: int = 4, seed: int = 0,
                        tau: int = 8) -> Scenario:
    """Data-budget conservation: periodic rewiring as phones come and go.

    Moderate density, topology resampled every τ rounds — the general
    τ ≥ 1 setting with α and Δ known per epoch.
    """
    graph = PeriodicRewireGraph.resampled_gnp(n=n, p=0.2, tau=tau, seed=seed)
    instance = uniform_instance(n=n, k=k, seed=seed)
    return Scenario(
        name="rural_mesh",
        description="periodically rewired mesh, cellular-data-free gossip",
        dynamic_graph=graph,
        instance=instance,
        recommended_algorithm="sharedbit",
    )


#: Name -> factory, a live view over the scenario registry — scenarios
#: registered via :func:`repro.registry.register_scenario` (including
#: out-of-tree plugins) appear here without edits to this module.
SCENARIOS = RegistryMapping(SCENARIO_REGISTRY, lambda defn: defn.factory)
