"""Concrete (dynamic graph, instance, fault regime, timing regime)
quadruples for the paper's motivating settings.

The clean scenarios model the paper's idealized crowd; the faulty
variants (``subway``, ``protest_lossy``, ``festival_nightfall``) add the
degradation those settings actually exhibit — churn, lossy links,
duty-cycled radios — through the fault layer (:mod:`repro.sim.faults`);
the asynchronous variants (``commute_mixed_devices``,
``stadium_desync``) drop the lock-step round assumption through the
asynchrony layer (:mod:`repro.asynchrony`), so the same algorithms run
under every combination of regimes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asynchrony.timing import (
    GilbertElliottPauses,
    HeterogeneousRates,
    TimingModel,
)
from repro.core.problem import GossipInstance, uniform_instance, skewed_instance
from repro.errors import ConfigurationError
from repro.graphs.dynamic import (
    DynamicGraph,
    GeometricMobilityGraph,
    PeriodicRewireGraph,
    StaticDynamicGraph,
)
from repro.graphs.topologies import expander, grid
from repro.registry import (
    RegistryMapping,
    SCENARIO_REGISTRY,
    register_scenario,
)
from repro.sim.faults import CrashChurn, FaultModel, LossyLinks, SleepCycle

__all__ = [
    "Scenario",
    "protest_scenario",
    "festival_scenario",
    "disaster_scenario",
    "rural_mesh_scenario",
    "live_smoke_scenario",
    "subway_scenario",
    "protest_lossy_scenario",
    "festival_nightfall_scenario",
    "commute_mixed_devices_scenario",
    "stadium_desync_scenario",
    "SCENARIOS",
]


@dataclass(frozen=True)
class Scenario:
    """A named workload: topology dynamics, a token assignment, an
    optional fault regime, and an optional timing regime (``None`` =
    the paper's clean, lock-step model)."""

    name: str
    description: str
    dynamic_graph: DynamicGraph
    instance: GossipInstance
    recommended_algorithm: str
    fault: FaultModel | None = None
    timing: TimingModel | None = None


@register_scenario(
    name="protest",
    description="mobile crowd, censored infrastructure, few sources",
)
def protest_scenario(n: int = 40, k: int = 5, seed: int = 0,
                     tau: int = 4) -> Scenario:
    """A moving crowd under censored infrastructure.

    Phones drift through a square (random-waypoint mobility); a handful of
    organizers hold messages to spread.  The topology changes every ``tau``
    rounds, so the τ ≥ 1 algorithms apply; SimSharedBit is the recommended
    choice because no shared-randomness service can be assumed.
    """
    if n < 8:
        raise ConfigurationError(f"protest needs n >= 8, got {n}")
    graph = GeometricMobilityGraph(
        n=n, radius=0.35, step=0.05, tau=tau, seed=seed
    )
    instance = uniform_instance(n=n, k=k, seed=seed)
    return Scenario(
        name="protest",
        description="mobile crowd, censored infrastructure, few sources",
        dynamic_graph=graph,
        instance=instance,
        recommended_algorithm="simsharedbit",
    )


@register_scenario(
    name="festival",
    description="dense stable mesh, no infrastructure, several sources",
)
def festival_scenario(n: int = 48, k: int = 8, seed: int = 0) -> Scenario:
    """A dense, mostly-stationary festival crowd (Burning Man, far from towers).

    Stable, well-connected topology — the τ = ∞, large-α regime where
    CrowdedBin's O((k/α)·polylog) shines.
    """
    topo = expander(n=n, degree=6, seed=seed)
    instance = uniform_instance(n=n, k=k, seed=seed)
    return Scenario(
        name="festival",
        description="dense stable mesh, no infrastructure, several sources",
        dynamic_graph=StaticDynamicGraph(topo),
        instance=instance,
        recommended_algorithm="crowdedbin",
    )


@register_scenario(
    name="disaster",
    description="sparse grid mesh, one staging source with k messages",
)
def disaster_scenario(n: int = 36, k: int = 3, seed: int = 0) -> Scenario:
    """Post-disaster relay: sparse, elongated topology, few working phones.

    A grid-like street layout with low expansion; messages originate at a
    single staging node (multiple tokens per holder exercises the paper's
    multi-token allowance).
    """
    cols = max(n // 4, 2)
    rows = max(n // cols, 2)
    topo = grid(rows=rows, cols=cols)
    actual_n = topo.n
    instance = skewed_instance(n=actual_n, k=k, seed=seed, holders=1)
    return Scenario(
        name="disaster",
        description="sparse grid mesh, one staging source with k messages",
        dynamic_graph=StaticDynamicGraph(topo),
        instance=instance,
        recommended_algorithm="sharedbit",
    )


@register_scenario(
    name="rural_mesh",
    description="periodically rewired mesh, cellular-data-free gossip",
)
def rural_mesh_scenario(n: int = 32, k: int = 4, seed: int = 0,
                        tau: int = 8) -> Scenario:
    """Data-budget conservation: periodic rewiring as phones come and go.

    Moderate density, topology resampled every τ rounds — the general
    τ ≥ 1 setting with α and Δ known per epoch.
    """
    graph = PeriodicRewireGraph.resampled_gnp(n=n, p=0.2, tau=tau, seed=seed)
    instance = uniform_instance(n=n, k=k, seed=seed)
    return Scenario(
        name="rural_mesh",
        description="periodically rewired mesh, cellular-data-free gossip",
        dynamic_graph=graph,
        instance=instance,
        recommended_algorithm="sharedbit",
    )


@register_scenario(
    name="subway",
    description="commuter churn: riders board and alight mid-gossip, "
                "phones crash and rejoin",
)
def subway_scenario(n: int = 36, k: int = 4, seed: int = 0,
                    tau: int = 3) -> Scenario:
    """A subway platform at rush hour.

    A moving crowd (random-waypoint mobility, bridged into connectivity)
    whose members keep leaving and arriving: every few dozen rounds a
    fraction of the phones drop out for a stretch — a rider stepping onto
    a train, a phone dying in a pocket — and rejoin with their tokens
    intact.  The first scenario built on the fault layer's churn model.
    """
    if n < 8:
        raise ConfigurationError(f"subway needs n >= 8, got {n}")
    graph = GeometricMobilityGraph(
        n=n, radius=0.35, step=0.06, tau=tau, seed=seed
    )
    instance = uniform_instance(n=n, k=k, seed=seed)
    return Scenario(
        name="subway",
        description="commuter churn: riders board and alight mid-gossip, "
                    "phones crash and rejoin",
        dynamic_graph=graph,
        instance=instance,
        recommended_algorithm="sharedbit",
        fault=CrashChurn(n=n, seed=seed, cycle=48, crash_prob=0.25,
                         min_outage=6, max_outage=18),
    )


@register_scenario(
    name="protest_lossy",
    description="the protest crowd under interference: connections "
                "fail after acceptance",
)
def protest_lossy_scenario(n: int = 40, k: int = 5, seed: int = 0,
                           tau: int = 4,
                           drop_prob: float = 0.25) -> Scenario:
    """The protest workload with a hostile RF environment.

    Same mobility and token assignment as :func:`protest_scenario`, but a
    quarter of accepted connections fail before any data moves — jammed
    or congested spectrum at street level.
    """
    clean = protest_scenario(n=n, k=k, seed=seed, tau=tau)
    return Scenario(
        name="protest_lossy",
        description="the protest crowd under interference: connections "
                    "fail after acceptance",
        dynamic_graph=clean.dynamic_graph,
        instance=clean.instance,
        recommended_algorithm=clean.recommended_algorithm,
        fault=LossyLinks(n=n, seed=seed, drop_prob=drop_prob),
    )


@register_scenario(
    name="festival_nightfall",
    description="the festival mesh on overnight battery rations: "
                "duty-cycled radios",
)
def festival_nightfall_scenario(n: int = 48, k: int = 8, seed: int = 0,
                                period: int = 8,
                                duty: int = 5) -> Scenario:
    """The festival workload after dark, phones conserving battery.

    Same stable expander and sources as :func:`festival_scenario`, but
    every phone sleeps its radio ``period - duty`` of every ``period``
    rounds on a staggered schedule.  The stable-topology assumption still
    holds (τ = ∞ — the *graph* never changes; the fault layer masks who
    is awake on it), but the effective per-round degree shrinks, so the
    recommendation moves to SharedBit, which tolerates sparse rounds.
    """
    clean = festival_scenario(n=n, k=k, seed=seed)
    return Scenario(
        name="festival_nightfall",
        description="the festival mesh on overnight battery rations: "
                    "duty-cycled radios",
        dynamic_graph=clean.dynamic_graph,
        instance=clean.instance,
        recommended_algorithm="sharedbit",
        fault=SleepCycle(n=n, seed=seed, period=period, duty=duty),
    )


@register_scenario(
    name="live_smoke",
    description="small stable expander sized for a loopback live "
                "deployment (repro-gossip serve / repro.net)",
)
def live_smoke_scenario(n: int = 8, k: int = 2, seed: int = 0) -> Scenario:
    """The live layer's smoke workload: real sockets, tiny cluster.

    A stable degree-4 expander small enough that a laptop can run one
    OS thread per peer server comfortably; SharedBit is recommended
    because its in-process shared randomness makes the replay bridge's
    equivalence assertion cover the subtlest protocol (PRF tags plus
    shared selection indices) at no extra cost.
    """
    if n < 6:
        raise ConfigurationError(f"live_smoke needs n >= 6, got {n}")
    topo = expander(n=n, degree=4, seed=seed)
    instance = uniform_instance(n=n, k=k, seed=seed)
    return Scenario(
        name="live_smoke",
        description="small stable expander sized for a loopback live "
                    "deployment (repro-gossip serve / repro.net)",
        dynamic_graph=StaticDynamicGraph(topo),
        instance=instance,
        recommended_algorithm="sharedbit",
    )


@register_scenario(
    name="commute_mixed_devices",
    description="rush-hour commuters with mismatched phones: slow and "
                "fast device classes on unsynchronized clocks",
)
def commute_mixed_devices_scenario(n: int = 36, k: int = 4, seed: int = 0,
                                   tau: int = 4) -> Scenario:
    """A commuting crowd whose phones disagree about time.

    The same random-waypoint mobility as the protest workload, but run
    asynchronously: device classes scan at 0.6x, 1x, and 1.5x the
    nominal rate (old handsets with throttled BLE stacks next to
    flagships), each with its own phase.  Advertisements are read stale
    and no two phones share a round boundary — the asynchronous mobile
    telephone model of Newport–Weaver–Zheng.  The first scenario built
    on the asynchrony layer's heterogeneous-rate clocks.
    """
    if n < 8:
        raise ConfigurationError(
            f"commute_mixed_devices needs n >= 8, got {n}"
        )
    graph = GeometricMobilityGraph(
        n=n, radius=0.35, step=0.05, tau=tau, seed=seed
    )
    instance = uniform_instance(n=n, k=k, seed=seed)
    return Scenario(
        name="commute_mixed_devices",
        description="rush-hour commuters with mismatched phones: slow "
                    "and fast device classes on unsynchronized clocks",
        dynamic_graph=graph,
        instance=instance,
        recommended_algorithm="sharedbit",
        timing=HeterogeneousRates(n=n, seed=seed, rates=(0.6, 1.0, 1.5)),
    )


@register_scenario(
    name="stadium_desync",
    description="a stadium crowd on desynced, stalling clocks and "
                "battery-saving radios: bursty timing + sleep cycling",
)
def stadium_desync_scenario(n: int = 48, k: int = 6, seed: int = 0,
                            period: int = 8, duty: int = 6) -> Scenario:
    """A stadium crowd streaming out after the final whistle.

    A dense stable mesh, but nothing is synchronized: the OS backgrounds
    the gossip app unpredictably (Gilbert–Elliott bursty pauses — most
    cycles fire on time, occasional multi-round stalls), *and* phones
    duty-cycle their radios to save battery.  Demonstrates the
    asynchrony layer composing with the fault layer: the timing model
    decides when a phone's cycles fire, the sleep cycle masks which of
    those cycles participate.
    """
    topo = expander(n=n, degree=6, seed=seed)
    instance = uniform_instance(n=n, k=k, seed=seed)
    return Scenario(
        name="stadium_desync",
        description="a stadium crowd on desynced, stalling clocks and "
                    "battery-saving radios: bursty timing + sleep cycling",
        dynamic_graph=StaticDynamicGraph(topo),
        instance=instance,
        recommended_algorithm="sharedbit",
        fault=SleepCycle(n=n, seed=seed, period=period, duty=duty),
        timing=GilbertElliottPauses(n=n, seed=seed, p_pause=0.08,
                                    p_resume=0.6, pause_scale=2.5),
    )


#: Name -> factory, a live view over the scenario registry — scenarios
#: registered via :func:`repro.registry.register_scenario` (including
#: out-of-tree plugins) appear here without edits to this module.
SCENARIOS = RegistryMapping(SCENARIO_REGISTRY, lambda defn: defn.factory)
