"""Tests for acceptance rules and the classical (unbounded) baseline."""

import random

import pytest

from repro.errors import ConfigurationError, ProtocolViolationError
from repro.graphs.dynamic import StaticDynamicGraph
from repro.graphs.topologies import star
from repro.sim.engine import Simulation
from repro.sim.matching import (
    ACCEPTANCE_RULES,
    resolve_proposals,
    resolve_proposals_unbounded,
)
from repro.sim.protocol import NodeProtocol


class TestBoundedRules:
    def test_uniform_is_default(self):
        matches = resolve_proposals({1: 9, 2: 9}, random.Random(0))
        assert len(matches) == 1

    def test_lowest_uid_rule(self):
        matches = resolve_proposals(
            {5: 9, 2: 9, 7: 9}, random.Random(0), rule="lowest_uid"
        )
        assert matches == [(2, 9)]

    def test_highest_uid_rule(self):
        matches = resolve_proposals(
            {5: 9, 2: 9, 7: 9}, random.Random(0), rule="highest_uid"
        )
        assert matches == [(7, 9)]

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_proposals({1: 2}, random.Random(0), rule="fifo")

    def test_all_rules_preserve_one_connection_per_node(self):
        proposals = {1: 9, 2: 9, 3: 8, 4: 8}
        for rule in ACCEPTANCE_RULES:
            matches = resolve_proposals(proposals, random.Random(1), rule=rule)
            nodes = [x for pair in matches for x in pair]
            assert len(nodes) == len(set(nodes))


class TestUnbounded:
    def test_every_proposal_to_non_proposer_connects(self):
        matches = resolve_proposals_unbounded({1: 9, 2: 9, 3: 9})
        assert sorted(matches) == [(1, 9), (2, 9), (3, 9)]

    def test_proposer_still_cannot_receive(self):
        matches = resolve_proposals_unbounded({1: 2, 2: 3})
        assert matches == [(2, 3)]

    def test_self_proposal_rejected(self):
        with pytest.raises(ProtocolViolationError):
            resolve_proposals_unbounded({1: 1})


class PushyNode(NodeProtocol):
    """Everyone proposes to the hub; counts how many connections land."""

    def __init__(self, uid, is_hub):
        super().__init__(uid)
        self.is_hub = is_hub
        self.connections = 0

    def advertise(self, round_index, neighbor_uids):
        return 0

    def propose(self, round_index, neighbors):
        if self.is_hub or not neighbors:
            return None
        return min(view.uid for view in neighbors)  # the hub has uid 1

    def interact(self, responder, channel, round_index):
        channel.charge_bits(1)
        self.connections += 1
        responder.connections += 1


def run_star_round(acceptance):
    topo = star(8)
    nodes = {
        v: PushyNode(uid=v + 1, is_hub=(v == 0)) for v in range(topo.n)
    }
    sim = Simulation(
        StaticDynamicGraph(topo), nodes, b=0, seed=3, acceptance=acceptance
    )
    sim.step()
    return nodes[0].connections


class TestEngineIntegration:
    def test_bounded_hub_accepts_one(self):
        assert run_star_round("uniform") == 1

    def test_unbounded_hub_accepts_all(self):
        # All 7 leaves propose to the hub; classical model takes them all.
        assert run_star_round("unbounded") == 7

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            run_star_round("broadcast")

    def test_deterministic_rules_in_engine(self):
        assert run_star_round("lowest_uid") == 1
        assert run_star_round("highest_uid") == 1
