"""Tests for CSR adjacency snapshots and the ``csr_at`` dynamics hook."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.fastpath import check_dtype_identity
from repro.graphs.dynamic import (
    GeometricMobilityGraph,
    PeriodicRewireGraph,
    RelabelingAdversary,
    StaticDynamicGraph,
)
from repro.graphs.topologies import cycle, expander, path, star
from repro.sim.adjacency import CSRAdjacency, index_dtype_for


def assert_matches_graph(csr: CSRAdjacency, graph) -> None:
    assert csr.n == graph.number_of_nodes()
    for vertex in range(csr.n):
        assert csr.neighbors(vertex).tolist() == sorted(graph.adj[vertex])


class TestFromGraph:
    def test_star_rows(self):
        csr = CSRAdjacency.from_graph(star(5).graph)
        assert csr.neighbors(0).tolist() == [1, 2, 3, 4]
        for leaf in range(1, 5):
            assert csr.neighbors(leaf).tolist() == [0]
        assert csr.degrees.tolist() == [4, 1, 1, 1, 1]

    def test_rows_sorted_by_vertex(self):
        graph = expander(24, degree=4, seed=2).graph
        csr = CSRAdjacency.from_graph(graph)
        assert_matches_graph(csr, graph)

    def test_edge_sources(self):
        csr = CSRAdjacency.from_graph(path(3).graph)
        assert csr.edge_sources().tolist() == [0, 1, 1, 2]

    def test_equality_is_identity(self):
        # eq=False: dataclass-generated == over array fields would raise;
        # snapshots compare by identity, same_structure() by content.
        a = CSRAdjacency.from_graph(star(4).graph)
        b = CSRAdjacency.from_graph(star(4).graph)
        assert a == a
        assert a != b
        assert a.same_structure(b)

    def test_from_edge_lists_matches_from_graph(self):
        graph = expander(16, degree=4, seed=5).graph
        direct = CSRAdjacency.from_graph(graph)
        sources, targets = [], []
        for u, v in graph.edges:
            sources += [u, v]
            targets += [v, u]
        rebuilt = CSRAdjacency.from_edge_lists(sources, targets, 16)
        assert direct.same_structure(rebuilt)


class TestBindUids:
    def test_uid_translation(self):
        csr = CSRAdjacency.from_graph(star(4).graph)
        bound = csr.bind_uids(np.array([10, 20, 30, 40]))
        assert bound.base is csr
        assert bound.uids[bound.indptr[0]:bound.indptr[1]].tolist() == \
            [20, 30, 40]
        assert bound.uid_rows()[0] == (20, 30, 40)
        assert bound.uid_rows()[1] == (10,)

    def test_uid_rows_requires_binding(self):
        csr = CSRAdjacency.from_graph(star(4).graph)
        with pytest.raises(ValueError):
            csr.uid_rows()


class TestCsrAtHook:
    def test_static_snapshot_cached_per_epoch(self):
        dynamic = StaticDynamicGraph(cycle(6))
        first = dynamic.csr_at(1)
        assert dynamic.csr_at(50) is first
        assert_matches_graph(first, dynamic.graph_at(1))

    def test_periodic_rewire_matches_graph_at(self):
        dynamic = PeriodicRewireGraph.resampled_regular(
            n=12, degree=3, tau=4, seed=9
        )
        for round_index in (1, 4, 5, 9):
            assert_matches_graph(
                dynamic.csr_at(round_index), dynamic.graph_at(round_index)
            )

    def test_relabeling_arrays_match_graph_path(self):
        # The adversary's csr_at permutes arrays directly; it must agree
        # with the nx.relabel_nodes graph for every epoch — that equality
        # is what keeps fast-path traces byte-identical under relabeling.
        dynamic = RelabelingAdversary(expander(18, degree=4, seed=1),
                                      tau=2, seed=13)
        for round_index in (1, 2, 3, 5, 7):
            assert_matches_graph(
                dynamic.csr_at(round_index), dynamic.graph_at(round_index)
            )

    def test_relabeling_csr_changes_across_epochs(self):
        dynamic = RelabelingAdversary(star(10), tau=1, seed=3)
        assert not dynamic.csr_at(1).same_structure(dynamic.csr_at(2))

    def test_geometric_matches_graph_at(self):
        dynamic = GeometricMobilityGraph(n=20, radius=0.4, step=0.05,
                                         tau=2, seed=5)
        for round_index in (1, 3, 5):
            assert_matches_graph(
                dynamic.csr_at(round_index), dynamic.graph_at(round_index)
            )


class TestGeometricVectorizedBuild:
    def test_disk_edges_match_bruteforce(self):
        dynamic = GeometricMobilityGraph(n=30, radius=0.3, step=0.05,
                                         tau=1, seed=8)
        graph = dynamic.graph_at(1)
        positions = dynamic._positions
        r2 = dynamic.radius ** 2
        expected = set()
        for i in range(30):
            xi, yi = positions[i]
            for j in range(i + 1, 30):
                xj, yj = positions[j]
                if (xi - xj) ** 2 + (yi - yj) ** 2 <= r2:
                    expected.add((i, j))
        proximity = {
            tuple(sorted(edge)) for edge in graph.edges
        }
        # Every brute-force edge is present; anything extra is a bridge.
        assert expected <= proximity
        assert len(proximity) - len(expected) == dynamic.bridges_added


class TestIndexDtype:
    """int32 vs int64 CSR layout: the width is a storage detail only."""

    def test_small_snapshots_narrow_to_int32(self):
        assert index_dtype_for(1000) == np.int32
        assert index_dtype_for(1000, nnz=6000) == np.int32

    def test_overflow_boundary_on_n(self):
        limit = np.iinfo(np.int32).max
        assert index_dtype_for(limit) == np.int32
        assert index_dtype_for(limit + 1) == np.int64

    def test_overflow_boundary_on_nnz(self):
        # indptr's last entry is the edge count: it must fit too, even
        # when every vertex id does.
        limit = np.iinfo(np.int32).max
        assert index_dtype_for(1000, nnz=limit) == np.int32
        assert index_dtype_for(1000, nnz=limit + 1) == np.int64

    def test_from_graph_picks_narrow_by_default(self):
        csr = CSRAdjacency.from_graph(expander(24, degree=4, seed=2).graph)
        assert csr.indptr.dtype == np.int32
        assert csr.indices.dtype == np.int32

    def test_explicit_dtype_respected(self):
        graph = expander(24, degree=4, seed=2).graph
        wide = CSRAdjacency.from_graph(graph, dtype=np.int64)
        assert wide.indices.dtype == np.int64
        assert_matches_graph(wide, graph)

    @given(
        n=st.integers(min_value=2, max_value=24),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_int32_int64_structural_parity(self, n, data):
        # Property: on any edge set, the two widths produce snapshots
        # with identical structure — same indptr/indices values, same
        # rows, same edge sources; only the storage width differs.
        pairs = data.draw(
            st.sets(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ).filter(lambda uv: uv[0] != uv[1]).map(
                    lambda uv: (min(uv), max(uv))
                ),
                max_size=40,
            )
        )
        sources = [u for u, v in pairs] + [v for u, v in pairs]
        targets = [v for u, v in pairs] + [u for u, v in pairs]
        narrow = CSRAdjacency.from_edge_lists(sources, targets, n,
                                              dtype=np.int32)
        wide = CSRAdjacency.from_edge_lists(sources, targets, n,
                                            dtype=np.int64)
        assert narrow.indptr.dtype == np.int32
        assert wide.indptr.dtype == np.int64
        assert np.array_equal(narrow.indptr, wide.indptr)
        assert np.array_equal(narrow.indices, wide.indices)
        assert np.array_equal(narrow.edge_sources(), wide.edge_sources())
        for vertex in range(n):
            assert narrow.neighbors(vertex).tolist() == \
                   wide.neighbors(vertex).tolist()

    def test_trace_identity_via_differential_harness(self):
        # The end-to-end gate: full simulations on int32 snapshots are
        # byte-identical (trace signature + rng draws) to int64 ones.
        assert check_dtype_identity(n=16, rounds=25) == []
