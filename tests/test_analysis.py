"""Tests for the bound predictors, fit helpers, and table rendering."""

import math

import pytest

from repro.analysis.bounds import (
    BOUNDS,
    blindmatch_bound,
    crowdedbin_bound,
    doublestar_lower_bound,
    epsilon_gossip_bound,
    ppush_bound,
    sharedbit_bound,
    simsharedbit_bound,
)
from repro.analysis.fits import (
    crossover_point,
    geometric_mean,
    loglog_slope,
    ratio_series,
)
from repro.analysis.tables import figure1_table, render_table
from repro.errors import ConfigurationError


class TestBounds:
    def test_sharedbit_linear_in_k_and_n(self):
        assert sharedbit_bound(10, 2) == 20
        assert sharedbit_bound(10, 4) == 40
        assert sharedbit_bound(20, 2) == 40

    def test_blindmatch_quadratic_in_delta(self):
        base = blindmatch_bound(16, 1, 0.5, 4)
        assert blindmatch_bound(16, 1, 0.5, 8) == pytest.approx(4 * base)

    def test_blindmatch_inverse_in_alpha(self):
        base = blindmatch_bound(16, 1, 0.5, 4)
        assert blindmatch_bound(16, 1, 0.25, 4) == pytest.approx(2 * base)

    def test_simsharedbit_is_sharedbit_plus_leader_term(self):
        # The bound is additive: the leader term is independent of k.
        gap_k1 = simsharedbit_bound(64, 1, alpha=0.5, delta=8, tau=2) - \
            sharedbit_bound(64, 1)
        gap_k9 = simsharedbit_bound(64, 9, alpha=0.5, delta=8, tau=2) - \
            sharedbit_bound(64, 9)
        assert gap_k1 == pytest.approx(gap_k9)
        assert gap_k1 > 0

    def test_simsharedbit_tau_discount(self):
        slow = simsharedbit_bound(64, 1, alpha=0.1, delta=32, tau=1)
        fast = simsharedbit_bound(64, 1, alpha=0.1, delta=32, tau=100)
        assert fast < slow

    def test_crowdedbin_beats_sharedbit_for_large_alpha(self):
        # Shape statement: at constant α the ratio (k/α)·log⁶n : k·n
        # vanishes as n grows (the paper's "factor of n faster, ignoring
        # log factors").  With unit constants the crossover sits at large
        # n, so compare there.
        n, k = 2**40, 8
        assert crowdedbin_bound(n, k, alpha=1.0) < sharedbit_bound(n, k)
        # And the ratio improves with n.
        r_small = crowdedbin_bound(2**20, k, 1.0) / sharedbit_bound(2**20, k)
        r_large = crowdedbin_bound(2**40, k, 1.0) / sharedbit_bound(2**40, k)
        assert r_large < r_small

    def test_sharedbit_beats_crowdedbin_for_tiny_alpha(self):
        n, k = 256, 8
        alpha = 2.0 / n
        # At worst-case alpha the log^6 overhead loses to plain kn.
        assert crowdedbin_bound(n, k, alpha=alpha) > sharedbit_bound(n, k)

    def test_epsilon_bound_degrades_as_eps_to_one(self):
        loose = epsilon_gossip_bound(64, 0.5, 8, epsilon=0.5)
        tight = epsilon_gossip_bound(64, 0.5, 8, epsilon=0.99)
        assert tight > loose

    def test_ppush_bound_alpha_inverse(self):
        assert ppush_bound(64, 0.25) == pytest.approx(2 * ppush_bound(64, 0.5))

    def test_doublestar_quadratic(self):
        assert doublestar_lower_bound(10) == 100
        assert doublestar_lower_bound(10, alpha=0.25) == pytest.approx(200)

    def test_registry_complete(self):
        assert set(BOUNDS) == {
            "blindmatch", "sharedbit", "simsharedbit", "crowdedbin",
            "epsilon_gossip", "ppush", "doublestar_lower",
        }

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sharedbit_bound(1, 1)
        with pytest.raises(ConfigurationError):
            blindmatch_bound(4, 1, 0.0, 2)
        with pytest.raises(ConfigurationError):
            epsilon_gossip_bound(4, 0.5, 2, epsilon=0.0)


class TestFits:
    def test_loglog_slope_recovers_exponent(self):
        xs = [2, 4, 8, 16, 32]
        ys = [x**2 for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(2.0)

    def test_loglog_slope_with_constant(self):
        xs = [2, 4, 8, 16]
        ys = [7 * x for x in xs]
        assert loglog_slope(xs, ys) == pytest.approx(1.0)

    def test_ratio_series(self):
        assert ratio_series([10, 20], [5, 5]) == [2.0, 4.0]

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([3, 3, 3]) == pytest.approx(3.0)

    def test_crossover_detected(self):
        xs = [1, 2, 3, 4]
        ys_a = [10, 8, 6, 4]
        ys_b = [4, 6, 8, 10]
        x = crossover_point(xs, ys_a, ys_b)
        assert x == pytest.approx(2.5)

    def test_no_crossover_is_none(self):
        assert crossover_point([1, 2], [1, 2], [5, 6]) is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            loglog_slope([1], [1])
        with pytest.raises(ConfigurationError):
            geometric_mean([])
        with pytest.raises(ConfigurationError):
            ratio_series([1], [1, 2])


class TestTables:
    def test_render_basic(self):
        text = render_table(
            headers=("a", "b"), rows=[(1, 2.5), (30, 4)], title="t"
        )
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_row_width_checked(self):
        with pytest.raises(ConfigurationError):
            render_table(headers=("a", "b"), rows=[(1,)])

    def test_figure1_layout(self):
        text = figure1_table(
            {"blindmatch": 120, "sharedbit": 45, "crowdedbin": 800}
        )
        assert "BlindMatch" in text
        assert "CrowdedBin" in text
        assert "O(kn)" in text
        assert "120" in text
        # Missing entries render as '-'.
        assert "-" in text

    def test_large_floats_compact(self):
        text = render_table(headers=("x",), rows=[(123456.789,)])
        assert "1.23e+05" in text
