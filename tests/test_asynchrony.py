"""Tests for the asynchrony layer: timing models, the event queue, the
event-driven engine, and the timing registry surface threaded through
every layer (run_gossip, RunSpec, sweeps, the fluent API, the CLI,
scenarios)."""

import numpy as np
import pytest

from repro.api import Experiment
from repro.asynchrony import (
    TICKS_PER_ROUND,
    AsyncSimulation,
    EventQueue,
    GilbertElliottPauses,
    HeterogeneousRates,
    Synchronous,
    UniformJitter,
    build_timing,
)
from repro.core.problem import uniform_instance
from repro.core.runner import build_nodes, run_gossip
from repro.errors import ConfigurationError
from repro.experiments import RunSpec, SweepSpec, execute_run, run_sweep
from repro.experiments.fastpath import trace_signature
from repro.graphs.dynamic import StaticDynamicGraph
from repro.graphs.topologies import expander, star
from repro.registry import TIMING_REGISTRY
from repro.sim.channel import ChannelPolicy
from repro.sim.faults import SleepCycle
from repro.sim.termination import all_hold_tokens
from repro.workloads.scenarios import (
    commute_mixed_devices_scenario,
    stadium_desync_scenario,
)

N = 20
SEED = 9


def _sim(timing=None, fault=None, n=N, seed=SEED, k=2, **kwargs):
    instance = uniform_instance(n=n, k=k, seed=seed)
    nodes = build_nodes("sharedbit", instance, seed=seed)
    sim = AsyncSimulation(
        StaticDynamicGraph(expander(n=n, degree=4, seed=1)), nodes,
        b=1, seed=seed,
        channel_policy=ChannelPolicy.for_upper_n(instance.upper_n),
        timing=timing, faults=fault, **kwargs,
    )
    return sim, instance


class TestEventQueue:
    def test_cohorts_pop_in_time_then_vertex_order(self):
        queue = EventQueue()
        queue.push(30, 2, 1)
        queue.push(10, 5, 1)
        queue.push(10, 1, 1)
        queue.push(20, 0, 1)
        assert queue.peek_ticks() == 10
        assert queue.pop_cohort() == (10, [(1, 1), (5, 1)])
        assert queue.pop_cohort() == (20, [(0, 1)])
        assert queue.pop_cohort() == (30, [(2, 1)])
        assert queue.peek_ticks() is None
        assert len(queue) == 0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop_cohort()

    def test_pop_window_drains_all_cohorts_below_boundary(self):
        queue = EventQueue()
        queue.push(30, 2, 1)
        queue.push(10, 5, 1)
        queue.push(10, 1, 1)
        queue.push(20, 0, 1)
        queue.push(45, 3, 2)
        cohorts = queue.pop_window(40)
        assert cohorts == [
            (10, [(1, 1), (5, 1)]),
            (20, [(0, 1)]),
            (30, [(2, 1)]),
        ]
        assert len(queue) == 1  # the event past the boundary stays queued

    def test_pop_window_empty_and_boundary_exclusive(self):
        queue = EventQueue()
        queue.push(40, 0, 1)
        assert queue.pop_window(40) == []  # strictly below the boundary
        assert queue.pop_window(41) == [(40, [(0, 1)])]
        assert queue.pop_window(99) == []

    def test_pop_window_equals_repeated_pop_cohort(self):
        events = [(17, 4, 2), (5, 1, 1), (5, 3, 1), (9, 0, 1), (17, 2, 2)]
        a, b = EventQueue(), EventQueue()
        for ticks, vertex, cycle in events:
            a.push(ticks, vertex, cycle)
            b.push(ticks, vertex, cycle)
        windowed = a.pop_window(20)
        one_by_one = []
        while len(b):
            one_by_one.append(b.pop_cohort())
        assert windowed == one_by_one


class TestTimingModels:
    def test_registry_surface(self):
        assert set(TIMING_REGISTRY.names()) == {
            "synchronous", "jitter", "heterogeneous", "bursty",
        }

    def test_synchronous_is_null_and_exact(self):
        timing = Synchronous(8, 3)
        assert timing.is_null
        assert timing.activation_ticks(0, 1) == TICKS_PER_ROUND
        assert timing.activation_ticks(7, 5) == 5 * TICKS_PER_ROUND

    def test_build_timing_normalizes_null(self):
        assert build_timing(None, 8, 3) is None
        assert build_timing({"kind": "synchronous"}, 8, 3) is None
        model = build_timing({"kind": "jitter", "jitter": 0.25}, 8, 3)
        assert isinstance(model, UniformJitter)
        assert model.jitter == 0.25

    def test_build_timing_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            build_timing({"kind": "jitter", "nope": 1}, 8, 3)
        with pytest.raises(ConfigurationError):
            build_timing({"kind": "warp"}, 8, 3)

    @pytest.mark.parametrize("model", [
        UniformJitter(6, 5, jitter=0.7),
        HeterogeneousRates(6, 5),
        GilbertElliottPauses(6, 5, p_pause=0.3, p_resume=0.4),
    ])
    def test_schedules_monotone_and_past_round_one(self, model):
        for vertex in range(model.n):
            previous = 0
            for cycle in range(1, 30):
                ticks = model.activation_ticks(vertex, cycle)
                assert ticks > previous
                assert ticks >= TICKS_PER_ROUND
                previous = ticks

    def test_schedules_pure_functions_of_seed(self):
        # Same seed, fresh instance, any access order: same schedule.
        a = GilbertElliottPauses(6, 5, p_pause=0.3, p_resume=0.4)
        b = GilbertElliottPauses(6, 5, p_pause=0.3, p_resume=0.4)
        forward = [a.activation_ticks(2, c) for c in range(1, 20)]
        backward = [b.activation_ticks(2, c) for c in range(19, 0, -1)]
        assert forward == backward[::-1]

    def test_jitter_draws_are_per_cycle(self):
        model = UniformJitter(4, 1, jitter=0.9)
        offsets = {
            model.activation_ticks(0, c) - c * TICKS_PER_ROUND
            for c in range(1, 20)
        }
        assert len(offsets) > 1  # fresh draw per cycle, not a fixed phase

    def test_heterogeneous_assigns_all_classes(self):
        model = HeterogeneousRates(60, 2, rates=(0.5, 1.0, 2.0))
        seen = {model.rate_of(v) for v in range(60)}
        assert seen == {0.5, 1.0, 2.0}

    def test_heterogeneous_weights_validated(self):
        with pytest.raises(ConfigurationError):
            HeterogeneousRates(4, 1, rates=(1.0, 2.0), weights=(1.0,))
        with pytest.raises(ConfigurationError):
            HeterogeneousRates(4, 1, rates=(0.0,))

    def test_jitter_range_validated(self):
        with pytest.raises(ConfigurationError):
            UniformJitter(4, 1, jitter=1.0)
        with pytest.raises(ConfigurationError):
            UniformJitter(4, 1, jitter=-0.1)

    def test_bursty_params_validated(self):
        with pytest.raises(ConfigurationError):
            GilbertElliottPauses(4, 1, p_pause=1.5)
        with pytest.raises(ConfigurationError):
            GilbertElliottPauses(4, 1, pause_scale=0.5)

    @pytest.mark.parametrize("make", [
        lambda: UniformJitter(30, SEED, jitter=0.7),
        lambda: HeterogeneousRates(30, SEED),
        lambda: GilbertElliottPauses(30, SEED, p_pause=0.3, p_resume=0.4),
    ])
    def test_batch_schedules_bit_identical_to_scalar(self, make):
        # The batched engine derives its whole window schedule through
        # activation_ticks_batch; determinism demands exact equality
        # with per-event scalar calls — including across jitter's
        # 8-cycle PRF blocks and repeated vertices in one batch.
        batch_model, scalar_model = make(), make()
        rng = np.random.RandomState(7)
        vertices = rng.randint(0, 30, size=600)
        cycles = rng.randint(1, 40, size=600)
        batch = batch_model.activation_ticks_batch(vertices, cycles)
        scalar = [
            scalar_model.activation_ticks(int(v), int(c))
            for v, c in zip(vertices, cycles)
        ]
        assert batch.tolist() == scalar

    def test_jitter_batch_handles_block_crossing_duplicates(self):
        # One vertex appearing twice in a single batch with cycles in
        # different PRF blocks: neither occurrence may read the cache
        # row the other just refreshed.
        batch_model = UniformJitter(4, SEED, jitter=0.5)
        scalar_model = UniformJitter(4, SEED, jitter=0.5)
        vertices, cycles = [2, 2, 2], [7, 8, 16]  # blocks 0, 1, 2
        batch = batch_model.activation_ticks_batch(vertices, cycles)
        scalar = [
            scalar_model.activation_ticks(v, c)
            for v, c in zip(vertices, cycles)
        ]
        assert batch.tolist() == scalar

    def test_bursty_produces_multi_round_gaps(self):
        model = GilbertElliottPauses(10, 3, p_pause=0.5, p_resume=0.2,
                                     pause_scale=4.0)
        gaps = [
            model.activation_ticks(v, c + 1) - model.activation_ticks(v, c)
            for v in range(10) for c in range(1, 15)
        ]
        assert max(gaps) > 2 * TICKS_PER_ROUND  # stalls actually happen
        assert min(gaps) >= TICKS_PER_ROUND    # never faster than nominal


class TestAsyncSimulation:
    def test_array_mode_requires_batched_window_path(self):
        # Array front half + asynchronous timing is only legal through
        # the batched window machinery; forcing the per-event path (or
        # lacking window hooks) keeps the old rejection.
        with pytest.raises(ConfigurationError):
            _sim(timing=UniformJitter(N, SEED), engine_mode="array",
                 async_mode="event")
        sim, _ = _sim(timing=UniformJitter(N, SEED), engine_mode="array")
        assert sim._batched

    def test_batched_mode_requires_window_hooks(self):
        instance = uniform_instance(n=N, k=2, seed=SEED)
        nodes = build_nodes("multibit", instance, seed=SEED)
        with pytest.raises(ConfigurationError):
            AsyncSimulation(
                StaticDynamicGraph(expander(n=N, degree=4, seed=1)), nodes,
                b=2, seed=SEED,
                channel_policy=ChannelPolicy.for_upper_n(instance.upper_n),
                timing=None, async_mode="batched",
            )

    def test_async_mode_validated(self):
        with pytest.raises(ConfigurationError):
            _sim(timing=UniformJitter(N, SEED), async_mode="turbo")

    def test_timing_population_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            _sim(timing=UniformJitter(N + 1, SEED))

    def test_step_is_not_a_thing(self):
        sim, _ = _sim(timing=UniformJitter(N, SEED))
        with pytest.raises(ConfigurationError):
            sim.step()

    def test_event_counts_track_every_activation(self):
        sim, instance = _sim(timing=UniformJitter(N, SEED, jitter=0.5))
        result = sim.run(max_rounds=12)
        # jitter keeps one cycle per node per round window
        assert result.event_counts.tolist() == [12] * N
        assert result.rounds == 12

    def test_heterogeneous_rates_shape_event_counts(self):
        timing = HeterogeneousRates(N, SEED, rates=(0.5, 2.0))
        sim, _ = _sim(timing=timing)
        result = sim.run(max_rounds=20)
        fast = [v for v in range(N) if timing.rate_of(v) == 2.0]
        slow = [v for v in range(N) if timing.rate_of(v) == 0.5]
        assert fast and slow
        assert min(result.event_counts[fast]) > max(
            result.event_counts[slow]
        )

    def test_async_trace_columns(self):
        sim, _ = _sim(timing=UniformJitter(N, SEED, jitter=0.5))
        sim.run(max_rounds=6)
        for record in sim.trace.records:
            assert record.events == N
            assert record.clock_skew_max == 0  # jitter < 1 round
            assert record.round_index <= record.virtual_time \
                < record.round_index + 1
        series = sim.trace.column_series("events")
        assert [value for _, value in series] == [N] * 6

    def test_skew_grows_under_heterogeneous_rates(self):
        sim, _ = _sim(timing=HeterogeneousRates(N, SEED,
                                                rates=(0.5, 2.0)))
        sim.run(max_rounds=20)
        skews = [rec.clock_skew_max for rec in sim.trace.records]
        assert skews[-1] > skews[1]

    def test_termination_fires_at_window_boundaries(self):
        sim, instance = _sim(timing=UniformJitter(N, SEED, jitter=0.4))
        result = sim.run(
            max_rounds=50_000,
            termination=all_hold_tokens(instance.token_ids),
        )
        assert result.terminated
        assert result.rounds < 50_000
        assert sim.trace.total_rounds == result.rounds

    def test_round_limit_raises_when_asked(self):
        from repro.errors import RoundLimitExceeded

        sim, _ = _sim(timing=UniformJitter(N, SEED))
        with pytest.raises(RoundLimitExceeded):
            sim.run(max_rounds=2, raise_on_limit=True)

    def test_bursty_windows_can_be_empty(self):
        sim, _ = _sim(
            timing=GilbertElliottPauses(N, SEED, p_pause=0.8,
                                        p_resume=0.1, pause_scale=6.0),
        )
        sim.run(max_rounds=30)
        events = [rec.events for rec in sim.trace.records]
        assert 0 in events            # some windows hold no activations
        assert len(events) == 30      # ... but every window is recorded

    def test_sleep_fault_composes_with_async_timing(self):
        clean, instance = _sim(timing=UniformJitter(N, SEED, jitter=0.3))
        clean_result = clean.run(
            max_rounds=50_000,
            termination=all_hold_tokens(instance.token_ids),
        )
        slept, instance = _sim(
            timing=UniformJitter(N, SEED, jitter=0.3),
            fault=SleepCycle(N, SEED, period=8, duty=3),
        )
        slept_result = slept.run(
            max_rounds=50_000,
            termination=all_hold_tokens(instance.token_ids),
        )
        assert slept_result.terminated
        assert slept_result.rounds > clean_result.rounds
        active = [rec.active_nodes for rec in slept.trace.records]
        assert max(active) < N  # the duty cycle masked activations

    def test_estimated_wall_rounds_from_async_columns(self):
        sim, instance = _sim(timing=HeterogeneousRates(N, SEED,
                                                       rates=(0.5, 2.0)))
        result = sim.run(
            max_rounds=50_000,
            termination=all_hold_tokens(instance.token_ids),
        )
        last = next(
            rec for rec in reversed(sim.trace.records)
            if rec.virtual_time is not None
        )
        expected = float(last.virtual_time) + float(last.clock_skew_max)
        assert sim.trace.estimated_wall_rounds() == expected
        assert result.estimated_wall_rounds == expected
        # Slow devices trail the virtual clock, so the wall estimate
        # exceeds the raw window count.
        assert result.estimated_wall_rounds > result.rounds

    def test_estimated_wall_rounds_round_engine_fallback(self):
        result = run_gossip(
            "sharedbit", StaticDynamicGraph(star(16)),
            uniform_instance(n=16, k=2, seed=4), seed=4,
            max_rounds=50_000,
        )
        assert result.trace.estimated_wall_rounds() is None
        assert result.estimated_wall_rounds == float(result.rounds)


class TestAsyncLeaderElection:
    def test_all_agree_on_leader_under_jitter(self):
        from repro.leader.bitconvergence import LeaderElectionNode
        from repro.rng import SeedTree
        from repro.sim.termination import all_agree_on_leader

        n = 12
        uids = [3 * vertex + 5 for vertex in range(n)]
        tree = SeedTree(SEED)
        nodes = {
            vertex: LeaderElectionNode(
                uid=uids[vertex], upper_n=max(uids),
                rng=tree.stream("leader-node", uids[vertex]),
            )
            for vertex in range(n)
        }
        sim = AsyncSimulation(
            StaticDynamicGraph(expander(n=n, degree=4, seed=1)), nodes,
            b=1, seed=SEED,
            channel_policy=ChannelPolicy.for_upper_n(max(uids)),
            timing=UniformJitter(n=n, seed=SEED, jitter=0.6),
        )
        # Leader election ships window hooks: auto mode takes the
        # batched window path, and still elects the minimum.
        assert sim._batched
        result = sim.run(max_rounds=50_000,
                         termination=all_agree_on_leader())
        assert result.terminated
        winners = {
            node.candidate_leader for node in result.nodes.values()
        }
        assert winners == {min(uids)}

    def test_leader_batched_identical_to_per_event(self):
        from repro.experiments.fastpath import trace_signature
        from repro.leader.bitconvergence import LeaderElectionNode
        from repro.rng import SeedTree
        from repro.sim.termination import all_agree_on_leader

        n = 12
        uids = [3 * vertex + 5 for vertex in range(n)]

        def run(async_mode):
            tree = SeedTree(SEED)
            nodes = {
                vertex: LeaderElectionNode(
                    uid=uids[vertex], upper_n=max(uids),
                    rng=tree.stream("leader-node", uids[vertex]),
                )
                for vertex in range(n)
            }
            sim = AsyncSimulation(
                StaticDynamicGraph(expander(n=n, degree=4, seed=1)), nodes,
                b=1, seed=SEED,
                channel_policy=ChannelPolicy.for_upper_n(max(uids)),
                timing=UniformJitter(n=n, seed=SEED, jitter=0.6),
                async_mode=async_mode,
            )
            result = sim.run(max_rounds=50_000,
                             termination=all_agree_on_leader())
            leaders = tuple(
                (node.uid, node.candidate_leader)
                for node in result.nodes.values()
            )
            return trace_signature(result.rounds, sim.trace), leaders

        assert run("batched") == run("event")


class TestRunGossipTiming:
    def _graph(self, n=16):
        return StaticDynamicGraph(star(n))

    def test_timing_by_name_dict_and_model(self):
        outcomes = []
        for timing in ("jitter", {"kind": "jitter", "jitter": 0.5},
                       UniformJitter(16, 4, jitter=0.5)):
            result = run_gossip(
                "sharedbit", self._graph(),
                uniform_instance(n=16, k=2, seed=4), seed=4,
                max_rounds=50_000, timing=timing,
            )
            assert result.solved
            outcomes.append(
                trace_signature(result.rounds, result.trace)
            )
        # dict and built-model forms agree ("jitter" name differs only
        # in its default jitter=0.5 — which matches, so all three agree)
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_null_timing_stays_on_round_engine(self):
        result = run_gossip(
            "sharedbit", self._graph(),
            uniform_instance(n=16, k=2, seed=4), seed=4,
            max_rounds=50_000, timing="synchronous",
        )
        bare = run_gossip(
            "sharedbit", self._graph(),
            uniform_instance(n=16, k=2, seed=4), seed=4,
            max_rounds=50_000,
        )
        assert result.event_counts is None  # the round engine ran
        assert (
            trace_signature(result.rounds, result.trace)
            == trace_signature(bare.rounds, bare.trace)
        )

    def test_async_run_reports_event_counts(self):
        result = run_gossip(
            "blindmatch", self._graph(),
            uniform_instance(n=16, k=2, seed=4), seed=4,
            max_rounds=50_000, timing="heterogeneous",
        )
        assert result.solved
        assert result.event_counts is not None
        assert int(result.event_counts.sum()) > 0


class TestSpecsAndSweeps:
    BASE = {
        "algorithm": "sharedbit",
        "graph": {"family": "expander",
                  "params": {"n": 16, "degree": 4, "seed": 1}},
        "instance": {"kind": "uniform", "k": 2},
        "max_rounds": 50_000,
        "engine": {"trace_sample_every": 1024},
    }

    def test_runspec_timing_block_validates_eagerly(self):
        with pytest.raises(ConfigurationError):
            RunSpec(seed=1, timing={"kind": "warp"}, **self.BASE)

    def test_timing_survives_payload_round_trip(self):
        spec = RunSpec(seed=1,
                       timing={"kind": "jitter", "jitter": 0.5},
                       **self.BASE)
        again = RunSpec.from_payload(spec.to_payload())
        assert again.timing == {"kind": "jitter", "jitter": 0.5}
        assert again.spec_hash() == spec.spec_hash()

    def test_timing_kind_changes_the_hash(self):
        clean = RunSpec(seed=1, **self.BASE)
        jittered = RunSpec(seed=1, timing={"kind": "jitter"}, **self.BASE)
        assert clean.spec_hash() != jittered.spec_hash()

    def test_execute_run_with_timing(self):
        record = execute_run(
            RunSpec(seed=1, timing={"kind": "jitter", "jitter": 0.6},
                    **self.BASE)
        )
        assert record["solved"]
        assert record["events"] > 0

    def test_execute_run_synchronous_has_no_events_column(self):
        record = execute_run(RunSpec(seed=1, **self.BASE))
        assert "events" not in record

    @pytest.mark.parametrize("timing", [
        {"kind": "jitter"},
        {"kind": "heterogeneous"},
        {"kind": "bursty"},
    ])
    def test_epsilon_executor_rejects_async_timing(self, timing):
        # Epsilon's guarantee is stated against the synchronous round
        # structure; every non-null timing kind must be refused.
        spec = RunSpec(
            algorithm="epsilon",
            graph={"family": "expander",
                   "params": {"n": 16, "degree": 4, "seed": 1}},
            instance={"kind": "everyone"},
            config={"epsilon": 0.5},
            timing=timing,
            seed=1, max_rounds=50_000,
        )
        with pytest.raises(ConfigurationError, match="asynchronous"):
            execute_run(spec)

    def test_timing_sweep_jobs_parallel_identical(self):
        sweep = SweepSpec(
            name="async-axis",
            base=dict(self.BASE, timing={"kind": "jitter", "jitter": 0.0}),
            grid={"timing.jitter": [0.0, 0.5]},
            seeds=(11, 23),
        )
        serial = run_sweep(sweep, jobs=1)
        parallel = run_sweep(sweep, jobs=2)
        assert serial.to_json() == parallel.to_json()

    def test_timing_kind_sweepable_as_axis(self):
        sweep = SweepSpec(
            name="kind-axis",
            base=dict(self.BASE),
            grid={"timing.kind": ["synchronous", "heterogeneous"]},
            seeds=(11,),
        )
        result = run_sweep(sweep)
        assert all(summary.all_solved for summary in result.points)


class TestFluentApi:
    def test_with_timing_validates_and_threads(self):
        record = (
            Experiment("sharedbit")
            .on_graph("expander", n=16, degree=4, seed=1)
            .with_instance("uniform", k=2)
            .with_timing("bursty", p_pause=0.05)
            .seeded(3)
            .rounds(50_000)
            .run()
        )
        assert record["solved"]
        assert record["events"] > 0

    def test_with_timing_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            Experiment("sharedbit").with_timing("warp")

    def test_synchronous_timing_left_out_of_payload(self):
        spec = (
            Experiment("sharedbit")
            .on_graph("star", n=8)
            .with_timing("synchronous")
            .run_spec()
        )
        assert spec.timing == {"kind": "synchronous"}


class TestAsyncScenarios:
    def test_commute_carries_heterogeneous_clocks(self):
        scenario = commute_mixed_devices_scenario(seed=1)
        assert isinstance(scenario.timing, HeterogeneousRates)
        assert scenario.fault is None

    def test_stadium_composes_timing_with_sleep(self):
        scenario = stadium_desync_scenario(seed=1)
        assert isinstance(scenario.timing, GilbertElliottPauses)
        assert isinstance(scenario.fault, SleepCycle)

    def test_commute_solves(self):
        scenario = commute_mixed_devices_scenario(n=20, k=2, seed=3)
        result = run_gossip(
            scenario.recommended_algorithm, scenario.dynamic_graph,
            scenario.instance, seed=3, max_rounds=100_000,
            timing=scenario.timing,
        )
        assert result.solved
        counts = np.asarray(result.event_counts)
        assert counts.min() > 0

    def test_stadium_solves(self):
        scenario = stadium_desync_scenario(n=24, k=3, seed=3)
        result = run_gossip(
            scenario.recommended_algorithm, scenario.dynamic_graph,
            scenario.instance, seed=3, max_rounds=100_000,
            fault=scenario.fault, timing=scenario.timing,
        )
        assert result.solved


class TestCliTiming:
    def test_run_with_timing_flag(self, capsys):
        from repro.cli import main

        code = main([
            "run", "--algorithm", "sharedbit", "--graph", "expander",
            "--n", "16", "--k", "2", "--timing", "jitter", "--seed", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "timing=jitter" in out
        assert "events=" in out

    def test_list_includes_timing_section(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "timing models:" in out
        for name in ("synchronous", "jitter", "heterogeneous", "bursty"):
            assert name in out

    def test_scenario_commute(self, capsys):
        from repro.cli import main

        code = main(["scenario", "--name", "commute_mixed_devices"])
        out = capsys.readouterr().out
        assert code == 0
        assert "timing regime" in out
